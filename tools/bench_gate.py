#!/usr/bin/env python
"""Benchmark regression gate over the repo's BENCH_*.json artifacts.

Compares freshly measured benchmark artifacts against a committed
baseline and fails (exit code 1) when a tracked speedup regresses by
more than the allowed fraction.  Speedups are same-machine ratios
(scalar vs. vectorized, broadcast vs. pruned, serial vs. parallel), so
they transfer across machines far better than absolute seconds — the
gate deliberately never compares wall-clock fields.

Usage (what the CI ``bench-gate`` job runs; also works locally)::

    # stash the committed artifacts, re-measure from a clean slate
    # (mv, not cp: stale committed values must not pose as fresh ones),
    # then compare
    mkdir -p /tmp/bench-baseline && mv BENCH_*.json /tmp/bench-baseline/
    REPRO_BENCH_SCALE=tiny PYTHONPATH=src python -m pytest \
        benchmarks/test_micro_query_engine.py \
        benchmarks/test_micro_parallel_trials.py \
        benchmarks/test_micro_sharded.py \
        benchmarks/test_micro_async_batching.py -q
    python tools/loadtest.py --ci --no-enforce
    python tools/bench_gate.py --baseline /tmp/bench-baseline --fresh .

Rules
-----
* ``BENCH_query_engine.json`` — ``kernel_speedup``, ``auto_speedup``
  and ``pruned_speedup`` must each stay within ``--max-regression``
  (default 30%) of the baseline value; ``*_max_abs_diff`` fields must
  stay at or below ``--max-abs-diff`` (default 1e-9).
* ``BENCH_parallel_trials.json`` / ``BENCH_sharded.json`` — ``speedup``
  is compared the same way, but an entry marked ``skipped_low_cores``
  (on either side) is ignored: a narrow machine measures the machine,
  not the code.  ``BENCH_sharded.json``'s exactness ceilings are
  enforced regardless of the marker: ``sharded_max_abs_diff`` (merged
  shards vs the broadcast kernel, float-reassociation bound) and
  ``resident_max_abs_diff`` (resident worker pool vs serial shard
  evaluation — bit-identity, so the benchmark records exactly 0).
* ``BENCH_async_batching.json`` — ``speedup`` (micro-batched vs
  one-by-one through the async serving endpoint; single-threaded, so
  never core-skipped) and the ``async_max_abs_diff`` exactness ceiling
  (the benchmark itself asserts it is exactly 0).
* ``BENCH_serving.json`` — written by ``tools/loadtest.py`` against a
  live HTTP server.  ``responsiveness_ratio`` (on-loop vs off-loop max
  event-loop lag under heavy ticks) is held to an *absolute* floor of
  5.0 rather than a baseline-relative window: the off-loop guarantee
  is a product property, not a machine-relative one, and it holds even
  on one core because NumPy releases the GIL inside the kernel.
  ``serving_max_abs_diff`` (HTTP answers vs in-process
  ``Engine.answer``) is an exactness ceiling like the others — the
  JSON transport is ``repr``-exact, so the loadtest records exactly 0.
* A key present in the baseline but missing from a fresh artifact (or a
  missing fresh artifact) fails the gate — silently dropping a tracked
  series is itself a regression.  This applies to exactness series as
  much as speedups, and skip markers do not excuse it.  Keys only the
  fresh side has are reported and pass (a new series starts its own
  baseline); exactness ceilings are enforced on a fresh artifact even
  when no baseline exists, being absolute rather than
  baseline-relative.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Ratio fields tracked per artifact file.
SPEEDUP_KEYS = {
    "BENCH_query_engine.json": [
        "kernel_speedup",
        "auto_speedup",
        "pruned_speedup",
    ],
    "BENCH_parallel_trials.json": ["speedup"],
    "BENCH_sharded.json": ["speedup"],
    "BENCH_async_batching.json": ["speedup"],
    # Gated by FLOOR_KEYS / ABS_DIFF_KEYS only; listed here so a
    # missing fresh artifact still fails the gate.
    "BENCH_serving.json": [],
}

#: Exactness fields (absolute ceilings, not baseline-relative).
ABS_DIFF_KEYS = {
    "BENCH_query_engine.json": [
        "kernel_max_abs_diff",
        "auto_max_abs_diff",
        "pruned_max_abs_diff",
    ],
    "BENCH_sharded.json": [
        "sharded_max_abs_diff",
        "resident_max_abs_diff",
    ],
    "BENCH_async_batching.json": ["async_max_abs_diff"],
    "BENCH_serving.json": ["serving_max_abs_diff"],
}

#: Absolute minimums (baseline-independent, like the exactness
#: ceilings but pointing the other way): a fresh artifact must meet
#: these floors regardless of history.  Used for ratios that encode a
#: hard product guarantee rather than a machine-relative measurement.
FLOOR_KEYS = {
    "BENCH_serving.json": {"responsiveness_ratio": 5.0},
}

#: An artifact with this key set to true is excluded from speedup
#: comparison (e.g. parallel trials measured on too few cores).
SKIP_MARKER = "skipped_low_cores"


#: Sentinel for an artifact that exists but cannot be parsed — always a
#: gate failure, unlike a missing baseline (which merely skips).
CORRUPT = object()


def load(path: Path):
    """The artifact dict, ``None`` if absent, or :data:`CORRUPT`."""
    if not path.is_file():
        return None
    try:
        payload = json.loads(path.read_text())
    except ValueError as exc:
        print(f"FAIL  {path}: unreadable JSON ({exc})")
        return CORRUPT
    if not isinstance(payload, dict):
        print(f"FAIL  {path}: expected a JSON object")
        return CORRUPT
    return payload


def gate(
    baseline_dir: Path,
    fresh_dir: Path,
    max_regression: float,
    max_abs_diff: float,
) -> int:
    """Print a comparison table; return the number of failures."""
    failures = 0
    compared = 0
    for name, keys in SPEEDUP_KEYS.items():
        base = load(baseline_dir / name)
        fresh = load(fresh_dir / name)
        if base is CORRUPT or fresh is CORRUPT:
            failures += 1  # load() already printed which side
            continue
        if base is None:
            # No baseline: nothing to compare speedups against, but the
            # fresh artifact's absolute exactness ceilings (below) still
            # apply — they are baseline-independent.
            print(f"skip  {name}: no baseline artifact")
        elif fresh is None:
            print(f"FAIL  {name}: fresh artifact missing")
            failures += 1
            continue
        elif base.get(SKIP_MARKER) or fresh.get(SKIP_MARKER):
            side = "baseline" if base.get(SKIP_MARKER) else "fresh"
            print(f"skip  {name}: {SKIP_MARKER} marker ({side})")
        else:
            for key in keys:
                if key not in base:
                    continue  # series not tracked yet at the baseline
                if key not in fresh:
                    print(f"FAIL  {name}:{key}: tracked series disappeared")
                    failures += 1
                    continue
                base_val = float(base[key])
                fresh_val = float(fresh[key])
                floor = (1.0 - max_regression) * base_val
                ok = fresh_val >= floor
                compared += 1
                print(
                    f"{'ok  ' if ok else 'FAIL'}  {name}:{key}: "
                    f"{fresh_val:.2f} vs baseline {base_val:.2f} "
                    f"(floor {floor:.2f})"
                )
                failures += 0 if ok else 1
            for key in set(fresh) & set(keys) - set(base):
                print(f"new   {name}:{key}: {float(fresh[key]):.2f}")
        if fresh is None:
            continue
        for key in ABS_DIFF_KEYS.get(name, []):
            if key not in fresh:
                # The disappearance rule applies to exactness series
                # too: a ceiling the baseline tracked must not vanish
                # silently (skip markers do not excuse it — exactness
                # holds on any machine).
                if base is not None and key in base:
                    print(f"FAIL  {name}:{key}: tracked series disappeared")
                    failures += 1
                continue
            diff = float(fresh[key])
            ok = diff <= max_abs_diff
            compared += 1
            print(
                f"{'ok  ' if ok else 'FAIL'}  {name}:{key}: "
                f"{diff:.3g} (ceiling {max_abs_diff:g})"
            )
            failures += 0 if ok else 1
        for key, floor_val in FLOOR_KEYS.get(name, {}).items():
            if key not in fresh:
                # Same disappearance rule as the other tracked series.
                if base not in (None, CORRUPT) and key in base:
                    print(f"FAIL  {name}:{key}: tracked series disappeared")
                    failures += 1
                continue
            value = float(fresh[key])
            ok = value >= floor_val
            compared += 1
            print(
                f"{'ok  ' if ok else 'FAIL'}  {name}:{key}: "
                f"{value:.2f} (absolute floor {floor_val:g})"
            )
            failures += 0 if ok else 1
    if compared == 0 and failures == 0:
        print("FAIL  nothing compared: no baseline/fresh artifact pair found")
        failures += 1
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path, required=True,
        help="directory holding the committed BENCH_*.json artifacts",
    )
    parser.add_argument(
        "--fresh", type=Path, required=True,
        help="directory holding the freshly measured BENCH_*.json artifacts",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.30,
        help="allowed fractional speedup regression (default 0.30)",
    )
    parser.add_argument(
        "--max-abs-diff", type=float, default=1e-9,
        help="ceiling for recorded *_max_abs_diff exactness fields",
    )
    args = parser.parse_args(argv)
    failures = gate(
        args.baseline, args.fresh, args.max_regression, args.max_abs_diff
    )
    if failures:
        print(f"bench gate: {failures} failure(s)")
        return 1
    print("bench gate: all tracked speedups within bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
