#!/usr/bin/env python
"""Zipf-skewed load-test harness for the HTTP serving layer.

Boots the real ``repro serve`` CLI server as a subprocess (off-loop and
on-loop, back to back), replays a skewed query stream from many
concurrent HTTP clients, and writes ``BENCH_serving.json`` — the
serving SLO artifact tracked by ``tools/bench_gate.py``.

What one run measures
---------------------
* **Throughput phase** — ``--clients`` concurrent
  :class:`~repro.engine.AsyncServingClient` connections each send
  ``--requests-per-client`` batches of ``--queries-per-request``
  queries whose centers are drawn from the same multivariate Zipf
  sampler the synthetic datasets use (``repro.datagen.zipf_points``),
  so traffic concentrates on hot cells the way real per-user query
  streams do.  Records p50/p95/p99 request latency, queries/sec, the
  server's tick-size distribution, and the rejected/dropped counts.
* **Exactness** — every throughput-phase answer is compared against an
  in-process ``Engine.answer`` on a bit-identically rebuilt substrate
  (``repro.datagen.grid_substrate`` is ``(shape, m, seed)``-
  deterministic across processes): ``serving_max_abs_diff`` must be
  exactly 0.0.  Dropped non-rejected requests (anything other than a
  200 or an explicit 503/413 rejection) fail the run.
* **Responsiveness phase** — a few clients send deliberately heavy
  batches (``--heavy-queries-per-request`` against ``k = m**2``
  partitions with the broadcast plan pinned, ~hundreds of ms per tick)
  and the server's own ``/statz`` loop-lag monitor records the longest
  stretch the event loop could not run.  The same traffic is then
  replayed against an on-loop server; ``responsiveness_ratio =
  on_loop_max_lag / off_loop_max_lag`` must be at least
  ``--responsiveness-floor`` (default 5): dispatching kernels into the
  worker thread must keep the loop at least that much more responsive.

Usage::

    PYTHONPATH=src python tools/loadtest.py            # full run
    PYTHONPATH=src python tools/loadtest.py --ci       # short CI burst
    PYTHONPATH=src python tools/loadtest.py --url http://127.0.0.1:8080

    # serve through the resident shard-worker pool (docs/WORKERS.md):
    # pins plan=sharded, records served p50/p95 with the pool enabled,
    # and verifies pool answers ≡ in-process serial at exactly 0.0
    PYTHONPATH=src python tools/loadtest.py --ci --shard-executor resident

With ``--url`` the harness replays the throughput phase against an
already-running server (booted with the same ``--bench-substrate`` /
``--seed`` flags so exactness can still be verified; pass
``--no-verify`` otherwise) and skips the off-vs-on-loop comparison.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import re
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.datagen import grid_substrate  # noqa: E402
from repro.datagen.zipf import zipf_points  # noqa: E402
from repro.engine import (  # noqa: E402
    AsyncServingClient,
    Engine,
    EngineConfig,
    QueryRequest,
    ServingError,
)
from repro.engine.server import percentile  # noqa: E402

ARTIFACT = REPO_ROOT / "BENCH_serving.json"

#: The serving plan is pinned for the whole harness: determinism lever
#: (bit-identical HTTP vs in-process answers) and the kernel whose
#: per-tick cost scales predictably with q·k for the heavy phase.
#: ``--shard-executor``/``--n-shards`` switch the pin to ``sharded``
#: (the only plan those knobs apply to) — still pinned, still
#: deterministic, and with the resident pool the exactness check then
#: verifies pool answers ≡ serial shard evaluation through HTTP.
PLAN = "broadcast"


def build_queries(
    shape, n_queries: int, zipf_a: float, extent: int, rng
) -> "tuple[np.ndarray, np.ndarray]":
    """Zipf-skewed inclusive boxes: hot-cell centers, bounded extents."""
    centers = zipf_points(shape, zipf_a, n_queries, rng)
    spans = rng.integers(0, extent + 1, size=centers.shape)
    lows = np.maximum(centers - spans, 0)
    highs = np.minimum(centers + spans, np.asarray(shape) - 1)
    return lows.astype(np.int64), highs.astype(np.int64)


class LoadResult:
    """Per-phase collection: answers, latencies, rejections, drops."""

    def __init__(self):
        self.answers = {}
        self.latencies = []
        self.rejected = 0
        self.dropped = 0
        self.started = 0.0
        self.elapsed = 0.0
        self.n_queries = 0


async def run_phase(
    host: str,
    port: int,
    batches: "list[tuple[int, np.ndarray, np.ndarray]]",
    n_clients: int,
    timeout: float,
) -> LoadResult:
    """Replay ``batches`` across ``n_clients`` persistent connections."""
    result = LoadResult()
    queue: "asyncio.Queue[tuple[int, np.ndarray, np.ndarray]]" = (
        asyncio.Queue()
    )
    for batch in batches:
        queue.put_nowait(batch)

    async def client():
        async with AsyncServingClient(host, port, timeout=timeout) as c:
            while True:
                try:
                    index, lows, highs = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                start = time.perf_counter()
                try:
                    answer = await c.query(
                        lows, highs, workload=f"req-{index}"
                    )
                except ServingError as exc:
                    if exc.status in (503, 413):
                        result.rejected += 1
                    else:
                        result.dropped += 1
                    continue
                except (ConnectionError, asyncio.TimeoutError):
                    result.dropped += 1
                    return
                result.latencies.append(time.perf_counter() - start)
                result.answers[index] = answer.answers
                result.n_queries += len(lows)

    result.started = time.perf_counter()
    await asyncio.gather(*(client() for _ in range(n_clients)))
    result.elapsed = time.perf_counter() - result.started
    return result


async def fetch_statz(host: str, port: int) -> dict:
    async with AsyncServingClient(host, port) as c:
        return await c.statz()


def spawn_server(args, off_loop: bool) -> "tuple[subprocess.Popen, int]":
    """Boot ``repro serve --port 0`` and parse the bound port."""
    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--host", args.host,
        "--port", "0",
        "--bench-substrate", str(args.grid_m),
        "--bench-shape", str(args.shape),
        "--seed", str(args.seed),
        "--engine-config", f"plan={args.plan}",
        "--request-timeout", str(args.timeout),
    ]
    if args.shard_executor:
        cmd += ["--shard-executor", args.shard_executor]
    if args.n_shards is not None:
        cmd += ["--n-shards", str(args.n_shards)]
    if not off_loop:
        cmd.append("--no-off-loop")
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src")
        + (":" + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    )
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True, env=env, cwd=str(REPO_ROOT),
    )
    deadline = time.time() + 60
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        match = re.search(r"serving on http://[^:]+:(\d+)", line)
        if match:
            return proc, int(match.group(1))
    proc.kill()
    raise RuntimeError("server did not report a bound port within 60s")


def stop_server(proc: subprocess.Popen) -> None:
    proc.terminate()
    try:
        proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=10)


def measure_mode(args, off_loop: bool, reference: "Engine | None") -> dict:
    """Boot one server mode, run both phases, return its measurements."""
    label = "off-loop" if off_loop else "on-loop"
    proc, port = spawn_server(args, off_loop)
    try:
        return drive_server(args, args.host, port, label, reference)
    finally:
        stop_server(proc)


def drive_server(
    args, host: str, port: int, label: str, reference: "Engine | None"
) -> dict:
    rng = np.random.default_rng(args.seed + 17)
    shape = (args.shape, args.shape)

    # Throughput phase: many clients, small Zipf-skewed batches.
    batches = []
    for index in range(args.clients * args.requests_per_client):
        lows, highs = build_queries(
            shape, args.queries_per_request, args.zipf_a, args.extent, rng
        )
        batches.append((index, lows, highs))
    throughput = asyncio.run(
        run_phase(host, port, batches, args.clients, args.timeout)
    )

    # Exactness: replay every answered batch through the in-process
    # engine the server was rebuilt from.
    max_abs_diff = None
    if reference is not None:
        max_abs_diff = 0.0
        for index, lows, highs in batches:
            if index not in throughput.answers:
                continue
            expected = reference.answer(QueryRequest(lows, highs)).answers
            diff = float(
                np.abs(throughput.answers[index] - expected).max()
            ) if len(expected) else 0.0
            max_abs_diff = max(max_abs_diff, diff)

    # Responsiveness phase: few clients, heavy ticks.
    heavy = []
    for index in range(args.heavy_clients * args.heavy_requests_per_client):
        lows, highs = build_queries(
            shape, args.heavy_queries_per_request, args.zipf_a,
            args.shape // 2, rng,
        )
        heavy.append((index, lows, highs))
    heavy_result = asyncio.run(
        run_phase(host, port, heavy, args.heavy_clients, args.timeout)
    )

    statz = asyncio.run(fetch_statz(host, port))
    latencies = sorted(throughput.latencies)
    answered = len(throughput.latencies)
    measurements = {
        "label": label,
        "answered_requests": answered,
        "rejected_requests": throughput.rejected + heavy_result.rejected,
        "dropped_requests": throughput.dropped + heavy_result.dropped,
        "n_queries": throughput.n_queries,
        "elapsed_seconds": throughput.elapsed,
        "queries_per_second": (
            throughput.n_queries / throughput.elapsed
            if throughput.elapsed else 0.0
        ),
        "requests_per_second": (
            answered / throughput.elapsed if throughput.elapsed else 0.0
        ),
        "p50_ms": 1e3 * percentile(latencies, 50),
        "p95_ms": 1e3 * percentile(latencies, 95),
        "p99_ms": 1e3 * percentile(latencies, 99),
        "max_ms": 1e3 * (latencies[-1] if latencies else 0.0),
        "tick_queries": statz["tick_queries"],
        "server_dropped_requests": statz["counters"]["dropped_requests"],
        "max_loop_lag_ms": statz["loop"]["max_lag_ms"],
        "heartbeat_interval_ms": statz["loop"]["heartbeat_interval_ms"],
    }
    if max_abs_diff is not None:
        measurements["serving_max_abs_diff"] = max_abs_diff
    print(
        f"[{label}] {answered} requests ({throughput.n_queries} queries) "
        f"in {throughput.elapsed:.2f}s: "
        f"p50 {measurements['p50_ms']:.1f}ms / "
        f"p95 {measurements['p95_ms']:.1f}ms / "
        f"p99 {measurements['p99_ms']:.1f}ms, "
        f"{measurements['queries_per_second']:.0f} q/s; "
        f"max loop lag {measurements['max_loop_lag_ms']:.1f}ms"
        + (
            f"; drift {max_abs_diff:.3g}"
            if max_abs_diff is not None else ""
        )
    )
    return measurements


def build_reference(args) -> Engine:
    """The bit-identical in-process engine the servers were booted from.

    Deliberately never uses the resident pool itself: with
    ``--shard-executor resident`` the server answers through worker
    processes while the reference evaluates the same shards serially
    in-process, so the 0.0-drift check doubles as an end-to-end
    pool ≡ serial bit-identity assertion.
    """
    private = grid_substrate(
        shape=(args.shape, args.shape), m=args.grid_m, seed=args.seed
    )
    return Engine(
        private, EngineConfig(plan=args.plan, n_shards=args.n_shards)
    )


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default=None,
                        help="load-test this already-running server instead "
                             "of booting off-loop/on-loop subprocesses")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--clients", type=int, default=64,
                        help="concurrent connections (throughput phase)")
    parser.add_argument("--requests-per-client", type=int, default=8)
    parser.add_argument("--queries-per-request", type=int, default=4)
    parser.add_argument("--extent", type=int, default=4,
                        help="max per-dimension half-extent of a query box")
    parser.add_argument("--zipf-a", type=float, default=1.5,
                        help="skew of the query-center distribution")
    parser.add_argument("--heavy-clients", type=int, default=8)
    parser.add_argument("--heavy-requests-per-client", type=int, default=2)
    parser.add_argument("--heavy-queries-per-request", type=int, default=512,
                        help="queries per batch in the responsiveness phase")
    parser.add_argument("--shape", type=int, default=256,
                        help="square side of the bench substrate")
    parser.add_argument("--grid-m", type=int, default=64,
                        help="substrate grid: k = m^2 partitions")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--shard-executor", default=None,
                        choices=["serial", "resident"],
                        help="serve through the sharded plan with this "
                             "executor (resident = persistent worker pool "
                             "on shared-memory shards; pins plan=sharded)")
    parser.add_argument("--n-shards", type=int, default=None,
                        help="shard count for --shard-executor runs "
                             "(pins plan=sharded)")
    parser.add_argument("--timeout", type=float, default=120.0)
    parser.add_argument("--responsiveness-floor", type=float, default=5.0,
                        help="required on-loop/off-loop max-lag ratio")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip the in-process exactness check")
    parser.add_argument("--no-enforce", action="store_true",
                        help="measure and write the artifact but never fail")
    parser.add_argument("--output", type=Path, default=ARTIFACT)
    parser.add_argument("--ci", action="store_true",
                        help="shrink the run for CI (fewer clients/requests)")
    args = parser.parse_args(argv)
    # Sharding knobs only apply to the sharded plan, so their presence
    # repins the harness plan (EngineConfig rejects the combination
    # otherwise).  Everything downstream reads args.plan.
    args.plan = (
        "sharded"
        if args.shard_executor or args.n_shards is not None
        else PLAN
    )
    if args.ci:
        args.clients = min(args.clients, 32)
        args.requests_per_client = min(args.requests_per_client, 4)
        args.heavy_clients = min(args.heavy_clients, 4)
        args.heavy_requests_per_client = 1

    reference = None if args.no_verify else build_reference(args)

    payload = {
        "clients": args.clients,
        "requests_per_client": args.requests_per_client,
        "queries_per_request": args.queries_per_request,
        "zipf_a": args.zipf_a,
        "shape": [args.shape, args.shape],
        "grid_m": args.grid_m,
        "n_partitions": args.grid_m * args.grid_m,
        "plan": args.plan,
        "shard_executor": args.shard_executor,
        "n_shards": args.n_shards,
        "heavy_clients": args.heavy_clients,
        "heavy_queries_per_request": args.heavy_queries_per_request,
        "responsiveness_floor": args.responsiveness_floor,
    }
    failures = []

    if args.url:
        match = re.match(r"https?://([^:/]+):(\d+)", args.url)
        if not match:
            parser.error(f"--url {args.url!r} is not host:port form")
        off = drive_server(
            args, match.group(1), int(match.group(2)), "target", reference
        )
        # No on-loop twin to compare against: the ratio series is
        # deliberately absent (the bench gate only runs spawn mode).
        payload.update({k: v for k, v in off.items() if k != "label"})
    else:
        off = measure_mode(args, off_loop=True, reference=reference)
        on = measure_mode(args, off_loop=False, reference=reference)
        payload.update({k: v for k, v in off.items() if k != "label"})
        payload["on_loop"] = on
        payload["off_loop_max_lag_ms"] = off["max_loop_lag_ms"]
        payload["on_loop_max_lag_ms"] = on["max_loop_lag_ms"]
        # Guard the denominator: a perfectly responsive loop would
        # otherwise make the ratio infinite/unstable.
        floor_lag = max(off["max_loop_lag_ms"], 1e-3)
        ratio = on["max_loop_lag_ms"] / floor_lag
        payload["responsiveness_ratio"] = ratio
        print(
            f"responsiveness: on-loop max lag {on['max_loop_lag_ms']:.1f}ms "
            f"vs off-loop {off['max_loop_lag_ms']:.1f}ms -> {ratio:.1f}x "
            f"(floor {args.responsiveness_floor}x)"
        )
        if ratio < args.responsiveness_floor:
            failures.append(
                f"responsiveness ratio {ratio:.2f} below floor "
                f"{args.responsiveness_floor}"
            )
        for side in (off, on):
            if side["dropped_requests"]:
                failures.append(
                    f"{side['label']}: {side['dropped_requests']} dropped "
                    f"non-rejected request(s)"
                )
            if (
                reference is not None
                and side.get("serving_max_abs_diff", 0.0) != 0.0
            ):
                failures.append(
                    f"{side['label']}: HTTP answers drifted "
                    f"{side['serving_max_abs_diff']:.3g} from "
                    f"in-process Engine.answer"
                )

    if args.url:
        if off["dropped_requests"]:
            failures.append(
                f"{off['dropped_requests']} dropped non-rejected request(s)"
            )
        if (
            reference is not None
            and off.get("serving_max_abs_diff", 0.0) != 0.0
        ):
            failures.append(
                f"HTTP answers drifted {off['serving_max_abs_diff']:.3g} "
                f"from in-process Engine.answer"
            )

    args.output.write_text(json.dumps(payload, indent=1))
    print(f"wrote {args.output}")
    if failures and not args.no_enforce:
        for failure in failures:
            print(f"FAIL  {failure}")
        return 1
    print("loadtest: all serving checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
