#!/usr/bin/env python
"""Intra-repo link checker for the project's Markdown docs.

Walks every tracked ``*.md`` file (repo root + ``docs/``, recursively
excluding build/VCS noise) and verifies that each relative Markdown
link — ``[text](target)`` and reference-style ``[label]: target`` —
points at a file or directory that actually exists, resolved against
the file containing the link.  External links (``http://``,
``https://``, ``mailto:``) and pure in-page anchors (``#section``) are
skipped: this gate is about the repo's own files moving or being
renamed, which a network checker would miss and a human reviewer
usually does.

Exit code 0 when every link resolves, 1 with a ``file:line`` listing
of each broken link otherwise — the CI ``docs-check`` job runs exactly
this.  Stdlib only.

Usage::

    python tools/check_docs.py            # check the whole repo
    python tools/check_docs.py README.md docs/SERVING.md
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Directories never scanned for Markdown files.
EXCLUDED_DIRS = {
    ".git",
    ".github",
    "__pycache__",
    ".pytest_cache",
    ".hypothesis",
    "node_modules",
    ".venv",
    "venv",
}

#: Link targets that are not intra-repo file references.
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")

#: ``[text](target)`` — non-greedy text, target up to the closing paren
#: (Markdown titles after a space are stripped separately).
INLINE_LINK = re.compile(r"\[[^\]]*\]\(([^()\s]+(?:\([^()]*\))?)\)")

#: Reference-style definition: ``[label]: target``.
REFERENCE_LINK = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)")

#: Fenced code block delimiters — links inside code are examples, not
#: navigation, and must not be checked.
FENCE = re.compile(r"^\s*(```|~~~)")


def iter_markdown_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        if any(part in EXCLUDED_DIRS for part in path.parts):
            continue
        yield path


def iter_links(text: str):
    """Yield ``(line_number, target)`` for every link outside code fences."""
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        reference = REFERENCE_LINK.match(line)
        if reference:
            yield lineno, reference.group(1)
            continue
        for match in INLINE_LINK.finditer(line):
            yield lineno, match.group(1)


def is_checkable(target: str) -> bool:
    if target.startswith(EXTERNAL_PREFIXES):
        return False
    if target.startswith("#"):  # in-page anchor
        return False
    if target.startswith("<") or "://" in target:
        return False
    return True


def check_file(path: Path) -> list:
    """``(path, lineno, target)`` tuples for every broken link in one file."""
    broken = []
    for lineno, raw_target in iter_links(path.read_text(encoding="utf-8")):
        if not is_checkable(raw_target):
            continue
        target = raw_target.partition("#")[0]  # strip section anchors
        if not target:
            continue
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            broken.append((path, lineno, raw_target))
    return broken


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files", nargs="*", type=Path,
        help="specific Markdown files to check (default: whole repo)",
    )
    parser.add_argument(
        "--root", type=Path, default=REPO_ROOT,
        help="repo root to scan when no files are given",
    )
    args = parser.parse_args(argv)

    files = args.files or list(iter_markdown_files(args.root))
    broken = []
    checked = 0
    for path in files:
        if not path.is_file():
            print(f"FAIL  {path}: no such file")
            broken.append((path, 0, ""))
            continue
        checked += 1
        broken.extend(check_file(path))

    for path, lineno, target in broken:
        if target:
            try:
                shown = path.relative_to(args.root)
            except ValueError:
                shown = path
            print(f"FAIL  {shown}:{lineno}: broken link -> {target}")
    if broken:
        print(f"docs check: {len(broken)} broken link(s) in {checked} file(s)")
        return 1
    print(f"docs check: all intra-repo links resolve ({checked} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
