#!/usr/bin/env python
"""Dense-switch / pruning calibration from measured benchmark artifacts.

``DENSE_SWITCH_FACTOR`` and the ``PRUNE_*`` constants were chosen on one
development machine; the right crossovers depend on the host's BLAS,
memory bandwidth, and core count.  This tool reads the measurements the
query-engine micro-benchmark already records (``BENCH_query_engine.json``
at the repository root) and prints *suggested*
:class:`repro.engine.EngineConfig` threshold overrides for this machine
— as an ``EngineConfig(...)`` call, a CLI ``--engine-config`` string,
and ``REPRO_ENGINE_*`` environment exports.  It never applies anything:
calibration output is a suggestion to a human, not a config mutation.

Model
-----
* **Dense switch.**  The artifact measures the broadcast kernel on a
  ``q × k`` batch (``kernel_seconds``) and the dense prefix-sum route on
  the same batch (``auto_seconds``, recorded when the planner picked
  ``dense``).  The kernel costs ``pair_cost = kernel_seconds / (q·k)``
  per scored pair; the dense route's total is ~flat in ``q`` at this
  scale.  They break even when ``q·k ≈ auto_seconds / pair_cost``, i.e.
  at ``factor* = auto_seconds · q · k / (kernel_seconds · cells)`` times
  the cell count — with a safety margin below that, densifying is a
  measured win.
* **Prune safety factor.**  The small-query case measures the broadcast
  kernel (``broadcast_seconds_small``) against the pruned gather
  (``pruned_seconds_small``) whose touched-pair estimate is
  ``candidate_fraction · q · k + q · overhead``.  The ratio of measured
  per-pair costs (gathered vs contiguous) is exactly what
  ``PRUNE_SAFETY_FACTOR`` models, so the suggestion is that ratio with
  head-room.

Usage::

    PYTHONPATH=src python tools/calibrate.py [--artifact BENCH_query_engine.json]
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

#: The suggested dense switch sits this far below the measured
#: break-even multiple, so the dense route is only taken where it is a
#: clear, not marginal, win (mirrors the conservatism of the shipped
#: default: measured break-even is far above the default factor).
DENSE_HEADROOM = 4.0

#: Head-room multiplier on the measured gathered-vs-contiguous pair-cost
#: ratio (the candidate bound is an over-estimate of *work*, not of
#: *savings*, so the raw ratio is too aggressive).
PRUNE_HEADROOM = 1.5

# The cost model's per-query gather overhead.  Prefer the value the
# artifact itself recorded (so a run measured under an override is
# interpreted with that override), then the live constant; the literal
# fallback only covers running this file standalone without PYTHONPATH.
try:
    from repro.core.interval_index import PRUNE_OVERHEAD_PAIRS
except ImportError:  # pragma: no cover - standalone invocation
    PRUNE_OVERHEAD_PAIRS = 64.0

REQUIRED_DENSE_KEYS = (
    "kernel_seconds", "auto_seconds", "n_queries", "n_partitions", "shape",
)
REQUIRED_PRUNE_KEYS = (
    "broadcast_seconds_small", "pruned_seconds_small",
    "small_query_candidate_fraction", "n_queries", "n_partitions",
)


def suggest(artifact: dict) -> dict:
    """Suggested EngineConfig overrides from one artifact's measurements.

    Returns a dict with any of ``dense_switch_factor`` /
    ``prune_safety_factor`` plus the intermediate evidence under
    ``evidence``.  Series whose inputs are missing are skipped (the
    artifact may predate them).
    """
    out: dict = {"evidence": {}}
    if all(k in artifact for k in REQUIRED_DENSE_KEYS):
        q = float(artifact["n_queries"])
        k = float(artifact["n_partitions"])
        cells = float(math.prod(artifact["shape"]))
        kernel_seconds = float(artifact["kernel_seconds"])
        auto_seconds = float(artifact["auto_seconds"])
        if kernel_seconds > 0 and auto_seconds > 0 and artifact.get(
            "auto_plan", "dense"
        ) == "dense":
            pair_cost = kernel_seconds / (q * k)
            breakeven = auto_seconds / pair_cost / cells
            suggestion = max(1.0, breakeven / DENSE_HEADROOM)
            out["dense_switch_factor"] = round(suggestion, 2)
            out["evidence"]["dense_breakeven_factor"] = round(breakeven, 2)
            out["evidence"]["broadcast_pair_seconds"] = pair_cost
    if all(k in artifact for k in REQUIRED_PRUNE_KEYS):
        q = float(artifact["n_queries"])
        k = float(artifact["n_partitions"])
        broadcast = float(artifact["broadcast_seconds_small"])
        pruned = float(artifact["pruned_seconds_small"])
        fraction = float(artifact["small_query_candidate_fraction"])
        overhead = float(
            artifact.get("prune_overhead_pairs", PRUNE_OVERHEAD_PAIRS)
        )
        est_pairs = fraction * q * k + q * overhead
        if broadcast > 0 and pruned > 0 and est_pairs > 0:
            contiguous_pair = broadcast / (q * k)
            gathered_pair = pruned / est_pairs
            ratio = gathered_pair / contiguous_pair
            out["prune_safety_factor"] = round(
                max(1.0, ratio * PRUNE_HEADROOM), 2
            )
            out["evidence"]["gathered_vs_contiguous_pair_ratio"] = round(
                ratio, 2
            )
    return out


def render(suggestions: dict) -> str:
    """Human-facing report: evidence, then three override spellings."""
    overrides = {
        key: value for key, value in suggestions.items() if key != "evidence"
    }
    lines = []
    for key, value in sorted(suggestions.get("evidence", {}).items()):
        lines.append(f"measured  {key} = {value:g}")
    if not overrides:
        lines.append(
            "no suggestions: artifact lacks the required measurement series"
        )
        return "\n".join(lines)
    kwargs = ", ".join(f"{k}={v:g}" for k, v in sorted(overrides.items()))
    pairs = ",".join(f"{k}={v:g}" for k, v in sorted(overrides.items()))
    lines.append(f"suggested EngineConfig({kwargs})")
    lines.append(f"suggested --engine-config \"{pairs}\"")
    for key, value in sorted(overrides.items()):
        lines.append(f"suggested export REPRO_ENGINE_{key.upper()}={value:g}")
    lines.append(
        "suggestions only — nothing was applied; re-measure with "
        "benchmarks/test_micro_query_engine.py before trusting them"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--artifact",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_query_engine.json",
        help="measured BENCH_query_engine.json (default: repository root)",
    )
    args = parser.parse_args(argv)
    if not args.artifact.is_file():
        print(f"no artifact at {args.artifact}; run the query-engine "
              f"micro-benchmark first", file=sys.stderr)
        return 1
    try:
        artifact = json.loads(args.artifact.read_text())
    except ValueError as exc:
        print(f"unreadable artifact {args.artifact}: {exc}", file=sys.stderr)
        return 1
    if not isinstance(artifact, dict):
        print(f"unreadable artifact {args.artifact}: expected a JSON object",
              file=sys.stderr)
        return 1
    print(render(suggest(artifact)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
