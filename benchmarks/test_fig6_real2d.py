"""Benchmark F6 — paper Figure 6: 2-D city population histograms, all
methods including the IDENTITY / MKM baselines.

Paper shape: IDENTITY and MKM underperform by roughly an order of
magnitude; error falls as query coverage rises and as epsilon rises.
"""

import numpy as np
import pytest

from repro.datagen import CITY_NAMES
from repro.experiments import PAPER_EPSILONS, figure6

from .conftest import assert_decreasing, mre_by_method

WORKLOADS = ("random", "1%", "5%", "10%")


@pytest.fixture(scope="module")
def result(scale):
    return figure6(scale, cities=CITY_NAMES, epsilons=PAPER_EPSILONS, rng=2022)


def test_regenerate_figure6(benchmark, scale):
    small = scale.with_overrides(n_queries=max(50, scale.n_queries // 4))
    benchmark.pedantic(
        lambda: figure6(small, cities=("denver",), epsilons=(0.1,), rng=1),
        rounds=1, iterations=1,
    )


def test_print_panels(result):
    for city in CITY_NAMES:
        for workload in WORKLOADS:
            print()
            print(result.panel("epsilon", "method", city=city,
                               workload=workload))


@pytest.mark.parametrize("city", CITY_NAMES)
def test_baselines_underperform(result, city):
    """Section 6.3: 'the IDENTITY and MKM benchmarks underperform by an
    order of magnitude' (we assert a conservative 3x on small scale)."""
    mres = mre_by_method(result.rows, city=city, workload="1%", epsilon=0.1)
    proposed = min(mres["ebp"], mres["daf_entropy"], mres["daf_homogeneity"])
    assert proposed * 3 <= max(mres["identity"], mres["mkm"])


@pytest.mark.parametrize("city", CITY_NAMES)
def test_error_decreases_with_coverage(result, city, scale):
    """'For all methods, the error decreases when the query range
    increases.'"""
    if scale.city_resolution < 128:
        pytest.skip("1% coverage degenerates to single cells below 128^2")
    series = []
    for workload in ("1%", "5%", "10%"):
        mres = mre_by_method(result.rows, city=city, workload=workload,
                             epsilon=0.3)
        series.append(float(np.mean(list(mres.values()))))
    assert_decreasing(series, f"{city} coverage trend", slack=1.2)


@pytest.mark.parametrize("city", CITY_NAMES)
def test_error_decreases_with_epsilon(result, city):
    """'When increasing the privacy budget, the error of all algorithms
    decreases consistently.'"""
    series = []
    for eps in PAPER_EPSILONS:
        mres = mre_by_method(result.rows, city=city, workload="random",
                             epsilon=eps)
        series.append(float(np.mean(list(mres.values()))))
    assert_decreasing(series, f"{city} epsilon trend", slack=1.2)
