"""Figure/table benchmarks as a package.

The ``__init__.py`` makes ``benchmarks`` importable so the relative
``from .conftest import ...`` statements in the benchmark modules resolve
under plain ``pytest`` collection from the repository root.
"""
