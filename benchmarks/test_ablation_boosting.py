"""Ablation A4 — hierarchical consistency boosting for DAF trees.

An extension beyond the paper: DAF pays budget for every internal node's
count but publishes only the leaves; constrained inference (Hay et al.
2010, generalized to non-uniform fanout/budgets) folds those estimates
back in.  This ablation measures the trade-off at the paper's budgets:
consistency sharpens large-range queries (which aggregate many leaves
and benefit from the coarse levels' information) at some cost on
small/random queries, where redistributing parent residuals perturbs
individually-accurate leaves.
"""

import numpy as np
import pytest

from repro.datagen import get_city
from repro.experiments import MethodSpec, aggregate_rows, pivot, run_methods
from repro.queries import fixed_coverage_workload, random_workload

from .conftest import mre_by_method


@pytest.fixture(scope="module")
def rows(scale):
    matrix = get_city("new_york").population_matrix(
        n_points=scale.n_points, resolution=scale.city_resolution, rng=0
    )
    workloads = [
        random_workload(matrix.shape, scale.n_queries, rng=1, name="random"),
        fixed_coverage_workload(matrix.shape, 0.10, scale.n_queries, rng=2,
                                name="10%"),
    ]
    specs = [
        MethodSpec.of("daf_entropy"),
        MethodSpec.of("daf_entropy", tree_consistency=True),
    ]
    raw = run_methods(matrix, specs, [0.1, 0.3], workloads,
                      n_trials=max(3, scale.n_trials), rng=3)
    return aggregate_rows(raw)


def test_regenerate_ablation(benchmark, rows):
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)


def test_print_table(rows):
    for workload in ("random", "10%"):
        subset = [r for r in rows if r["workload"] == workload]
        print()
        print(pivot(subset, "epsilon", "method",
                    title=f"[A4] DAF consistency boosting, workload={workload}"))


def test_boosting_cost_on_random_queries_bounded(rows):
    """The small-query trade-off must stay bounded."""
    mres = mre_by_method(rows, workload="random")
    plain = mres["daf_entropy"]
    boosted = mres["daf_entropy(tree_consistency=True)"]
    assert boosted <= plain * 2.0


def test_boosting_helps_large_ranges(rows):
    """Large-coverage queries aggregate many leaves: the consistent tree
    must not lose there (it typically wins)."""
    mres = mre_by_method(rows, workload="10%")
    assert mres["daf_entropy(tree_consistency=True)"] <= mres["daf_entropy"] * 1.05
