"""Ablation A3 — DAF stop conditions (paper Section 4.2).

The paper prunes subtrees when the sanitized count falls below a
threshold to 'avoid over-partitioning which can lead to large errors in
higher dimensional frequency matrices'.  This ablation compares never
stopping against threshold variants on a sparse 4-D OD matrix, where the
effect is strongest.
"""

import numpy as np
import pytest

from repro.datagen import get_city, simulate_od_dataset
from repro.experiments import MethodSpec, aggregate_rows, pivot, run_methods
from repro.methods import CountThreshold, DAFEntropy, NeverStop, NoiseAdaptiveThreshold
from repro.queries import WorkloadEvaluator, random_workload


@pytest.fixture(scope="module")
def od_matrix(scale):
    city = get_city("detroit")
    dataset = simulate_od_dataset(city, scale.n_trajectories, n_stops=0, rng=0)
    from repro.trajectories import ODMatrixBuilder
    return ODMatrixBuilder(city.grid, cell_budget=scale.od_cell_budget).build(dataset)


@pytest.fixture(scope="module")
def rows(od_matrix, scale):
    workload = random_workload(od_matrix.shape, scale.n_queries, rng=1)
    evaluator = WorkloadEvaluator(od_matrix)
    conditions = {
        "never": NeverStop(),
        "adaptive_x2": NoiseAdaptiveThreshold(2.0),
        "adaptive_x8": NoiseAdaptiveThreshold(8.0),
        "count_50": CountThreshold(50.0),
    }
    out = []
    for label, cond in conditions.items():
        mres, parts = [], []
        for seed in range(3):
            method = DAFEntropy(stop_condition=cond)
            private = method.sanitize(od_matrix, 0.1, np.random.default_rng(seed))
            mres.append(evaluator.evaluate(
                private, workload).mre)
            parts.append(private.n_partitions)
        out.append({
            "stop": label,
            "epsilon": 0.1,
            "mre": float(np.mean(mres)),
            "n_partitions": float(np.mean(parts)),
        })
    return out


def test_regenerate_ablation(benchmark, rows):
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)


def test_print_table(rows):
    from repro.experiments import format_table
    print()
    print(format_table(rows, ["stop", "mre", "n_partitions"],
                       title="[A3] stop-condition ablation, 4-D OD, eps=0.1"))


def test_stopping_reduces_partitions(rows):
    by_label = {r["stop"]: r for r in rows}
    assert by_label["adaptive_x8"]["n_partitions"] <= by_label["never"]["n_partitions"]


def test_stopping_helps_on_sparse_od(rows):
    """Pruning must not hurt badly — and typically helps — on sparse
    high-dimensional data (the paper's motivation for stop conditions)."""
    by_label = {r["stop"]: r for r in rows}
    best_stopping = min(
        by_label["adaptive_x2"]["mre"],
        by_label["adaptive_x8"]["mre"],
        by_label["count_50"]["mre"],
    )
    assert best_stopping <= by_label["never"]["mre"] * 1.2
