"""Benchmark T3 — paper Table 3: sanitization wall-clock, 2-D, eps = 0.1.

Paper shape: the DAF methods are the fastest because they adapt to the
data and avoid unnecessary splits; everything completes well within the
paper's five-minute bound.
"""

import numpy as np
import pytest

from repro.datagen import CITY_NAMES, get_city
from repro.experiments import table3
from repro.methods import get_sanitizer


@pytest.fixture(scope="module")
def result(scale):
    return table3(scale, cities=CITY_NAMES, epsilon=0.1, rng=2022)


def test_print_table(result):
    print()
    print(result.panel("city", "method", "sanitize_seconds"))


def test_all_methods_fast_enough(result):
    """'In all cases, the proposed techniques complete execution in less
    than five minutes.'"""
    assert all(r["sanitize_seconds"] < 300.0 for r in result.rows)


def test_daf_adapts_and_avoids_splits(result):
    """DAF adapts and avoids splits: it publishes a small fraction of the
    regions the exhaustive grid/identity methods emit.

    Table 3's runtime ordering reflected per-partition work in the
    original implementations.  With the array-backed engine, grid
    sanitization collapses to a reduceat plus one vectorized noise draw,
    so wall-clock now measures engine constants rather than how much a
    method splits; the adaptivity claim is asserted on the published
    partition counts, which scale with the actual sanitization work.
    """
    def mean_partitions(method):
        vals = [r["n_partitions"] for r in result.rows
                if r["method"] == method]
        return float(np.mean(vals))

    daf = np.mean([mean_partitions("daf_entropy"),
                   mean_partitions("daf_homogeneity")])
    grid = np.mean([mean_partitions("identity"), mean_partitions("mkm")])
    assert daf <= grid * 0.1


@pytest.mark.parametrize("method", ["identity", "eug", "ebp", "mkm",
                                    "daf_entropy", "daf_homogeneity"])
def test_sanitize_runtime(benchmark, method, scale):
    """Per-method microbenchmark on one city matrix (the Table 3 cell)."""
    matrix = get_city("denver").population_matrix(
        n_points=scale.n_points, resolution=scale.city_resolution, rng=0
    )
    rng = np.random.default_rng(1)
    benchmark.pedantic(
        lambda: get_sanitizer(method).sanitize(matrix, 0.1, rng),
        rounds=3, iterations=1,
    )
