"""Benchmark T3 — paper Table 3: sanitization wall-clock, 2-D, eps = 0.1.

Paper shape: the DAF methods are the fastest because they adapt to the
data and avoid unnecessary splits; everything completes well within the
paper's five-minute bound.
"""

import numpy as np
import pytest

from repro.datagen import CITY_NAMES, get_city
from repro.experiments import table3
from repro.methods import get_sanitizer


@pytest.fixture(scope="module")
def result(scale):
    return table3(scale, cities=CITY_NAMES, epsilon=0.1, rng=2022)


def test_print_table(result):
    print()
    print(result.panel("city", "method", "sanitize_seconds"))


def test_all_methods_fast_enough(result):
    """'In all cases, the proposed techniques complete execution in less
    than five minutes.'"""
    assert all(r["sanitize_seconds"] < 300.0 for r in result.rows)


def test_daf_faster_than_grid_average(result):
    """DAF adapts and avoids splits: its mean runtime must not exceed the
    mean runtime of the exhaustive grid/identity methods."""
    def mean_time(method):
        vals = [r["sanitize_seconds"] for r in result.rows
                if r["method"] == method]
        return float(np.mean(vals))

    daf = np.mean([mean_time("daf_entropy"), mean_time("daf_homogeneity")])
    grid = np.mean([mean_time("identity"), mean_time("mkm")])
    assert daf <= grid * 2.0


@pytest.mark.parametrize("method", ["identity", "eug", "ebp", "mkm",
                                    "daf_entropy", "daf_homogeneity"])
def test_sanitize_runtime(benchmark, method, scale):
    """Per-method microbenchmark on one city matrix (the Table 3 cell)."""
    matrix = get_city("denver").population_matrix(
        n_points=scale.n_points, resolution=scale.city_resolution, rng=0
    )
    rng = np.random.default_rng(1)
    benchmark.pedantic(
        lambda: get_sanitizer(method).sanitize(matrix, 0.1, rng),
        rounds=3, iterations=1,
    )
