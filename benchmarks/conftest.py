"""Shared configuration for the figure/table benchmarks.

Each benchmark regenerates one paper artifact and prints the series the
paper plots (run with ``-s`` to see the tables).  Absolute numbers depend
on the synthetic substrate; the assertions check the *shape* of each
result — who wins, how trends move — which is what the reproduction
claims (see EXPERIMENTS.md).

Scale is selected with ``REPRO_BENCH_SCALE`` (``tiny`` | ``small`` |
``paper``); the default ``small`` keeps the whole suite at a few minutes
while preserving every qualitative result.
"""

from __future__ import annotations

import os
from typing import Dict, List, Mapping, Sequence

import numpy as np
import pytest

from repro.experiments import get_scale


@pytest.fixture(scope="session")
def scale():
    return get_scale(os.environ.get("REPRO_BENCH_SCALE", "small"))


def usable_cores() -> int:
    """Cores this process may actually run on (affinity-aware).

    Shared by the micro benchmarks that enforce a parallel-speedup floor
    only on wide-enough machines and write a ``skipped_low_cores``
    marker otherwise (``tools/bench_gate.py`` ignores marked entries).
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def mre_by_method(
    rows: Sequence[Mapping[str, object]], **conditions
) -> Dict[str, float]:
    """Mean MRE per method over the rows matching ``conditions``."""
    acc: Dict[str, List[float]] = {}
    for row in rows:
        if all(row.get(k) == v for k, v in conditions.items()):
            acc.setdefault(str(row["method"]), []).append(float(row["mre"]))
    return {m: float(np.mean(v)) for m, v in acc.items()}


def assert_method_beats(
    mres: Mapping[str, float], winner: str, loser: str, factor: float = 1.0
) -> None:
    """Assert ``winner`` has at most ``1/factor`` of ``loser``'s MRE."""
    assert winner in mres and loser in mres, sorted(mres)
    assert mres[winner] * factor <= mres[loser], (
        f"expected {winner} (MRE {mres[winner]:.2f}) to beat {loser} "
        f"(MRE {mres[loser]:.2f}) by factor {factor}"
    )


def assert_decreasing(values: Sequence[float], label: str, slack: float = 1.0) -> None:
    """Assert the sequence trends downward (first > last, with slack)."""
    assert values[0] * slack >= values[-1], (
        f"{label}: expected a decreasing trend, got {list(values)}"
    )
