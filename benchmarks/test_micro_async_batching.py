"""Microbenchmark: async micro-batching amortization and exactness.

Two claims about the :class:`~repro.engine.AsyncBatchEngine` serving
endpoint, measured on the query-engine benchmark substrate:

* **Amortization** — many concurrent clients answered through one
  micro-batched tick must beat the same clients hitting the same
  endpoint one-by-one (``max_batch_size=1``: every request pays its own
  tick — flush machinery plus a full engine invocation) by at least
  ``SPEEDUP_FLOOR`` in amortized per-query latency.  This isolates
  exactly what batching amortizes, is single-threaded (no core-count
  skip marker needed), and is the ``speedup`` series the regression
  gate tracks.  The wall-clock of a plain synchronous ``Engine.answer``
  loop is recorded alongside (``sync_speedup``) as untracked context —
  it mixes endpoint overhead into the baseline, so it is noisier.
* **Exactness** — batched answers must be **bit-identical** to the
  unbatched ones: ``async_max_abs_diff`` is asserted to be exactly 0.0
  (the engine pins the plan, and every kernel's per-query reduction is
  batch-shape-independent), and the gate enforces the recorded value as
  an absolute ceiling.

Results are written to ``BENCH_async_batching.json`` at the repository
root; ``tools/bench_gate.py`` tracks ``speedup`` (relative) and
``async_max_abs_diff`` (absolute) across commits.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

import numpy as np

from repro.core import PLAN_DENSE, PrivateFrequencyMatrix, packed_from_intervals
from repro.engine import (
    AsyncBatchEngine,
    Engine,
    EngineConfig,
    QueryRequest,
    gather_answers,
)
from repro.methods._grid import axis_intervals

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_async_batching.json"

SHAPE = (256, 256)
GRID_M = 64  # 64 x 64 = 4096 partitions
N_CLIENTS = 256
QUERIES_PER_CLIENT = 2
QUERY_EXTENT = 3

#: Enforced floor on the endpoint-vs-endpoint amortization (measured
#: ~3x on the development container; single-threaded, so it holds on
#: narrow machines too).
SPEEDUP_FLOOR = 2.0

#: The serving plan is pinned: determinism lever (bit-identical batched
#: answers) and the route whose per-invocation fixed cost the tick
#: amortizes best at this scale.
PLAN = PLAN_DENSE


def _substrate() -> PrivateFrequencyMatrix:
    rng = np.random.default_rng(0)
    intervals = [axis_intervals(s, GRID_M) for s in SHAPE]
    k = GRID_M * GRID_M
    noisy = rng.poisson(40.0, size=k).astype(float) + rng.laplace(
        0, 2.0, size=k
    )
    packed = packed_from_intervals(intervals, noisy, SHAPE)
    return PrivateFrequencyMatrix.from_packed(packed, method="bench")


def _client_requests(rng) -> list[QueryRequest]:
    requests = []
    for i in range(N_CLIENTS):
        a = rng.integers(0, SHAPE[0], size=(QUERIES_PER_CLIENT, 2))
        b = a + rng.integers(0, QUERY_EXTENT, size=a.shape)
        requests.append(
            QueryRequest(
                np.minimum(a, b).astype(np.int64),
                np.minimum(np.maximum(a, b), np.array(SHAPE) - 1).astype(
                    np.int64
                ),
                workload=f"client-{i}",
            )
        )
    return requests


def _serve(engine: Engine, requests, max_batch_size: int):
    """All clients through one endpoint; returns (answers, seconds, ticks)."""

    async def run():
        batcher = AsyncBatchEngine(
            engine, max_batch_size=max_batch_size, max_batch_latency=30.0
        )
        start = time.perf_counter()
        answers = await gather_answers(batcher, requests)
        elapsed = time.perf_counter() - start
        return answers, elapsed, batcher.stats["ticks"]

    return asyncio.run(run())


def test_async_batching_amortization_and_exactness():
    private = _substrate()
    engine = Engine(private, EngineConfig(plan=PLAN))
    requests = _client_requests(np.random.default_rng(1))
    n_queries = sum(len(r) for r in requests)

    # Warm every cache the routes share (prefix table, kernels).
    for request in requests[:8]:
        engine.answer(request)

    # One-by-one through the endpoint: a tick per request.
    unbatched, unbatched_seconds, unbatched_ticks = _serve(
        engine, requests, max_batch_size=1
    )
    # Micro-batched: every client lands in one tick.
    batched, batched_seconds, batched_ticks = _serve(
        engine, requests, max_batch_size=N_CLIENTS
    )
    # Context series: a synchronous answer loop outside the endpoint.
    start = time.perf_counter()
    sync = [engine.answer(request) for request in requests]
    sync_seconds = time.perf_counter() - start

    async_max_abs_diff = max(
        float(np.abs(u.answers - b.answers).max())
        for u, b in zip(unbatched, batched)
    )
    sync_max_abs_diff = max(
        float(np.abs(s.answers - b.answers).max())
        for s, b in zip(sync, batched)
    )
    speedup = unbatched_seconds / batched_seconds
    sync_speedup = sync_seconds / batched_seconds

    payload = {
        "shape": list(SHAPE),
        "n_partitions": private.n_partitions,
        "n_clients": N_CLIENTS,
        "queries_per_client": QUERIES_PER_CLIENT,
        "n_queries": n_queries,
        "plan": PLAN,
        "unbatched_seconds": unbatched_seconds,
        "unbatched_ticks": unbatched_ticks,
        "batched_seconds": batched_seconds,
        "batched_ticks": batched_ticks,
        "sync_seconds": sync_seconds,
        "unbatched_us_per_query": 1e6 * unbatched_seconds / n_queries,
        "batched_us_per_query": 1e6 * batched_seconds / n_queries,
        "speedup": speedup,
        "sync_speedup": sync_speedup,
        "speedup_floor": SPEEDUP_FLOOR,
        "async_max_abs_diff": async_max_abs_diff,
        "sync_max_abs_diff": sync_max_abs_diff,
    }
    ARTIFACT.write_text(json.dumps(payload, indent=1))
    print(
        f"\n{N_CLIENTS} clients x {QUERIES_PER_CLIENT} queries, plan={PLAN}: "
        f"unbatched {1e3 * unbatched_seconds:.1f}ms ({unbatched_ticks} "
        f"ticks) vs batched {1e3 * batched_seconds:.1f}ms ({batched_ticks} "
        f"tick(s)) -> {speedup:.2f}x (sync loop {sync_speedup:.2f}x); "
        f"drift {async_max_abs_diff:.3g}"
    )

    assert batched_ticks == 1, "all clients must share one tick"
    assert unbatched_ticks == N_CLIENTS
    # The determinism guarantee: exactly zero drift, not 1e-9.
    assert async_max_abs_diff == 0.0
    assert sync_max_abs_diff == 0.0
    assert speedup >= SPEEDUP_FLOOR, (
        f"micro-batching amortized only {speedup:.2f}x "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
