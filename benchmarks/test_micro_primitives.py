"""Microbenchmarks for the substrate primitives.

Not a paper artifact — these watch the building blocks (noise sampling,
prefix sums, grid aggregation, OD construction) so substrate regressions
are visible independently of the figure-level numbers.
"""

import numpy as np
import pytest

from repro.core import FrequencyMatrix, PrefixSumTable
from repro.datagen import get_city, simulate_od_dataset
from repro.dp import laplace_noise
from repro.methods._grid import aggregate_uniform_grid
from repro.queries import random_workload
from repro.trajectories import ODMatrixBuilder


@pytest.fixture(scope="module")
def matrix_256(rng_seed=0):
    rng = np.random.default_rng(0)
    return FrequencyMatrix(rng.poisson(1.0, size=(256, 256)).astype(float))


def test_laplace_noise_1m(benchmark):
    rng = np.random.default_rng(0)
    benchmark(lambda: laplace_noise(1.0, 0.1, rng, size=1_000_000))


def test_prefix_sum_build(benchmark, matrix_256):
    benchmark(lambda: PrefixSumTable(matrix_256.data))


def test_prefix_sum_query_many(benchmark, matrix_256):
    table = PrefixSumTable(matrix_256.data)
    workload = list(random_workload(matrix_256.shape, 1000, rng=1))
    benchmark(lambda: table.query_many(workload))


def test_grid_aggregation(benchmark, matrix_256):
    benchmark(lambda: aggregate_uniform_grid(matrix_256.data, (50, 50)))


def test_city_sampling(benchmark):
    city = get_city("new_york")
    benchmark.pedantic(
        lambda: city.sample_points(100_000, rng=0), rounds=3, iterations=1
    )


def test_od_build(benchmark):
    city = get_city("denver")
    dataset = simulate_od_dataset(city, 30_000, n_stops=0, rng=0)
    builder = ODMatrixBuilder(city.grid, cell_budget=300_000)
    benchmark.pedantic(lambda: builder.build(dataset), rounds=3, iterations=1)


def test_daf_sanitize_1m_cells(benchmark):
    matrix = get_city("new_york").population_matrix(
        n_points=200_000, resolution=512, rng=0
    )
    from repro.methods import DAFEntropy
    rng = np.random.default_rng(1)
    benchmark.pedantic(
        lambda: DAFEntropy().sanitize(matrix, 0.1, rng), rounds=3, iterations=1
    )
