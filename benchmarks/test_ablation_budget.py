"""Ablation A1 — DAF per-level budget allocation: geometric (Eq. 32)
versus uniform.

DESIGN.md calls out the geometric allocation as a load-bearing design
choice: deeper levels (whose leaves are published) must receive more
budget.  This ablation measures both allocations on a city histogram.
"""

import numpy as np
import pytest

from repro.datagen import get_city
from repro.experiments import MethodSpec, aggregate_rows, pivot, run_methods
from repro.queries import random_workload

from .conftest import mre_by_method


@pytest.fixture(scope="module")
def rows(scale):
    matrix = get_city("new_york").population_matrix(
        n_points=scale.n_points, resolution=scale.city_resolution, rng=0
    )
    workload = random_workload(matrix.shape, scale.n_queries, rng=1)
    specs = [
        MethodSpec.of("daf_entropy"),
        MethodSpec.of("daf_entropy", allocation="uniform"),
    ]
    raw = run_methods(matrix, specs, [0.1, 0.3], [workload],
                      n_trials=max(3, scale.n_trials), rng=2)
    return aggregate_rows(raw)


def test_regenerate_ablation(benchmark, scale, rows):
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)


def test_print_table(rows):
    print()
    print(pivot(rows, "epsilon", "method",
                title="[A1] DAF budget allocation ablation (MRE %)"))


def test_geometric_not_worse(rows):
    """The optimal allocation must not lose to the uniform baseline by a
    meaningful margin (averaged over budgets)."""
    mres = mre_by_method(rows)
    geo = mres["daf_entropy"]
    uni = mres["daf_entropy(allocation=uniform)"]
    assert geo <= uni * 1.5
