"""Benchmark F8 — paper Figure 8: 4-D origin-destination matrices built
from (simulated) trajectories for the three cities.

Paper shape: DAF-Entropy has superior accuracy on average, and the DAF
advantage over data-independent grids grows relative to the 2-D setting.
"""

import numpy as np
import pytest

from repro.datagen import CITY_NAMES
from repro.experiments import PAPER_EPSILONS, figure8

from .conftest import mre_by_method


@pytest.fixture(scope="module")
def result(scale):
    return figure8(scale, cities=CITY_NAMES, epsilons=PAPER_EPSILONS,
                   n_stops=0, rng=2022)


def test_regenerate_figure8(benchmark, scale):
    small = scale.with_overrides(
        n_queries=max(50, scale.n_queries // 4),
        n_trajectories=max(2000, scale.n_trajectories // 10),
    )
    benchmark.pedantic(
        lambda: figure8(small, cities=("denver",), epsilons=(0.1,), rng=1),
        rounds=1, iterations=1,
    )


def test_print_panels(result):
    for city in CITY_NAMES:
        for workload in ("random", "1%", "5%", "10%"):
            print()
            print(result.panel("epsilon", "method", city=city,
                               workload=workload))


def test_matrices_are_4d(result):
    assert all(r["od_shape"].count("x") == 3 for r in result.rows)


@pytest.mark.parametrize("city", CITY_NAMES)
def test_daf_competitive_on_od(result, city):
    """DAF methods must be at or near the front on 4-D OD data."""
    mres = mre_by_method(result.rows, city=city, epsilon=0.1)
    daf_best = min(mres["daf_entropy"], mres["daf_homogeneity"])
    others_best = min(mres["eug"], mres["ebp"])
    assert daf_best <= others_best * 2.0


def test_daf_entropy_wins_on_average(result):
    """'DAF-Entropy has superior accuracy on average compared to the other
    techniques' (averaged over cities/workloads/budgets)."""
    mres = mre_by_method(result.rows)
    assert mres["daf_entropy"] <= min(mres["eug"], mres["ebp"]) * 1.5


@pytest.fixture(scope="module")
def result_6d(scale):
    """6-D variant: one intermediate stop per trip (reduced size — the
    paper's 'matrix dimension count increases' construction)."""
    reduced = scale.with_overrides(
        n_trajectories=max(2000, scale.n_trajectories // 3),
        n_queries=max(50, scale.n_queries // 2),
    )
    return figure8(reduced, cities=("new_york",), epsilons=(0.1,),
                   n_stops=1, rng=2022)


def test_6d_matrices_built(result_6d):
    assert all(r["od_shape"].count("x") == 5 for r in result_6d.rows)


def test_daf_leads_in_6d(result_6d):
    """The DAF advantage must persist (typically grow) at 6-D."""
    mres = mre_by_method(result_6d.rows, epsilon=0.1)
    daf_best = min(mres["daf_entropy"], mres["daf_homogeneity"])
    assert daf_best <= min(mres["eug"], mres["ebp"]) * 1.5
