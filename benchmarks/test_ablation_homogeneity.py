"""Ablation A2 — DAF-Homogeneity knobs: the partitioning-budget ratio q
(paper Eq. 20, set to 0.3), the candidate count p, and the candidate-score
noise mode (the DESIGN.md substitution).
"""

import numpy as np
import pytest

from repro.datagen import get_city
from repro.experiments import MethodSpec, aggregate_rows, pivot, run_methods
from repro.queries import random_workload

from .conftest import mre_by_method


@pytest.fixture(scope="module")
def setup(scale):
    matrix = get_city("denver").population_matrix(
        n_points=scale.n_points, resolution=scale.city_resolution, rng=0
    )
    workload = random_workload(matrix.shape, scale.n_queries, rng=1)
    return matrix, workload


@pytest.fixture(scope="module")
def q_rows(setup, scale):
    matrix, workload = setup
    specs = [MethodSpec.of("daf_homogeneity", q=q) for q in (0.1, 0.3, 0.6)]
    return aggregate_rows(run_methods(
        matrix, specs, [0.1], [workload],
        n_trials=max(3, scale.n_trials), rng=2,
    ))


@pytest.fixture(scope="module")
def noise_rows(setup, scale):
    matrix, workload = setup
    specs = [
        MethodSpec.of("daf_homogeneity", split_noise=mode)
        for mode in ("noisy_min", "composed", "paper")
    ]
    return aggregate_rows(run_methods(
        matrix, specs, [0.1], [workload],
        n_trials=max(3, scale.n_trials), rng=3,
    ))


def test_regenerate_ablation(benchmark, q_rows):
    benchmark.pedantic(lambda: q_rows, rounds=1, iterations=1)


def test_print_tables(q_rows, noise_rows):
    print()
    print(pivot(q_rows, "epsilon", "method",
                title="[A2] q sweep (MRE %)"))
    print()
    print(pivot(noise_rows, "epsilon", "method",
                title="[A2] split-noise mode (MRE %)"))


def test_all_q_values_functional(q_rows):
    assert len(q_rows) == 3
    assert all(np.isfinite(r["mre"]) for r in q_rows)


def test_moderate_q_reasonable(q_rows):
    """The paper's q = 0.3 should not be dominated by the extremes by a
    large margin (it was chosen experimentally)."""
    mres = mre_by_method(q_rows)
    q03 = mres["daf_homogeneity(q=0.3)"]
    assert q03 <= 2.0 * min(mres.values())


def test_noisy_min_not_dominated(noise_rows):
    """The DP-correct default must stay competitive with the paper's
    literal (non-composing) formula."""
    mres = mre_by_method(noise_rows)
    assert mres["daf_homogeneity(split_noise=noisy_min)"] <= 2.0 * min(mres.values())
