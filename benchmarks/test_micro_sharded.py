"""Microbenchmark: sharded evaluation on the resident worker pool.

Two claims, measured on the same fixed substrate style as the other
micro benchmarks (scale presets size the figure reproductions, not
these):

* **Skip exactness** — on a batch of corner-confined queries most
  shards' candidate bounds are empty; those shards must skip the gather
  (observable skip counter) and the merged answers must still match the
  one-node broadcast kernel within 1e-9.
* **Resident amortized speedup** — the headline.  A
  :class:`~repro.engine.ShardWorkerPool` is spawned **once** (workers
  attach shared-memory shards; the spawn cost is recorded separately)
  and then answers ``R`` rounds of batches; the amortized per-round
  time must beat serial shard evaluation by a hard floor, but only on
  a machine with at least ``N_SHARDS`` usable cores.  On narrower
  machines the artifact carries a ``skipped_low_cores`` marker and *no*
  speedup record (same policy as the parallel-trials bench: four
  workers sharing one core measure the machine, not the code, and a
  sub-1x record would only trip the regression gate).  This replaces
  the old per-call process-pool measurement, whose spawn + shard
  pickling costs were paid on *every* batch and swamped the kernels.

Pool answers must be **bit-identical** to serial sharded evaluation
(the workers read the very same shard arrays through shm and the merge
order is fixed), so ``resident_max_abs_diff`` is asserted at exactly
0.0 — not a tolerance — on every machine.

Results are written to ``BENCH_sharded.json`` at the repository root;
``tools/bench_gate.py`` tracks ``speedup`` (relative, skip-aware) and
the ``sharded_max_abs_diff`` / ``resident_max_abs_diff`` absolute
ceilings across commits.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core import PLAN_BROADCAST, PrivateFrequencyMatrix, packed_from_intervals
from repro.engine import Engine, EngineConfig
from repro.methods._grid import axis_intervals

from .conftest import usable_cores

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_sharded.json"

SHAPE = (512, 512)
GRID_M = 96  # 96 x 96 = 9216 partitions
N_QUERIES = 8_000
N_SHARDS = 4
ROUNDS = 6  # resident rounds the one-time spawn is amortized over
SKIP_SHARDS = 8
SKIP_QUERIES = 1_000

#: The headline target, recorded in the artifact.
SPEEDUP_TARGET = 2.0
#: The hard floor asserted when >= N_SHARDS cores are usable.
#: Deliberately conservative: the per-shard work is NumPy broadcasting,
#: which is partly memory-bandwidth-bound, so SMT "cores" help less
#: than they do for the Python-heavy sanitizers.
SPEEDUP_FLOOR = 1.3


def _substrate() -> PrivateFrequencyMatrix:
    rng = np.random.default_rng(0)
    intervals = [axis_intervals(s, GRID_M) for s in SHAPE]
    k = GRID_M * GRID_M
    noisy = rng.poisson(40.0, size=k).astype(float) + rng.laplace(
        0, 2.0, size=k
    )
    packed = packed_from_intervals(intervals, noisy, SHAPE)
    return PrivateFrequencyMatrix.from_packed(packed, method="bench")


def _round_batches(rng: np.random.Generator):
    """``ROUNDS`` distinct mixed-size query batches (fixed seeds)."""
    batches = []
    for _ in range(ROUNDS):
        a = rng.integers(0, SHAPE[0], size=(N_QUERIES, 2))
        b = rng.integers(0, SHAPE[0], size=(N_QUERIES, 2))
        batches.append(
            (np.minimum(a, b).astype(np.int64),
             np.maximum(a, b).astype(np.int64))
        )
    return batches


def test_sharded_skip_exactness_and_resident_speedup():
    private = _substrate()
    packed = private.packed
    rng = np.random.default_rng(1)

    # --- Skip claim: corner-confined small queries -------------------
    skip_lows = np.stack(
        [
            rng.integers(0, SHAPE[0] // SKIP_SHARDS, size=SKIP_QUERIES),
            rng.integers(0, SHAPE[1] - 4, size=SKIP_QUERIES),
        ],
        axis=1,
    ).astype(np.int64)
    skip_highs = skip_lows + rng.integers(0, 4, size=skip_lows.shape)
    skip_highs = np.minimum(
        skip_highs, np.array([SHAPE[0] // SKIP_SHARDS - 1, SHAPE[1] - 1])
    )
    skip_result = Engine(
        private, EngineConfig(n_shards=SKIP_SHARDS)
    ).answer_sharded(skip_lows, skip_highs)
    skip_broadcast = packed.answer_many_arrays(
        skip_lows, skip_highs, plan=PLAN_BROADCAST
    )
    skip_rate = skip_result.skip_rate
    skip_diff = float(np.abs(skip_result.answers - skip_broadcast).max())

    # --- Headline: resident pool amortized over ROUNDS ---------------
    batches = _round_batches(rng)
    serial_engine = Engine(
        private, EngineConfig(n_shards=N_SHARDS, shard_executor="serial")
    )
    resident_engine = Engine(
        private, EngineConfig(n_shards=N_SHARDS, shard_executor="resident")
    )
    # Warm the serial path's per-shard index caches; the resident pool
    # shares them (the shm layout is copied out of the same cached
    # split), so neither side's measurement pays the index build.
    serial_engine.answer_sharded(*batches[0])

    start = time.perf_counter()
    serial_rounds = [
        serial_engine.answer_sharded(lows, highs) for lows, highs in batches
    ]
    serial_seconds = time.perf_counter() - start

    # Spawn once — workers attach the shm segment and stay resident.
    # The spawn is *outside* the round timing (that is the amortized
    # claim) but recorded in the artifact so its cost stays visible.
    start = time.perf_counter()
    resident_engine.warm_shard_pool()
    spawn_seconds = time.perf_counter() - start
    try:
        start = time.perf_counter()
        resident_rounds = [
            resident_engine.answer_sharded(lows, highs)
            for lows, highs in batches
        ]
        resident_seconds = time.perf_counter() - start
        pool_stats = resident_engine.pool_stats()
    finally:
        resident_engine.close()

    broadcast = packed.answer_many_arrays(
        *batches[0], plan=PLAN_BROADCAST
    )
    merged_diff = float(
        np.abs(serial_rounds[0].answers - broadcast).max()
    )
    sharded_max_abs_diff = max(skip_diff, merged_diff)
    # Pool vs serial is bit-identity, not a tolerance: same shard
    # arrays (via shm), same per-shard kernels, same fixed merge order.
    resident_max_abs_diff = max(
        float(np.abs(r.answers - s.answers).max()) if r.answers.size else 0.0
        for r, s in zip(resident_rounds, serial_rounds)
    )

    speedup = serial_seconds / resident_seconds
    cores = usable_cores()
    threshold_enforced = cores >= N_SHARDS

    payload = {
        "shape": list(SHAPE),
        "n_partitions": packed.n_partitions,
        "n_queries": N_QUERIES,
        "n_shards": N_SHARDS,
        "rounds": ROUNDS,
        "usable_cores": cores,
        "skip_n_shards": SKIP_SHARDS,
        "skip_n_queries": SKIP_QUERIES,
        "skipped_shards": skip_result.skipped_shards,
        "skip_rate": skip_rate,
        "sharded_max_abs_diff": sharded_max_abs_diff,
        "resident_max_abs_diff": resident_max_abs_diff,
        "serial_seconds": serial_seconds,
        "resident_seconds": resident_seconds,
        "spawn_seconds": spawn_seconds,
        "worker_restarts": pool_stats["restarts"],
        "segment_bytes": pool_stats["segment_bytes"],
        "speedup_target": SPEEDUP_TARGET,
        "speedup_floor": SPEEDUP_FLOOR,
        "floor_enforced": threshold_enforced,
        "skipped_low_cores": not threshold_enforced,
    }
    if threshold_enforced:
        # Only a machine with enough cores measures a meaningful
        # speedup; see the module docstring.
        payload["speedup"] = speedup
        payload["meets_target"] = speedup >= SPEEDUP_TARGET
    ARTIFACT.write_text(json.dumps(payload, indent=1))
    print(
        f"\nskip rate {skip_rate:.2f} ({skip_result.skipped_shards}/"
        f"{SKIP_SHARDS} shards), max |sharded - broadcast| "
        f"{sharded_max_abs_diff:.3g}, max |resident - serial| "
        f"{resident_max_abs_diff:.3g}; serial {serial_seconds:.2f}s, "
        f"resident({N_SHARDS} workers, spawn {spawn_seconds:.2f}s) "
        f"{resident_seconds:.2f}s over {ROUNDS} rounds -> "
        f"{speedup:.2f}x on {cores} core(s)"
        + ("" if threshold_enforced else " [skipped_low_cores]")
    )

    # The exactness and skip claims hold on any machine.
    assert skip_result.skipped_shards > 0, "corner queries skipped no shard"
    assert skip_rate >= 0.5, f"expected most shards to skip, got {skip_rate}"
    assert sharded_max_abs_diff <= 1e-9
    assert resident_max_abs_diff == 0.0, (
        f"resident pool diverged from serial by {resident_max_abs_diff:.3g}"
    )
    assert pool_stats["restarts"] == 0, "workers crashed during the bench"
    for r, s in zip(resident_rounds, serial_rounds):
        assert r.plans == s.plans and r.bounds == s.bounds
    if threshold_enforced:
        assert speedup >= SPEEDUP_FLOOR, (
            f"resident fan-out only {speedup:.2f}x over {ROUNDS} rounds "
            f"with {N_SHARDS} workers on {cores} cores"
        )
