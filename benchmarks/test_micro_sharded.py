"""Microbenchmark: sharded partition-axis evaluation.

Two claims, measured on the same fixed substrate style as the other
micro benchmarks (scale presets size the figure reproductions, not
these):

* **Skip exactness** — on a batch of corner-confined queries most
  shards' candidate bounds are empty; those shards must skip the gather
  (observable skip counter) and the merged answers must still match the
  one-node broadcast kernel within 1e-9.
* **Fan-out speedup** — computing the per-shard partials across a
  4-worker process pool must beat serial shard evaluation by a hard
  floor, but only on a machine with at least 4 usable cores.  On
  narrower machines the artifact carries a ``skipped_low_cores`` marker
  and *no* speedup record (same policy as the parallel-trials bench:
  four workers sharing one core measure the machine, not the code, and
  a sub-1x record would only trip the regression gate).

Results are written to ``BENCH_sharded.json`` at the repository root;
``tools/bench_gate.py`` tracks ``speedup`` (relative, skip-aware) and
``sharded_max_abs_diff`` (absolute ceiling) across commits.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core import PLAN_BROADCAST, PrivateFrequencyMatrix, packed_from_intervals
from repro.engine import Engine, EngineConfig
from repro.experiments.parallel import ProcessPoolTrialExecutor
from repro.methods._grid import axis_intervals

from .conftest import usable_cores

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_sharded.json"

SHAPE = (512, 512)
GRID_M = 96  # 96 x 96 = 9216 partitions
N_QUERIES = 8_000
N_SHARDS = 4
N_JOBS = 4
SKIP_SHARDS = 8
SKIP_QUERIES = 1_000

#: The headline target, recorded in the artifact.
SPEEDUP_TARGET = 2.0
#: The hard floor asserted when >= 4 cores are usable.  Deliberately
#: conservative: the per-shard work is NumPy broadcasting, which is
#: partly memory-bandwidth-bound, so SMT "cores" help less than they do
#: for the Python-heavy sanitizers.
SPEEDUP_FLOOR = 1.3


def _substrate() -> PrivateFrequencyMatrix:
    rng = np.random.default_rng(0)
    intervals = [axis_intervals(s, GRID_M) for s in SHAPE]
    k = GRID_M * GRID_M
    noisy = rng.poisson(40.0, size=k).astype(float) + rng.laplace(
        0, 2.0, size=k
    )
    packed = packed_from_intervals(intervals, noisy, SHAPE)
    return PrivateFrequencyMatrix.from_packed(packed, method="bench")


def test_sharded_skip_exactness_and_speedup():
    private = _substrate()
    packed = private.packed
    rng = np.random.default_rng(1)

    # --- Skip claim: corner-confined small queries -------------------
    skip_lows = np.stack(
        [
            rng.integers(0, SHAPE[0] // SKIP_SHARDS, size=SKIP_QUERIES),
            rng.integers(0, SHAPE[1] - 4, size=SKIP_QUERIES),
        ],
        axis=1,
    ).astype(np.int64)
    skip_highs = skip_lows + rng.integers(0, 4, size=skip_lows.shape)
    skip_highs = np.minimum(
        skip_highs, np.array([SHAPE[0] // SKIP_SHARDS - 1, SHAPE[1] - 1])
    )
    skip_result = Engine(
        private, EngineConfig(n_shards=SKIP_SHARDS)
    ).answer_sharded(skip_lows, skip_highs)
    skip_broadcast = packed.answer_many_arrays(
        skip_lows, skip_highs, plan=PLAN_BROADCAST
    )
    skip_rate = skip_result.skip_rate
    skip_diff = float(np.abs(skip_result.answers - skip_broadcast).max())

    # --- Speedup claim: whole-batch fan-out over mixed queries -------
    a = rng.integers(0, SHAPE[0], size=(N_QUERIES, 2))
    b = rng.integers(0, SHAPE[0], size=(N_QUERIES, 2))
    lows = np.minimum(a, b).astype(np.int64)
    highs = np.maximum(a, b).astype(np.int64)

    pool = ProcessPoolTrialExecutor(N_JOBS)
    serial_engine = Engine(private, EngineConfig(n_shards=N_SHARDS))
    pooled_engine = Engine(
        private, EngineConfig(n_shards=N_SHARDS, shard_executor=pool)
    )
    # Warm both paths (per-shard index builds, worker pool import cost
    # is per-call and stays in the measurement — that is the real cost a
    # caller pays — but the index caches should not be).
    serial_warm = serial_engine.answer_sharded(lows, highs)

    start = time.perf_counter()
    serial = serial_engine.answer_sharded(lows, highs)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    pooled = pooled_engine.answer_sharded(lows, highs)
    parallel_seconds = time.perf_counter() - start

    broadcast = packed.answer_many_arrays(lows, highs, plan=PLAN_BROADCAST)
    merged_diff = float(np.abs(serial.answers - broadcast).max())
    pooled_diff = float(np.abs(pooled.answers - serial.answers).max())
    sharded_max_abs_diff = max(skip_diff, merged_diff, pooled_diff)

    speedup = serial_seconds / parallel_seconds
    cores = usable_cores()
    threshold_enforced = cores >= N_JOBS

    payload = {
        "shape": list(SHAPE),
        "n_partitions": packed.n_partitions,
        "n_queries": N_QUERIES,
        "n_shards": N_SHARDS,
        "n_jobs": N_JOBS,
        "usable_cores": cores,
        "skip_n_shards": SKIP_SHARDS,
        "skip_n_queries": SKIP_QUERIES,
        "skipped_shards": skip_result.skipped_shards,
        "skip_rate": skip_rate,
        "sharded_max_abs_diff": sharded_max_abs_diff,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup_target": SPEEDUP_TARGET,
        "speedup_floor": SPEEDUP_FLOOR,
        "floor_enforced": threshold_enforced,
        "skipped_low_cores": not threshold_enforced,
    }
    if threshold_enforced:
        # Only a machine with enough cores measures a meaningful
        # speedup; see the module docstring.
        payload["speedup"] = speedup
        payload["meets_target"] = speedup >= SPEEDUP_TARGET
    ARTIFACT.write_text(json.dumps(payload, indent=1))
    print(
        f"\nskip rate {skip_rate:.2f} ({skip_result.skipped_shards}/"
        f"{SKIP_SHARDS} shards), max |sharded - broadcast| "
        f"{sharded_max_abs_diff:.3g}; serial {serial_seconds:.2f}s, "
        f"pool({N_JOBS}) {parallel_seconds:.2f}s -> {speedup:.2f}x on "
        f"{cores} core(s)"
        + ("" if threshold_enforced else " [skipped_low_cores]")
    )

    # The exactness and skip claims hold on any machine.
    assert skip_result.skipped_shards > 0, "corner queries skipped no shard"
    assert skip_rate >= 0.5, f"expected most shards to skip, got {skip_rate}"
    assert sharded_max_abs_diff <= 1e-9
    assert serial_warm.plans == serial.plans
    if threshold_enforced:
        assert speedup >= SPEEDUP_FLOOR, (
            f"sharded fan-out only {speedup:.2f}x at n_jobs={N_JOBS} "
            f"on {cores} cores"
        )
