"""Benchmark F7 — paper Figure 7: the Figure 6 setting restricted to the
proposed methods (EUG, EBP, DAF-Entropy, DAF-Homogeneity), linear scale.

Paper shape: EUG is the weakest of the four overall; EBP is strong in 2-D
(it wins Detroit and New York; Denver is close between EBP and DAF).
"""

import numpy as np
import pytest

from repro.datagen import CITY_NAMES
from repro.experiments import PAPER_EPSILONS, figure7

from .conftest import mre_by_method


@pytest.fixture(scope="module")
def result(scale):
    return figure7(scale, cities=CITY_NAMES, epsilons=PAPER_EPSILONS, rng=2022)


def test_regenerate_figure7(benchmark, scale):
    small = scale.with_overrides(n_queries=max(50, scale.n_queries // 4))
    benchmark.pedantic(
        lambda: figure7(small, cities=("new_york",), epsilons=(0.1,), rng=1),
        rounds=1, iterations=1,
    )


def test_print_panels(result):
    for city in CITY_NAMES:
        for workload in ("random", "1%", "5%", "10%"):
            print()
            print(result.panel("epsilon", "method", city=city,
                               workload=workload))


def test_only_proposed_methods_present(result):
    methods = {r["method"] for r in result.rows}
    assert methods == {"eug", "ebp", "daf_entropy", "daf_homogeneity"}


@pytest.mark.parametrize("city", CITY_NAMES)
def test_eug_weakest_overall(result, city):
    """'The EUG algorithm results in poorer accuracy overall.'"""
    per_method = mre_by_method(result.rows, city=city)
    best_other = min(v for k, v in per_method.items() if k != "eug")
    assert best_other <= per_method["eug"]


def test_ebp_competitive_in_2d(result):
    """EBP wins or ties the 2-D comparison on at least one city
    (the paper reports wins on Detroit and New York)."""
    wins = 0
    for city in CITY_NAMES:
        per_method = mre_by_method(result.rows, city=city)
        if per_method["ebp"] <= min(per_method.values()) * 1.3:
            wins += 1
    assert wins >= 1
