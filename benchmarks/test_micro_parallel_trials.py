"""Microbenchmark: serial vs. process-parallel trial execution.

A 4-trial grid (one method, one epsilon, four trials) is run twice
through :func:`~repro.experiments.run_methods` — ``n_jobs=1`` and
``n_jobs=4`` — with the same seed.  The parallel run must reproduce the
serial rows bit-for-bit (the equivalence the test harness licenses) and,
on a machine with at least 4 usable cores, beat serial by a hard floor
(the 2x target is recorded in the artifact; the floor tolerates
SMT-sharing runners).  On narrower machines the artifact carries a
``skipped_low_cores`` marker and *no* speedup record — four workers
sharing one core cannot beat one worker, and that is a fact about the
machine, not the executor, so recording a sub-1x "speedup" there would
only trip downstream regression gates (``tools/bench_gate.py`` ignores
skipped entries).

Results are written to ``BENCH_parallel_trials.json`` at the repository
root so the speedup trajectory (and the core count it was measured on)
is visible across commits.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.datagen import gaussian_matrix
from repro.experiments import default_method_specs, run_methods
from repro.queries import random_workload

from .conftest import usable_cores

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_parallel_trials.json"

#: The 4-trial grid of the acceptance criterion.
N_TRIALS = 4
N_JOBS = 4
#: The headline target, recorded in the artifact.
SPEEDUP_TARGET = 2.0
#: The hard floor asserted when >= 4 cores are usable.  Deliberately
#: below the target: 4 "cores" on CI runners are often 2 physical cores
#: with SMT, where 4 CPU-bound workers cannot reach a true 2x.
SPEEDUP_FLOOR = 1.5

#: The slowest single sanitizer in the suite, so each trial carries
#: enough work for process startup to amortize.  Like the query-engine
#: microbenchmark, the substrate is fixed (scale presets size the figure
#: reproductions, not the micro measurements).
METHOD = "daf_homogeneity"
EPSILON = 0.2
RESOLUTION = 2048
N_POINTS = 1_000_000
N_QUERIES = 500


def _comparable(row):
    d = row.as_dict()
    d.pop("sanitize_seconds")
    d.pop("query_seconds")
    return d


def test_parallel_trials_speedup():
    matrix = gaussian_matrix(
        2, (RESOLUTION / 8.0) ** 2, N_POINTS, rng=0,
        shape=(RESOLUTION, RESOLUTION),
    )
    workload = random_workload(matrix.shape, N_QUERIES, rng=1)
    specs = default_method_specs([METHOD])

    start = time.perf_counter()
    serial_rows = run_methods(
        matrix, specs, [EPSILON], [workload],
        n_trials=N_TRIALS, rng=2022, n_jobs=1,
    )
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel_rows = run_methods(
        matrix, specs, [EPSILON], [workload],
        n_trials=N_TRIALS, rng=2022, n_jobs=N_JOBS,
    )
    parallel_seconds = time.perf_counter() - start

    rows_identical = [_comparable(r) for r in serial_rows] == [
        _comparable(r) for r in parallel_rows
    ]
    speedup = serial_seconds / parallel_seconds
    cores = usable_cores()
    threshold_enforced = cores >= N_JOBS

    payload = {
        "method": METHOD,
        "shape": [RESOLUTION, RESOLUTION],
        "n_points": N_POINTS,
        "n_queries": N_QUERIES,
        "n_trials": N_TRIALS,
        "n_jobs": N_JOBS,
        "usable_cores": cores,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup_target": SPEEDUP_TARGET,
        "speedup_floor": SPEEDUP_FLOOR,
        "floor_enforced": threshold_enforced,
        "skipped_low_cores": not threshold_enforced,
        "rows_identical": rows_identical,
    }
    if threshold_enforced:
        # Only a machine with enough cores measures a meaningful speedup;
        # on narrower machines the record would just say the machine is
        # narrow, and downstream gates would read it as a regression.
        payload["speedup"] = speedup
        payload["meets_target"] = speedup >= SPEEDUP_TARGET
    ARTIFACT.write_text(json.dumps(payload, indent=1))
    print(
        f"\nserial {serial_seconds:.2f}s, parallel({N_JOBS}) "
        f"{parallel_seconds:.2f}s -> {speedup:.2f}x on {cores} core(s)"
        + ("" if threshold_enforced else " [skipped_low_cores]")
    )

    assert rows_identical, "parallel rows diverged from serial"
    if threshold_enforced:
        assert speedup >= SPEEDUP_FLOOR, (
            f"only {speedup:.2f}x at n_jobs={N_JOBS} on {cores} cores"
        )
