"""Benchmark F3 — paper Figure 3: the partitioning-intuition visualization.

The paper renders a Los Angeles heat map (500 k Veraset points) overlaid
with the level-1 (green) and level-2 (yellow) DAF cuts, versus the uniform
grid of non-adaptive methods.  We regenerate the three panels as ASCII and
assert the *adaptivity* they illustrate: DAF places more cuts where the
density is, while the non-adaptive grid spaces cuts evenly.
"""

import numpy as np
import pytest

from repro.datagen import los_angeles_like
from repro.methods import DAFEntropy, DAFHomogeneity, EBP, NeverStop
from repro.viz import ascii_partition_overlay, render_grid_partitioning


@pytest.fixture(scope="module")
def city_matrix(scale):
    # The paper samples 500 k points for this figure; scale accordingly.
    n = min(500_000, scale.n_points)
    return los_angeles_like().population_matrix(
        n_points=n, resolution=scale.city_resolution, rng=3
    )


def test_regenerate_figure3(benchmark, city_matrix):
    def build():
        method = DAFEntropy()
        private = method.sanitize(city_matrix, 0.1, rng=0)
        return ascii_partition_overlay(
            city_matrix, private.metadata["split_tree"], rows=24, cols=48
        )
    text = benchmark.pedantic(build, rounds=1, iterations=1)
    assert "|" in text


def test_print_three_panels(city_matrix):
    print("\n(a) Non-adaptive uniform grid")
    ebp = EBP().sanitize(city_matrix, 0.1, rng=0)
    print(render_grid_partitioning(city_matrix.shape, int(ebp.metadata["m"]),
                                   rows=20, cols=40))
    for label, method in (
        ("(b) DAF-Entropy", DAFEntropy()),
        ("(c) DAF-Homogeneity", DAFHomogeneity()),
    ):
        private = method.sanitize(city_matrix, 0.1, rng=0)
        print(f"\n{label}")
        print(ascii_partition_overlay(
            city_matrix, private.metadata["split_tree"], rows=20, cols=40
        ))


def test_daf_cuts_concentrate_on_density(city_matrix):
    """Adaptive check: level-2 fanouts must vary across level-1 slabs and
    correlate with slab population — the essence of Fig. 3b/3c."""
    method = DAFEntropy(stop_condition=NeverStop())
    method.sanitize(city_matrix, 0.1, rng=0)
    root = method.tree_
    slabs = root.children
    fanouts = np.array([len(c.children) for c in slabs], dtype=float)
    masses = np.array([c.count for c in slabs])
    assert fanouts.std() > 0, "level-2 fanout never varies: not adaptive"
    dense_fanout = fanouts[masses >= np.median(masses)].mean()
    sparse_fanout = fanouts[masses < np.median(masses)].mean()
    assert dense_fanout >= sparse_fanout


def test_uniform_grid_is_not_adaptive(city_matrix):
    """Contrast: EBP slices every dimension evenly regardless of data."""
    private = EBP().sanitize(city_matrix, 0.1, rng=0)
    widths = {p.box[0][1] - p.box[0][0] for p in private.partitions}
    assert len(widths) <= 2  # near-equal interval widths only
