"""Benchmark F4 — paper Figure 4: Gaussian synthetic, d in {2,4,6},
eps in {0.1, 0.3, 0.5}, random shape-and-size queries.

Paper shape to reproduce: the proposed approaches (EBP, DAF) clearly beat
IDENTITY/MKM; DAF's advantage grows with dimensionality; error falls as
epsilon rises.
"""

import numpy as np
import pytest

from repro.experiments import PAPER_EPSILONS, figure4

from .conftest import assert_decreasing, assert_method_beats, mre_by_method

DIMS = (2, 4, 6)
SKEWS = (0.05, 0.1, 0.25)


@pytest.fixture(scope="module")
def result(scale):
    return figure4(
        scale, dims=DIMS, epsilons=PAPER_EPSILONS, skew_fractions=SKEWS,
        rng=2022,
    )


def test_regenerate_figure4(benchmark, scale):
    small = scale.with_overrides(n_queries=max(50, scale.n_queries // 4))
    benchmark.pedantic(
        lambda: figure4(small, dims=(2,), epsilons=(0.1,),
                        skew_fractions=(0.1,), rng=1),
        rounds=1, iterations=1,
    )


def test_print_panels(result):
    for d in DIMS:
        for eps in PAPER_EPSILONS:
            print()
            print(result.panel("skew_fraction", "method", d=d, epsilon=eps))


@pytest.mark.parametrize("d", DIMS)
def test_adaptive_beats_identity(result, d):
    mres = mre_by_method(result.rows, d=d, epsilon=0.1)
    best_adaptive = min(mres["ebp"], mres["daf_entropy"])
    assert best_adaptive < mres["identity"]


@pytest.mark.parametrize("d", (4, 6))
def test_daf_strong_in_high_dimensions(result, d):
    """Section 6.2: 'the superior performance of the DAF framework becomes
    more evident in higher dimensions'."""
    mres = mre_by_method(result.rows, d=d, epsilon=0.1)
    daf_best = min(mres["daf_entropy"], mres["daf_homogeneity"])
    assert daf_best < mres["identity"]
    assert daf_best < mres["mkm"]


def test_error_decreases_with_epsilon(result):
    series = []
    for eps in PAPER_EPSILONS:
        mres = mre_by_method(result.rows, d=2, epsilon=eps)
        series.append(float(np.mean(list(mres.values()))))
    assert_decreasing(series, "figure4 eps trend")


def test_mkm_tracks_identity(result):
    """The paper observes MKM saturates to per-cell granularity on 2-D and
    performs like IDENTITY."""
    mres = mre_by_method(result.rows, d=2, epsilon=0.1)
    assert mres["mkm"] > min(mres["ebp"], mres["daf_entropy"])
