"""Microbenchmark: scalar vs. vectorized partition query answering.

The tentpole claim of the packed query engine: answering a 10k-query
workload against a partitioned 256x256 matrix must be at least 10x faster
than the scalar reference loop, with identical answers (within 1e-9).
The scalar loop costs one Python call per (query, partition) pair, so it
is timed on a query subsample and compared per-query; the vectorized
engines are timed on the full workload.

The planner claim rides on the same substrate: for a 10k batch of
*small* queries (a few cells per axis) the interval-index pruned gather
must beat the full tiled broadcast kernel by at least 3x with answers
matching within 1e-9, and the planner must pick it unprompted.

Results are written to ``BENCH_query_engine.json`` at the repository root
so the speedup trajectory is visible across commits;
``tools/bench_gate.py`` fails CI when the recorded speedups regress.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import (
    PLAN_BROADCAST,
    PLAN_PRUNED,
    PrivateFrequencyMatrix,
    boxes_to_arrays,
    packed_from_intervals,
)
from repro.core.interval_index import PRUNE_OVERHEAD_PAIRS
from repro.engine import Engine, QueryRequest
from repro.methods._grid import axis_intervals
from repro.queries import random_workload

SHAPE = (256, 256)
GRID_M = 64  # 64 x 64 = 4096 partitions
N_QUERIES = 10_000
SCALAR_SAMPLE = 200  # scalar reference is timed on this subsample
SMALL_QUERY_EXTENT = 3  # small queries span at most this many extra cells
PRUNED_SPEEDUP_FLOOR = 3.0

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_query_engine.json"


def merge_artifact(update):
    """Merge ``update`` into the artifact, keeping other tests' keys."""
    payload = {}
    if ARTIFACT.exists():
        try:
            payload = json.loads(ARTIFACT.read_text())
        except ValueError:
            payload = {}
    payload.update(update)
    ARTIFACT.write_text(json.dumps(payload, indent=1))


@pytest.fixture(scope="module")
def private_256():
    rng = np.random.default_rng(0)
    intervals = [axis_intervals(s, GRID_M) for s in SHAPE]
    k = GRID_M * GRID_M
    noisy = rng.poisson(40.0, size=k).astype(float) + rng.laplace(0, 2.0, size=k)
    packed = packed_from_intervals(intervals, noisy, SHAPE)
    return PrivateFrequencyMatrix.from_packed(packed, method="bench", epsilon=1.0)


@pytest.fixture(scope="module")
def workload_10k():
    return random_workload(SHAPE, N_QUERIES, rng=1)


def test_vectorized_speedup_and_exactness(private_256, workload_10k):
    lows, highs = workload_10k.as_arrays()
    sample = list(workload_10k)[:SCALAR_SAMPLE]

    # Scalar reference: Python loop over partitions, per query.
    start = time.perf_counter()
    scalar = np.array([private_256.answer(q) for q in sample])
    scalar_seconds = time.perf_counter() - start
    scalar_per_query = scalar_seconds / SCALAR_SAMPLE

    # Vectorized geometric kernel on the full workload (forced broadcast:
    # this series tracks the tiled kernel itself, not the planner).
    start = time.perf_counter()
    kernel = private_256.packed.answer_many_arrays(
        lows, highs, plan=PLAN_BROADCAST
    )
    kernel_seconds = time.perf_counter() - start

    # The engine facade with the automatic planner (dense prefix sums
    # win at this q x k, so this also exercises the cost model).
    start = time.perf_counter()
    result = Engine(private_256).answer(QueryRequest(lows, highs))
    auto, auto_plan = result.answers, result.plan
    auto_seconds = time.perf_counter() - start

    kernel_speedup = scalar_per_query / (kernel_seconds / N_QUERIES)
    auto_speedup = scalar_per_query / (auto_seconds / N_QUERIES)

    payload = {
        "shape": list(SHAPE),
        "n_partitions": private_256.n_partitions,
        "n_queries": N_QUERIES,
        "scalar_sample": SCALAR_SAMPLE,
        "scalar_seconds_sample": scalar_seconds,
        "scalar_seconds_per_query": scalar_per_query,
        "kernel_seconds": kernel_seconds,
        "auto_seconds": auto_seconds,
        "kernel_speedup": kernel_speedup,
        "auto_speedup": auto_speedup,
        "auto_plan": auto_plan,
        "kernel_max_abs_diff": float(
            np.abs(kernel[:SCALAR_SAMPLE] - scalar).max()
        ),
        "auto_max_abs_diff": float(np.abs(auto[:SCALAR_SAMPLE] - scalar).max()),
    }
    merge_artifact(payload)
    print(
        f"\nscalar {scalar_per_query * 1e6:.1f} us/query, "
        f"kernel {kernel_seconds / N_QUERIES * 1e6:.1f} us/query "
        f"({kernel_speedup:.0f}x), "
        f"auto {auto_seconds / N_QUERIES * 1e6:.1f} us/query "
        f"({auto_speedup:.0f}x)"
    )

    np.testing.assert_allclose(kernel[:SCALAR_SAMPLE], scalar, rtol=0, atol=1e-9)
    np.testing.assert_allclose(auto[:SCALAR_SAMPLE], scalar, rtol=0, atol=1e-9)
    assert kernel_speedup >= 10, f"kernel only {kernel_speedup:.1f}x faster"
    assert auto_speedup >= 10, f"auto engine only {auto_speedup:.1f}x faster"


def test_pruned_plan_speedup_on_small_queries(private_256):
    """The planner claim: small queries against a large partition list.

    The interval-index pruned gather must beat the full tiled broadcast
    kernel by at least 3x on a 10k batch of few-cell queries, with
    answers matching within 1e-9 — and the planner must choose it
    without being forced.
    """
    rng = np.random.default_rng(7)
    lows = np.stack(
        [
            rng.integers(0, s - SMALL_QUERY_EXTENT, size=N_QUERIES)
            for s in SHAPE
        ],
        axis=1,
    )
    highs = lows + rng.integers(0, SMALL_QUERY_EXTENT + 1, size=lows.shape)
    packed = private_256.packed

    assert packed.choose_plan(lows, highs) == PLAN_PRUNED

    # Warm both paths (index build, weight cache) before timing.
    packed.answer_many_arrays(lows, highs, plan=PLAN_BROADCAST)
    packed.answer_many_arrays(lows, highs, plan=PLAN_PRUNED)

    start = time.perf_counter()
    broadcast = packed.answer_many_arrays(lows, highs, plan=PLAN_BROADCAST)
    broadcast_seconds = time.perf_counter() - start

    start = time.perf_counter()
    pruned = packed.answer_many_arrays(lows, highs, plan=PLAN_PRUNED)
    pruned_seconds = time.perf_counter() - start

    pruned_speedup = broadcast_seconds / pruned_seconds
    pruned_max_abs_diff = float(np.abs(pruned - broadcast).max())
    index = packed.interval_index()
    mean_fraction = float(index.candidate_fraction(lows, highs).mean())

    merge_artifact(
        {
            "small_query_extent": SMALL_QUERY_EXTENT,
            "small_query_candidate_fraction": mean_fraction,
            "prune_overhead_pairs": float(PRUNE_OVERHEAD_PAIRS),
            "broadcast_seconds_small": broadcast_seconds,
            "pruned_seconds_small": pruned_seconds,
            "pruned_speedup": pruned_speedup,
            "pruned_speedup_floor": PRUNED_SPEEDUP_FLOOR,
            "pruned_max_abs_diff": pruned_max_abs_diff,
        }
    )
    print(
        f"\nbroadcast {broadcast_seconds / N_QUERIES * 1e6:.1f} us/query, "
        f"pruned {pruned_seconds / N_QUERIES * 1e6:.1f} us/query "
        f"({pruned_speedup:.1f}x, candidate fraction {mean_fraction:.4f})"
    )

    assert pruned_max_abs_diff <= 1e-9
    assert pruned_speedup >= PRUNED_SPEEDUP_FLOOR, (
        f"pruned plan only {pruned_speedup:.2f}x faster than broadcast"
    )


def test_engines_agree_on_full_workload(private_256, workload_10k):
    """All vectorized engines agree everywhere, not just the sample."""
    lows, highs = workload_10k.as_arrays()
    kernel = private_256.packed.answer_many_arrays(
        lows, highs, plan=PLAN_BROADCAST
    )
    pruned = private_256.packed.answer_many_arrays(
        lows, highs, plan=PLAN_PRUNED
    )
    dense = private_256._prefix_table().query_arrays(lows, highs)
    np.testing.assert_allclose(kernel, dense, rtol=1e-9, atol=1e-6)
    np.testing.assert_allclose(pruned, kernel, rtol=0, atol=1e-9)
