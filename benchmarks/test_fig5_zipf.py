"""Benchmark F5 — paper Figure 5: Zipf synthetic, d in {2,4,6}, eps = 0.1.

Paper shape: the proposed approaches outperform existing work by roughly
an order of magnitude on Zipf data; error rises with the skew parameter a.
"""

import numpy as np
import pytest

from repro.experiments import FIG5_ZIPF_A, figure5

from .conftest import assert_method_beats, mre_by_method

DIMS = (2, 4, 6)


@pytest.fixture(scope="module")
def result(scale):
    return figure5(scale, dims=DIMS, a_values=FIG5_ZIPF_A, rng=2022)


def test_regenerate_figure5(benchmark, scale):
    small = scale.with_overrides(n_queries=max(50, scale.n_queries // 4))
    benchmark.pedantic(
        lambda: figure5(small, dims=(2,), a_values=(2.0,), rng=1),
        rounds=1, iterations=1,
    )


def test_print_panels(result):
    for d in DIMS:
        print()
        print(result.panel("zipf_a", "method", d=d))


@pytest.mark.parametrize("d", DIMS)
def test_proposed_beats_baselines(result, d):
    mres = mre_by_method(result.rows, d=d)
    proposed = min(mres["ebp"], mres["daf_entropy"], mres["daf_homogeneity"])
    assert proposed < mres["identity"]
    assert proposed < mres["mkm"]


def test_order_of_magnitude_gap_somewhere(result):
    """Figure 5's headline: an order-of-magnitude improvement."""
    gaps = []
    for d in DIMS:
        mres = mre_by_method(result.rows, d=d)
        proposed = min(mres["ebp"], mres["daf_entropy"])
        baseline = max(mres["identity"], mres["mkm"])
        gaps.append(baseline / max(proposed, 1e-9))
    assert max(gaps) >= 5.0


def test_daf_handles_extreme_skew(result):
    """At the highest skew almost all mass sits in one cell; adaptive
    stopping must keep DAF competitive with the best grid method."""
    a_max = max(FIG5_ZIPF_A)
    for d in (4, 6):
        mres = mre_by_method(result.rows, d=d, zipf_a=a_max)
        assert mres["daf_entropy"] <= mres["identity"]
