"""Extension-method benchmark: AG, Privlet, quadtree, kd-tree versus the
paper's method set on a 2-D city histogram.

Not a paper artifact — the paper only cites these methods; this bench
places them on the same axes so downstream users can judge the full
landscape (and so regressions in the extensions are visible).
"""

import numpy as np
import pytest

from repro.datagen import get_city
from repro.experiments import aggregate_rows, default_method_specs, pivot, run_methods
from repro.queries import fixed_coverage_workload, random_workload

from .conftest import mre_by_method

ALL = ["identity", "uniform", "eug", "ebp", "mkm",
       "daf_entropy", "daf_homogeneity", "ag", "privlet", "kdtree",
       "hilbert1d"]


@pytest.fixture(scope="module")
def rows(scale):
    matrix = get_city("new_york").population_matrix(
        n_points=scale.n_points, resolution=scale.city_resolution, rng=0
    )
    workloads = [
        random_workload(matrix.shape, scale.n_queries, rng=1, name="random"),
        fixed_coverage_workload(matrix.shape, 0.05, scale.n_queries, rng=2,
                                name="5%"),
    ]
    raw = run_methods(matrix, default_method_specs(ALL), [0.1, 0.5],
                      workloads, n_trials=scale.n_trials, rng=3)
    return aggregate_rows(raw)


def test_regenerate_extension_comparison(benchmark, rows):
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)


def test_print_table(rows):
    for workload in ("random", "5%"):
        subset = [r for r in rows if r["workload"] == workload]
        print()
        print(pivot(subset, "epsilon", "method",
                    title=f"[EXT] all methods, NY city, workload={workload}"))


def test_ag_beats_plain_identity(rows):
    """AG's two-level refinement must clearly improve on IDENTITY."""
    mres = mre_by_method(rows, workload="random", epsilon=0.1)
    assert mres["ag"] < mres["identity"]


def test_adaptive_family_leads(rows):
    """Some adaptive method (EBP/DAF/AG) must lead every workload."""
    for workload in ("random", "5%"):
        mres = mre_by_method(rows, workload=workload, epsilon=0.1)
        adaptive_best = min(mres["ebp"], mres["daf_entropy"],
                            mres["daf_homogeneity"], mres["ag"])
        baseline_best = min(mres["identity"], mres["uniform"], mres["mkm"])
        assert adaptive_best < baseline_best


def test_kdtree_between_extremes(rows):
    """The kd-tree should beat the UNIFORM baseline on skewed data."""
    mres = mre_by_method(rows, workload="random", epsilon=0.1)
    assert mres["kdtree"] < mres["uniform"]


def test_dimensionality_reduction_trails_native(rows):
    """Section 5's motivation, measured: the Morton-curve 1-D reduction
    must trail the best native multi-dimensional partitioner on range
    workloads (it breaks proximity semantics)."""
    mres = mre_by_method(rows, workload="5%", epsilon=0.1)
    native_best = min(mres["ebp"], mres["daf_entropy"], mres["eug"])
    assert native_best < mres["hilbert1d"]
