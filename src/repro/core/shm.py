"""Shared-memory shard layout: one zero-copy segment per matrix.

The resident worker pool (:mod:`repro.engine.worker_pool`) keeps one
process per partition shard alive across requests.  Shipping each
shard's arrays to its worker by pickling would copy them on every
spawn *and* on every restart; instead, :class:`ShmShardLayout` packs
everything a shard needs to answer batches into a single named
:mod:`multiprocessing.shared_memory` segment, built exactly once per
matrix:

* the shard's slice of the packed ``lo`` / ``hi`` bounds and
  ``noisy_counts`` (the arrays
  :meth:`~repro.core.sharding.PartitionShard.partial` reads), and
* the backing buffers of the shard's already-built
  :class:`~repro.core.interval_index.IntervalIndex` (per-dimension
  ``order`` / ``lo_sorted`` / ``run_max_hi``), so an attaching worker
  never re-sorts anything — it sees the *same* index the serial path
  uses, which is one half of the pool ≡ serial bit-identity guarantee
  (the other half is the fixed-order partial merge in the pool).

The layout is split into an owner and a handle:

* :class:`ShmShardLayout` — parent-side owner.  Builds the segment
  (copying each array in once), exposes the picklable
  :class:`ShmShardSpec`, and owns the **exactly-once** ``unlink``.  A
  :func:`weakref.finalize` safety net unlinks on garbage collection if
  the owner is dropped without :meth:`ShmShardLayout.close`, so no
  code path leaks a segment (and the ``resource_tracker`` never has to
  warn about one).
* :class:`ShmShardSpec` — a frozen manifest (segment name + per-shard
  ``name -> (offset, shape, dtype)`` tables).  It is what actually
  crosses the process boundary; a worker calls
  :meth:`ShmShardSpec.attach` to get an :class:`AttachedShard` whose
  arrays are **views into the segment** — zero copies, read-only, and
  valid for as long as the parent keeps the segment linked.  Restart
  after a crash is therefore just "attach again": the segment outlives
  any individual worker.

Workers attach but never unlink; on Pythons without
``SharedMemory(track=...)`` the attach side suppresses its
``resource_tracker`` registration (see :func:`_attach_untracked`) so a
worker exiting (or being killed) can neither emit spurious
leaked-segment warnings nor unlink a segment it does not own.
"""

from __future__ import annotations

import secrets
import threading
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Tuple

import numpy as np

from .exceptions import QueryError
from .interval_index import IntervalIndex
from .packed import PackedPartitioning
from .sharding import PartitionShard

#: Byte alignment of every array inside the segment.  64 keeps each
#: array cache-line aligned; int64/float64 only need 8.
_ALIGN = 64


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


_REGISTER_PATCH_LOCK = threading.Lock()


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment without registering it for tracking.

    The creating process owns unlink; pre-3.13 Pythons register a
    segment with the ``resource_tracker`` on *attach* too, which either
    makes a spawned worker's private tracker "clean up" (unlink!) a
    segment it does not own at exit, or — under fork, where the tracker
    is shared — pollutes the parent's registration bookkeeping.  3.13+
    has ``track=False`` for exactly this; earlier versions get the same
    effect by suppressing the module-level ``register`` hook for the
    duration of the attach (unregister-after-the-fact is *not*
    equivalent: with a shared tracker it would drop the creator's own
    registration).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        from multiprocessing import resource_tracker

        with _REGISTER_PATCH_LOCK:
            original = resource_tracker.register
            resource_tracker.register = lambda *args, **kwargs: None
            try:
                return shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original


@dataclass(frozen=True)
class _ArraySpec:
    """Where one array lives inside the segment."""

    offset: int
    shape: Tuple[int, ...]
    dtype: str


class AttachedShard:
    """A worker's zero-copy view of its shard.

    ``shard`` is a fully functional
    :class:`~repro.core.sharding.PartitionShard` (interval index
    included) whose arrays alias the shared segment.  Keep this object
    alive for as long as the shard is used; :meth:`close` drops the
    mapping (it never unlinks — the owning
    :class:`ShmShardLayout` does that, exactly once).
    """

    def __init__(self, shm: shared_memory.SharedMemory, shard: PartitionShard):
        self._shm = shm
        self._closed = False
        self.shard = shard

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # Drop our array views before unmapping; if the caller still
        # holds one, closing the mapping now would be unsafe, so leave
        # it to process exit instead of crashing.
        self.shard = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - caller kept a view
            pass


@dataclass(frozen=True)
class ShmShardSpec:
    """Picklable manifest of a built segment (what workers receive).

    ``manifests[i]`` maps array names to :class:`_ArraySpec` locations
    for shard ``i``; ``bounds[i]`` is the shard's ``[start, stop)``
    range on the parent partition axis; ``ndim`` says how many
    ``order{a}``/``lo_sorted{a}``/``run_max_hi{a}`` triples each shard
    carries.
    """

    segment: str
    shape: Tuple[int, ...]
    bounds: Tuple[Tuple[int, int], ...]
    ndim: int
    manifests: Tuple[Dict[str, _ArraySpec], ...]

    @property
    def n_shards(self) -> int:
        return len(self.bounds)

    def attach(self, shard_id: int) -> AttachedShard:
        """Map the segment and rebuild shard ``shard_id`` zero-copy."""
        if not 0 <= shard_id < self.n_shards:
            raise QueryError(
                f"shard id {shard_id} outside [0, {self.n_shards})"
            )
        shm = _attach_untracked(self.segment)
        try:
            manifest = self.manifests[shard_id]

            def view(name: str) -> np.ndarray:
                spec = manifest[name]
                arr = np.ndarray(
                    spec.shape,
                    dtype=np.dtype(spec.dtype),
                    buffer=shm.buf,
                    offset=spec.offset,
                )
                arr.flags.writeable = False  # shared: nobody mutates
                return arr

            packed = PackedPartitioning(
                view("lo"),
                view("hi"),
                view("noisy"),
                self.shape,
                None,
                validate=False,
            )
            packed._index = IntervalIndex.from_buffers(
                packed,
                [view(f"order{a}") for a in range(self.ndim)],
                [view(f"lo_sorted{a}") for a in range(self.ndim)],
                [view(f"run_max_hi{a}") for a in range(self.ndim)],
            )
            start, stop = self.bounds[shard_id]
            shard = PartitionShard.from_packed(packed, start, stop)
        except BaseException:
            shm.close()
            raise
        return AttachedShard(shm, shard)


def _finalize_segment(shm: shared_memory.SharedMemory, state: dict) -> None:
    """GC / exit safety net: close and unlink exactly once."""
    if not state["unlinked"]:
        state["unlinked"] = True
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - external removal
            pass


class ShmShardLayout:
    """Build (once) and own the shared segment for one packed matrix.

    Splits ``packed`` with the same cached
    :meth:`~repro.core.packed.PackedPartitioning.split_shards` the
    serial path uses, forces each shard's interval index, and copies
    shard arrays + index buffers into one fresh
    :class:`multiprocessing.shared_memory.SharedMemory` segment.  The
    resulting :attr:`spec` is small and picklable; ship it to workers.

    ``close()`` (or garbage collection) unlinks the segment exactly
    once; calling it twice is a no-op.
    """

    def __init__(
        self,
        packed: PackedPartitioning,
        n_shards: int | None = None,
        *,
        name_prefix: str = "repro-shards",
    ):
        shards = packed.split_shards(n_shards)
        self.shape = packed.shape
        self.ndim = packed.ndim
        self.bounds: Tuple[Tuple[int, int], ...] = tuple(
            (s.start, s.stop) for s in shards
        )
        # Gather (name, array) pairs per shard; the parent-side index
        # build here is the same lazily cached build the serial path
        # performs, so pool and serial literally share these arrays.
        per_shard: List[List[Tuple[str, np.ndarray]]] = []
        for shard in shards:
            index = shard.packed.interval_index()
            arrays: List[Tuple[str, np.ndarray]] = [
                ("lo", shard.packed.lo),
                ("hi", shard.packed.hi),
                ("noisy", shard.packed.noisy_counts),
            ]
            for a in range(self.ndim):
                arrays.append((f"order{a}", index._order[a]))
                arrays.append((f"lo_sorted{a}", index._lo_sorted[a]))
                arrays.append((f"run_max_hi{a}", index._run_max_hi[a]))
            per_shard.append(arrays)

        manifests: List[Dict[str, _ArraySpec]] = []
        offset = 0
        for arrays in per_shard:
            manifest: Dict[str, _ArraySpec] = {}
            for name, arr in arrays:
                offset = _align(offset)
                manifest[name] = _ArraySpec(
                    offset, tuple(arr.shape), arr.dtype.str
                )
                offset += arr.nbytes
            manifests.append(manifest)
        self.nbytes = max(offset, 1)

        # A random suffix keeps concurrent pools (tests, multiple
        # engines) from colliding on the OS-global segment namespace.
        self.name = f"{name_prefix}-{secrets.token_hex(6)}"
        self._shm = shared_memory.SharedMemory(
            name=self.name, create=True, size=self.nbytes
        )
        for arrays, manifest in zip(per_shard, manifests):
            for name, arr in arrays:
                spec = manifest[name]
                dest = np.ndarray(
                    spec.shape,
                    dtype=np.dtype(spec.dtype),
                    buffer=self._shm.buf,
                    offset=spec.offset,
                )
                dest[...] = arr
        self.spec = ShmShardSpec(
            segment=self.name,
            shape=self.shape,
            bounds=self.bounds,
            ndim=self.ndim,
            manifests=tuple(manifests),
        )
        self._state = {"unlinked": False}
        self._finalizer = weakref.finalize(
            self, _finalize_segment, self._shm, self._state
        )

    @property
    def n_shards(self) -> int:
        return len(self.bounds)

    @property
    def unlinked(self) -> bool:
        return self._state["unlinked"]

    def close(self) -> None:
        """Unmap and unlink the segment — exactly once, idempotent."""
        # The finalizer wraps the same guarded state dict, so explicit
        # close and GC cannot both unlink.
        self._finalizer()

    def __enter__(self) -> "ShmShardLayout":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShmShardLayout({self.name!r}, shards={self.n_shards}, "
            f"bytes={self.nbytes})"
        )
