"""Shared input-validation helpers.

These helpers centralize the checks performed at the public-API boundary so
error messages are consistent across the library.  Internal code paths that
have already validated their inputs call straight into numpy.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from .exceptions import ValidationError


def require_positive_int(value: int, name: str) -> int:
    """Return ``value`` as ``int`` after checking it is a positive integer."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    if value <= 0:
        raise ValidationError(f"{name} must be positive, got {value}")
    return int(value)


def require_positive_float(value: float, name: str) -> float:
    """Return ``value`` as ``float`` after checking it is finite and > 0."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ValidationError(f"{name} must be a number, got {value!r}") from None
    if not np.isfinite(value) or value <= 0.0:
        raise ValidationError(f"{name} must be a positive finite number, got {value}")
    return value


def require_fraction(value: float, name: str, *, inclusive: bool = False) -> float:
    """Return ``value`` after checking it lies in ``(0, 1)`` (or ``[0, 1]``)."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ValidationError(f"{name} must be a number, got {value!r}") from None
    low_ok = value >= 0.0 if inclusive else value > 0.0
    high_ok = value <= 1.0 if inclusive else value < 1.0
    if not (np.isfinite(value) and low_ok and high_ok):
        bounds = "[0, 1]" if inclusive else "(0, 1)"
        raise ValidationError(f"{name} must lie in {bounds}, got {value}")
    return value


def require_shape(shape: Sequence[int], name: str = "shape") -> Tuple[int, ...]:
    """Validate a frequency-matrix shape: non-empty, all dims >= 1."""
    try:
        dims = tuple(int(s) for s in shape)
    except (TypeError, ValueError):
        raise ValidationError(f"{name} must be a sequence of integers, got {shape!r}") from None
    if len(dims) == 0:
        raise ValidationError(f"{name} must have at least one dimension")
    for i, s in enumerate(dims):
        if s < 1:
            raise ValidationError(f"{name}[{i}] must be >= 1, got {s}")
    return dims


def require_count_array(data: np.ndarray, name: str = "data") -> np.ndarray:
    """Validate an array of counts: numeric, finite, non-negative.

    Returns a float64 view/copy of ``data``.
    """
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim == 0:
        raise ValidationError(f"{name} must have at least one dimension")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} must contain only finite values")
    if np.any(arr < 0):
        raise ValidationError(f"{name} must contain only non-negative counts")
    return arr
