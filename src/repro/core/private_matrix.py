"""The sanitized output consumed by analysts.

A :class:`PrivateFrequencyMatrix` is exactly what Section 2.2 publishes: the
boundaries of all partitions plus their noisy counts.  Range queries are
answered under the per-partition uniformity assumption.

Two storage backends are supported:

* **partition-backed** — an explicit :class:`~repro.core.partition.Partitioning`
  (grid and tree methods).  Queries use geometric overlap per partition, or
  a dense prefix-sum reconstruction for large workloads; both give identical
  answers (asserted by the test suite).
* **dense-backed** — a noisy per-cell array (the IDENTITY baseline and the
  Privlet wavelet method publish one value per cell; materializing one
  :class:`Partition` object per cell would be wasteful).  Conceptually this
  is the partitioning into singleton cells.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from .domain import Domain
from .exceptions import QueryError, ValidationError
from .frequency_matrix import Box, FrequencyMatrix, box_slices, validate_box
from .partition import Partition, Partitioning
from .prefix_sum import PrefixSumTable


class PrivateFrequencyMatrix:
    """Partition boundaries + noisy counts, with uniform query answering.

    Construct either with a ``partitioning`` or via :meth:`from_dense_noisy`.

    Parameters
    ----------
    partitioning:
        The complete partitioning with noisy counts attached.
    domain:
        Domain of the original matrix (for continuous-coordinate queries).
    epsilon:
        Total privacy budget consumed producing this output.
    method:
        Name of the producing sanitizer (``"daf_entropy"``, ...).
    metadata:
        Free-form extras a method wants to expose (chosen ``m``, tree depth,
        budget split, ...).  Must not contain raw data.
    """

    __slots__ = ("_partitioning", "_domain", "_epsilon", "_method", "_metadata",
                 "_dense_cache", "_prefix_cache", "_shape")

    def __init__(
        self,
        partitioning: Partitioning,
        domain: Domain | None = None,
        *,
        epsilon: float = 0.0,
        method: str = "",
        metadata: Mapping[str, object] | None = None,
    ):
        if not isinstance(partitioning, Partitioning):
            raise ValidationError("partitioning must be a Partitioning")
        self._init_common(partitioning.shape, domain, epsilon, method, metadata)
        self._partitioning: Partitioning | None = partitioning
        self._dense_cache: np.ndarray | None = None

    @classmethod
    def from_dense_noisy(
        cls,
        noisy: np.ndarray,
        domain: Domain | None = None,
        *,
        epsilon: float = 0.0,
        method: str = "",
        metadata: Mapping[str, object] | None = None,
    ) -> "PrivateFrequencyMatrix":
        """Build a dense-backed private matrix from per-cell noisy counts."""
        noisy = np.asarray(noisy, dtype=np.float64)
        if noisy.ndim == 0:
            raise ValidationError("noisy array needs at least one dimension")
        if not np.all(np.isfinite(noisy)):
            raise ValidationError("noisy array must be finite")
        self = cls.__new__(cls)
        self._init_common(noisy.shape, domain, epsilon, method, metadata)
        self._partitioning = None
        self._dense_cache = noisy.copy()
        return self

    def _init_common(
        self,
        shape: Tuple[int, ...],
        domain: Domain | None,
        epsilon: float,
        method: str,
        metadata: Mapping[str, object] | None,
    ) -> None:
        if domain is None:
            domain = Domain.regular(shape)
        if domain.shape != tuple(shape):
            raise ValidationError(
                f"domain shape {domain.shape} != matrix shape {tuple(shape)}"
            )
        if epsilon < 0:
            raise ValidationError(f"epsilon must be non-negative, got {epsilon}")
        self._shape = tuple(shape)
        self._domain = domain
        self._epsilon = float(epsilon)
        self._method = str(method)
        self._metadata: Dict[str, object] = dict(metadata or {})
        self._prefix_cache: PrefixSumTable | None = None

    # ------------------------------------------------------------------
    @property
    def is_dense_backed(self) -> bool:
        """True when the output is per-cell noisy counts (no partition list)."""
        return self._partitioning is None

    @property
    def partitioning(self) -> Partitioning:
        """The partition list (raises for dense-backed outputs)."""
        if self._partitioning is None:
            raise QueryError(
                "this private matrix is dense-backed (per-cell counts); "
                "it has no explicit partition list"
            )
        return self._partitioning

    @property
    def partitions(self) -> Tuple[Partition, ...]:
        return self.partitioning.partitions

    @property
    def domain(self) -> Domain:
        return self._domain

    @property
    def shape(self) -> Tuple[int, ...]:
        return self._shape

    @property
    def ndim(self) -> int:
        return len(self._shape)

    @property
    def epsilon(self) -> float:
        return self._epsilon

    @property
    def method(self) -> str:
        return self._method

    @property
    def metadata(self) -> Dict[str, object]:
        return dict(self._metadata)

    @property
    def n_partitions(self) -> int:
        """Number of published regions (cells, for dense-backed outputs)."""
        if self._partitioning is None:
            return int(np.prod(self._shape, dtype=np.int64))
        return len(self._partitioning)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PrivateFrequencyMatrix(method={self._method!r}, shape={self.shape}, "
            f"partitions={self.n_partitions}, epsilon={self._epsilon:g})"
        )

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------
    def answer(self, box: Box) -> float:
        """Answer an inclusive cell-index range query (uniformity assumption)."""
        box = validate_box(box, self.shape)
        if self._partitioning is None:
            return float(self.dense_array()[box_slices(box)].sum())
        return float(sum(p.uniform_answer(box) for p in self._partitioning))

    def answer_many(self, boxes: Sequence[Box]) -> np.ndarray:
        """Answer a workload of box queries.

        Uses the dense prefix-sum engine when the matrix fits in memory and
        the workload is large; otherwise answers per-partition.
        """
        boxes = list(boxes)
        if not boxes:
            return np.zeros(0, dtype=np.float64)
        n_cells = int(np.prod(self.shape, dtype=np.int64))
        use_dense = self._partitioning is None or (
            n_cells <= 50_000_000
            and len(boxes) * self.n_partitions > 4 * n_cells
        )
        if use_dense:
            return self._prefix_table().query_many(boxes)
        return np.array([self.answer(b) for b in boxes], dtype=np.float64)

    def answer_continuous(
        self, lows: Sequence[float], highs: Sequence[float]
    ) -> float:
        """Answer a continuous-coordinate range query via the domain."""
        return self.answer(self._domain.box_to_cells(lows, highs))

    # ------------------------------------------------------------------
    # Dense reconstruction
    # ------------------------------------------------------------------
    def to_dense(self) -> FrequencyMatrix:
        """Reconstruct the noisy matrix as counts, clipping negatives to 0.

        Laplace noise is signed, but :class:`FrequencyMatrix` stores counts;
        use :meth:`dense_array` for the raw signed reconstruction.
        """
        return FrequencyMatrix(np.maximum(self.dense_array(), 0.0), self._domain)

    def dense_array(self) -> np.ndarray:
        """The signed dense reconstruction: each cell holds its partition's
        noisy count divided by the partition's cell count."""
        if self._dense_cache is None:
            out = np.zeros(self.shape, dtype=np.float64)
            for p in self._partitioning:  # type: ignore[union-attr]
                out[box_slices(p.box)] = p.noisy_count / p.n_cells
            self._dense_cache = out
        return self._dense_cache

    def _prefix_table(self) -> PrefixSumTable:
        if self._prefix_cache is None:
            self._prefix_cache = PrefixSumTable(self.dense_array())
        return self._prefix_cache

    # ------------------------------------------------------------------
    # Serialization (what actually gets published)
    # ------------------------------------------------------------------
    def to_publishable(self) -> Dict[str, object]:
        """The DP-safe payload: boxes, noisy counts, method, epsilon.

        True counts are intentionally omitted.  Dense-backed outputs publish
        the flattened per-cell noisy counts.
        """
        payload: Dict[str, object] = {
            "method": self._method,
            "epsilon": self._epsilon,
            "shape": list(self.shape),
            "metadata": dict(self._metadata),
        }
        if self._partitioning is None:
            payload["cells"] = self.dense_array().ravel().tolist()
        else:
            payload["partitions"] = [
                {"box": [list(r) for r in p.box], "noisy_count": p.noisy_count}
                for p in self._partitioning
            ]
        return payload

    @classmethod
    def from_publishable(cls, payload: Mapping[str, object]) -> "PrivateFrequencyMatrix":
        """Rebuild from :meth:`to_publishable` output."""
        try:
            shape = tuple(int(s) for s in payload["shape"])  # type: ignore[index]
        except (KeyError, TypeError, ValueError) as exc:
            raise QueryError(f"malformed publishable payload: {exc}") from exc
        common = {
            "epsilon": float(payload.get("epsilon", 0.0)),  # type: ignore[arg-type]
            "method": str(payload.get("method", "")),
            "metadata": payload.get("metadata"),
        }
        if "cells" in payload:
            cells = np.asarray(payload["cells"], dtype=np.float64)
            if cells.size != int(np.prod(shape, dtype=np.int64)):
                raise QueryError("cell payload size does not match shape")
            return cls.from_dense_noisy(cells.reshape(shape), **common)  # type: ignore[arg-type]
        try:
            raw = payload["partitions"]  # type: ignore[index]
            parts: List[Partition] = [
                Partition(
                    tuple((int(lo), int(hi)) for lo, hi in entry["box"]),
                    float(entry["noisy_count"]),
                )
                for entry in raw  # type: ignore[union-attr]
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise QueryError(f"malformed publishable payload: {exc}") from exc
        partitioning = Partitioning(parts, shape, validate=True)
        return cls(partitioning, **common)  # type: ignore[arg-type]
