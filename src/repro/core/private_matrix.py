"""The sanitized output consumed by analysts.

A :class:`PrivateFrequencyMatrix` is exactly what Section 2.2 publishes: the
boundaries of all partitions plus their noisy counts.  Range queries are
answered under the per-partition uniformity assumption.

Three storage backends are supported:

* **packed** — a :class:`~repro.core.packed.PackedPartitioning` of
  contiguous ``lo``/``hi``/count arrays (what the grid, tree and DAF
  sanitizers emit).  Batches of queries are answered by the vectorized
  broadcast kernel; :class:`~repro.core.partition.Partition` objects are
  materialized lazily, only when per-partition iteration or object-level
  serialization is requested.  (Exact-cover validation runs where it
  always did: on externally supplied partitionings —
  :meth:`PrivateFrequencyMatrix.from_publishable` and explicit
  ``validate=True`` constructions — not on sanitizer-built tilings.)
* **partition-backed** — an explicit
  :class:`~repro.core.partition.Partitioning` (externally constructed or
  deserialized outputs).  Packed arrays are derived lazily for querying.
* **dense-backed** — a noisy per-cell array (the IDENTITY baseline and the
  Privlet wavelet method publish one value per cell; materializing one
  :class:`Partition` object per cell would be wasteful).  Conceptually this
  is the partitioning into singleton cells.

Batch answering (:meth:`PrivateFrequencyMatrix.answer_many`) plans each
batch across three strategies with a cost model: the broadcast kernel does
``O(q × k × d)`` work; reconstructing the dense matrix and building a
prefix-sum table does ``O(cells)`` once and then ``O(2^d)`` per query — so
when ``q × k`` exceeds a multiple of the cell count (and the matrix fits in
memory) the dense route wins; and when the per-dimension interval index
(:mod:`repro.core.interval_index`) estimates that most partitions cannot
overlap the batch's queries, the index-pruned gather skips them.  A fourth
plan, ``sharded`` (:mod:`repro.core.sharding`), splits the partition axis
into contiguous shards that each answer the whole batch (skipping shards
whose candidate bound is empty) and merges the partial sums; it is selected
by configuration (``plan="sharded"`` / ``n_shards=...``) rather than the
cost model, being an execution layout for partition lists that outgrow one
node.

All of that routing now lives in the :mod:`repro.engine` facade: an
:class:`~repro.engine.Engine` bound to an
:class:`~repro.engine.EngineConfig` is the public query surface
(:meth:`answer_many` routes through a cached default-config engine, and
the plan chosen for a batch is observable via
:meth:`PrivateFrequencyMatrix.plan_queries` or the engine's
:class:`~repro.engine.QueryAnswer`).  The kwarg-era entry points
:meth:`~PrivateFrequencyMatrix.answer_arrays` and
:meth:`~PrivateFrequencyMatrix.answer_sharded` survive as deprecated
shims with their exact historical contract.  The scalar
:meth:`~PrivateFrequencyMatrix.answer` loop is kept as the reference
implementation; every engine is asserted against it by the test suite.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from .domain import Domain
from .exceptions import QueryError, ValidationError
from .frequency_matrix import Box, FrequencyMatrix, box_slices, validate_box
from .interval_index import PLAN_SHARDED
from .packed import PackedPartitioning, boxes_to_arrays
from .partition import Partition, Partitioning
from .prefix_sum import PrefixSumTable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import Engine
    from .sharding import ShardedAnswer

#: Matrices larger than this are never densified for querying.
DENSE_SWITCH_MAX_CELLS = 50_000_000

#: The dense prefix-sum engine is used when ``n_queries * n_partitions``
#: exceeds this multiple of the cell count.
DENSE_SWITCH_FACTOR = 4


class PrivateFrequencyMatrix:
    """Partition boundaries + noisy counts, with uniform query answering.

    Construct with a ``partitioning``, via :meth:`from_packed`, or via
    :meth:`from_dense_noisy`.

    Parameters
    ----------
    partitioning:
        The complete partitioning with noisy counts attached.
    domain:
        Domain of the original matrix (for continuous-coordinate queries).
    epsilon:
        Total privacy budget consumed producing this output.
    method:
        Name of the producing sanitizer (``"daf_entropy"``, ...).
    metadata:
        Free-form extras a method wants to expose (chosen ``m``, tree depth,
        budget split, ...).  Must not contain raw data.
    """

    __slots__ = ("_partitioning", "_packed", "_domain", "_epsilon", "_method",
                 "_metadata", "_dense_cache", "_prefix_cache", "_shape",
                 "_engine_cache")

    def __init__(
        self,
        partitioning: Partitioning,
        domain: Domain | None = None,
        *,
        epsilon: float = 0.0,
        method: str = "",
        metadata: Mapping[str, object] | None = None,
    ):
        if not isinstance(partitioning, Partitioning):
            raise ValidationError("partitioning must be a Partitioning")
        self._init_common(partitioning.shape, domain, epsilon, method, metadata)
        self._partitioning: Partitioning | None = partitioning
        self._packed: PackedPartitioning | None = None
        self._dense_cache: np.ndarray | None = None

    @classmethod
    def from_packed(
        cls,
        packed: PackedPartitioning,
        domain: Domain | None = None,
        *,
        epsilon: float = 0.0,
        method: str = "",
        metadata: Mapping[str, object] | None = None,
    ) -> "PrivateFrequencyMatrix":
        """Build a packed-backed private matrix (the sanitizers' fast path).

        Partition objects are materialized lazily, only when
        :attr:`partitioning` is accessed.
        """
        if not isinstance(packed, PackedPartitioning):
            raise ValidationError("packed must be a PackedPartitioning")
        self = cls.__new__(cls)
        self._init_common(packed.shape, domain, epsilon, method, metadata)
        self._partitioning = None
        self._packed = packed
        self._dense_cache = None
        return self

    @classmethod
    def from_dense_noisy(
        cls,
        noisy: np.ndarray,
        domain: Domain | None = None,
        *,
        epsilon: float = 0.0,
        method: str = "",
        metadata: Mapping[str, object] | None = None,
    ) -> "PrivateFrequencyMatrix":
        """Build a dense-backed private matrix from per-cell noisy counts."""
        noisy = np.asarray(noisy, dtype=np.float64)
        if noisy.ndim == 0:
            raise ValidationError("noisy array needs at least one dimension")
        if not np.all(np.isfinite(noisy)):
            raise ValidationError("noisy array must be finite")
        self = cls.__new__(cls)
        self._init_common(noisy.shape, domain, epsilon, method, metadata)
        self._partitioning = None
        self._packed = None
        self._dense_cache = noisy.copy()
        return self

    def _init_common(
        self,
        shape: Tuple[int, ...],
        domain: Domain | None,
        epsilon: float,
        method: str,
        metadata: Mapping[str, object] | None,
    ) -> None:
        if domain is None:
            domain = Domain.regular(shape)
        if domain.shape != tuple(shape):
            raise ValidationError(
                f"domain shape {domain.shape} != matrix shape {tuple(shape)}"
            )
        if epsilon < 0:
            raise ValidationError(f"epsilon must be non-negative, got {epsilon}")
        self._shape = tuple(shape)
        self._domain = domain
        self._epsilon = float(epsilon)
        self._method = str(method)
        self._metadata: Dict[str, object] = dict(metadata or {})
        self._prefix_cache: PrefixSumTable | None = None
        self._engine_cache: "Engine | None" = None

    # ------------------------------------------------------------------
    @property
    def is_dense_backed(self) -> bool:
        """True when the output is per-cell noisy counts (no partition list)."""
        return self._partitioning is None and self._packed is None

    @property
    def partitioning(self) -> Partitioning:
        """The partition list (raises for dense-backed outputs).

        For packed-backed outputs the :class:`Partition` objects are
        materialized on first access (without re-validating the tiling —
        same contract as the sanitizers' ``validate=False``
        constructions); querying never needs them.
        """
        if self._partitioning is None:
            if self._packed is None:
                raise QueryError(
                    "this private matrix is dense-backed (per-cell counts); "
                    "it has no explicit partition list"
                )
            self._partitioning = self._packed.to_partitioning(validate=False)
        return self._partitioning

    @property
    def packed(self) -> PackedPartitioning:
        """Array-backed view of the partitioning (raises for dense-backed)."""
        if self._packed is None:
            if self._partitioning is None:
                raise QueryError(
                    "this private matrix is dense-backed (per-cell counts); "
                    "it has no explicit partition list"
                )
            self._packed = PackedPartitioning.from_partitioning(self._partitioning)
        return self._packed

    @property
    def partitions(self) -> Tuple[Partition, ...]:
        return self.partitioning.partitions

    @property
    def domain(self) -> Domain:
        return self._domain

    @property
    def shape(self) -> Tuple[int, ...]:
        return self._shape

    @property
    def ndim(self) -> int:
        return len(self._shape)

    @property
    def epsilon(self) -> float:
        return self._epsilon

    @property
    def method(self) -> str:
        return self._method

    @property
    def metadata(self) -> Dict[str, object]:
        return dict(self._metadata)

    @property
    def n_partitions(self) -> int:
        """Number of published regions (cells, for dense-backed outputs)."""
        if self._packed is not None:
            return self._packed.n_partitions
        if self._partitioning is not None:
            return len(self._partitioning)
        return int(np.prod(self._shape, dtype=np.int64))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PrivateFrequencyMatrix(method={self._method!r}, shape={self.shape}, "
            f"partitions={self.n_partitions}, epsilon={self._epsilon:g})"
        )

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------
    def answer(self, box: Box) -> float:
        """Answer an inclusive cell-index range query (uniformity assumption).

        This is the scalar *reference* implementation: a Python loop over
        partitions.  Batches should go through :meth:`answer_many`, which
        computes identical values vectorized.
        """
        box = validate_box(box, self.shape)
        if self.is_dense_backed:
            return float(self.dense_array()[box_slices(box)].sum())
        return float(sum(p.uniform_answer(box) for p in self.partitioning))

    def answer_many(self, boxes: Sequence[Box]) -> np.ndarray:
        """Answer a workload of box queries, vectorized.

        Boxes are validated once up front (not per partition per query),
        then routed by a default-config :class:`~repro.engine.Engine`
        through the cost model described in the module docstring: the
        packed broadcast kernel, the interval-index pruned gather, or a
        dense prefix-sum reconstruction when ``n_queries × n_partitions``
        would dwarf the cell count.
        """
        boxes = list(boxes)
        if not boxes:
            return np.zeros(0, dtype=np.float64)
        lows, highs = boxes_to_arrays(boxes)
        return self._default_engine().answer_arrays(lows, highs)

    def plan_queries(self, lows: np.ndarray, highs: np.ndarray) -> str:
        """The strategy the default engine would pick for this batch.

        One of :data:`~repro.core.interval_index.PLAN_DENSE` (prefix-sum
        reconstruction), :data:`~repro.core.interval_index.PLAN_BROADCAST`
        (tiled geometric kernel) or
        :data:`~repro.core.interval_index.PLAN_PRUNED` (interval-index
        candidate gather).  Pure: answers nothing, but may lazily build
        the interval index it uses as the cost signal.
        """
        return self._default_engine().plan_queries(lows, highs)

    def _default_engine(self) -> "Engine":
        """A cached default-config engine for the internal query paths."""
        if self._engine_cache is None:
            from ..engine import Engine

            self._engine_cache = Engine(self)
        return self._engine_cache

    def answer_arrays(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        *,
        plan: str | None = None,
        n_shards: int | None = None,
        shard_executor: object | None = None,
        return_plan: bool = False,
    ) -> np.ndarray | Tuple[np.ndarray, str]:
        """Deprecated: use :meth:`repro.engine.Engine.answer`.

        The kwarg-era batch entry point, kept as a thin shim over the
        engine facade with its exact historical contract — same
        answers, same reported plans, same errors (the regression suite
        pins this).  The kwargs map onto
        :class:`~repro.engine.EngineConfig` fields one-for-one::

            answer_arrays(lows, highs, plan=p, n_shards=k)
            == Engine(self, EngineConfig(plan=p, n_shards=k))
                   .answer(QueryRequest(lows, highs)).answers
        """
        warnings.warn(
            "PrivateFrequencyMatrix.answer_arrays is deprecated; build a "
            "repro.engine.Engine with an EngineConfig and call "
            "Engine.answer (or Engine.answer_arrays) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from ..engine import Engine, EngineConfig, QueryRequest

        if (n_shards is not None or shard_executor is not None) and plan is None:
            plan = PLAN_SHARDED
        config = EngineConfig(
            plan=plan, n_shards=n_shards, shard_executor=shard_executor
        )
        result = Engine(self, config).answer(QueryRequest(lows, highs))
        return (result.answers, result.plan) if return_plan else result.answers

    def answer_sharded(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        *,
        n_shards: int | None = None,
        executor: object | None = None,
    ) -> "ShardedAnswer":
        """Deprecated: use :meth:`repro.engine.Engine.answer_sharded`.

        The kwarg-era sharded entry point with full per-shard evidence,
        kept as a shim over an engine configured for the sharded
        layout.  Raises for dense-backed outputs, which have no
        partition list to shard.
        """
        warnings.warn(
            "PrivateFrequencyMatrix.answer_sharded is deprecated; build a "
            "repro.engine.Engine with EngineConfig(n_shards=...) and call "
            "Engine.answer_sharded (or Engine.answer, which carries the "
            "per-shard evidence on its QueryAnswer) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from ..engine import Engine, EngineConfig

        config = EngineConfig(
            plan=PLAN_SHARDED, n_shards=n_shards, shard_executor=executor
        )
        return Engine(self, config).answer_sharded(lows, highs)

    def answer_continuous(
        self, lows: Sequence[float], highs: Sequence[float]
    ) -> float:
        """Answer a continuous-coordinate range query via the domain."""
        return self.answer(self._domain.box_to_cells(lows, highs))

    # ------------------------------------------------------------------
    # Dense reconstruction
    # ------------------------------------------------------------------
    def to_dense(self) -> FrequencyMatrix:
        """Reconstruct the noisy matrix as counts, clipping negatives to 0.

        Laplace noise is signed, but :class:`FrequencyMatrix` stores counts;
        use :meth:`dense_array` for the raw signed reconstruction.
        """
        return FrequencyMatrix(np.maximum(self.dense_array(), 0.0), self._domain)

    def dense_array(self) -> np.ndarray:
        """The signed dense reconstruction: each cell holds its partition's
        noisy count divided by the partition's cell count."""
        if self._dense_cache is None:
            self._dense_cache = self.packed.dense_array()
        return self._dense_cache

    def _prefix_table(self) -> PrefixSumTable:
        if self._prefix_cache is None:
            self._prefix_cache = PrefixSumTable(self.dense_array())
        return self._prefix_cache

    # ------------------------------------------------------------------
    # Serialization (what actually gets published)
    # ------------------------------------------------------------------
    def to_publishable(self) -> Dict[str, object]:
        """The DP-safe payload: boxes, noisy counts, method, epsilon.

        True counts are intentionally omitted.  Dense-backed outputs publish
        the flattened per-cell noisy counts.  Packed-backed outputs
        serialize straight from the arrays without materializing
        :class:`Partition` objects.
        """
        payload: Dict[str, object] = {
            "method": self._method,
            "epsilon": self._epsilon,
            "shape": list(self.shape),
            "metadata": dict(self._metadata),
        }
        if self.is_dense_backed:
            payload["cells"] = self.dense_array().ravel().tolist()
        else:
            packed = self.packed
            lo, hi = packed.lo, packed.hi
            noisy = packed.noisy_counts
            payload["partitions"] = [
                {
                    "box": [[int(l), int(h)] for l, h in zip(lo[i], hi[i])],
                    "noisy_count": float(noisy[i]),
                }
                for i in range(packed.n_partitions)
            ]
        return payload

    @classmethod
    def from_publishable(cls, payload: Mapping[str, object]) -> "PrivateFrequencyMatrix":
        """Rebuild from :meth:`to_publishable` output."""
        try:
            shape = tuple(int(s) for s in payload["shape"])  # type: ignore[index]
        except (KeyError, TypeError, ValueError) as exc:
            raise QueryError(f"malformed publishable payload: {exc}") from exc
        common = {
            "epsilon": float(payload.get("epsilon", 0.0)),  # type: ignore[arg-type]
            "method": str(payload.get("method", "")),
            "metadata": payload.get("metadata"),
        }
        if "cells" in payload:
            cells = np.asarray(payload["cells"], dtype=np.float64)
            if cells.size != int(np.prod(shape, dtype=np.int64)):
                raise QueryError("cell payload size does not match shape")
            return cls.from_dense_noisy(cells.reshape(shape), **common)  # type: ignore[arg-type]
        try:
            raw = payload["partitions"]  # type: ignore[index]
            parts: List[Partition] = [
                Partition(
                    tuple((int(lo), int(hi)) for lo, hi in entry["box"]),
                    float(entry["noisy_count"]),
                )
                for entry in raw  # type: ignore[union-attr]
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise QueryError(f"malformed publishable payload: {exc}") from exc
        partitioning = Partitioning(parts, shape, validate=True)
        return cls(partitioning, **common)  # type: ignore[arg-type]
