"""The sanitized output consumed by analysts.

A :class:`PrivateFrequencyMatrix` is exactly what Section 2.2 publishes: the
boundaries of all partitions plus their noisy counts.  Range queries are
answered under the per-partition uniformity assumption.

Three storage backends are supported:

* **packed** — a :class:`~repro.core.packed.PackedPartitioning` of
  contiguous ``lo``/``hi``/count arrays (what the grid, tree and DAF
  sanitizers emit).  Batches of queries are answered by the vectorized
  broadcast kernel; :class:`~repro.core.partition.Partition` objects are
  materialized lazily, only when per-partition iteration or object-level
  serialization is requested.  (Exact-cover validation runs where it
  always did: on externally supplied partitionings —
  :meth:`PrivateFrequencyMatrix.from_publishable` and explicit
  ``validate=True`` constructions — not on sanitizer-built tilings.)
* **partition-backed** — an explicit
  :class:`~repro.core.partition.Partitioning` (externally constructed or
  deserialized outputs).  Packed arrays are derived lazily for querying.
* **dense-backed** — a noisy per-cell array (the IDENTITY baseline and the
  Privlet wavelet method publish one value per cell; materializing one
  :class:`Partition` object per cell would be wasteful).  Conceptually this
  is the partitioning into singleton cells.

Batch answering (:meth:`PrivateFrequencyMatrix.answer_many`) plans each
batch across three strategies with a cost model: the broadcast kernel does
``O(q × k × d)`` work; reconstructing the dense matrix and building a
prefix-sum table does ``O(cells)`` once and then ``O(2^d)`` per query — so
when ``q × k`` exceeds a multiple of the cell count (and the matrix fits in
memory) the dense route wins; and when the per-dimension interval index
(:mod:`repro.core.interval_index`) estimates that most partitions cannot
overlap the batch's queries, the index-pruned gather skips them.  A fourth
plan, ``sharded`` (:mod:`repro.core.sharding`), splits the partition axis
into contiguous shards that each answer the whole batch (skipping shards
whose candidate bound is empty) and merges the partial sums; it is selected
by configuration (``plan="sharded"`` / ``n_shards=...``) rather than the
cost model, being an execution layout for partition lists that outgrow one
node.  The plan
chosen for a batch is observable (:meth:`PrivateFrequencyMatrix.plan_queries`,
``answer_arrays(..., return_plan=True)``) and forcible (``plan=...``).  The
scalar :meth:`~PrivateFrequencyMatrix.answer` loop is kept as the reference
implementation; every engine is asserted against it by the test suite.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from .domain import Domain
from .exceptions import QueryError, ValidationError
from .frequency_matrix import Box, FrequencyMatrix, box_slices, validate_box
from .interval_index import (
    PLAN_BROADCAST,
    PLAN_DENSE,
    PLAN_PRUNED,
    PLAN_SHARDED,
    plan_with_slices,
)
from .packed import PackedPartitioning, boxes_to_arrays, validate_box_arrays
from .partition import Partition, Partitioning
from .prefix_sum import PrefixSumTable

#: Matrices larger than this are never densified for querying.
DENSE_SWITCH_MAX_CELLS = 50_000_000

#: The dense prefix-sum engine is used when ``n_queries * n_partitions``
#: exceeds this multiple of the cell count.
DENSE_SWITCH_FACTOR = 4


class PrivateFrequencyMatrix:
    """Partition boundaries + noisy counts, with uniform query answering.

    Construct with a ``partitioning``, via :meth:`from_packed`, or via
    :meth:`from_dense_noisy`.

    Parameters
    ----------
    partitioning:
        The complete partitioning with noisy counts attached.
    domain:
        Domain of the original matrix (for continuous-coordinate queries).
    epsilon:
        Total privacy budget consumed producing this output.
    method:
        Name of the producing sanitizer (``"daf_entropy"``, ...).
    metadata:
        Free-form extras a method wants to expose (chosen ``m``, tree depth,
        budget split, ...).  Must not contain raw data.
    """

    __slots__ = ("_partitioning", "_packed", "_domain", "_epsilon", "_method",
                 "_metadata", "_dense_cache", "_prefix_cache", "_shape")

    def __init__(
        self,
        partitioning: Partitioning,
        domain: Domain | None = None,
        *,
        epsilon: float = 0.0,
        method: str = "",
        metadata: Mapping[str, object] | None = None,
    ):
        if not isinstance(partitioning, Partitioning):
            raise ValidationError("partitioning must be a Partitioning")
        self._init_common(partitioning.shape, domain, epsilon, method, metadata)
        self._partitioning: Partitioning | None = partitioning
        self._packed: PackedPartitioning | None = None
        self._dense_cache: np.ndarray | None = None

    @classmethod
    def from_packed(
        cls,
        packed: PackedPartitioning,
        domain: Domain | None = None,
        *,
        epsilon: float = 0.0,
        method: str = "",
        metadata: Mapping[str, object] | None = None,
    ) -> "PrivateFrequencyMatrix":
        """Build a packed-backed private matrix (the sanitizers' fast path).

        Partition objects are materialized lazily, only when
        :attr:`partitioning` is accessed.
        """
        if not isinstance(packed, PackedPartitioning):
            raise ValidationError("packed must be a PackedPartitioning")
        self = cls.__new__(cls)
        self._init_common(packed.shape, domain, epsilon, method, metadata)
        self._partitioning = None
        self._packed = packed
        self._dense_cache = None
        return self

    @classmethod
    def from_dense_noisy(
        cls,
        noisy: np.ndarray,
        domain: Domain | None = None,
        *,
        epsilon: float = 0.0,
        method: str = "",
        metadata: Mapping[str, object] | None = None,
    ) -> "PrivateFrequencyMatrix":
        """Build a dense-backed private matrix from per-cell noisy counts."""
        noisy = np.asarray(noisy, dtype=np.float64)
        if noisy.ndim == 0:
            raise ValidationError("noisy array needs at least one dimension")
        if not np.all(np.isfinite(noisy)):
            raise ValidationError("noisy array must be finite")
        self = cls.__new__(cls)
        self._init_common(noisy.shape, domain, epsilon, method, metadata)
        self._partitioning = None
        self._packed = None
        self._dense_cache = noisy.copy()
        return self

    def _init_common(
        self,
        shape: Tuple[int, ...],
        domain: Domain | None,
        epsilon: float,
        method: str,
        metadata: Mapping[str, object] | None,
    ) -> None:
        if domain is None:
            domain = Domain.regular(shape)
        if domain.shape != tuple(shape):
            raise ValidationError(
                f"domain shape {domain.shape} != matrix shape {tuple(shape)}"
            )
        if epsilon < 0:
            raise ValidationError(f"epsilon must be non-negative, got {epsilon}")
        self._shape = tuple(shape)
        self._domain = domain
        self._epsilon = float(epsilon)
        self._method = str(method)
        self._metadata: Dict[str, object] = dict(metadata or {})
        self._prefix_cache: PrefixSumTable | None = None

    # ------------------------------------------------------------------
    @property
    def is_dense_backed(self) -> bool:
        """True when the output is per-cell noisy counts (no partition list)."""
        return self._partitioning is None and self._packed is None

    @property
    def partitioning(self) -> Partitioning:
        """The partition list (raises for dense-backed outputs).

        For packed-backed outputs the :class:`Partition` objects are
        materialized on first access (without re-validating the tiling —
        same contract as the sanitizers' ``validate=False``
        constructions); querying never needs them.
        """
        if self._partitioning is None:
            if self._packed is None:
                raise QueryError(
                    "this private matrix is dense-backed (per-cell counts); "
                    "it has no explicit partition list"
                )
            self._partitioning = self._packed.to_partitioning(validate=False)
        return self._partitioning

    @property
    def packed(self) -> PackedPartitioning:
        """Array-backed view of the partitioning (raises for dense-backed)."""
        if self._packed is None:
            if self._partitioning is None:
                raise QueryError(
                    "this private matrix is dense-backed (per-cell counts); "
                    "it has no explicit partition list"
                )
            self._packed = PackedPartitioning.from_partitioning(self._partitioning)
        return self._packed

    @property
    def partitions(self) -> Tuple[Partition, ...]:
        return self.partitioning.partitions

    @property
    def domain(self) -> Domain:
        return self._domain

    @property
    def shape(self) -> Tuple[int, ...]:
        return self._shape

    @property
    def ndim(self) -> int:
        return len(self._shape)

    @property
    def epsilon(self) -> float:
        return self._epsilon

    @property
    def method(self) -> str:
        return self._method

    @property
    def metadata(self) -> Dict[str, object]:
        return dict(self._metadata)

    @property
    def n_partitions(self) -> int:
        """Number of published regions (cells, for dense-backed outputs)."""
        if self._packed is not None:
            return self._packed.n_partitions
        if self._partitioning is not None:
            return len(self._partitioning)
        return int(np.prod(self._shape, dtype=np.int64))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PrivateFrequencyMatrix(method={self._method!r}, shape={self.shape}, "
            f"partitions={self.n_partitions}, epsilon={self._epsilon:g})"
        )

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------
    def answer(self, box: Box) -> float:
        """Answer an inclusive cell-index range query (uniformity assumption).

        This is the scalar *reference* implementation: a Python loop over
        partitions.  Batches should go through :meth:`answer_many`, which
        computes identical values vectorized.
        """
        box = validate_box(box, self.shape)
        if self.is_dense_backed:
            return float(self.dense_array()[box_slices(box)].sum())
        return float(sum(p.uniform_answer(box) for p in self.partitioning))

    def answer_many(self, boxes: Sequence[Box]) -> np.ndarray:
        """Answer a workload of box queries, vectorized.

        Boxes are validated once up front (not per partition per query),
        then routed to one of three strategies by the cost model described
        in the module docstring: the packed broadcast kernel, the
        interval-index pruned gather, or a dense prefix-sum
        reconstruction when ``n_queries × n_partitions`` would dwarf the
        cell count.
        """
        boxes = list(boxes)
        if not boxes:
            return np.zeros(0, dtype=np.float64)
        lows, highs = boxes_to_arrays(boxes)
        return self.answer_arrays(lows, highs)

    def plan_queries(self, lows: np.ndarray, highs: np.ndarray) -> str:
        """The strategy :meth:`answer_arrays` would pick for this batch.

        One of :data:`~repro.core.interval_index.PLAN_DENSE` (prefix-sum
        reconstruction), :data:`~repro.core.interval_index.PLAN_BROADCAST`
        (tiled geometric kernel) or
        :data:`~repro.core.interval_index.PLAN_PRUNED` (interval-index
        candidate gather).  Pure: answers nothing, but may lazily build
        the interval index it uses as the cost signal.
        """
        lows, highs = validate_box_arrays(lows, highs, self.shape)
        return self._plan(lows, highs)

    def _dense_wins(self, n_queries: int) -> bool:
        """The dense prefix-sum switch, checked before any index work."""
        n_cells = int(np.prod(self.shape, dtype=np.int64))
        return self.is_dense_backed or (
            n_cells <= DENSE_SWITCH_MAX_CELLS
            and n_queries * self.n_partitions > DENSE_SWITCH_FACTOR * n_cells
        )

    def _plan(self, lows: np.ndarray, highs: np.ndarray) -> str:
        """Cost model over validated bounds (see module docstring)."""
        if self._dense_wins(int(lows.shape[0])):
            return PLAN_DENSE
        return self.packed.choose_plan(lows, highs)

    def answer_arrays(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        *,
        plan: str | None = None,
        n_shards: int | None = None,
        shard_executor: object | None = None,
        return_plan: bool = False,
    ) -> np.ndarray | Tuple[np.ndarray, str]:
        """:meth:`answer_many` for ``(q, d)`` bound arrays.

        The workload evaluator calls this directly with cached arrays so
        repeated evaluations skip box-list conversion entirely.  Bounds
        are still checked — vectorized, one pass over the batch rather
        than per partition per query.

        ``plan`` forces a strategy (one of the
        :data:`~repro.core.interval_index.PLAN_DENSE` /
        ``PLAN_BROADCAST`` / ``PLAN_PRUNED`` / ``PLAN_SHARDED`` names);
        ``None`` lets :meth:`plan_queries` choose.  Passing ``n_shards``
        selects the sharded plan without naming it; ``shard_executor``
        is handed to :meth:`~repro.core.packed.PackedPartitioning.answer_sharded_arrays`
        for process-pool shard fan-out.  Forcing ``pruned`` on a matrix
        below the pruning threshold silently falls back to the broadcast
        kernel (identical answers; the reported plan says what actually
        ran).  With ``return_plan=True`` the result is ``(answers,
        plan_name)`` so callers can record which engine ran.
        """
        if n_shards is not None or shard_executor is not None:
            if plan is None:
                plan = PLAN_SHARDED
            elif plan != PLAN_SHARDED:
                raise QueryError(
                    f"n_shards/shard_executor only apply to the "
                    f"{PLAN_SHARDED!r} plan, not {plan!r}"
                )
        n_queries = int(np.asarray(lows).shape[0])
        if n_queries == 0:
            empty = np.zeros(0, dtype=np.float64)
            return (empty, plan or PLAN_BROADCAST) if return_plan else empty
        lows, highs = validate_box_arrays(lows, highs, self.shape)
        if plan is None and self._dense_wins(n_queries):
            plan = PLAN_DENSE
        if plan == PLAN_DENSE:
            out = self._prefix_table().query_arrays(lows, highs)
        elif self.is_dense_backed:
            raise QueryError(
                f"plan {plan!r} needs a partition list; this private matrix "
                f"is dense-backed"
            )
        elif plan == PLAN_SHARDED:
            out = self.packed.answer_sharded_arrays(
                lows, highs, n_shards=n_shards, executor=shard_executor
            ).answers
        elif plan == PLAN_PRUNED:
            # Forced pruned routes through the planner's force path so a
            # sub-threshold matrix degrades to broadcast instead of
            # paying gather bookkeeping it cannot amortize.
            plan, slices = plan_with_slices(
                self.packed, lows, highs, force=PLAN_PRUNED
            )
            if plan == PLAN_PRUNED:
                out = self.packed.interval_index().answer_pruned(
                    lows, highs, slices=slices
                )
            else:
                out = self.packed.answer_many_arrays(
                    lows, highs, plan=PLAN_BROADCAST
                )
        elif plan is None:
            # Plan and (when pruned) answer off one candidate-slice pass.
            plan, slices = plan_with_slices(self.packed, lows, highs)
            if plan == PLAN_PRUNED:
                out = self.packed.interval_index().answer_pruned(
                    lows, highs, slices=slices
                )
            else:
                out = self.packed.answer_many_arrays(
                    lows, highs, plan=PLAN_BROADCAST
                )
        else:
            out = self.packed.answer_many_arrays(lows, highs, plan=plan)
        return (out, plan) if return_plan else out

    def answer_sharded(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        *,
        n_shards: int | None = None,
        executor: object | None = None,
    ):
        """Sharded answering with full per-shard evidence.

        Like ``answer_arrays(plan="sharded")`` but returns the
        :class:`~repro.core.sharding.ShardedAnswer`, exposing which
        shards proved they had no candidate partitions and skipped the
        gather (``skipped_shards`` / ``plans``).  Raises for
        dense-backed outputs, which have no partition list to shard.
        """
        if self.is_dense_backed:
            raise QueryError(
                "the sharded plan needs a partition list; this private "
                "matrix is dense-backed"
            )
        lows, highs = validate_box_arrays(lows, highs, self.shape)
        return self.packed.answer_sharded_arrays(
            lows, highs, n_shards=n_shards, executor=executor
        )

    def answer_continuous(
        self, lows: Sequence[float], highs: Sequence[float]
    ) -> float:
        """Answer a continuous-coordinate range query via the domain."""
        return self.answer(self._domain.box_to_cells(lows, highs))

    # ------------------------------------------------------------------
    # Dense reconstruction
    # ------------------------------------------------------------------
    def to_dense(self) -> FrequencyMatrix:
        """Reconstruct the noisy matrix as counts, clipping negatives to 0.

        Laplace noise is signed, but :class:`FrequencyMatrix` stores counts;
        use :meth:`dense_array` for the raw signed reconstruction.
        """
        return FrequencyMatrix(np.maximum(self.dense_array(), 0.0), self._domain)

    def dense_array(self) -> np.ndarray:
        """The signed dense reconstruction: each cell holds its partition's
        noisy count divided by the partition's cell count."""
        if self._dense_cache is None:
            self._dense_cache = self.packed.dense_array()
        return self._dense_cache

    def _prefix_table(self) -> PrefixSumTable:
        if self._prefix_cache is None:
            self._prefix_cache = PrefixSumTable(self.dense_array())
        return self._prefix_cache

    # ------------------------------------------------------------------
    # Serialization (what actually gets published)
    # ------------------------------------------------------------------
    def to_publishable(self) -> Dict[str, object]:
        """The DP-safe payload: boxes, noisy counts, method, epsilon.

        True counts are intentionally omitted.  Dense-backed outputs publish
        the flattened per-cell noisy counts.  Packed-backed outputs
        serialize straight from the arrays without materializing
        :class:`Partition` objects.
        """
        payload: Dict[str, object] = {
            "method": self._method,
            "epsilon": self._epsilon,
            "shape": list(self.shape),
            "metadata": dict(self._metadata),
        }
        if self.is_dense_backed:
            payload["cells"] = self.dense_array().ravel().tolist()
        else:
            packed = self.packed
            lo, hi = packed.lo, packed.hi
            noisy = packed.noisy_counts
            payload["partitions"] = [
                {
                    "box": [[int(l), int(h)] for l, h in zip(lo[i], hi[i])],
                    "noisy_count": float(noisy[i]),
                }
                for i in range(packed.n_partitions)
            ]
        return payload

    @classmethod
    def from_publishable(cls, payload: Mapping[str, object]) -> "PrivateFrequencyMatrix":
        """Rebuild from :meth:`to_publishable` output."""
        try:
            shape = tuple(int(s) for s in payload["shape"])  # type: ignore[index]
        except (KeyError, TypeError, ValueError) as exc:
            raise QueryError(f"malformed publishable payload: {exc}") from exc
        common = {
            "epsilon": float(payload.get("epsilon", 0.0)),  # type: ignore[arg-type]
            "method": str(payload.get("method", "")),
            "metadata": payload.get("metadata"),
        }
        if "cells" in payload:
            cells = np.asarray(payload["cells"], dtype=np.float64)
            if cells.size != int(np.prod(shape, dtype=np.int64)):
                raise QueryError("cell payload size does not match shape")
            return cls.from_dense_noisy(cells.reshape(shape), **common)  # type: ignore[arg-type]
        try:
            raw = payload["partitions"]  # type: ignore[index]
            parts: List[Partition] = [
                Partition(
                    tuple((int(lo), int(hi)) for lo, hi in entry["box"]),
                    float(entry["noisy_count"]),
                )
                for entry in raw  # type: ignore[union-attr]
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise QueryError(f"malformed publishable payload: {exc}") from exc
        partitioning = Partitioning(parts, shape, validate=True)
        return cls(partitioning, **common)  # type: ignore[arg-type]
