"""Exception hierarchy for the ``repro`` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything produced by this package with a single ``except`` clause
while still letting programming errors (``TypeError`` from misuse of numpy,
etc.) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ValidationError(ReproError, ValueError):
    """An input failed validation (bad shape, negative count, empty domain)."""


class BudgetError(ReproError, ValueError):
    """A privacy-budget ledger was asked to overspend or misuse budget."""


class PartitioningError(ReproError, ValueError):
    """A partitioning is malformed (overlap, gap, or out-of-bounds box)."""


class QueryError(ReproError, ValueError):
    """A range query is malformed for the matrix it targets."""


class MethodError(ReproError, ValueError):
    """A sanitization method was configured or invoked incorrectly."""
