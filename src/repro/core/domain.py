"""Dimension domains: mapping between continuous coordinates and matrix cells.

A :class:`FrequencyMatrix` is an integer-indexed array, but the data it
summarizes lives in a continuous space (latitude/longitude, time of day,
...).  A :class:`Domain` records, for every dimension, the continuous extent
and a human-readable name, and converts between continuous coordinates and
cell indices.  This is what lets sanitized OD matrices keep *location
proximity semantics* (Section 2.3 of the paper) rather than abstract labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence, Tuple

import numpy as np

from .exceptions import ValidationError
from .validation import require_positive_int


@dataclass(frozen=True)
class DimensionSpec:
    """Description of a single matrix dimension.

    Parameters
    ----------
    size:
        Number of cells along this dimension (the dimension cardinality
        ``F_i`` in the paper's notation).
    low, high:
        Continuous extent covered by the dimension.  Cell ``k`` covers the
        half-open interval ``[low + k*w, low + (k+1)*w)`` with
        ``w = (high - low) / size``; the last cell includes ``high``.
    name:
        Human-readable label (``"origin_x"``, ``"noon_y"``, ...).
    """

    size: int
    low: float = 0.0
    high: float | None = None
    name: str = ""

    def __post_init__(self) -> None:
        require_positive_int(self.size, "size")
        high = float(self.size) if self.high is None else float(self.high)
        object.__setattr__(self, "low", float(self.low))
        object.__setattr__(self, "high", high)
        if not (np.isfinite(self.low) and np.isfinite(high)):
            raise ValidationError("dimension extent must be finite")
        if high <= self.low:
            raise ValidationError(
                f"dimension extent must be non-empty, got [{self.low}, {high}]"
            )

    @property
    def width(self) -> float:
        """Continuous width of a single cell."""
        return (self.high - self.low) / self.size

    def to_cell(self, coordinate: float) -> int:
        """Map a continuous coordinate to its cell index (clipped to range)."""
        if not np.isfinite(coordinate):
            raise ValidationError(f"coordinate must be finite, got {coordinate}")
        idx = int(np.floor((coordinate - self.low) / self.width))
        return min(max(idx, 0), self.size - 1)

    def to_cells(self, coordinates: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`to_cell` for an array of coordinates."""
        coords = np.asarray(coordinates, dtype=np.float64)
        if not np.all(np.isfinite(coords)):
            raise ValidationError("coordinates must be finite")
        idx = np.floor((coords - self.low) / self.width).astype(np.int64)
        return np.clip(idx, 0, self.size - 1)

    def cell_interval(self, index: int) -> Tuple[float, float]:
        """Continuous interval ``[lo, hi)`` covered by cell ``index``."""
        if not 0 <= index < self.size:
            raise ValidationError(f"cell index {index} out of range [0, {self.size})")
        lo = self.low + index * self.width
        return (lo, lo + self.width)

    def interval_to_cells(self, lo: float, hi: float) -> Tuple[int, int]:
        """Map a continuous interval to the inclusive cell range it touches."""
        if hi < lo:
            raise ValidationError(f"interval must satisfy lo <= hi, got [{lo}, {hi}]")
        return (self.to_cell(lo), self.to_cell(min(hi, np.nextafter(self.high, -np.inf))))


@dataclass(frozen=True)
class Domain:
    """An ordered collection of :class:`DimensionSpec`, one per matrix axis."""

    dimensions: Tuple[DimensionSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        dims = tuple(self.dimensions)
        if len(dims) == 0:
            raise ValidationError("a Domain needs at least one dimension")
        for d in dims:
            if not isinstance(d, DimensionSpec):
                raise ValidationError(f"expected DimensionSpec, got {type(d).__name__}")
        object.__setattr__(self, "dimensions", dims)

    @classmethod
    def regular(cls, shape: Sequence[int], names: Sequence[str] | None = None) -> "Domain":
        """Build a domain whose continuous extent equals the cell grid.

        This is the common case for synthetic experiments where cell ``k``
        covers ``[k, k+1)``.
        """
        shape = tuple(int(s) for s in shape)
        if names is None:
            names = [f"dim{i}" for i in range(len(shape))]
        if len(names) != len(shape):
            raise ValidationError("names must match shape length")
        return cls(tuple(DimensionSpec(size=s, name=n) for s, n in zip(shape, names)))

    @property
    def ndim(self) -> int:
        return len(self.dimensions)

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(d.size for d in self.dimensions)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(d.name for d in self.dimensions)

    @property
    def n_cells(self) -> int:
        return int(np.prod([d.size for d in self.dimensions], dtype=np.int64))

    def __len__(self) -> int:
        return len(self.dimensions)

    def __iter__(self) -> Iterator[DimensionSpec]:
        return iter(self.dimensions)

    def __getitem__(self, i: int) -> DimensionSpec:
        return self.dimensions[i]

    def point_to_cell(self, point: Iterable[float]) -> Tuple[int, ...]:
        """Map a continuous point to its cell multi-index."""
        coords = tuple(point)
        if len(coords) != self.ndim:
            raise ValidationError(
                f"point has {len(coords)} coordinates, domain has {self.ndim}"
            )
        return tuple(d.to_cell(c) for d, c in zip(self.dimensions, coords))

    def points_to_cells(self, points: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`point_to_cell` for an ``(n, ndim)`` array."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != self.ndim:
            raise ValidationError(
                f"points must have shape (n, {self.ndim}), got {pts.shape}"
            )
        cols = [d.to_cells(pts[:, i]) for i, d in enumerate(self.dimensions)]
        return np.stack(cols, axis=1)

    def box_to_cells(
        self, lows: Sequence[float], highs: Sequence[float]
    ) -> Tuple[Tuple[int, int], ...]:
        """Map a continuous axis-aligned box to inclusive cell ranges."""
        lows = tuple(lows)
        highs = tuple(highs)
        if len(lows) != self.ndim or len(highs) != self.ndim:
            raise ValidationError("box bounds must match domain dimensionality")
        return tuple(
            d.interval_to_cells(lo, hi)
            for d, lo, hi in zip(self.dimensions, lows, highs)
        )
