"""Dense multi-dimensional frequency matrices (the paper's ``F``).

A :class:`FrequencyMatrix` is a ``d``-dimensional array of non-negative
counts plus a :class:`~repro.core.domain.Domain` describing what each axis
means.  It is the single input type every sanitization method consumes and
the ground truth against which query accuracy is evaluated.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from .domain import Domain
from .exceptions import QueryError, ValidationError
from .validation import require_count_array, require_shape

#: An axis-aligned box over cell indices: one inclusive ``(lo, hi)`` pair per
#: dimension.  ``((0, 3), (2, 2))`` selects rows 0..3 of column 2.
Box = Tuple[Tuple[int, int], ...]


def validate_box(box: Box, shape: Sequence[int]) -> Box:
    """Validate ``box`` against ``shape`` and return it normalized to ints."""
    shape = tuple(shape)
    try:
        norm = tuple((int(lo), int(hi)) for lo, hi in box)
    except (TypeError, ValueError):
        raise QueryError(f"box must be a sequence of (lo, hi) pairs, got {box!r}") from None
    if len(norm) != len(shape):
        raise QueryError(
            f"box has {len(norm)} dimensions, matrix has {len(shape)}"
        )
    for axis, ((lo, hi), size) in enumerate(zip(norm, shape)):
        if lo > hi:
            raise QueryError(f"box axis {axis}: lo {lo} > hi {hi}")
        if lo < 0 or hi >= size:
            raise QueryError(
                f"box axis {axis}: range [{lo}, {hi}] outside [0, {size - 1}]"
            )
    return norm


def box_slices(box: Box) -> Tuple[slice, ...]:
    """Convert an inclusive box to a tuple of numpy slices."""
    return tuple(slice(lo, hi + 1) for lo, hi in box)


def box_n_cells(box: Box) -> int:
    """Number of cells contained in an inclusive box."""
    return int(np.prod([hi - lo + 1 for lo, hi in box], dtype=np.int64))


def full_box(shape: Sequence[int]) -> Box:
    """The box covering an entire matrix of the given shape."""
    return tuple((0, int(s) - 1) for s in shape)


class FrequencyMatrix:
    """A dense ``d``-dimensional matrix of counts with domain metadata.

    Parameters
    ----------
    data:
        Array-like of non-negative finite counts.  Stored as float64
        (sanitized counts are real-valued, and the paper never rounds).
    domain:
        Optional :class:`Domain`.  Defaults to a regular grid whose
        continuous extent equals the cell grid.

    Examples
    --------
    >>> fm = FrequencyMatrix([[1, 2], [3, 4]])
    >>> fm.total
    10.0
    >>> fm.range_count(((0, 0), (0, 1)))
    3.0
    """

    __slots__ = ("_data", "_domain")

    def __init__(self, data, domain: Domain | None = None):
        arr = require_count_array(data)
        if domain is None:
            domain = Domain.regular(arr.shape)
        if domain.shape != arr.shape:
            raise ValidationError(
                f"domain shape {domain.shape} does not match data shape {arr.shape}"
            )
        self._data = arr
        self._domain = domain

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, shape: Sequence[int], domain: Domain | None = None) -> "FrequencyMatrix":
        """An all-zero matrix of the given shape."""
        shape = require_shape(shape)
        return cls(np.zeros(shape, dtype=np.float64), domain)

    @classmethod
    def from_points(
        cls,
        points: np.ndarray,
        domain: Domain,
        weights: np.ndarray | None = None,
    ) -> "FrequencyMatrix":
        """Histogram continuous points into a frequency matrix.

        Parameters
        ----------
        points:
            ``(n, d)`` array of continuous coordinates.
        domain:
            The target :class:`Domain`; points outside its extent are
            clipped to the boundary cells.
        weights:
            Optional per-point weights (default 1 per point).
        """
        cells = domain.points_to_cells(points)
        return cls.from_cells(cells, domain, weights)

    @classmethod
    def from_cells(
        cls,
        cells: np.ndarray,
        domain: Domain,
        weights: np.ndarray | None = None,
    ) -> "FrequencyMatrix":
        """Histogram integer cell multi-indices into a frequency matrix."""
        cells = np.asarray(cells, dtype=np.int64)
        if cells.ndim != 2 or cells.shape[1] != domain.ndim:
            raise ValidationError(
                f"cells must have shape (n, {domain.ndim}), got {cells.shape}"
            )
        shape = domain.shape
        for axis in range(domain.ndim):
            col = cells[:, axis]
            if col.size and (col.min() < 0 or col.max() >= shape[axis]):
                raise ValidationError(
                    f"cell indices on axis {axis} outside [0, {shape[axis]})"
                )
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != (cells.shape[0],):
                raise ValidationError("weights must be one scalar per point")
            if np.any(weights < 0) or not np.all(np.isfinite(weights)):
                raise ValidationError("weights must be non-negative and finite")
        flat = np.ravel_multi_index(cells.T, shape) if cells.size else np.empty(0, np.int64)
        counts = np.bincount(flat, weights=weights, minlength=int(np.prod(shape)))
        return cls(counts.reshape(shape), domain)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """The underlying count array (do not mutate)."""
        return self._data

    @property
    def domain(self) -> Domain:
        return self._domain

    @property
    def shape(self) -> Tuple[int, ...]:
        return self._data.shape

    @property
    def ndim(self) -> int:
        return self._data.ndim

    @property
    def n_cells(self) -> int:
        return int(self._data.size)

    @property
    def total(self) -> float:
        """Total count ``N`` of the matrix."""
        return float(self._data.sum())

    def copy(self) -> "FrequencyMatrix":
        return FrequencyMatrix(self._data.copy(), self._domain)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FrequencyMatrix(shape={self.shape}, total={self.total:g})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FrequencyMatrix):
            return NotImplemented
        return self.shape == other.shape and bool(np.array_equal(self._data, other._data))

    __hash__ = None  # mutable content; not hashable

    # ------------------------------------------------------------------
    # Queries and views
    # ------------------------------------------------------------------
    def range_count(self, box: Box) -> float:
        """Exact count inside an inclusive cell box (ground truth answer)."""
        box = validate_box(box, self.shape)
        return float(self._data[box_slices(box)].sum())

    def box_view(self, box: Box) -> np.ndarray:
        """A numpy view of the cells inside an inclusive box."""
        box = validate_box(box, self.shape)
        return self._data[box_slices(box)]

    def box_total(self, box: Box) -> float:
        """Alias of :meth:`range_count` used by partitioning code."""
        return self.range_count(box)

    def marginal(self, axes: Sequence[int]) -> "FrequencyMatrix":
        """Sum out all axes *not* in ``axes``, preserving their order.

        Useful for collapsing an OD matrix with stops back to a classical
        2-endpoint OD matrix.
        """
        axes = tuple(int(a) for a in axes)
        if len(set(axes)) != len(axes):
            raise ValidationError("marginal axes must be unique")
        for a in axes:
            if not 0 <= a < self.ndim:
                raise ValidationError(f"axis {a} out of range for ndim {self.ndim}")
        if not axes:
            raise ValidationError("marginal needs at least one axis")
        drop = tuple(a for a in range(self.ndim) if a not in axes)
        summed = self._data.sum(axis=drop) if drop else self._data
        order = tuple(np.argsort(np.argsort(axes)))
        # numpy's sum preserves remaining axes in increasing order; permute to
        # the caller's requested order.
        current = tuple(sorted(axes))
        perm = tuple(current.index(a) for a in axes)
        summed = np.transpose(summed, perm)
        del order  # order computed via perm above
        new_dims = tuple(self._domain.dimensions[a] for a in axes)
        return FrequencyMatrix(summed.copy(), Domain(new_dims))

    def nonzero_fraction(self) -> float:
        """Fraction of cells with a non-zero count (a sparsity measure)."""
        return float(np.count_nonzero(self._data)) / float(self._data.size)

    def probabilities(self) -> np.ndarray:
        """Cell counts normalized to a probability distribution.

        Returns an all-zero array when the matrix is empty.
        """
        total = self._data.sum()
        if total <= 0:
            return np.zeros_like(self._data)
        return self._data / total

    def iter_cells(self) -> Iterable[Tuple[Tuple[int, ...], float]]:
        """Iterate ``(multi_index, count)`` over non-zero cells."""
        for idx in zip(*np.nonzero(self._data)):
            yield tuple(int(i) for i in idx), float(self._data[idx])
