"""N-dimensional prefix sums (summed-area tables) for fast range counting.

Evaluating 1000-query workloads against 10^6-cell matrices by slicing and
summing is too slow; a prefix-sum table answers any inclusive box query in
O(2^d) lookups after an O(n) build.  Used both for ground-truth answers and
for querying densely-reconstructed private matrices.
"""

from __future__ import annotations

from itertools import product
from typing import Sequence, Tuple

import numpy as np

from .exceptions import QueryError
from .frequency_matrix import Box, validate_box


class PrefixSumTable:
    """Summed-area table over an arbitrary-dimensional count array."""

    __slots__ = ("_table", "_shape")

    def __init__(self, data: np.ndarray):
        arr = np.asarray(data, dtype=np.float64)
        if arr.ndim == 0:
            raise QueryError("prefix sums need at least one dimension")
        self._shape: Tuple[int, ...] = arr.shape
        # Pad with a leading zero hyperplane per axis so queries need no
        # boundary special-casing: table[i] = sum of data[:i] (exclusive).
        table = np.zeros(tuple(s + 1 for s in arr.shape), dtype=np.float64)
        table[tuple(slice(1, None) for _ in arr.shape)] = arr
        for axis in range(arr.ndim):
            np.cumsum(table, axis=axis, out=table)
        self._table = table

    @property
    def shape(self) -> Tuple[int, ...]:
        return self._shape

    def query(self, box: Box) -> float:
        """Sum of the cells in an inclusive box via inclusion-exclusion."""
        box = validate_box(box, self._shape)
        ndim = len(self._shape)
        total = 0.0
        # For every corner choice, pick hi+1 (add) or lo (subtract) per axis;
        # sign is (-1)^(number of lo choices).
        for choice in product((0, 1), repeat=ndim):
            idx = tuple(
                (hi + 1) if pick else lo
                for pick, (lo, hi) in zip(choice, box)
            )
            sign = 1.0 if (ndim - sum(choice)) % 2 == 0 else -1.0
            total += sign * self._table[idx]
        return float(total)

    def query_many(self, boxes: Sequence[Box]) -> np.ndarray:
        """Vectorized :meth:`query` over a list of boxes."""
        boxes = [validate_box(b, self._shape) for b in boxes]
        if not boxes:
            return np.zeros(0, dtype=np.float64)
        lows = np.array([[lo for lo, _ in b] for b in boxes], dtype=np.int64)
        highs = np.array([[hi for _, hi in b] for b in boxes], dtype=np.int64)
        return self.query_arrays(lows, highs)

    def query_arrays(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """:meth:`query_many` for pre-validated ``(n, d)`` bound arrays.

        Skips per-box Python validation/conversion entirely, so repeated
        workload evaluations against cached arrays pay only the ``2^d``
        gather passes.
        """
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        ndim = len(self._shape)
        n = lows.shape[0]
        out = np.zeros(n, dtype=np.float64)
        for choice in product((0, 1), repeat=ndim):
            pick = np.array(choice, dtype=bool)
            idx = np.where(pick, highs + 1, lows)
            sign = 1.0 if (ndim - int(pick.sum())) % 2 == 0 else -1.0
            out += sign * self._table[tuple(idx[:, a] for a in range(ndim))]
        return out
