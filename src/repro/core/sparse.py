"""Sparse accumulator for building high-dimensional frequency matrices.

Origin-destination matrices with intermediate stops grow exponentially in
the number of recorded points (a 4-D OD matrix over a 1000x1000 grid has
10^12 cells).  Trajectory datasets, however, touch only a tiny fraction of
those cells.  :class:`SparseFrequencyMatrix` accumulates counts in a
dictionary keyed by cell multi-index and converts to a dense
:class:`~repro.core.frequency_matrix.FrequencyMatrix` once the target
granularity is coarse enough to fit in memory.
"""

from __future__ import annotations

from typing import Dict, Iterator, Sequence, Tuple

import numpy as np

from .domain import Domain
from .exceptions import ValidationError
from .frequency_matrix import FrequencyMatrix
from .validation import require_shape

#: Guard against accidentally densifying matrices that cannot fit in memory.
DEFAULT_DENSIFY_LIMIT = 50_000_000


class SparseFrequencyMatrix:
    """Dictionary-backed frequency matrix for sparse, high-dimensional data."""

    __slots__ = ("_shape", "_counts", "_domain")

    def __init__(self, shape: Sequence[int], domain: Domain | None = None):
        self._shape = require_shape(shape)
        if domain is None:
            domain = Domain.regular(self._shape)
        if domain.shape != self._shape:
            raise ValidationError(
                f"domain shape {domain.shape} does not match shape {self._shape}"
            )
        self._domain = domain
        self._counts: Dict[Tuple[int, ...], float] = {}

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self._shape

    @property
    def ndim(self) -> int:
        return len(self._shape)

    @property
    def domain(self) -> Domain:
        return self._domain

    @property
    def n_nonzero(self) -> int:
        return len(self._counts)

    @property
    def total(self) -> float:
        return float(sum(self._counts.values()))

    def __len__(self) -> int:
        return len(self._counts)

    # ------------------------------------------------------------------
    def _check_index(self, index: Sequence[int]) -> Tuple[int, ...]:
        idx = tuple(int(i) for i in index)
        if len(idx) != self.ndim:
            raise ValidationError(
                f"index has {len(idx)} coordinates, matrix has {self.ndim}"
            )
        for axis, (i, size) in enumerate(zip(idx, self._shape)):
            if not 0 <= i < size:
                raise ValidationError(
                    f"index {i} on axis {axis} outside [0, {size})"
                )
        return idx

    def increment(self, index: Sequence[int], amount: float = 1.0) -> None:
        """Add ``amount`` to the cell at ``index``."""
        if amount < 0 or not np.isfinite(amount):
            raise ValidationError(f"amount must be non-negative and finite, got {amount}")
        idx = self._check_index(index)
        if amount == 0.0:
            return
        self._counts[idx] = self._counts.get(idx, 0.0) + float(amount)

    def increment_many(self, cells: np.ndarray) -> None:
        """Add 1 to each cell multi-index in an ``(n, d)`` integer array."""
        cells = np.asarray(cells, dtype=np.int64)
        if cells.ndim != 2 or cells.shape[1] != self.ndim:
            raise ValidationError(
                f"cells must have shape (n, {self.ndim}), got {cells.shape}"
            )
        for axis in range(self.ndim):
            col = cells[:, axis]
            if col.size and (col.min() < 0 or col.max() >= self._shape[axis]):
                raise ValidationError(
                    f"cell indices on axis {axis} outside [0, {self._shape[axis]})"
                )
        # Aggregate duplicates in numpy before touching the dict.
        uniq, counts = np.unique(cells, axis=0, return_counts=True)
        for row, c in zip(uniq, counts):
            key = tuple(int(i) for i in row)
            self._counts[key] = self._counts.get(key, 0.0) + float(c)

    def get(self, index: Sequence[int]) -> float:
        """Count at ``index`` (0 when never incremented)."""
        return self._counts.get(self._check_index(index), 0.0)

    def items(self) -> Iterator[Tuple[Tuple[int, ...], float]]:
        return iter(self._counts.items())

    # ------------------------------------------------------------------
    def coarsen(self, new_shape: Sequence[int]) -> "SparseFrequencyMatrix":
        """Re-bin to a coarser grid whose sizes divide into the current grid.

        Cell ``i`` on an axis of size ``s`` maps to ``i * new_s // s`` — the
        standard proportional re-binning, exact when ``new_s`` divides ``s``.
        """
        new_shape = require_shape(new_shape)
        if len(new_shape) != self.ndim:
            raise ValidationError("new_shape must preserve dimensionality")
        for axis, (new_s, s) in enumerate(zip(new_shape, self._shape)):
            if new_s > s:
                raise ValidationError(
                    f"axis {axis}: cannot coarsen {s} cells into {new_s}"
                )
        out = SparseFrequencyMatrix(new_shape)
        for idx, count in self._counts.items():
            new_idx = tuple(
                (i * new_s) // s for i, new_s, s in zip(idx, new_shape, self._shape)
            )
            out._counts[new_idx] = out._counts.get(new_idx, 0.0) + count
        return out

    def to_dense(self, limit: int = DEFAULT_DENSIFY_LIMIT) -> FrequencyMatrix:
        """Materialize as a dense :class:`FrequencyMatrix`.

        Raises
        ------
        ValidationError
            If the dense cell count would exceed ``limit``.
        """
        n_cells = int(np.prod(self._shape, dtype=np.int64))
        if n_cells > limit:
            raise ValidationError(
                f"refusing to densify {n_cells} cells (> limit {limit}); "
                "coarsen() the matrix first"
            )
        data = np.zeros(self._shape, dtype=np.float64)
        for idx, count in self._counts.items():
            data[idx] = count
        return FrequencyMatrix(data, self._domain)

    @classmethod
    def from_dense(cls, matrix: FrequencyMatrix) -> "SparseFrequencyMatrix":
        """Build from a dense matrix, keeping only non-zero cells."""
        out = cls(matrix.shape, matrix.domain)
        for idx, count in matrix.iter_cells():
            out._counts[idx] = count
        return out
