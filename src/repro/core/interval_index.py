"""Per-dimension sorted interval index and the pruned query strategy.

The tiled broadcast kernel (:meth:`PackedPartitioning.answer_many_arrays
<repro.core.packed.PackedPartitioning.answer_many_arrays>`) scores every
``(query, partition)`` pair, so a batch of *small* queries against a
*large* partition list pays ``O(q × k × d)`` even though each query
overlaps only a handful of partitions.  An :class:`IntervalIndex` makes
the overlapping handful cheap to find.

Per dimension ``a`` the partitions are argsorted by ``lo[:, a]``, and the
running maximum of ``hi`` along that order is precomputed.  A query
``[qlo, qhi]`` on that dimension can only overlap positions in a
*contiguous* slice ``[s, e)`` of the lo-sorted order:

* ``e = searchsorted(lo_sorted, qhi, "right")`` — everything at or past
  ``e`` starts after the query ends;
* ``s = searchsorted(running_max_hi, qlo, "left")`` — the running max is
  non-decreasing, and everything before ``s`` has ``hi < qlo``, so it
  ends before the query starts.

Two binary searches per (query, dimension) therefore bound the candidate
set from above; the dimension with the smallest slice is the probe axis.
Gathered candidates then go through the exact overlap product (the same
arithmetic as the broadcast kernel, clipped at zero), so false positives
contribute exactly zero and the answers are *identical* to the unpruned
kernel up to float summation order.

The slice lengths double as the planner's cost signal: their sum
estimates how many pairs the pruned gather touches, and
:func:`choose_packed_plan` compares that (plus a per-query gather
overhead) against the ``q × k`` pairs the broadcast kernel always pays.
Sharded evaluation can reuse the same structure to skip partition ranges
that no query in a batch touches (see ROADMAP).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Tuple

import numpy as np

from .exceptions import QueryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .packed import PackedPartitioning

#: Plan names recorded on result rows and accepted by the ``plan=``
#: overrides of the answering entry points.
PLAN_DENSE = "dense"
PLAN_BROADCAST = "broadcast"
PLAN_PRUNED = "pruned"
PLAN_SHARDED = "sharded"

#: Plans the packed (partition-backed) engine can execute.  ``dense`` is
#: handled one level up, by the private matrix's prefix-sum switch.
PACKED_PLANS = (PLAN_BROADCAST, PLAN_PRUNED, PLAN_SHARDED)

#: Below this many partitions the broadcast kernel is already cheap and
#: the gather bookkeeping cannot amortize.
PRUNE_MIN_PARTITIONS = 128

#: Per-query overhead of the pruned gather (candidate-slice collection
#: and the bincount reduction), expressed in broadcast pair-equivalents.
PRUNE_OVERHEAD_PAIRS = 64

#: The pruned plan must look at least this many times cheaper than the
#: broadcast kernel before the planner picks it.  A gathered pair costs
#: several times a contiguous broadcast pair (fancy indexing, the
#: bincount reduction), and the slice bound is an upper bound on work
#: only, not a guarantee of savings — measured crossover on the
#: query-engine microbenchmark substrate sits near an 8:1 pair ratio.
PRUNE_SAFETY_FACTOR = 8.0

#: Upper bound on gathered (query, partition) pairs per processing chunk
#: of the pruned strategy, so peak memory stays bounded like the
#: broadcast kernel's query tiling.
GATHER_TILE_PAIRS = 2_000_000


@dataclass(frozen=True)
class PlanCost:
    """The pruned-vs-broadcast cost rule's tunable constants.

    One value object threads the rule through every planning path —
    the single-node planner (:func:`plan_with_slices`), the per-shard
    planner (:meth:`repro.core.sharding.PartitionShard.partial`), and
    the engine facade's :class:`~repro.engine.EngineConfig` — so a
    calibration override tunes them all at once.  The defaults are the
    historical module constants; plain frozen data, so it pickles with
    shard tasks.
    """

    min_partitions: int = PRUNE_MIN_PARTITIONS
    overhead_pairs: float = PRUNE_OVERHEAD_PAIRS
    safety_factor: float = PRUNE_SAFETY_FACTOR


#: The module-constant rule, used wherever no override is supplied.
DEFAULT_PLAN_COST = PlanCost()


class IntervalIndex:
    """Sorted per-dimension interval index over a packed partitioning.

    Construction costs one ``O(k log k)`` argsort per dimension; the
    owning :class:`~repro.core.packed.PackedPartitioning` builds it
    lazily and caches it, so repeated batches share one index.
    """

    __slots__ = ("_packed", "_order", "_lo_sorted", "_run_max_hi")

    def __init__(self, packed: "PackedPartitioning"):
        self._packed = packed
        lo, hi = packed.lo, packed.hi
        d = lo.shape[1]
        self._order: List[np.ndarray] = []
        self._lo_sorted: List[np.ndarray] = []
        self._run_max_hi: List[np.ndarray] = []
        for a in range(d):
            order = np.argsort(lo[:, a], kind="stable")
            self._order.append(order)
            self._lo_sorted.append(np.ascontiguousarray(lo[order, a]))
            self._run_max_hi.append(np.maximum.accumulate(hi[order, a]))

    @classmethod
    def from_buffers(
        cls,
        packed: "PackedPartitioning",
        order: List[np.ndarray],
        lo_sorted: List[np.ndarray],
        run_max_hi: List[np.ndarray],
    ) -> "IntervalIndex":
        """Rebuild an index from already-computed backing buffers.

        The zero-copy construction path of the shared-memory shard
        layout (:mod:`repro.core.shm`): a worker process attaches the
        per-dimension ``order`` / ``lo_sorted`` / ``run_max_hi`` arrays
        the parent built once, instead of re-sorting — so the attached
        index is buffer-identical to the parent's, not merely
        value-equal.  No validation: the caller owns consistency with
        ``packed``.
        """
        index = object.__new__(cls)
        index._packed = packed
        index._order = list(order)
        index._lo_sorted = list(lo_sorted)
        index._run_max_hi = list(run_max_hi)
        return index

    @property
    def packed(self) -> "PackedPartitioning":
        return self._packed

    @property
    def n_partitions(self) -> int:
        return self._packed.n_partitions

    # ------------------------------------------------------------------
    # Candidate slices (the planner's cost signal)
    # ------------------------------------------------------------------
    def candidate_slices(
        self, lows: np.ndarray, highs: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(start, stop)`` arrays of shape ``(q, d)`` into each
        dimension's lo-sorted order.

        The slice ``order[a][start[i, a]:stop[i, a]]`` is a superset of
        the partitions query ``i`` can overlap, judged by axis ``a``
        alone (``stop`` may not exceed ``start``; treat the slice as
        empty then).
        """
        q, d = lows.shape
        start = np.empty((q, d), dtype=np.int64)
        stop = np.empty((q, d), dtype=np.int64)
        for a in range(d):
            start[:, a] = np.searchsorted(
                self._run_max_hi[a], lows[:, a], side="left"
            )
            stop[:, a] = np.searchsorted(
                self._lo_sorted[a], highs[:, a], side="right"
            )
        return start, stop

    def candidate_counts(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """``(q,)`` upper bound on partitions each query can overlap.

        The tightest single-axis bound: ``min`` over dimensions of the
        candidate-slice length.  Never smaller than the true count.
        """
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        if lows.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        start, stop = self.candidate_slices(lows, highs)
        return np.clip(stop - start, 0, None).min(axis=1)

    def candidate_fraction(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """``(q,)`` estimated fraction of the partition list per query."""
        return self.candidate_counts(lows, highs) / float(self.n_partitions)

    def candidates(self, qlo: np.ndarray, qhi: np.ndarray) -> np.ndarray:
        """Exact sorted partition ids overlapping one query box.

        The single-query building block for sharded evaluation: probe the
        cheapest axis, then filter the gathered superset with the full
        per-axis overlap test.
        """
        qlo = np.asarray(qlo, dtype=np.int64).reshape(1, -1)
        qhi = np.asarray(qhi, dtype=np.int64).reshape(1, -1)
        if qlo.shape[1] != len(self._order):
            raise QueryError(
                f"query has {qlo.shape[1]} dimensions, "
                f"index has {len(self._order)}"
            )
        start, stop = self.candidate_slices(qlo, qhi)
        lengths = np.clip(stop - start, 0, None)[0]
        axis = int(lengths.argmin())
        ids = self._order[axis][start[0, axis]:stop[0, axis]]
        lo, hi = self._packed.lo, self._packed.hi
        mask = np.logical_and(lo[ids] <= qhi, hi[ids] >= qlo).all(axis=1)
        return np.sort(ids[mask])

    # ------------------------------------------------------------------
    # The pruned gather strategy
    # ------------------------------------------------------------------
    def answer_pruned(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        *,
        tile_pairs: int = GATHER_TILE_PAIRS,
        slices: Tuple[np.ndarray, np.ndarray] | None = None,
    ) -> np.ndarray:
        """Uniformity-assumption answers via candidate gather.

        Identical values to the broadcast kernel (same overlap product,
        clipped at zero, contracted against ``noisy / n_cells`` weights)
        — only the partitions that each query's probe axis cannot rule
        out are touched.  The candidate slices of a whole chunk of
        queries are concatenated into one flat gather, the overlap
        products computed in a single vectorized pass, and the per-query
        sums recovered with a segmented ``bincount`` — the Python-level
        loop only collects array views.  ``lows``/``highs`` are
        ``(q, d)`` validated bounds; chunks are sized so no more than
        ``tile_pairs`` gathered pairs are in flight at once.  ``slices``
        accepts this batch's :meth:`candidate_slices` result when the
        planner already computed it (see :func:`plan_with_slices`).
        """
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        q = lows.shape[0]
        out = np.zeros(q, dtype=np.float64)
        if q == 0:
            return out
        slice_start, slice_stop = (
            slices if slices is not None else self.candidate_slices(lows, highs)
        )
        per_dim = np.clip(slice_stop - slice_start, 0, None)
        best_axis = per_dim.argmin(axis=1)
        rows = np.arange(q)
        lengths = per_dim[rows, best_axis]
        bounds = np.concatenate([[0], np.cumsum(lengths)])
        lo, hi = self._packed.lo, self._packed.hi
        weights = self._packed.weights
        start = 0
        while start < q:
            # Largest chunk whose gathered pairs fit the tile (always at
            # least one query, even if that query alone exceeds it).
            stop = int(
                np.searchsorted(bounds, bounds[start] + tile_pairs, "right")
            ) - 1
            stop = min(max(stop, start + 1), q)
            ids_chunks = [
                self._order[best_axis[i]][
                    slice_start[i, best_axis[i]]:slice_stop[i, best_axis[i]]
                ]
                for i in range(start, stop)
                if lengths[i] > 0
            ]
            if not ids_chunks:
                start = stop
                continue
            ids = np.concatenate(ids_chunks)
            qidx = np.repeat(np.arange(start, stop), lengths[start:stop])
            ov = np.minimum(highs[qidx], hi[ids])
            ov -= np.maximum(lows[qidx], lo[ids])
            ov += 1
            np.clip(ov, 0, None, out=ov)
            vals = ov.prod(axis=1, dtype=np.float64)
            vals *= weights[ids]
            out[start:stop] = np.bincount(
                qidx - start, weights=vals, minlength=stop - start
            )
            start = stop
        return out


def candidate_cost_plan(
    counts: np.ndarray, q: int, k: int, cost: PlanCost | None = None
) -> str:
    """The pruned-vs-broadcast pair-cost rule over a candidate bound.

    ``counts`` is the per-query candidate bound (min slice length over
    dimensions) for a batch of ``q`` queries against ``k`` partitions.
    The single source of the cost model: :func:`plan_with_slices` and
    the per-shard planner in :mod:`repro.core.sharding` both route
    through it, so tuning the constants tunes every path at once.
    ``cost`` overrides the rule's constants (``None`` uses the module
    defaults, :data:`DEFAULT_PLAN_COST`).
    """
    if cost is None:
        cost = DEFAULT_PLAN_COST
    if k < cost.min_partitions:
        return PLAN_BROADCAST
    est_pairs = float(counts.sum()) + q * cost.overhead_pairs
    if cost.safety_factor * est_pairs < float(q) * k:
        return PLAN_PRUNED
    return PLAN_BROADCAST


def plan_with_slices(
    packed: "PackedPartitioning",
    lows: np.ndarray,
    highs: np.ndarray,
    *,
    force: str | None = None,
    cost: PlanCost | None = None,
) -> Tuple[str, Tuple[np.ndarray, np.ndarray] | None]:
    """Pick :data:`PLAN_PRUNED` or :data:`PLAN_BROADCAST` for a batch.

    The broadcast kernel always scores ``q × k`` pairs.  The pruned
    gather touches roughly the summed candidate-slice bound plus a
    per-query gather overhead; it is chosen only when that estimate
    beats the broadcast cost by :data:`PRUNE_SAFETY_FACTOR` (gathered
    pairs are slower than contiguous ones).  Batches against few
    partitions never prune — there is nothing worth skipping.

    ``force`` pins the outcome to one of :data:`PACKED_PLANS` instead of
    consulting the cost model.  Forcing :data:`PLAN_PRUNED` on a matrix
    with fewer than :data:`PRUNE_MIN_PARTITIONS` partitions falls back
    to :data:`PLAN_BROADCAST` rather than erroring: below the threshold
    the gather bookkeeping cannot amortize, and the two plans compute
    identical answers, so the engine silently takes the cheap route.
    :data:`PLAN_SHARDED` is only ever forced — sharding is an execution
    *layout* for partition lists that outgrow one node, not a
    single-node win the cost model could discover.

    Returns ``(plan, slices)``: when the index was consulted, ``slices``
    is its :meth:`IntervalIndex.candidate_slices` result for the batch,
    so the pruned path does not recompute it (feed it to
    :meth:`IntervalIndex.answer_pruned`).  ``cost`` overrides the cost
    rule's constants (see :class:`PlanCost`).
    """
    if cost is None:
        cost = DEFAULT_PLAN_COST
    lows = np.asarray(lows, dtype=np.int64)
    highs = np.asarray(highs, dtype=np.int64)
    q = int(lows.shape[0])
    k = packed.n_partitions
    if force is not None:
        if force not in PACKED_PLANS:
            raise QueryError(
                f"unknown packed query plan {force!r}; expected one of "
                f"{', '.join(repr(p) for p in PACKED_PLANS)}"
            )
        if force == PLAN_PRUNED:
            if q == 0 or k < cost.min_partitions:
                return PLAN_BROADCAST, None
            return PLAN_PRUNED, packed.interval_index().candidate_slices(
                lows, highs
            )
        return force, None
    if q == 0 or k < cost.min_partitions:
        return PLAN_BROADCAST, None
    slices = packed.interval_index().candidate_slices(lows, highs)
    counts = np.clip(slices[1] - slices[0], 0, None).min(axis=1)
    return candidate_cost_plan(counts, q, k, cost), slices


def choose_packed_plan(
    packed: "PackedPartitioning",
    lows: np.ndarray,
    highs: np.ndarray,
    *,
    force: str | None = None,
    cost: PlanCost | None = None,
) -> str:
    """:func:`plan_with_slices` for callers that only want the name."""
    return plan_with_slices(packed, lows, highs, force=force, cost=cost)[0]
