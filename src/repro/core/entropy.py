"""Entropy computations used by EBP and DAF-Entropy (paper Def. 4, Eq. 14-19).

The paper reasons about three quantities:

* ``H(F)`` — the entropy of a frequency matrix, treating normalized cell
  counts as a distribution;
* ``H(F | P)`` — the entropy after partitioning (counts aggregated per
  partition);
* the *noise entropy* of the Laplace perturbation at a given granularity.

Direct computation of ``H(F)`` on raw data violates DP, which is why the
algorithms approximate it by ``log2(N)`` under a uniformity assumption
(Eq. 17); both the exact and the approximate forms live here so tests can
compare them.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from .exceptions import ValidationError
from .frequency_matrix import FrequencyMatrix
from .partition import Partitioning


def distribution_entropy(weights: Iterable[float]) -> float:
    """Shannon entropy (base 2) of non-negative weights, normalized to sum 1.

    Zero weights contribute nothing (``0 * log 0 = 0``).  Returns 0 for an
    all-zero or empty input.
    """
    w = np.asarray(list(weights) if not isinstance(weights, np.ndarray) else weights,
                   dtype=np.float64).ravel()
    if w.size == 0:
        return 0.0
    if np.any(w < 0) or not np.all(np.isfinite(w)):
        raise ValidationError("entropy weights must be non-negative and finite")
    total = w.sum()
    if total <= 0:
        return 0.0
    p = w / total
    # Mask after normalization: a denormal weight can underflow to exactly
    # 0 when divided by the total, and 0 * log2(0) must contribute nothing.
    p = p[p > 0]
    return float(-(p * np.log2(p)).sum())


def matrix_entropy(matrix: FrequencyMatrix) -> float:
    """``H(F)``: entropy of the cell-count distribution."""
    return distribution_entropy(matrix.data)


def partition_entropy(matrix: FrequencyMatrix, partitioning: Partitioning) -> float:
    """``H(F | P)`` per Def. 4, using the partitions' *true* counts."""
    counts = [matrix.range_count(p.box) for p in partitioning]
    return distribution_entropy(counts)


def information_loss(matrix: FrequencyMatrix, partitioning: Partitioning) -> float:
    """``H(F) - H(F | P)`` (Eq. 15): information lost by aggregation.

    Always >= 0 up to float error, because aggregation cannot increase
    entropy of the induced distribution.
    """
    return matrix_entropy(matrix) - partition_entropy(matrix, partitioning)


def uniform_entropy_approximation(total_count: float) -> float:
    """``H(F) ~= log2(N)`` (Eq. 17 left): entropy if the N points were spread
    uniformly, one per cell.  Clamped to 0 for ``N <= 1``."""
    if total_count <= 1.0:
        return 0.0
    return float(math.log2(total_count))


def partitioned_entropy_approximation(m: float, ndim: int) -> float:
    """``H(F | m) ~= log2(m^d)`` (Eq. 17 right): entropy of a uniform
    distribution over the ``m^d`` grid partitions."""
    if m < 1.0:
        raise ValidationError(f"granularity m must be >= 1, got {m}")
    if ndim < 1:
        raise ValidationError(f"ndim must be >= 1, got {ndim}")
    return float(ndim * math.log2(m))


def laplace_noise_entropy(m: float, ndim: int, epsilon: float) -> float:
    """Entropy of the aggregate Laplace perturbation at granularity ``m``
    (Eq. 14): ``-log2(eps / (sqrt(2) * m^{d/2}))``.

    This is the paper's information-theoretic proxy for how much the noise
    obscures the published histogram; EBP balances it against the
    information loss of coarsening.
    """
    if epsilon <= 0:
        raise ValidationError(f"epsilon must be positive, got {epsilon}")
    if m < 1.0:
        raise ValidationError(f"granularity m must be >= 1, got {m}")
    std = math.sqrt(2.0) * m ** (ndim / 2.0) / epsilon
    return float(math.log2(std))
