"""Partitions of a frequency matrix and complete partitionings.

A sanitization method outputs a set of non-overlapping axis-aligned boxes
covering the whole matrix, each carrying a noisy count (Section 2.2 of the
paper).  :class:`Partition` is one such box; :class:`Partitioning` is the
validated complete set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from .exceptions import PartitioningError
from .frequency_matrix import Box, box_n_cells, full_box, validate_box


@dataclass(frozen=True)
class Partition:
    """One axis-aligned box of matrix cells with true and noisy counts.

    Attributes
    ----------
    box:
        Inclusive ``(lo, hi)`` index range per dimension.
    noisy_count:
        The sanitized (published) count.  May be negative: Laplace noise is
        unbounded and the paper does not post-process.
    true_count:
        The exact count.  Kept for evaluation only — it is **never**
        published; serialization of private outputs drops it.
    """

    box: Box
    noisy_count: float
    true_count: float | None = None

    def __post_init__(self) -> None:
        norm = tuple((int(lo), int(hi)) for lo, hi in self.box)
        for axis, (lo, hi) in enumerate(norm):
            if lo > hi:
                raise PartitioningError(f"partition axis {axis}: lo {lo} > hi {hi}")
            if lo < 0:
                raise PartitioningError(f"partition axis {axis}: negative lo {lo}")
        object.__setattr__(self, "box", norm)
        object.__setattr__(self, "noisy_count", float(self.noisy_count))
        if self.true_count is not None:
            object.__setattr__(self, "true_count", float(self.true_count))

    @property
    def n_cells(self) -> int:
        """Number of matrix entries (cells) inside the box."""
        return box_n_cells(self.box)

    @property
    def ndim(self) -> int:
        return len(self.box)

    def contains_cell(self, index: Sequence[int]) -> bool:
        """Whether the cell multi-index lies inside this partition."""
        idx = tuple(index)
        if len(idx) != self.ndim:
            raise PartitioningError(
                f"index has {len(idx)} coordinates, partition has {self.ndim}"
            )
        return all(lo <= i <= hi for i, (lo, hi) in zip(idx, self.box))

    def overlap_cells(self, query: Box) -> int:
        """Number of cells shared with ``query`` (0 when disjoint)."""
        if len(query) != self.ndim:
            raise PartitioningError("query dimensionality mismatch")
        n = 1
        for (plo, phi), (qlo, qhi) in zip(self.box, query):
            lo = max(plo, qlo)
            hi = min(phi, qhi)
            if lo > hi:
                return 0
            n *= hi - lo + 1
        return n

    def uniform_answer(self, query: Box) -> float:
        """Contribution to a range query under the uniformity assumption.

        The partition contributes ``noisy_count * overlap / n_cells``
        (Section 2.2: within-partition uniformity).
        """
        overlap = self.overlap_cells(query)
        if overlap == 0:
            return 0.0
        return self.noisy_count * overlap / self.n_cells


class Partitioning:
    """A validated, complete, non-overlapping set of partitions.

    Completeness (every cell covered exactly once) is what keeps the Laplace
    sensitivity at 1: one individual's record falls in exactly one partition.
    """

    __slots__ = ("_partitions", "_shape")

    def __init__(
        self,
        partitions: Iterable[Partition],
        shape: Sequence[int],
        *,
        validate: bool = True,
    ):
        self._partitions: Tuple[Partition, ...] = tuple(partitions)
        self._shape = tuple(int(s) for s in shape)
        if not self._partitions:
            raise PartitioningError("a partitioning needs at least one partition")
        for p in self._partitions:
            validate_box(p.box, self._shape)
        if validate:
            self._validate_exact_cover()

    def _validate_exact_cover(self) -> None:
        """Check the partitions tile the matrix exactly once.

        Uses a cell-count identity plus pairwise-disjointness.  Equal total
        cell count and no pairwise overlap together imply an exact cover.
        Pairwise checking is O(k^2) in the number of partitions; it is only
        run when ``validate=True`` (the default for externally-constructed
        partitionings; methods that construct tilings by recursive splitting
        may skip it).
        """
        total_cells = int(np.prod(self._shape, dtype=np.int64))
        covered = sum(p.n_cells for p in self._partitions)
        if covered != total_cells:
            raise PartitioningError(
                f"partitions cover {covered} cells, matrix has {total_cells}"
            )
        parts = self._partitions
        for i in range(len(parts)):
            for j in range(i + 1, len(parts)):
                if parts[i].overlap_cells(parts[j].box) > 0:
                    raise PartitioningError(
                        f"partitions {i} and {j} overlap: "
                        f"{parts[i].box} vs {parts[j].box}"
                    )

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self._shape

    @property
    def ndim(self) -> int:
        return len(self._shape)

    def __len__(self) -> int:
        return len(self._partitions)

    def __iter__(self) -> Iterator[Partition]:
        return iter(self._partitions)

    def __getitem__(self, i: int) -> Partition:
        return self._partitions[i]

    @property
    def partitions(self) -> Tuple[Partition, ...]:
        return self._partitions

    @property
    def total_noisy_count(self) -> float:
        return float(sum(p.noisy_count for p in self._partitions))

    # ------------------------------------------------------------------
    @classmethod
    def single(cls, shape: Sequence[int], noisy_count: float, true_count: float | None = None) -> "Partitioning":
        """The trivial one-partition tiling (the UNIFORM baseline's output)."""
        box = full_box(shape)
        return cls([Partition(box, noisy_count, true_count)], shape, validate=False)

    def find(self, index: Sequence[int]) -> Partition:
        """The partition containing a cell multi-index (linear scan)."""
        for p in self._partitions:
            if p.contains_cell(index):
                return p
        raise PartitioningError(f"no partition contains cell {tuple(index)}")


def grid_boxes(shape: Sequence[int], splits_per_dim: Sequence[int]) -> List[Box]:
    """Uniform grid tiling: dimension ``i`` is cut into ``splits_per_dim[i]``
    near-equal inclusive ranges (numpy ``array_split`` semantics).

    Used by EUG / EBP / MKM, which divide every dimension into ``m``
    intervals.
    """
    shape = tuple(int(s) for s in shape)
    edges_per_dim: List[List[Tuple[int, int]]] = []
    for size, m in zip(shape, splits_per_dim):
        m = max(1, min(int(m), size))
        cuts = np.linspace(0, size, m + 1).astype(np.int64)
        ranges = [
            (int(cuts[i]), int(cuts[i + 1]) - 1)
            for i in range(m)
            if cuts[i + 1] > cuts[i]
        ]
        edges_per_dim.append(ranges)
    boxes: List[Box] = []
    _accumulate_boxes(edges_per_dim, 0, [], boxes)
    return boxes


def _accumulate_boxes(
    edges_per_dim: List[List[Tuple[int, int]]],
    axis: int,
    prefix: List[Tuple[int, int]],
    out: List[Box],
) -> None:
    if axis == len(edges_per_dim):
        out.append(tuple(prefix))
        return
    for rng in edges_per_dim[axis]:
        prefix.append(rng)
        _accumulate_boxes(edges_per_dim, axis + 1, prefix, out)
        prefix.pop()


def split_interval(lo: int, hi: int, cut_points: Sequence[int]) -> List[Tuple[int, int]]:
    """Split inclusive ``[lo, hi]`` at interior cut points.

    Each ``c`` in ``cut_points`` starts a new interval at ``c`` (i.e. the
    previous interval ends at ``c - 1``).  Cut points must be strictly
    increasing and lie in ``(lo, hi]``.
    """
    intervals: List[Tuple[int, int]] = []
    prev = int(lo)
    last = None
    for c in cut_points:
        c = int(c)
        if last is not None and c <= last:
            raise PartitioningError("cut points must be strictly increasing")
        if not lo < c <= hi:
            raise PartitioningError(
                f"cut point {c} outside ({lo}, {hi}]"
            )
        intervals.append((prev, c - 1))
        prev = c
        last = c
    intervals.append((prev, int(hi)))
    return intervals
