"""DP-safe post-processing of private frequency matrices.

Differential privacy is closed under post-processing: any transformation
of a published output that does not touch the raw data preserves the
guarantee.  These helpers implement the standard clean-ups analysts apply
before using a sanitized matrix:

* :func:`clip_nonnegative` — zero out negative noisy counts;
* :func:`rescale_to_total` — force the counts to sum to a target total
  (e.g. a separately-published sanitized ``N``);
* :func:`project_nonnegative_total` — both at once: clip, then shift the
  clipped mass proportionally so the published total is preserved.

All functions return a *new* :class:`PrivateFrequencyMatrix`; the input is
never mutated, and the output records the transformation in its metadata.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .exceptions import ValidationError
from .partition import Partition, Partitioning
from .private_matrix import PrivateFrequencyMatrix


def _rebuild(
    private: PrivateFrequencyMatrix,
    new_counts: np.ndarray,
    note: str,
) -> PrivateFrequencyMatrix:
    """A copy of ``private`` with per-partition (or per-cell) counts
    replaced by ``new_counts``."""
    meta = private.metadata
    meta["postprocessing"] = meta.get("postprocessing", []) + [note]
    if private.is_dense_backed:
        return PrivateFrequencyMatrix.from_dense_noisy(
            new_counts.reshape(private.shape),
            private.domain,
            epsilon=private.epsilon,
            method=private.method,
            metadata=meta,
        )
    parts: List[Partition] = [
        Partition(p.box, float(c), p.true_count)
        for p, c in zip(private.partitions, new_counts)
    ]
    return PrivateFrequencyMatrix(
        Partitioning(parts, private.shape, validate=False),
        private.domain,
        epsilon=private.epsilon,
        method=private.method,
        metadata=meta,
    )


def _counts_of(private: PrivateFrequencyMatrix) -> np.ndarray:
    if private.is_dense_backed:
        return private.dense_array().ravel().copy()
    return np.array([p.noisy_count for p in private.partitions])


def clip_nonnegative(private: PrivateFrequencyMatrix) -> PrivateFrequencyMatrix:
    """Zero out negative counts (the simplest consistency fix).

    Introduces a positive bias on sums over sparse regions — pair with
    :func:`rescale_to_total` when aggregate consistency matters.
    """
    counts = _counts_of(private)
    return _rebuild(private, np.maximum(counts, 0.0), "clip_nonnegative")


def rescale_to_total(
    private: PrivateFrequencyMatrix, target_total: float
) -> PrivateFrequencyMatrix:
    """Scale all counts so they sum to ``target_total``.

    ``target_total`` must itself be DP-derived (e.g. the sanitized total
    a method already publishes) for the result to remain private.
    Requires a positive current sum.
    """
    if not np.isfinite(target_total):
        raise ValidationError(f"target_total must be finite, got {target_total}")
    counts = _counts_of(private)
    current = counts.sum()
    if current <= 0:
        raise ValidationError(
            "cannot rescale: current counts sum to a non-positive value; "
            "clip first or use project_nonnegative_total"
        )
    factor = target_total / current
    if not np.isfinite(factor):
        raise ValidationError(
            f"cannot rescale: current sum {current:g} is too small for "
            f"target {target_total:g}"
        )
    return _rebuild(
        private, counts * factor, f"rescale_to_total({target_total:g})",
    )


def project_nonnegative_total(
    private: PrivateFrequencyMatrix,
    target_total: float | None = None,
    max_iterations: int = 100,
) -> PrivateFrequencyMatrix:
    """Clip negatives while preserving the (published) total.

    Iteratively zeroes negative entries and subtracts the created surplus
    proportionally from the positive ones — the standard projection onto
    the simplex-like set {x >= 0, sum x = T} under a proportional rule.
    ``target_total`` defaults to the current summed count (clipped at 0).
    """
    counts = _counts_of(private)
    total = counts.sum() if target_total is None else float(target_total)
    total = max(total, 0.0)
    x = counts.copy()
    for _ in range(max_iterations):
        x = np.maximum(x, 0.0)
        s = x.sum()
        if s <= 0:
            # Degenerate: spread the target uniformly.
            x = np.full_like(x, total / x.size)
            break
        if abs(s - total) <= 1e-9 * max(1.0, total):
            break
        positive = x > 0
        x[positive] -= (s - total) * x[positive] / x[positive].sum()
    x = np.maximum(x, 0.0)
    return _rebuild(private, x, f"project_nonnegative_total({total:g})")
