"""Core substrate: frequency matrices, partitions, queries, entropy."""

from .consistency import (
    clip_nonnegative,
    project_nonnegative_total,
    rescale_to_total,
)
from .domain import DimensionSpec, Domain
from .entropy import (
    distribution_entropy,
    information_loss,
    laplace_noise_entropy,
    matrix_entropy,
    partition_entropy,
    partitioned_entropy_approximation,
    uniform_entropy_approximation,
)
from .exceptions import (
    BudgetError,
    MethodError,
    PartitioningError,
    QueryError,
    ReproError,
    ValidationError,
)
from .frequency_matrix import (
    Box,
    FrequencyMatrix,
    box_n_cells,
    box_slices,
    full_box,
    validate_box,
)
from .interval_index import (
    PACKED_PLANS,
    PLAN_BROADCAST,
    PLAN_DENSE,
    PLAN_PRUNED,
    PLAN_SHARDED,
    IntervalIndex,
    PlanCost,
    choose_packed_plan,
)
from .packed import (
    PackedPartitioning,
    boxes_to_arrays,
    packed_from_intervals,
    validate_box_arrays,
)
from .sharding import (
    DEFAULT_N_SHARDS,
    SHARD_SKIPPED,
    PartitionShard,
    ShardedAnswer,
    answer_sharded,
    shard_bounds,
    split_shards,
)
from .shm import AttachedShard, ShmShardLayout, ShmShardSpec
from .partition import Partition, Partitioning, grid_boxes, split_interval
from .prefix_sum import PrefixSumTable
from .private_matrix import PrivateFrequencyMatrix
from .sparse import SparseFrequencyMatrix

__all__ = [
    "AttachedShard",
    "BudgetError",
    "Box",
    "DEFAULT_N_SHARDS",
    "DimensionSpec",
    "Domain",
    "FrequencyMatrix",
    "IntervalIndex",
    "MethodError",
    "PACKED_PLANS",
    "PLAN_BROADCAST",
    "PLAN_DENSE",
    "PLAN_PRUNED",
    "PLAN_SHARDED",
    "PlanCost",
    "PackedPartitioning",
    "Partition",
    "PartitionShard",
    "Partitioning",
    "PartitioningError",
    "PrefixSumTable",
    "PrivateFrequencyMatrix",
    "QueryError",
    "ReproError",
    "SHARD_SKIPPED",
    "ShardedAnswer",
    "ShmShardLayout",
    "ShmShardSpec",
    "SparseFrequencyMatrix",
    "ValidationError",
    "answer_sharded",
    "box_n_cells",
    "boxes_to_arrays",
    "choose_packed_plan",
    "shard_bounds",
    "split_shards",
    "clip_nonnegative",
    "box_slices",
    "distribution_entropy",
    "full_box",
    "grid_boxes",
    "information_loss",
    "laplace_noise_entropy",
    "matrix_entropy",
    "packed_from_intervals",
    "partition_entropy",
    "partitioned_entropy_approximation",
    "project_nonnegative_total",
    "rescale_to_total",
    "split_interval",
    "uniform_entropy_approximation",
    "validate_box",
    "validate_box_arrays",
]
