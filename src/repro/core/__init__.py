"""Core substrate: frequency matrices, partitions, queries, entropy."""

from .consistency import (
    clip_nonnegative,
    project_nonnegative_total,
    rescale_to_total,
)
from .domain import DimensionSpec, Domain
from .entropy import (
    distribution_entropy,
    information_loss,
    laplace_noise_entropy,
    matrix_entropy,
    partition_entropy,
    partitioned_entropy_approximation,
    uniform_entropy_approximation,
)
from .exceptions import (
    BudgetError,
    MethodError,
    PartitioningError,
    QueryError,
    ReproError,
    ValidationError,
)
from .frequency_matrix import (
    Box,
    FrequencyMatrix,
    box_n_cells,
    box_slices,
    full_box,
    validate_box,
)
from .interval_index import (
    PLAN_BROADCAST,
    PLAN_DENSE,
    PLAN_PRUNED,
    IntervalIndex,
    choose_packed_plan,
)
from .packed import (
    PackedPartitioning,
    boxes_to_arrays,
    packed_from_intervals,
    validate_box_arrays,
)
from .partition import Partition, Partitioning, grid_boxes, split_interval
from .prefix_sum import PrefixSumTable
from .private_matrix import PrivateFrequencyMatrix
from .sparse import SparseFrequencyMatrix

__all__ = [
    "BudgetError",
    "Box",
    "DimensionSpec",
    "Domain",
    "FrequencyMatrix",
    "IntervalIndex",
    "MethodError",
    "PLAN_BROADCAST",
    "PLAN_DENSE",
    "PLAN_PRUNED",
    "PackedPartitioning",
    "Partition",
    "Partitioning",
    "PartitioningError",
    "PrefixSumTable",
    "PrivateFrequencyMatrix",
    "QueryError",
    "ReproError",
    "SparseFrequencyMatrix",
    "ValidationError",
    "box_n_cells",
    "boxes_to_arrays",
    "choose_packed_plan",
    "clip_nonnegative",
    "box_slices",
    "distribution_entropy",
    "full_box",
    "grid_boxes",
    "information_loss",
    "laplace_noise_entropy",
    "matrix_entropy",
    "packed_from_intervals",
    "partition_entropy",
    "partitioned_entropy_approximation",
    "project_nonnegative_total",
    "rescale_to_total",
    "split_interval",
    "uniform_entropy_approximation",
    "validate_box",
    "validate_box_arrays",
]
