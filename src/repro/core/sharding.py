"""Sharded evaluation: split the partition axis, answer per shard, merge.

A :class:`~repro.core.packed.PackedPartitioning` stores the partition
list as contiguous arrays, so splitting it along the partition axis is a
row-range slice — no geometry is involved.  Sharded evaluation exploits
exactly that:

* the ``k`` partitions are divided into ``K`` contiguous shards of
  near-equal size (:func:`shard_bounds`);
* every shard answers the *whole* query batch against its own rows,
  producing a partial answer vector; the uniformity-assumption answer is
  a sum over partitions, so the merged result is simply the element-wise
  sum of the partials — identical values to the one-node broadcast
  kernel up to float summation order;
* each shard carries its own
  :class:`~repro.core.interval_index.IntervalIndex`.  Before doing any
  arithmetic a shard computes the batch's candidate-slice bound; the
  bound is an over-count, so when it is zero for every query the shard
  *provably* contributes nothing and skips the gather entirely.  The
  skip is observable: :attr:`ShardedAnswer.plans` records
  :data:`SHARD_SKIPPED` for such shards and
  :attr:`ShardedAnswer.skipped_shards` counts them.
* shards that do have candidates route through the same per-batch cost
  model as the single-node engine — index-pruned gather when the bound
  says most of the shard is untouched, tiled broadcast otherwise.

Shard evaluation order does not affect the merged answers (each partial
is computed independently and the merge is a fixed-order sum), so the
partials can be computed serially or fanned out across a process pool.
The ``executor`` argument of :func:`answer_sharded` accepts anything
with an ordered ``map(fn, items)`` method — in particular the
:class:`~repro.experiments.parallel.Executor` backends
(:class:`~repro.experiments.parallel.SerialExecutor`,
:class:`~repro.experiments.parallel.ProcessPoolTrialExecutor`), so the
experiment harness's ``n_jobs`` machinery drives shard fan-out too.
``None`` runs the shards in-process.

This is the ROADMAP's "partition lists outgrow one node" step: a shard
is self-contained (its arrays, its index), ships across a process
boundary by pickling, and answers any batch without seeing the other
shards — the same structure a multi-node deployment would distribute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .exceptions import QueryError
from .interval_index import (
    PLAN_BROADCAST,
    PLAN_PRUNED,
    PlanCost,
    candidate_cost_plan,
)
from .packed import PackedPartitioning

#: Default shard count when ``plan="sharded"`` is forced without an
#: explicit ``n_shards``.  Deliberately modest: on one node sharding
#: mostly pays off through shard skipping and process fan-out, and the
#: per-shard index build is pure overhead for tiny shards.  Always
#: clipped to the partition count.
DEFAULT_N_SHARDS = 8

#: Recorded in :attr:`ShardedAnswer.plans` for a shard whose candidate
#: bound was zero for every query in the batch — it did no arithmetic.
SHARD_SKIPPED = "skipped"


def shard_bounds(n_partitions: int, n_shards: int) -> List[Tuple[int, int]]:
    """Contiguous, near-equal ``[start, stop)`` ranges over the partition axis.

    ``n_shards`` is clipped to ``n_partitions`` (a shard must hold at
    least one partition); the first ``n_partitions % n_shards`` shards
    get one extra row.  Deterministic, so serial and pooled execution
    see identical shards.
    """
    n_partitions = int(n_partitions)
    n_shards = int(n_shards)
    if n_partitions < 1:
        raise QueryError("cannot shard an empty partition list")
    if n_shards < 1:
        raise QueryError(f"n_shards must be >= 1, got {n_shards}")
    n_shards = min(n_shards, n_partitions)
    base, extra = divmod(n_partitions, n_shards)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for i in range(n_shards):
        stop = start + base + (1 if i < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


class PartitionShard:
    """One contiguous row range of a packed partitioning, self-contained.

    Holds its own :class:`~repro.core.packed.PackedPartitioning` built
    from the parent's array slices (no exact-cover validation — a shard
    deliberately covers only part of the matrix) and lazily builds its
    own interval index.  Picklable, so a shard can be shipped to a
    worker process and answer batches there.
    """

    __slots__ = ("start", "stop", "packed")

    def __init__(self, parent: PackedPartitioning, start: int, stop: int):
        if not 0 <= start < stop <= parent.n_partitions:
            raise QueryError(
                f"shard range [{start}, {stop}) outside partition axis "
                f"[0, {parent.n_partitions})"
            )
        self.start = int(start)
        self.stop = int(stop)
        true = parent.true_counts
        self.packed = PackedPartitioning(
            parent.lo[start:stop],
            parent.hi[start:stop],
            parent.noisy_counts[start:stop],
            parent.shape,
            None if true is None else true[start:stop],
            validate=False,
        )

    @classmethod
    def from_packed(
        cls, packed: PackedPartitioning, start: int, stop: int
    ) -> "PartitionShard":
        """Wrap an already-sliced sub-partitioning as a shard.

        Used by the shared-memory attach path
        (:meth:`repro.core.shm.ShmShardSpec.attach`), where the shard's
        :class:`~repro.core.packed.PackedPartitioning` is rebuilt from
        zero-copy segment views rather than sliced from a parent.
        ``start``/``stop`` only label the shard's position on the
        parent partition axis; ``packed`` must already hold exactly
        those rows.
        """
        if stop - start != packed.n_partitions:
            raise QueryError(
                f"shard range [{start}, {stop}) does not match the "
                f"{packed.n_partitions} supplied partitions"
            )
        shard = object.__new__(cls)
        shard.start = int(start)
        shard.stop = int(stop)
        shard.packed = packed
        return shard

    @property
    def n_partitions(self) -> int:
        return self.packed.n_partitions

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PartitionShard([{self.start}, {self.stop}))"

    def partial(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        cost: PlanCost | None = None,
    ) -> Tuple[np.ndarray | None, str]:
        """This shard's partial answers for the batch, or a provable skip.

        Returns ``(partial, plan)``.  ``partial`` is ``None`` — and
        ``plan`` is :data:`SHARD_SKIPPED` — when the shard's
        candidate-slice bound is zero for every query: the bound never
        under-counts, so a zero bound proves no query box intersects any
        partition in this shard and the partial would be exactly zero.
        Otherwise the shard picks the pruned gather or the broadcast
        kernel with the same cost rule as the single-node planner
        (``cost`` overrides its constants — see
        :class:`~repro.core.interval_index.PlanCost`), reusing the
        slices the skip test already computed.
        """
        index = self.packed.interval_index()
        slice_start, slice_stop = index.candidate_slices(lows, highs)
        counts = np.clip(slice_stop - slice_start, 0, None).min(axis=1)
        if not counts.any():
            return None, SHARD_SKIPPED
        q = int(lows.shape[0])
        plan = candidate_cost_plan(counts, q, self.n_partitions, cost)
        if plan == PLAN_PRUNED:
            return (
                index.answer_pruned(
                    lows, highs, slices=(slice_start, slice_stop)
                ),
                PLAN_PRUNED,
            )
        return (
            self.packed.answer_many_arrays(lows, highs, plan=PLAN_BROADCAST),
            PLAN_BROADCAST,
        )


@dataclass(frozen=True)
class ShardedAnswer:
    """Merged answers plus per-shard execution evidence.

    ``plans[i]`` is what shard ``i`` actually did: :data:`SHARD_SKIPPED`
    (zero candidate bound, no arithmetic),
    :data:`~repro.core.interval_index.PLAN_PRUNED`, or
    :data:`~repro.core.interval_index.PLAN_BROADCAST`.
    """

    answers: np.ndarray
    bounds: Tuple[Tuple[int, int], ...]
    plans: Tuple[str, ...]

    @property
    def n_shards(self) -> int:
        return len(self.bounds)

    @property
    def skipped_shards(self) -> int:
        """How many shards proved they had no overlapping query."""
        return sum(1 for p in self.plans if p == SHARD_SKIPPED)

    @property
    def skip_rate(self) -> float:
        return self.skipped_shards / self.n_shards


def split_shards(
    packed: PackedPartitioning, n_shards: int | None = None
) -> List[PartitionShard]:
    """Split ``packed`` into contiguous partition-axis shards.

    The uncached builder; prefer
    :meth:`~repro.core.packed.PackedPartitioning.split_shards`, which
    memoizes per effective shard count so repeated batches reuse the
    shards' lazily built indexes.
    """
    if n_shards is None:
        n_shards = DEFAULT_N_SHARDS
    return [
        PartitionShard(packed, start, stop)
        for start, stop in shard_bounds(packed.n_partitions, n_shards)
    ]


def _shard_partial(
    task: Tuple[PartitionShard, np.ndarray, np.ndarray, PlanCost | None]
) -> Tuple[np.ndarray | None, str]:
    """Module-level task body so pool executors can pickle it by name."""
    shard, lows, highs, cost = task
    return shard.partial(lows, highs, cost)


def answer_sharded(
    packed: PackedPartitioning,
    lows: np.ndarray,
    highs: np.ndarray,
    *,
    n_shards: int | None = None,
    executor: object | None = None,
    cost: PlanCost | None = None,
) -> ShardedAnswer:
    """Answer a validated batch by summing per-shard partial answers.

    ``executor`` is anything with an ordered ``map(fn, items)`` method
    (e.g. the :mod:`repro.experiments.parallel` backends); ``None`` runs
    the shards serially in-process.  ``cost`` overrides the per-shard
    pruned-vs-broadcast rule's constants (it ships with each shard
    task, so pooled and serial execution plan identically).  The merge
    is a fixed-order sum over shards, so the result is independent of
    where each partial was computed, and matches the one-node broadcast
    kernel within float reassociation (the equivalence suite pins this
    at 1e-9).
    """
    lows = np.asarray(lows, dtype=np.int64)
    highs = np.asarray(highs, dtype=np.int64)
    # The packed method caches shards per effective count, so repeated
    # batches reuse the shards and their lazily built indexes.
    shards = packed.split_shards(n_shards)
    bounds = tuple((s.start, s.stop) for s in shards)
    q = int(lows.shape[0])
    if q == 0:
        return ShardedAnswer(
            answers=np.zeros(0, dtype=np.float64),
            bounds=bounds,
            plans=(SHARD_SKIPPED,) * len(shards),
        )
    tasks = [(shard, lows, highs, cost) for shard in shards]
    if executor is None:
        partials: Sequence[Tuple[np.ndarray | None, str]] = [
            _shard_partial(task) for task in tasks
        ]
    else:
        # Anything that is not None must provide map(); a misconfigured
        # executor (say, an n_jobs int) should fail loudly, not silently
        # fall back to serial and fake a fan-out measurement.
        partials = list(executor.map(_shard_partial, tasks))
    answers = np.zeros(q, dtype=np.float64)
    plans: List[str] = []
    for partial, plan in partials:
        plans.append(plan)
        if partial is not None:
            answers += partial
    return ShardedAnswer(answers=answers, bounds=bounds, plans=tuple(plans))
