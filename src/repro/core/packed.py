"""Array-backed partitionings and the vectorized range-query kernel.

:class:`~repro.core.partition.Partitioning` stores one Python object per
partition, which is the right representation for validation and
serialization but the wrong one for answering thousands of range queries:
the scalar path (`Partition.uniform_answer` in a loop) costs one Python
call per (query, partition) pair.

:class:`PackedPartitioning` stores the same information as contiguous
NumPy arrays — ``lo``/``hi`` index bounds of shape ``(k, d)`` plus
``noisy_counts``/``true_counts`` of shape ``(k,)`` — and answers a whole
batch of box queries at once:

* per dimension, the overlap length between every query and every
  partition is ``clip(min(q_hi, p_hi) - max(q_lo, p_lo) + 1, 0)``,
  computed by broadcasting a ``(q, 1)`` query column against a ``(1, k)``
  partition row;
* the per-dimension lengths multiply into a ``(q, k)`` overlap-cell
  matrix;
* under the paper's within-partition uniformity assumption each
  partition contributes ``noisy_count * overlap / n_cells``, so the
  answer vector is a single matrix-vector product against the
  precomputed ``noisy_counts / n_cells`` weights.

Query batches are processed in tiles (:data:`DEFAULT_TILE_ELEMENTS`
elements per intermediate) so peak memory stays bounded no matter how
large ``q × k`` grows.  The scalar loop in
:meth:`~repro.core.private_matrix.PrivateFrequencyMatrix.answer` remains
the reference implementation; the test suite asserts bit-level agreement
(within 1e-9) between the two.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence, Tuple

import numpy as np

from .exceptions import PartitioningError, QueryError
from .frequency_matrix import Box
from .interval_index import (
    PACKED_PLANS,
    PLAN_BROADCAST,
    PLAN_PRUNED,
    PLAN_SHARDED,
    IntervalIndex,
    PlanCost,
    choose_packed_plan,
    plan_with_slices,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .partition import Partitioning
    from .sharding import PartitionShard, ShardedAnswer

#: Target number of elements per broadcast intermediate (~32 MB of
#: float64).  Query batches are tiled so no single ``(q_tile, k)`` array
#: exceeds this.
DEFAULT_TILE_ELEMENTS = 4_000_000

#: Row-block size for the vectorized pairwise-disjointness check.
_DISJOINT_BLOCK = 512


def boxes_to_arrays(boxes: Sequence[Box]) -> Tuple[np.ndarray, np.ndarray]:
    """Convert a list of inclusive boxes to ``(lows, highs)`` int64 arrays.

    Both returned arrays have shape ``(n_boxes, ndim)``.
    """
    lows = np.array([[lo for lo, _ in b] for b in boxes], dtype=np.int64)
    highs = np.array([[hi for _, hi in b] for b in boxes], dtype=np.int64)
    return lows, highs


def validate_box_arrays(
    lows: np.ndarray, highs: np.ndarray, shape: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`~repro.core.frequency_matrix.validate_box`.

    Validates a whole batch of boxes in O(n·d) NumPy ops instead of one
    Python-level check per box, and returns them normalized to int64.
    """
    shape = tuple(int(s) for s in shape)
    lows = np.asarray(lows, dtype=np.int64)
    highs = np.asarray(highs, dtype=np.int64)
    if lows.ndim != 2 or lows.shape != highs.shape:
        raise QueryError(
            f"box arrays must both have shape (n, ndim), got "
            f"{lows.shape} and {highs.shape}"
        )
    if lows.shape[1] != len(shape):
        raise QueryError(
            f"boxes have {lows.shape[1]} dimensions, matrix has {len(shape)}"
        )
    if np.any(lows > highs):
        bad = int(np.argmax(np.any(lows > highs, axis=1)))
        raise QueryError(f"box {bad}: lo > hi on some axis")
    if np.any(lows < 0):
        bad = int(np.argmax(np.any(lows < 0, axis=1)))
        raise QueryError(f"box {bad}: negative lo on some axis")
    sizes = np.asarray(shape, dtype=np.int64)
    if np.any(highs >= sizes):
        bad = int(np.argmax(np.any(highs >= sizes, axis=1)))
        raise QueryError(f"box {bad}: hi outside matrix shape {shape}")
    return lows, highs


class PackedPartitioning:
    """A complete partitioning stored as contiguous arrays.

    Parameters
    ----------
    lo, hi:
        ``(k, d)`` inclusive index bounds, one row per partition.
    noisy_counts:
        ``(k,)`` sanitized counts (may be negative — Laplace noise is
        unbounded and the paper does not post-process).
    shape:
        Shape of the underlying frequency matrix.
    true_counts:
        Optional ``(k,)`` exact counts, kept for evaluation only.
    validate:
        When True (the default for externally-supplied arrays), check
        bounds and that the partitions tile the matrix exactly once.
        Methods that construct tilings by recursive splitting may skip
        it, exactly as with :class:`~repro.core.partition.Partitioning`.
    """

    __slots__ = ("_lo", "_hi", "_noisy", "_true", "_shape", "_n_cells",
                 "_weights", "_index", "_shards")

    def __init__(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        noisy_counts: np.ndarray,
        shape: Sequence[int],
        true_counts: np.ndarray | None = None,
        *,
        validate: bool = True,
    ):
        self._shape = tuple(int(s) for s in shape)
        lo = np.ascontiguousarray(lo, dtype=np.int64)
        hi = np.ascontiguousarray(hi, dtype=np.int64)
        if lo.ndim != 2 or lo.shape != hi.shape:
            raise PartitioningError(
                f"lo/hi must both have shape (k, d), got {lo.shape} and {hi.shape}"
            )
        if lo.shape[0] == 0:
            raise PartitioningError("a partitioning needs at least one partition")
        if lo.shape[1] != len(self._shape):
            raise PartitioningError(
                f"partitions have {lo.shape[1]} dimensions, "
                f"matrix has {len(self._shape)}"
            )
        noisy = np.ascontiguousarray(noisy_counts, dtype=np.float64)
        if noisy.shape != (lo.shape[0],):
            raise PartitioningError(
                f"noisy_counts must have shape ({lo.shape[0]},), got {noisy.shape}"
            )
        if true_counts is not None:
            true_counts = np.ascontiguousarray(true_counts, dtype=np.float64)
            if true_counts.shape != (lo.shape[0],):
                raise PartitioningError(
                    f"true_counts must have shape ({lo.shape[0]},), "
                    f"got {true_counts.shape}"
                )
        self._lo = lo
        self._hi = hi
        self._noisy = noisy
        self._true = true_counts
        self._n_cells = np.prod(hi - lo + 1, axis=1, dtype=np.int64)
        self._weights: np.ndarray | None = None
        self._index: IntervalIndex | None = None
        self._shards: dict | None = None
        if validate:
            self._validate_bounds()
            self._validate_exact_cover()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate_bounds(self) -> None:
        if np.any(self._lo > self._hi):
            bad = int(np.argmax(np.any(self._lo > self._hi, axis=1)))
            raise PartitioningError(f"partition {bad}: lo > hi on some axis")
        if np.any(self._lo < 0):
            bad = int(np.argmax(np.any(self._lo < 0, axis=1)))
            raise PartitioningError(f"partition {bad}: negative lo")
        sizes = np.asarray(self._shape, dtype=np.int64)
        if np.any(self._hi >= sizes):
            bad = int(np.argmax(np.any(self._hi >= sizes, axis=1)))
            raise PartitioningError(
                f"partition {bad}: hi outside matrix shape {self._shape}"
            )

    def _validate_exact_cover(self) -> None:
        """Cell-count identity plus pairwise disjointness, vectorized.

        Equal total cell count and no pairwise overlap together imply an
        exact cover (same argument as
        :meth:`Partitioning._validate_exact_cover`, but block-broadcast
        instead of a Python double loop).
        """
        total = int(np.prod(self._shape, dtype=np.int64))
        covered = int(self._n_cells.sum())
        if covered != total:
            raise PartitioningError(
                f"partitions cover {covered} cells, matrix has {total}"
            )
        k = self.n_partitions
        for start in range(0, k, _DISJOINT_BLOCK):
            stop = min(start + _DISJOINT_BLOCK, k)
            # overlap[i, j] true when rows start+i and j intersect on every axis
            inter = np.logical_and(
                self._lo[start:stop, None, :] <= self._hi[None, :, :],
                self._hi[start:stop, None, :] >= self._lo[None, :, :],
            ).all(axis=2)
            # A row always overlaps itself; anything else is an error.
            inter[np.arange(start, stop) - start, np.arange(start, stop)] = False
            if inter.any():
                i, j = np.argwhere(inter)[0]
                raise PartitioningError(
                    f"partitions {start + int(i)} and {int(j)} overlap"
                )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self._shape

    @property
    def ndim(self) -> int:
        return len(self._shape)

    @property
    def n_partitions(self) -> int:
        return int(self._lo.shape[0])

    def __len__(self) -> int:
        return self.n_partitions

    @property
    def lo(self) -> np.ndarray:
        """``(k, d)`` inclusive lower bounds (do not mutate)."""
        return self._lo

    @property
    def hi(self) -> np.ndarray:
        """``(k, d)`` inclusive upper bounds (do not mutate)."""
        return self._hi

    @property
    def noisy_counts(self) -> np.ndarray:
        return self._noisy

    @property
    def true_counts(self) -> np.ndarray | None:
        return self._true

    @property
    def n_cells(self) -> np.ndarray:
        """``(k,)`` number of cells in each partition."""
        return self._n_cells

    @property
    def total_noisy_count(self) -> float:
        return float(self._noisy.sum())

    @property
    def weights(self) -> np.ndarray:
        """``(k,)`` per-cell contribution ``noisy_count / n_cells`` (cached)."""
        if self._weights is None:
            self._weights = self._noisy / self._n_cells
        return self._weights

    def interval_index(self) -> "IntervalIndex":
        """The per-dimension sorted interval index (built once, cached)."""
        if self._index is None:
            self._index = IntervalIndex(self)
        return self._index

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PackedPartitioning(shape={self._shape}, "
            f"partitions={self.n_partitions})"
        )

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_partitioning(cls, partitioning: "Partitioning") -> "PackedPartitioning":
        """Pack an object-based partitioning into arrays (no re-validation)."""
        parts = partitioning.partitions
        lows, highs = boxes_to_arrays([p.box for p in parts])
        noisy = np.array([p.noisy_count for p in parts], dtype=np.float64)
        have_true = all(p.true_count is not None for p in parts)
        true = (
            np.array([p.true_count for p in parts], dtype=np.float64)
            if have_true
            else None
        )
        return cls(lows, highs, noisy, partitioning.shape, true, validate=False)

    def to_partitioning(self, *, validate: bool = False) -> "Partitioning":
        """Materialize :class:`~repro.core.partition.Partition` objects.

        Only object-level consumers (per-partition iteration, external
        validation with ``validate=True``) need this; the hot query path
        never does.
        """
        from .partition import Partition, Partitioning

        true = self._true
        parts = [
            Partition(
                tuple(
                    (int(l), int(h))
                    for l, h in zip(self._lo[i], self._hi[i])
                ),
                float(self._noisy[i]),
                None if true is None else float(true[i]),
            )
            for i in range(self.n_partitions)
        ]
        return Partitioning(parts, self._shape, validate=validate)

    def boxes(self) -> List[Box]:
        """The partitions as inclusive box tuples (materializes tuples)."""
        return [
            tuple((int(l), int(h)) for l, h in zip(self._lo[i], self._hi[i]))
            for i in range(self.n_partitions)
        ]

    # ------------------------------------------------------------------
    # The vectorized query kernel
    # ------------------------------------------------------------------
    def choose_plan(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        *,
        force: str | None = None,
        cost: "PlanCost | None" = None,
    ) -> str:
        """Planner: pruned gather vs. full broadcast for this batch.

        Delegates to :func:`~repro.core.interval_index.choose_packed_plan`
        — the index's summed candidate bound is the cost signal.
        ``force`` pins a strategy, with the documented graceful fallback
        for ``pruned`` on sub-threshold partition counts; ``cost``
        overrides the rule's constants
        (:class:`~repro.core.interval_index.PlanCost`).
        """
        return choose_packed_plan(self, lows, highs, force=force, cost=cost)

    def answer_pruned_arrays(
        self, lows: np.ndarray, highs: np.ndarray
    ) -> np.ndarray:
        """The index-pruned gather strategy (same answers as broadcast)."""
        return self.interval_index().answer_pruned(lows, highs)

    def split_shards(self, n_shards: int | None = None) -> List["PartitionShard"]:
        """Contiguous partition-axis shards (see :mod:`repro.core.sharding`).

        Cached per effective shard count (requested count clipped to the
        partition count), mirroring :meth:`interval_index`: repeated
        batches against the same matrix reuse the shards and the
        per-shard interval indexes they have lazily built, instead of
        re-slicing and re-sorting on every call.
        """
        from .sharding import DEFAULT_N_SHARDS, split_shards

        if self._shards is None:
            self._shards = {}
        requested = DEFAULT_N_SHARDS if n_shards is None else int(n_shards)
        key = min(requested, self.n_partitions)
        if key not in self._shards:
            # split_shards validates the request (>= 1) before anything
            # is cached.
            self._shards[key] = split_shards(self, requested)
        return self._shards[key]

    def answer_sharded_arrays(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        *,
        n_shards: int | None = None,
        executor: object | None = None,
        cost: "PlanCost | None" = None,
    ) -> "ShardedAnswer":
        """The sharded strategy: per-shard partial sums, merged.

        Returns the full :class:`~repro.core.sharding.ShardedAnswer` so
        callers can inspect which shards skipped; the merged
        ``.answers`` match the broadcast kernel within float
        reassociation.  ``executor`` is an ordered-``map`` provider
        (e.g. :class:`~repro.experiments.parallel.ProcessPoolTrialExecutor`);
        ``None`` evaluates shards serially in-process.  ``cost``
        overrides the per-shard planning constants.
        """
        from .sharding import answer_sharded

        return answer_sharded(
            self, lows, highs, n_shards=n_shards, executor=executor,
            cost=cost,
        )

    def answer_many_arrays(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        *,
        tile_elements: int = DEFAULT_TILE_ELEMENTS,
        plan: str | None = None,
    ) -> np.ndarray:
        """Uniformity-assumption answers for a batch of boxes.

        ``lows``/``highs`` are ``(q, d)`` int arrays of inclusive bounds
        (already validated — see :func:`validate_box_arrays`).  Returns a
        ``(q,)`` float64 vector.

        ``plan`` forces a strategy: :data:`~repro.core.interval_index.PLAN_BROADCAST`
        (the tiled kernel), :data:`~repro.core.interval_index.PLAN_PRUNED`
        (interval-index candidate gather), or
        :data:`~repro.core.interval_index.PLAN_SHARDED` (partition-axis
        shards with per-shard skip, merged partial sums — see
        :meth:`answer_sharded_arrays` for shard-count and executor
        control).  When ``None`` the planner picks, using the index's
        candidate bound as the cost signal.  For the broadcast kernel,
        memory is bounded by tiling the query axis so each
        ``(q_tile, k)`` intermediate stays under ``tile_elements``
        elements.
        """
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        q = lows.shape[0]
        if q == 0:
            return np.zeros(0, dtype=np.float64)
        slices = None
        if plan is None:
            plan, slices = plan_with_slices(self, lows, highs)
        if plan == PLAN_PRUNED:
            return self.interval_index().answer_pruned(
                lows, highs, slices=slices
            )
        if plan == PLAN_SHARDED:
            return self.answer_sharded_arrays(lows, highs).answers
        if plan != PLAN_BROADCAST:
            raise QueryError(
                f"unknown packed query plan {plan!r}; expected one of "
                f"{', '.join(repr(p) for p in PACKED_PLANS)}"
            )
        k = self.n_partitions
        d = self.ndim
        weights = self.weights
        out = np.empty(q, dtype=np.float64)
        tile = max(1, int(tile_elements) // max(1, k))
        plo, phi = self._lo, self._hi
        for start in range(0, q, tile):
            stop = min(start + tile, q)
            qlo = lows[start:stop]
            qhi = highs[start:stop]
            # Per-dimension overlap lengths, multiplied into (q_tile, k).
            overlap = np.minimum(qhi[:, None, 0], phi[None, :, 0])
            overlap = overlap - np.maximum(qlo[:, None, 0], plo[None, :, 0])
            overlap += 1
            np.clip(overlap, 0, None, out=overlap)
            overlap = overlap.astype(np.float64)
            for axis in range(1, d):
                ov = np.minimum(qhi[:, None, axis], phi[None, :, axis])
                ov = ov - np.maximum(qlo[:, None, axis], plo[None, :, axis])
                ov += 1
                np.clip(ov, 0, None, out=ov)
                overlap *= ov
            # Contract against the weights with einsum rather than a
            # BLAS matvec: BLAS picks its reduction tree from the
            # *matrix* shape, so one query's sum could change with the
            # batch it rides in, while einsum's per-row reduction order
            # depends only on k — every query's answer is bit-identical
            # across batch compositions, which the async micro-batching
            # endpoint's determinism guarantee rests on.
            out[start:stop] = np.einsum("qk,k->q", overlap, weights)
        return out

    def answer_many(self, boxes: Sequence[Box]) -> np.ndarray:
        """Convenience wrapper over :meth:`answer_many_arrays`."""
        if not boxes:
            return np.zeros(0, dtype=np.float64)
        lows, highs = boxes_to_arrays(boxes)
        lows, highs = validate_box_arrays(lows, highs, self._shape)
        return self.answer_many_arrays(lows, highs)

    # ------------------------------------------------------------------
    # Dense reconstruction
    # ------------------------------------------------------------------
    def dense_array(self) -> np.ndarray:
        """Signed dense reconstruction: each cell gets its partition's
        noisy count divided by the partition's cell count."""
        out = np.empty(self._shape, dtype=np.float64)
        values = self._noisy / self._n_cells
        lo, hi = self._lo, self._hi
        for i in range(self.n_partitions):
            idx = tuple(
                slice(int(lo[i, a]), int(hi[i, a]) + 1) for a in range(self.ndim)
            )
            out[idx] = values[i]
        return out


def packed_from_intervals(
    intervals_per_dim: Sequence[Sequence[Tuple[int, int]]],
    noisy_counts: np.ndarray,
    shape: Sequence[int],
    true_counts: np.ndarray | None = None,
) -> PackedPartitioning:
    """Build a packed grid partitioning from per-dimension interval lists.

    The boxes are the cartesian product of the per-dimension inclusive
    intervals, enumerated in C order (last dimension fastest) — the same
    order as :func:`~repro.core.partition.grid_boxes` and a raveled
    aggregate array.  Used by the uniform-grid and quadtree sanitizers to
    emit arrays directly, skipping per-leaf object construction.
    """
    los = [np.array([lo for lo, _ in iv], dtype=np.int64) for iv in intervals_per_dim]
    his = [np.array([hi for _, hi in iv], dtype=np.int64) for iv in intervals_per_dim]
    mesh_lo = np.meshgrid(*los, indexing="ij") if len(los) > 1 else [los[0]]
    mesh_hi = np.meshgrid(*his, indexing="ij") if len(his) > 1 else [his[0]]
    lo = np.stack([m.ravel() for m in mesh_lo], axis=1)
    hi = np.stack([m.ravel() for m in mesh_hi], axis=1)
    return PackedPartitioning(
        lo, hi, noisy_counts, shape, true_counts, validate=False
    )
