"""repro.engine — the unified query-serving facade.

The single public API for answering range-query batches against a
sanitized :class:`~repro.core.PrivateFrequencyMatrix`:

* :class:`EngineConfig` — every tuning knob (plan forcing, shard
  layout, dense-switch and pruning thresholds, async flush thresholds)
  in one validated object, overridable from ``key=value`` strings and
  ``REPRO_ENGINE_*`` environment variables;
* :class:`QueryRequest` / :class:`QueryAnswer` — typed request and
  response carrying the batch, the plan that ran, per-shard evidence,
  and timing;
* :class:`Engine` — the synchronous facade wrapping plan selection and
  all four execution strategies;
* :class:`AsyncBatchEngine` — the asyncio micro-batching endpoint that
  coalesces concurrent clients into ticks answered by one engine
  invocation each (optionally off-loop in a thread pool);
* :class:`EngineServer` — the stdlib asyncio HTTP transport
  (``POST /v1/query`` / ``GET /healthz`` / ``GET /statz``) with
  backpressure, timeouts, and graceful drain;
* :class:`ShardWorkerPool` — the resident shard-worker pool behind
  ``EngineConfig(shard_executor="resident")``: one persistent process
  per partition shard attached zero-copy to a shared-memory segment,
  with heartbeat, crash restart, and exactly-once segment cleanup (see
  ``docs/WORKERS.md``);
* :class:`ServingClient` / :class:`AsyncServingClient` — matching HTTP
  clients that rebuild full :class:`QueryAnswer` objects; non-2xx
  answers raise :class:`ServingError`.

The kwarg-era entry points
(``PrivateFrequencyMatrix.answer_arrays``/``answer_sharded``) survive
as deprecated shims over :class:`Engine`.
"""

from .api import QueryAnswer, QueryRequest
from .async_batch import AsyncBatchEngine, gather_answers
from .client import AsyncServingClient, ServingClient, ServingError
from .config import ENGINE_PLANS, SHARD_EXECUTORS, EngineConfig
from .engine import Engine
from .server import EngineServer
from .worker_pool import ShardWorkerPool

__all__ = [
    "ENGINE_PLANS",
    "SHARD_EXECUTORS",
    "AsyncBatchEngine",
    "AsyncServingClient",
    "Engine",
    "EngineConfig",
    "EngineServer",
    "QueryAnswer",
    "QueryRequest",
    "ServingClient",
    "ServingError",
    "ShardWorkerPool",
    "gather_answers",
]
