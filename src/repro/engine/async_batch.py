"""Async micro-batching: many concurrent clients, one engine call per tick.

The serving cost of a range-query batch is dominated by per-invocation
overhead — bound validation, plan selection, a possible dense
reconstruction, kernel launch — that the vectorized engine amortizes
over the whole batch.  A client that sends one query at a time forfeits
all of that.  :class:`AsyncBatchEngine` wins it back *across* clients:
concurrent ``await engine.answer(request)`` calls are accumulated into
a **tick**, the tick is answered with exactly one
:meth:`~repro.engine.Engine.answer` invocation on the concatenated
batch, and the answer vector is demultiplexed back to each client's
future, which also receives the tick-level execution evidence (plan,
shard plans, tick wall-clock).

A tick flushes when either threshold of the
:class:`~repro.engine.EngineConfig` is hit:

* **size** — ``max_batch_size`` requests are pending, or
* **latency** — ``max_batch_latency`` seconds have passed since the
  tick's first request arrived (so a lone client is never stranded).

**Determinism.**  Batching changes *scheduling*, never *answers*: every
kernel computes each query's sum in an order fixed by that query alone
(broadcast reduces the full partition axis per query; the pruned gather
bincounts each query's own candidate run; dense prefix sums touch
``2^d`` corners; shard merge is a fixed-order sum), so a query's answer
is bit-identical whether it travels alone or inside any tick — provided
the same plan runs.  Plan *choice* is the one batch-shaped input, so a
serving deployment that requires bit-exactness across batching pins
``config.plan``; the async test suite enforces equality at 0.0, not
1e-9.

Cancellation is safe: a client that abandons its pending request (task
cancelled, timeout) is dropped at flush time — its queries are simply
excluded from the tick and every other client's answers are unaffected.

**On-loop vs off-loop kernels.**  All bookkeeping runs on the event
loop.  By default the numpy kernel of a flushed tick also runs inline
in the flush — it releases the GIL for the heavy parts but blocks the
loop for the whole call, which is fine for short ticks and for the
amortization this engine exists to provide.  Pass an ``executor`` (a
:class:`concurrent.futures.ThreadPoolExecutor`) and every tick's
:meth:`~repro.engine.Engine.answer` is instead dispatched through
``loop.run_in_executor``: the loop keeps accepting requests, forming
the next tick, and firing timeouts while the kernel runs in the worker
thread.  Threads — not processes — are the right executor here because
numpy releases the GIL inside the kernels, so the overlap is real and
nothing is pickled.  Answers are identical either way (same
:meth:`Engine.answer` call on the same concatenated batch);
:meth:`drain` awaits in-flight off-loop ticks before returning, so
shutdown never abandons a dispatched kernel.
"""

from __future__ import annotations

import asyncio
from collections import deque
from concurrent.futures import Executor
from typing import Deque, Dict, List, Set, Tuple

import numpy as np

from ..core.exceptions import QueryError
from ..core.packed import validate_box_arrays
from .api import QueryAnswer, QueryRequest
from .engine import Engine


class _Pending:
    """One client's enqueued request and the future that resolves it."""

    __slots__ = ("request", "future", "n_queries")

    def __init__(
        self,
        request: QueryRequest,
        future: "asyncio.Future[QueryAnswer]",
    ):
        self.request = request
        self.future = future
        self.n_queries = request.n_queries


class AsyncBatchEngine:
    """Accumulate concurrent requests into ticks; answer each tick once.

    Wraps a synchronous :class:`~repro.engine.Engine`; flush thresholds
    come from the engine's config unless overridden here, and an
    optional ``executor`` moves each tick's kernel off the event loop
    (see the module docstring).  Use from a single event loop::

        engine = Engine(private, EngineConfig(plan="broadcast"))
        batcher = AsyncBatchEngine(engine, max_batch_size=64)
        answer = await batcher.answer(QueryRequest(lows, highs))
    """

    def __init__(
        self,
        engine: Engine,
        *,
        max_batch_size: int | None = None,
        max_batch_latency: float | None = None,
        executor: Executor | None = None,
    ):
        config = engine.config
        self._engine = engine
        self._executor = executor
        self.max_batch_size = (
            config.max_batch_size if max_batch_size is None
            else int(max_batch_size)
        )
        self.max_batch_latency = (
            config.max_batch_latency if max_batch_latency is None
            else float(max_batch_latency)
        )
        if self.max_batch_size < 1:
            raise QueryError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_batch_latency < 0:
            raise QueryError(
                f"max_batch_latency must be >= 0, got "
                f"{self.max_batch_latency}"
            )
        self._pending: List[_Pending] = []
        self._flush_handle: asyncio.TimerHandle | None = None
        self._inflight: Set["asyncio.Task[None]"] = set()
        self._ticks = 0
        self._answered_queries = 0
        self._answered_requests = 0
        self._dropped_requests = 0
        self._last_tick_queries = 0
        self._max_tick_queries = 0
        self._tick_sizes: Deque[int] = deque(maxlen=4096)

    @property
    def engine(self) -> Engine:
        return self._engine

    @property
    def pending_requests(self) -> int:
        return len(self._pending)

    @property
    def inflight_ticks(self) -> int:
        """Off-loop ticks dispatched to the executor and not yet demuxed."""
        return len(self._inflight)

    @property
    def recent_tick_queries(self) -> Tuple[int, ...]:
        """Query counts of the most recent ticks (bounded window)."""
        return tuple(self._tick_sizes)

    @property
    def stats(self) -> Dict[str, float]:
        """Cumulative serving counters (ticks, requests, queries)."""
        return {
            "ticks": self._ticks,
            "answered_requests": self._answered_requests,
            "answered_queries": self._answered_queries,
            "dropped_requests": self._dropped_requests,
            "last_tick_queries": self._last_tick_queries,
            "max_tick_queries": self._max_tick_queries,
            "mean_tick_queries": (
                self._answered_queries / self._ticks if self._ticks else 0.0
            ),
        }

    # ------------------------------------------------------------------
    async def answer(self, request: QueryRequest) -> QueryAnswer:
        """Enqueue one client's batch; resolves when its tick is answered.

        Bounds are validated *before* enqueueing, so a malformed request
        raises in its own caller instead of poisoning the whole tick.
        A zero-query request is answered inline (there is nothing to
        amortize, and its possibly ``(0, 0)``-shaped arrays must not
        enter a tick's concatenation), matching the synchronous engine.
        """
        if request.n_queries == 0:
            return self._engine.answer(request)
        validate_box_arrays(
            request.lows, request.highs, self._engine.private.shape
        )
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[QueryAnswer]" = loop.create_future()
        self._pending.append(_Pending(request, future))
        if len(self._pending) >= self.max_batch_size:
            self._flush()
        elif self._flush_handle is None:
            self._flush_handle = loop.call_later(
                self.max_batch_latency, self._flush
            )
        return await future

    async def answer_arrays(
        self, lows: np.ndarray, highs: np.ndarray
    ) -> np.ndarray:
        """:meth:`answer` for bare arrays; returns just the answers."""
        result = await self.answer(QueryRequest(lows, highs))
        return result.answers

    async def drain(self) -> None:
        """Flush pending and await in-flight ticks (shutdown hook)."""
        self._flush()
        while self._inflight:
            await asyncio.gather(*tuple(self._inflight))
        # Let the just-resolved futures' awaiters run before returning.
        await asyncio.sleep(0)

    # ------------------------------------------------------------------
    def _flush(self) -> None:
        """Answer every live pending request with one engine invocation.

        With an ``executor`` the engine invocation is dispatched off the
        event loop (a tracked :class:`asyncio.Task` awaits the worker
        thread and demuxes); without one it runs inline, blocking the
        loop for the duration of the kernel.
        """
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        batch = self._pending
        self._pending = []
        live = [p for p in batch if not p.future.done()]
        self._dropped_requests += len(batch) - len(live)
        if not live:
            return
        lows = np.concatenate([p.request.lows for p in live], axis=0)
        highs = np.concatenate([p.request.highs for p in live], axis=0)
        request = QueryRequest(lows, highs)
        if self._executor is not None:
            task = asyncio.get_running_loop().create_task(
                self._run_tick_off_loop(live, request)
            )
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)
            return
        try:
            tick = self._engine.answer(request)
        except Exception as exc:  # noqa: BLE001 - forwarded to clients
            self._fail(live, exc)
            return
        self._demux(live, tick)

    async def _run_tick_off_loop(
        self, live: List[_Pending], request: QueryRequest
    ) -> None:
        """Run one tick's kernel in the executor, then demux on-loop."""
        loop = asyncio.get_running_loop()
        try:
            tick = await loop.run_in_executor(
                self._executor, self._engine.answer, request
            )
        except Exception as exc:  # noqa: BLE001 - forwarded to clients
            self._fail(live, exc)
            return
        self._demux(live, tick)

    @staticmethod
    def _fail(live: List[_Pending], exc: BaseException) -> None:
        for p in live:
            if not p.future.done():
                p.future.set_exception(exc)

    def _demux(self, live: List[_Pending], tick: QueryAnswer) -> None:
        """Slice one answered tick back into per-client futures."""
        self._ticks += 1
        self._last_tick_queries = int(tick.n_queries)
        self._max_tick_queries = max(
            self._max_tick_queries, self._last_tick_queries
        )
        self._tick_sizes.append(self._last_tick_queries)
        offset = 0
        for p in live:
            chunk = tick.answers[offset:offset + p.n_queries]
            offset += p.n_queries
            if p.future.done():  # cancelled between collection and now
                self._dropped_requests += 1
                continue
            self._answered_requests += 1
            self._answered_queries += p.n_queries
            p.future.set_result(
                QueryAnswer(
                    answers=chunk,
                    plan=tick.plan,
                    workload=p.request.workload,
                    shard_bounds=tick.shard_bounds,
                    shard_plans=tick.shard_plans,
                    elapsed_seconds=tick.elapsed_seconds,
                )
            )


async def gather_answers(
    batcher: AsyncBatchEngine, requests: List[QueryRequest]
) -> Tuple[QueryAnswer, ...]:
    """Submit many client requests concurrently; answers in request order.

    The canonical N-clients-one-tick pattern, used by the CLI ``serve``
    smoke demo and the micro-benchmark.
    """
    return tuple(
        await asyncio.gather(*(batcher.answer(r) for r in requests))
    )
