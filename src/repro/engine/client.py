"""HTTP clients for the engine's serving layer (stdlib only).

Two clients for :class:`~repro.engine.server.EngineServer`, both
speaking the JSON schemas documented in ``docs/SERVING.md`` and both
reconstructing full :class:`~repro.engine.QueryAnswer` objects — the
answer vector round-trips through ``repr``-exact JSON, so a client-side
answer is bit-identical to the in-process one:

* :class:`ServingClient` — synchronous, built on
  :class:`http.client.HTTPConnection` with keep-alive.  The right tool
  for scripts, tests, and anything not already inside an event loop.
* :class:`AsyncServingClient` — asyncio, one persistent connection per
  client over ``asyncio.open_connection``.  The load-test harness runs
  dozens of these concurrently; because the server micro-batches, their
  requests coalesce into shared ticks exactly like in-process
  ``AsyncBatchEngine`` callers.

Non-2xx responses raise :class:`ServingError` carrying the HTTP status,
the server's JSON error payload, and the ``Retry-After`` hint when the
server sent one (503 backpressure) — so a well-behaved client can
distinguish "back off" (503), "shrink the batch" (413), "fix the
request" (400), and "took too long" (504) without string matching.
"""

from __future__ import annotations

import asyncio
import http.client
import json
from typing import Dict, Sequence, Tuple

import numpy as np

from .api import QueryAnswer, QueryRequest

DEFAULT_TIMEOUT = 60.0


class ServingError(Exception):
    """A non-2xx HTTP answer from the serving layer.

    Attributes
    ----------
    status:
        The HTTP status code (400, 413, 503, 504, ...).
    payload:
        The decoded JSON error body (``{}`` if undecodable).
    retry_after:
        Seconds the server suggested waiting before retrying, or
        ``None`` when the response carried no ``Retry-After`` header.
    """

    def __init__(
        self,
        status: int,
        payload: dict,
        retry_after: "float | None" = None,
    ):
        self.status = int(status)
        self.payload = payload if isinstance(payload, dict) else {}
        self.retry_after = retry_after
        message = self.payload.get("error", "") or f"HTTP {status}"
        super().__init__(f"HTTP {status}: {message}")


def _answer_from_payload(payload: dict) -> QueryAnswer:
    return QueryAnswer(
        answers=np.asarray(payload["answers"], dtype=np.float64),
        plan=payload["plan"],
        workload=payload.get("workload", ""),
        shard_bounds=tuple(
            (int(lo), int(hi)) for lo, hi in payload.get("shard_bounds", ())
        ),
        shard_plans=tuple(payload.get("shard_plans", ())),
        elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
    )


def _query_payload(request: QueryRequest) -> bytes:
    return json.dumps(
        {
            "lows": np.asarray(request.lows).tolist(),
            "highs": np.asarray(request.highs).tolist(),
            "workload": request.workload,
        }
    ).encode("utf-8")


def _parse_retry_after(value: "str | None") -> "float | None":
    if value is None:
        return None
    try:
        return float(value)
    except ValueError:
        return None


class ServingClient:
    """Synchronous keep-alive client for one :class:`EngineServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout: float = DEFAULT_TIMEOUT,
    ):
        self.host = host
        self.port = int(port)
        self._conn = http.client.HTTPConnection(
            host, self.port, timeout=timeout
        )

    # ------------------------------------------------------------------
    def request(
        self, method: str, path: str, body: "bytes | None" = None
    ) -> Tuple[int, Dict[str, str], dict]:
        """One raw round-trip: ``(status, headers, decoded JSON)``."""
        headers = {"Content-Type": "application/json"} if body else {}
        try:
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        except (ConnectionError, http.client.HTTPException):
            # One reconnect: the server may have closed an idle
            # keep-alive connection (e.g. across a drain/restart).
            self._conn.close()
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        try:
            payload = json.loads(raw) if raw else {}
        except ValueError:
            payload = {}
        return (
            response.status,
            {k.lower(): v for k, v in response.getheaders()},
            payload,
        )

    def _checked(self, method: str, path: str, body: "bytes | None" = None):
        status, headers, payload = self.request(method, path, body)
        if status != 200:
            raise ServingError(
                status, payload, _parse_retry_after(headers.get("retry-after"))
            )
        return payload

    # ------------------------------------------------------------------
    def query(
        self,
        lows: Sequence[Sequence[int]],
        highs: Sequence[Sequence[int]],
        workload: str = "",
    ) -> QueryAnswer:
        """Answer one batch of inclusive cell-index range queries."""
        return self.query_request(QueryRequest(lows, highs, workload))

    def query_request(self, request: QueryRequest) -> QueryAnswer:
        payload = self._checked(
            "POST", "/v1/query", _query_payload(request)
        )
        return _answer_from_payload(payload)

    def healthz(self) -> dict:
        return self._checked("GET", "/healthz")

    def statz(self) -> dict:
        return self._checked("GET", "/statz")

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncServingClient:
    """Asyncio keep-alive client; one persistent connection per instance."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout: float = DEFAULT_TIMEOUT,
    ):
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self._reader = None
        self._writer = None

    async def connect(self) -> "AsyncServingClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "AsyncServingClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    async def request(
        self, method: str, path: str, body: "bytes | None" = None
    ) -> Tuple[int, Dict[str, str], dict]:
        """One raw round-trip: ``(status, headers, decoded JSON)``."""
        if self._writer is None:
            await self.connect()
        body = body or b""
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            f"Content-Length: {len(body)}",
        ]
        if body:
            lines.append("Content-Type: application/json")
        self._writer.write(
            ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
        )
        await self._writer.drain()

        async def read_response():
            status_line = await self._reader.readline()
            if not status_line:
                raise ConnectionError("server closed the connection")
            parts = status_line.decode("latin-1").split(None, 2)
            status = int(parts[1])
            headers: Dict[str, str] = {}
            while True:
                line = await self._reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, sep, value = line.decode("latin-1").partition(":")
                if sep:
                    headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or "0")
            raw = await self._reader.readexactly(length) if length else b""
            return status, headers, raw

        status, headers, raw = await asyncio.wait_for(
            read_response(), self.timeout
        )
        if headers.get("connection", "").lower() == "close":
            await self.close()
        try:
            payload = json.loads(raw) if raw else {}
        except ValueError:
            payload = {}
        return status, headers, payload

    async def _checked(
        self, method: str, path: str, body: "bytes | None" = None
    ) -> dict:
        status, headers, payload = await self.request(method, path, body)
        if status != 200:
            raise ServingError(
                status, payload, _parse_retry_after(headers.get("retry-after"))
            )
        return payload

    # ------------------------------------------------------------------
    async def query(
        self,
        lows: Sequence[Sequence[int]],
        highs: Sequence[Sequence[int]],
        workload: str = "",
    ) -> QueryAnswer:
        """Answer one batch of inclusive cell-index range queries."""
        return await self.query_request(QueryRequest(lows, highs, workload))

    async def query_request(self, request: QueryRequest) -> QueryAnswer:
        payload = await self._checked(
            "POST", "/v1/query", _query_payload(request)
        )
        return _answer_from_payload(payload)

    async def healthz(self) -> dict:
        return await self._checked("GET", "/healthz")

    async def statz(self) -> dict:
        return await self._checked("GET", "/statz")
