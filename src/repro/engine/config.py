"""`EngineConfig`: the one tuning knob of the query-serving engine.

Before the engine existed, tuning the query path meant a different
mechanism per knob: ``plan=`` / ``n_shards=`` / ``shard_executor=``
kwargs threaded through every ``answer_arrays`` call site, and the
dense-switch / pruning thresholds frozen as module constants in
:mod:`repro.core.private_matrix` and :mod:`repro.core.interval_index`.
:class:`EngineConfig` consolidates all of them into one validated,
immutable object that travels with an :class:`~repro.engine.Engine`:

* **routing** — ``plan`` pins a strategy (``dense`` / ``broadcast`` /
  ``pruned`` / ``sharded``); ``n_shards`` / ``shard_executor`` select
  and parameterize the sharded layout;
* **cost model** — ``dense_switch_factor`` / ``dense_switch_max_cells``
  govern the prefix-sum switch, and the ``prune_*`` fields feed the
  pruned-vs-broadcast pair-cost rule
  (:class:`~repro.core.interval_index.PlanCost`) on every path,
  including per-shard planning;
* **async serving** — ``max_batch_size`` / ``max_batch_latency`` are
  the :class:`~repro.engine.AsyncBatchEngine` tick-flush knobs.

Defaults come from the historical module constants, so a bare
``EngineConfig()`` behaves exactly like the pre-engine code.  Overrides
can come from keyword arguments, from ``key=value`` strings
(:meth:`EngineConfig.from_string`, the CLI ``--engine-config`` format),
or from ``REPRO_ENGINE_<FIELD>`` environment variables
(:meth:`EngineConfig.from_env`), checked in that order of precedence.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields, replace
from typing import Dict, Mapping

from ..core.exceptions import QueryError, ValidationError
from ..core.interval_index import (
    PACKED_PLANS,
    PLAN_DENSE,
    PLAN_SHARDED,
    PRUNE_MIN_PARTITIONS,
    PRUNE_OVERHEAD_PAIRS,
    PRUNE_SAFETY_FACTOR,
    PlanCost,
)
from ..core.private_matrix import DENSE_SWITCH_FACTOR, DENSE_SWITCH_MAX_CELLS

#: Plan names accepted by :attr:`EngineConfig.plan` (``None`` = let the
#: cost model choose).
ENGINE_PLANS = (PLAN_DENSE,) + PACKED_PLANS

#: Environment-variable prefix for :meth:`EngineConfig.from_env`.
ENV_PREFIX = "REPRO_ENGINE_"

#: Named shard-execution modes accepted as ``shard_executor`` strings.
#: ``"serial"`` answers the shards in-process; ``"resident"`` routes
#: through a persistent :class:`~repro.engine.ShardWorkerPool` over
#: shared-memory shards.  Live ordered-``map`` executor objects remain
#: accepted programmatically.
SHARD_EXECUTORS = ("serial", "resident")

#: Fields settable from strings (CLI ``--engine-config`` / env vars),
#: with their coercions.  ``shard_executor`` accepts the named modes in
#: :data:`SHARD_EXECUTORS`; live executor objects can still be passed
#: as keyword arguments, just not spelled as strings.
#: Fields in :data:`_OPTIONAL_FIELDS` additionally accept ``none``.
_OPTIONAL_FIELDS = frozenset({"plan", "n_shards", "shard_executor"})
_STRING_FIELDS: Dict[str, type] = {
    "plan": str,
    "n_shards": int,
    "shard_executor": str,
    "dense_switch_factor": float,
    "dense_switch_max_cells": int,
    "prune_min_partitions": int,
    "prune_overhead_pairs": float,
    "prune_safety_factor": float,
    "max_batch_size": int,
    "max_batch_latency": float,
}


@dataclass(frozen=True)
class EngineConfig:
    """Validated tuning knobs for :class:`~repro.engine.Engine`.

    Attributes
    ----------
    plan:
        Force one strategy for every batch (``None`` lets the cost
        model pick per batch).  Pinning a plan is also the
        determinism lever for serving: with a fixed plan, a query's
        answer is bit-identical whether it is answered alone or inside
        any batch (each kernel computes per-query sums in a fixed
        order; only *plan choice* depends on batch shape).
    n_shards:
        Partition-axis shard count; setting it selects the sharded
        plan, like ``answer_arrays(n_shards=...)`` always did.
    shard_executor:
        How shard partials are executed; setting it alone also selects
        the sharded plan.  Accepts the named modes ``"serial"``
        (in-process, same as ``None`` with ``n_shards`` set) and
        ``"resident"`` (a persistent
        :class:`~repro.engine.ShardWorkerPool` whose per-shard worker
        processes attach shared-memory shards and survive across
        requests), or any ordered-``map`` provider object (e.g.
        :class:`~repro.experiments.parallel.ProcessPoolTrialExecutor`).
        Executor objects are not picklable in general — leave ``None``
        inside process-pool trial workers.
    dense_switch_factor / dense_switch_max_cells:
        The dense prefix-sum switch: densify when ``q * k`` exceeds
        ``dense_switch_factor * n_cells`` and the matrix has at most
        ``dense_switch_max_cells`` cells.
    prune_min_partitions / prune_overhead_pairs / prune_safety_factor:
        The pruned-vs-broadcast pair-cost rule (see
        :func:`~repro.core.interval_index.candidate_cost_plan`).
    max_batch_size / max_batch_latency:
        :class:`~repro.engine.AsyncBatchEngine` flush thresholds: a
        tick flushes when this many requests are pending, or when the
        oldest pending request has waited this many seconds.
    """

    plan: str | None = None
    n_shards: int | None = None
    shard_executor: object | None = None
    dense_switch_factor: float = DENSE_SWITCH_FACTOR
    dense_switch_max_cells: int = DENSE_SWITCH_MAX_CELLS
    prune_min_partitions: int = PRUNE_MIN_PARTITIONS
    prune_overhead_pairs: float = PRUNE_OVERHEAD_PAIRS
    prune_safety_factor: float = PRUNE_SAFETY_FACTOR
    max_batch_size: int = 256
    max_batch_latency: float = 0.002

    def __post_init__(self) -> None:
        if self.plan is not None and self.plan not in ENGINE_PLANS:
            # QueryError with the planner's historical wording, so code
            # (and tests) that caught the kwarg-era error keep working.
            raise QueryError(
                f"unknown packed query plan {self.plan!r}; expected one of "
                f"{', '.join(repr(p) for p in ENGINE_PLANS)}"
            )
        if self.wants_sharding and self.plan not in (None, PLAN_SHARDED):
            raise QueryError(
                f"n_shards/shard_executor only apply to the "
                f"{PLAN_SHARDED!r} plan, not {self.plan!r}"
            )
        if self.n_shards is not None and self.n_shards < 1:
            raise QueryError(
                f"n_shards must be >= 1, got {self.n_shards}"
            )
        if (
            isinstance(self.shard_executor, str)
            and self.shard_executor not in SHARD_EXECUTORS
        ):
            raise QueryError(
                f"unknown shard_executor {self.shard_executor!r}; named "
                f"modes: {', '.join(repr(m) for m in SHARD_EXECUTORS)} "
                f"(or pass an ordered-map executor object)"
            )
        for attr in ("dense_switch_factor", "prune_overhead_pairs",
                     "prune_safety_factor"):
            if getattr(self, attr) <= 0:
                raise ValidationError(f"{attr} must be positive")
        for attr in ("dense_switch_max_cells", "prune_min_partitions"):
            if getattr(self, attr) < 0:
                raise ValidationError(f"{attr} must be non-negative")
        if self.max_batch_size < 1:
            raise ValidationError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_batch_latency < 0:
            raise ValidationError(
                f"max_batch_latency must be >= 0, got {self.max_batch_latency}"
            )

    # ------------------------------------------------------------------
    @property
    def wants_sharding(self) -> bool:
        """True when the config selects the sharded layout implicitly."""
        return self.n_shards is not None or self.shard_executor is not None

    def plan_cost(self) -> PlanCost:
        """This config's pruned-vs-broadcast cost rule, for the planner."""
        return PlanCost(
            min_partitions=self.prune_min_partitions,
            overhead_pairs=self.prune_overhead_pairs,
            safety_factor=self.prune_safety_factor,
        )

    def with_overrides(self, **kwargs) -> "EngineConfig":
        """A copy with ``kwargs`` replaced (re-validated)."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # String / environment construction
    # ------------------------------------------------------------------
    @staticmethod
    def parse_overrides(text: str) -> Dict[str, object]:
        """``"plan=broadcast,n_shards=4"`` -> a typed override dict.

        The CLI ``--engine-config`` format: comma-separated ``key=value``
        pairs over the string-settable fields.  ``none`` (any case)
        clears an optional field.
        """
        overrides: Dict[str, object] = {}
        for pair in filter(None, (p.strip() for p in text.split(","))):
            key, sep, value = pair.partition("=")
            key = key.strip()
            if not sep or not key:
                raise ValidationError(
                    f"engine-config entry {pair!r} is not key=value"
                )
            if key not in _STRING_FIELDS:
                raise ValidationError(
                    f"unknown engine-config field {key!r}; settable fields: "
                    f"{', '.join(sorted(_STRING_FIELDS))}"
                )
            value = value.strip()
            if value.lower() == "none":
                if key not in _OPTIONAL_FIELDS:
                    raise ValidationError(
                        f"engine-config field {key!r} cannot be cleared; "
                        f"only {', '.join(sorted(_OPTIONAL_FIELDS))} accept "
                        f"'none'"
                    )
                overrides[key] = None
                continue
            try:
                overrides[key] = _STRING_FIELDS[key](value)
            except ValueError as exc:
                raise ValidationError(
                    f"engine-config field {key!r}: bad value {value!r} "
                    f"({exc})"
                ) from exc
        return overrides

    @classmethod
    def from_string(
        cls, text: str, base: "EngineConfig | None" = None
    ) -> "EngineConfig":
        """Config from a ``key=value,...`` override string."""
        base = base if base is not None else cls()
        return base.with_overrides(**cls.parse_overrides(text))

    @classmethod
    def from_env(
        cls,
        base: "EngineConfig | None" = None,
        environ: Mapping[str, str] | None = None,
    ) -> "EngineConfig":
        """Config with ``REPRO_ENGINE_<FIELD>`` overrides applied.

        E.g. ``REPRO_ENGINE_PLAN=sharded REPRO_ENGINE_N_SHARDS=4``.
        Unset variables keep ``base``'s values; empty strings are
        treated as unset.
        """
        base = base if base is not None else cls()
        environ = os.environ if environ is None else environ
        pairs = []
        for field in fields(cls):
            if field.name not in _STRING_FIELDS:
                continue
            raw = environ.get(ENV_PREFIX + field.name.upper())
            if raw:
                pairs.append(f"{field.name}={raw}")
        if not pairs:
            return base
        return cls.from_string(",".join(pairs), base=base)
