"""The synchronous serving facade: one entry point, four plans.

:class:`Engine` binds a :class:`~repro.core.PrivateFrequencyMatrix` to
an :class:`~repro.engine.EngineConfig` and answers
:class:`~repro.engine.QueryRequest` batches through the same four
strategies the kwarg-era ``answer_arrays`` offered — dense prefix sums,
tiled broadcast, index-pruned gather, partition-axis sharding — but
with every tuning decision read from the config instead of from
scattered kwargs and module constants.  It is the *only* query path:
``PrivateFrequencyMatrix.answer_many`` routes through a default-config
engine, the deprecated ``answer_arrays``/``answer_sharded`` shims
construct one per call, and :class:`~repro.engine.AsyncBatchEngine`
answers each tick with exactly one :meth:`Engine.answer` invocation.

Routing (mirrors, and replaces, the old ``answer_arrays`` body):

1. a forced ``config.plan`` wins, with the documented graceful fallback
   for ``pruned`` below the pruning threshold;
2. ``config.n_shards`` / ``config.shard_executor`` select the sharded
   layout for partition-backed outputs — dense-backed outputs (which
   have no partition list to shard) fall through to their dense route
   instead of erroring, so one config serves a mixed method set;
3. otherwise the cost model picks: dense prefix sums once ``q × k``
   dwarfs the cell count, else pruned-vs-broadcast by the interval
   index's candidate bound.

Every answer records the plan that actually ran and, for sharded
execution, the per-shard evidence — so callers aggregate execution
facts instead of re-deriving them.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Dict, Tuple

import numpy as np

from ..core.exceptions import QueryError
from ..core.interval_index import (
    PLAN_BROADCAST,
    PLAN_DENSE,
    PLAN_PRUNED,
    PLAN_SHARDED,
    plan_with_slices,
)
from ..core.packed import validate_box_arrays
from .api import QueryAnswer, QueryRequest
from .config import EngineConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.private_matrix import PrivateFrequencyMatrix
    from ..core.sharding import ShardedAnswer
    from .worker_pool import ShardWorkerPool


class Engine:
    """Answer query batches for one private matrix under one config.

    Construction is cheap — the engine holds references, no copies —
    and all heavy state (dense reconstruction, prefix table, interval
    index, shards) lives on the matrix's own caches, so any number of
    engines over the same matrix share it.
    """

    __slots__ = ("_private", "_config", "_pool", "_pool_lock")

    def __init__(
        self,
        private: "PrivateFrequencyMatrix",
        config: EngineConfig | None = None,
    ):
        self._private = private
        self._config = config if config is not None else EngineConfig()
        # Lazily built ShardWorkerPool for shard_executor="resident";
        # the lock makes concurrent first-touch spawn exactly one pool.
        self._pool: "ShardWorkerPool | None" = None
        self._pool_lock = threading.Lock()

    @property
    def private(self) -> "PrivateFrequencyMatrix":
        return self._private

    @property
    def config(self) -> EngineConfig:
        return self._config

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Engine({self._private!r}, plan={self._config.plan!r})"

    # ------------------------------------------------------------------
    # Resident pool lifecycle
    # ------------------------------------------------------------------
    @property
    def uses_resident_pool(self) -> bool:
        """True when sharded batches route through a worker pool."""
        return (
            self._config.shard_executor == "resident"
            and not self._private.is_dense_backed
        )

    def shard_pool(self) -> "ShardWorkerPool":
        """The engine's resident pool, spawning it on first use.

        Only meaningful with ``config.shard_executor == "resident"``;
        the pool is built from the matrix's cached shard split, so its
        answers are bit-identical to serial sharded execution.  After
        :meth:`close` a new pool is spawned on the next call.
        """
        if not self.uses_resident_pool:
            raise QueryError(
                "shard_pool() requires shard_executor='resident' and a "
                "partition-backed private matrix"
            )
        pool = self._pool
        if pool is not None and not pool.closed:
            return pool
        with self._pool_lock:
            if self._pool is None or self._pool.closed:
                from .worker_pool import ShardWorkerPool

                self._pool = ShardWorkerPool(
                    self._private.packed,
                    self._config.n_shards,
                    cost=self._config.plan_cost(),
                )
            return self._pool

    def warm_shard_pool(self) -> bool:
        """Spawn the resident pool now (if configured); True if warm.

        Servers call this once at startup from the main thread, so
        worker processes are never forked from a serving thread and the
        first request pays no spawn latency.
        """
        if not self.uses_resident_pool:
            return False
        self.shard_pool()
        return True

    def pool_stats(self) -> "Dict[str, object] | None":
        """Worker gauges for ``/statz``; ``None`` without a live pool."""
        pool = self._pool
        if pool is None or pool.closed:
            return None
        return pool.stats()

    def close(self) -> None:
        """Shut down the resident pool (if any); idempotent.

        The engine remains usable — a later sharded batch simply spawns
        a fresh pool.  Non-pool state (matrix caches) is untouched.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def _dense_wins(self, n_queries: int) -> bool:
        """The config-tuned dense prefix-sum switch."""
        cfg = self._config
        private = self._private
        n_cells = int(np.prod(private.shape, dtype=np.int64))
        return private.is_dense_backed or (
            n_cells <= cfg.dense_switch_max_cells
            and n_queries * private.n_partitions
            > cfg.dense_switch_factor * n_cells
        )

    def plan_queries(self, lows: np.ndarray, highs: np.ndarray) -> str:
        """The strategy :meth:`answer` would run for this batch.

        Pure: answers nothing, but may lazily build the interval index
        used as the cost signal.  Reflects the full routing — forced
        plans (after the ``pruned`` fallback), the sharding config, and
        the cost model.
        """
        private = self._private
        cfg = self._config
        lows, highs = validate_box_arrays(lows, highs, private.shape)
        if cfg.plan == PLAN_DENSE:
            return cfg.plan
        if cfg.plan is not None:
            # Any other forced plan needs a partition list; raising here
            # keeps plan_queries an honest preview of answer().
            if private.is_dense_backed:
                raise QueryError(
                    f"plan {cfg.plan!r} needs a partition list; this "
                    f"private matrix is dense-backed"
                )
            if cfg.plan == PLAN_SHARDED:
                return cfg.plan
            return private.packed.choose_plan(
                lows, highs, force=cfg.plan, cost=cfg.plan_cost()
            )
        if cfg.wants_sharding and not private.is_dense_backed:
            return PLAN_SHARDED
        if self._dense_wins(int(lows.shape[0])):
            return PLAN_DENSE
        return private.packed.choose_plan(lows, highs, cost=cfg.plan_cost())

    # ------------------------------------------------------------------
    # Answering
    # ------------------------------------------------------------------
    def answer(self, request: QueryRequest) -> QueryAnswer:
        """Answer one request batch; the public serving entry point."""
        start = time.perf_counter()
        answers, plan, sharded = self._execute(request.lows, request.highs)
        elapsed = time.perf_counter() - start
        return QueryAnswer(
            answers=answers,
            plan=plan,
            workload=request.workload,
            shard_bounds=() if sharded is None else sharded.bounds,
            shard_plans=() if sharded is None else sharded.plans,
            elapsed_seconds=elapsed,
        )

    def answer_arrays(
        self, lows: np.ndarray, highs: np.ndarray
    ) -> np.ndarray:
        """Plain answer vector for ``(q, d)`` bound arrays.

        Convenience for callers that want neither tagging nor evidence
        (tests, benchmarks); :meth:`answer` is the serving surface.
        """
        return self._execute(lows, highs)[0]

    def answer_sharded(
        self, lows: np.ndarray, highs: np.ndarray
    ) -> "ShardedAnswer":
        """Sharded answering with full per-shard evidence.

        Forces the sharded layout regardless of ``config.plan``, using
        the config's shard count/executor, and returns the raw
        :class:`~repro.core.sharding.ShardedAnswer`.  Raises for
        dense-backed outputs, which have no partition list to shard.
        """
        private = self._private
        if private.is_dense_backed:
            raise QueryError(
                "the sharded plan needs a partition list; this private "
                "matrix is dense-backed"
            )
        lows, highs = validate_box_arrays(lows, highs, private.shape)
        return self._sharded_answer(lows, highs)

    def _sharded_answer(
        self, lows: np.ndarray, highs: np.ndarray
    ) -> "ShardedAnswer":
        """Run the sharded layout through the configured executor.

        ``"resident"`` dispatches to the persistent worker pool;
        ``"serial"`` (or ``None``) answers shards in-process; a live
        executor object fans out through its ordered ``map``.  All
        three merge partials in fixed shard order, so the answers are
        bit-identical across executors.
        """
        cfg = self._config
        if self.uses_resident_pool:
            return self.shard_pool().answer(lows, highs)
        executor = cfg.shard_executor
        if executor == "serial":
            executor = None
        return self._private.packed.answer_sharded_arrays(
            lows,
            highs,
            n_shards=cfg.n_shards,
            executor=executor,
            cost=cfg.plan_cost(),
        )

    def _execute(
        self, lows: np.ndarray, highs: np.ndarray
    ) -> Tuple[np.ndarray, str, "ShardedAnswer | None"]:
        """Validate, route, run: ``(answers, ran_plan, shard_evidence)``."""
        private = self._private
        cfg = self._config
        plan = cfg.plan
        if plan is None and cfg.wants_sharding and not private.is_dense_backed:
            plan = PLAN_SHARDED
        n_queries = int(np.asarray(lows).shape[0])
        if n_queries == 0 and (
            plan != PLAN_SHARDED or private.is_dense_backed
        ):
            # Nothing to validate or answer; report the forced plan (or
            # the broadcast default the kwarg API always reported).  An
            # empty *partition-backed* sharded batch still runs below,
            # so callers get the per-shard skip evidence; dense-backed
            # has no shards to report on (and the kwarg API returned
            # empty here rather than erroring).
            return np.zeros(0, dtype=np.float64), plan or PLAN_BROADCAST, None
        lows, highs = validate_box_arrays(lows, highs, private.shape)
        if plan is None and self._dense_wins(n_queries):
            plan = PLAN_DENSE
        if plan == PLAN_DENSE:
            return private._prefix_table().query_arrays(lows, highs), plan, None
        if private.is_dense_backed:
            raise QueryError(
                f"plan {plan!r} needs a partition list; this private matrix "
                f"is dense-backed"
            )
        packed = private.packed
        cost = cfg.plan_cost()
        if plan == PLAN_SHARDED:
            # Even an empty batch runs the sharded route, so callers
            # get the per-shard evidence (every shard trivially skips).
            sharded = self._sharded_answer(lows, highs)
            return sharded.answers, plan, sharded
        if plan == PLAN_BROADCAST:
            return (
                packed.answer_many_arrays(lows, highs, plan=plan),
                plan,
                None,
            )
        # plan is None (cost model decides) or a forced "pruned" (which
        # degrades to broadcast below the threshold); either way, plan
        # and — when pruned — answer off one candidate-slice pass.
        plan, slices = plan_with_slices(
            packed, lows, highs, force=plan, cost=cost
        )
        if plan == PLAN_PRUNED:
            answers = packed.interval_index().answer_pruned(
                lows, highs, slices=slices
            )
        else:
            answers = packed.answer_many_arrays(
                lows, highs, plan=PLAN_BROADCAST
            )
        return answers, plan, None
