"""Stdlib-only asyncio HTTP transport in front of the serving facade.

This module is the network front door of the engine: an
:class:`EngineServer` binds one :class:`~repro.engine.Engine` to a TCP
port and answers JSON over HTTP/1.1 (keep-alive), feeding every
``POST /v1/query`` into an :class:`~repro.engine.AsyncBatchEngine` so
concurrent HTTP clients are coalesced into micro-batched ticks exactly
like in-process asyncio clients.  Endpoints (full request/response
schemas in ``docs/SERVING.md``):

* ``POST /v1/query`` — a JSON query batch (``lows``/``highs``
  ``(q, d)`` integer lists plus an optional ``workload`` tag); answers
  are **bit-identical** to an in-process ``Engine.answer`` call: the
  transport serializes float64 answers through ``repr``-exact JSON and
  never re-orders or re-reduces anything.
* ``GET /healthz`` — liveness; 200 while serving, 503 while draining.
* ``GET /statz`` — monotone serving counters plus gauges: latency
  percentiles, tick-size distribution, queue depth, the event-loop
  lag measured by :class:`LoopLagMonitor`, and — when the engine runs a
  resident :class:`~repro.engine.ShardWorkerPool` — worker gauges
  (alive count, restarts, queue depth, per-worker batch counts).

**Off-loop kernels.**  With ``off_loop=True`` (the default) each
flushed tick's engine invocation is dispatched through
``loop.run_in_executor`` into a :class:`ThreadPoolExecutor`, so the
event loop keeps accepting connections, parsing requests, forming the
next tick, and firing timeouts while a heavy kernel runs.  Threads give
real overlap because numpy releases the GIL inside the kernels — no
pickling, no copies.  ``off_loop=False`` runs kernels inline on the
loop (the PR-5 behavior), kept both as a comparison baseline for the
responsiveness benchmark and for single-threaded debugging.

**Flow control.**  Three protections keep an overloaded server honest
instead of unbounded: a queue-depth cap (`max_pending_requests`)
answered with **503 + Retry-After** before the request touches the
batcher; a per-request batch-size cap (`max_batch_queries`) answered
with **413**; and a per-request timeout answered with **504** whose
``asyncio.wait_for`` cancellation drops the request from its tick
without disturbing tick-mates (the AsyncBatchEngine cancellation
contract).  Shutdown is graceful: :meth:`EngineServer.shutdown` stops
accepting connections, refuses new queries with 503, lets in-flight
ticks complete, and only then tears down the executor.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Deque, Dict, List, Sequence, Tuple

import numpy as np

from ..core.exceptions import QueryError, ValidationError
from .async_batch import AsyncBatchEngine
from .api import QueryRequest
from .engine import Engine

#: Queue-depth cap: queries queued or executing above this answer 503.
DEFAULT_MAX_PENDING_REQUESTS = 1024

#: Largest query batch one POST may carry (larger answers 413).
DEFAULT_MAX_BATCH_QUERIES = 100_000

#: Largest request body in bytes (larger answers 413).
DEFAULT_MAX_BODY_BYTES = 64 * 1024 * 1024

#: Per-request serving deadline (exceeded answers 504).
DEFAULT_REQUEST_TIMEOUT = 30.0

#: Seconds suggested to a 503-rejected client via ``Retry-After``.
DEFAULT_RETRY_AFTER = 1.0

#: Heartbeat period of the loop-lag monitor.
HEARTBEAT_INTERVAL = 0.005

#: Ring-buffer window for latency percentiles in ``/statz``.
LATENCY_WINDOW = 8192

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sequence (0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = int(round((q / 100.0) * (len(sorted_values) - 1)))
    return float(sorted_values[rank])


class LoopLagMonitor:
    """Measures event-loop responsiveness with a heartbeat coroutine.

    Sleeps ``interval`` seconds in a loop and records how much later
    than scheduled each wake-up arrives.  ``max_lag`` is therefore the
    longest stretch the loop spent unable to run ready callbacks — with
    on-loop kernels it approaches the heaviest tick's kernel time, with
    off-loop kernels it stays near zero.  This is the number the
    serving benchmark's responsiveness ratio is built from.
    """

    def __init__(self, interval: float = HEARTBEAT_INTERVAL):
        self.interval = float(interval)
        self.max_lag = 0.0
        self.beats = 0
        self._task: "asyncio.Task[None] | None" = None

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def reset(self) -> None:
        """Forget recorded lag (e.g. between load-test phases)."""
        self.max_lag = 0.0
        self.beats = 0

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            before = loop.time()
            await asyncio.sleep(self.interval)
            lag = loop.time() - before - self.interval
            if lag > self.max_lag:
                self.max_lag = lag
            self.beats += 1


class EngineServer:
    """One engine, one port: the asyncio HTTP serving layer.

    Typical use (the CLI ``repro serve --port N`` path)::

        server = EngineServer(engine, port=8080)
        asyncio.run(server.serve_until())        # Ctrl-C drains and exits

    or embedded in an existing loop::

        await server.start()                     # binds; server.port set
        ...
        await server.shutdown()                  # graceful drain
    """

    def __init__(
        self,
        engine: Engine,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        off_loop: bool = True,
        executor: ThreadPoolExecutor | None = None,
        max_batch_size: int | None = None,
        max_batch_latency: float | None = None,
        max_pending_requests: int = DEFAULT_MAX_PENDING_REQUESTS,
        max_batch_queries: int = DEFAULT_MAX_BATCH_QUERIES,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        request_timeout: float | None = DEFAULT_REQUEST_TIMEOUT,
        retry_after: float = DEFAULT_RETRY_AFTER,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
    ):
        if max_pending_requests < 1:
            raise ValidationError(
                f"max_pending_requests must be >= 1, got "
                f"{max_pending_requests}"
            )
        if max_batch_queries < 1:
            raise ValidationError(
                f"max_batch_queries must be >= 1, got {max_batch_queries}"
            )
        if request_timeout is not None and request_timeout <= 0:
            raise ValidationError(
                f"request_timeout must be positive or None, got "
                f"{request_timeout}"
            )
        self.engine = engine
        self.host = host
        self.port = int(port)  # rewritten with the bound port on start()
        self.off_loop = bool(off_loop)
        self.max_pending_requests = int(max_pending_requests)
        self.max_batch_queries = int(max_batch_queries)
        self.max_body_bytes = int(max_body_bytes)
        self.request_timeout = request_timeout
        self.retry_after = float(retry_after)
        self._requested_port = int(port)
        self._max_batch_size = max_batch_size
        self._max_batch_latency = max_batch_latency
        self._executor = executor
        self._own_executor = off_loop and executor is None
        self._heartbeat_interval = float(heartbeat_interval)
        self._server: asyncio.AbstractServer | None = None
        self._batcher: AsyncBatchEngine | None = None
        self.monitor = LoopLagMonitor(heartbeat_interval)
        self._draining = False
        self._in_progress = 0
        self._started_at = 0.0
        self._latencies: Deque[float] = deque(maxlen=LATENCY_WINDOW)
        self._connections: set[asyncio.StreamWriter] = set()
        self._counters: Dict[str, int] = {
            "connections_total": 0,
            "requests_total": 0,
            "answered_requests": 0,
            "answered_queries": 0,
            "bad_requests": 0,
            "rejected_oversized": 0,
            "rejected_queue_full": 0,
            "timeouts": 0,
            "client_disconnects": 0,
            "not_found": 0,
            "health_checks": 0,
            "stat_checks": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def batcher(self) -> AsyncBatchEngine:
        if self._batcher is None:
            raise RuntimeError("server not started")
        return self._batcher

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> None:
        """Bind and begin accepting connections; sets :attr:`port`."""
        if self._server is not None:
            raise RuntimeError("server already started")
        if self.off_loop and self._executor is None:
            # One worker is deliberate: ticks are answered in flush
            # order and numpy already uses the cores inside a kernel.
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-tick"
            )
        self._batcher = AsyncBatchEngine(
            self.engine,
            max_batch_size=self._max_batch_size,
            max_batch_latency=self._max_batch_latency,
            executor=self._executor if self.off_loop else None,
        )
        # Spawn the resident shard-worker pool (when configured) before
        # accepting traffic: workers fork from this thread, not from a
        # tick thread mid-request, and the first query pays no spawn
        # latency.  No-op for other executors; guarded with getattr so
        # duck-typed engine stand-ins keep working.
        warm = getattr(self.engine, "warm_shard_pool", None)
        if warm is not None:
            warm()
        self._draining = False
        self._started_at = time.time()
        self.monitor.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def shutdown(self) -> None:
        """Graceful drain: refuse new work, finish in-flight ticks."""
        if self._server is None:
            return
        self._draining = True
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        # In-progress requests either resolve with their tick or hit
        # their own timeout; both paths decrement the gauge.
        while self._in_progress > 0:
            await asyncio.sleep(self._heartbeat_interval)
        await self._batcher.drain()
        self.monitor.stop()
        if self._own_executor and self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        # After the tick executor is gone no kernel can touch the pool;
        # stop its workers and unlink the shm segment (idempotent, and
        # a no-op for non-resident executors).
        close = getattr(self.engine, "close", None)
        if close is not None:
            close()
        for writer in tuple(self._connections):
            writer.close()

    async def serve_until(self, stop: "asyncio.Event | None" = None) -> None:
        """Start, run until ``stop`` is set (or cancelled), then drain."""
        await self.start()
        try:
            if stop is None:
                stop = asyncio.Event()
            await stop.wait()
        finally:
            await self.shutdown()

    async def __aenter__(self) -> "EngineServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.shutdown()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        self._counters["connections_total"] += 1
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                parts = request_line.decode("latin-1").strip().split()
                if len(parts) != 3:
                    self._counters["bad_requests"] += 1
                    await self._respond(
                        writer, 400, {"error": "malformed request line"},
                        close=True,
                    )
                    break
                method, target, version = parts
                headers = await self._read_headers(reader)
                if headers is None:
                    break
                try:
                    length = int(headers.get("content-length", "0") or "0")
                except ValueError:
                    self._counters["bad_requests"] += 1
                    await self._respond(
                        writer, 400, {"error": "bad Content-Length"},
                        close=True,
                    )
                    break
                if length > self.max_body_bytes:
                    self._counters["rejected_oversized"] += 1
                    await self._respond(
                        writer, 413,
                        {
                            "error": "request body too large",
                            "max_body_bytes": self.max_body_bytes,
                        },
                        close=True,
                    )
                    break
                body = await reader.readexactly(length) if length else b""
                close = (
                    headers.get("connection", "").lower() == "close"
                    or version == "HTTP/1.0"
                    or self._draining
                )
                status, payload, extra = await self._dispatch(
                    method, target.partition("?")[0], body
                )
                await self._respond(
                    writer, status, payload, extra_headers=extra, close=close
                )
                if close:
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            self._counters["client_disconnects"] += 1
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    @staticmethod
    async def _read_headers(
        reader: asyncio.StreamReader,
    ) -> "Dict[str, str] | None":
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n"):
                return headers
            if not line:
                return None
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        *,
        extra_headers: "List[str] | None" = None,
        close: bool = False,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        lines.extend(extra_headers or ())
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, dict, "List[str] | None"]:
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "healthz is GET-only"}, None
            self._counters["health_checks"] += 1
            if self._draining:
                return 503, {"status": "draining"}, self._retry_header()
            return 200, {"status": "ok"}, None
        if path == "/statz":
            if method != "GET":
                return 405, {"error": "statz is GET-only"}, None
            self._counters["stat_checks"] += 1
            return 200, self.statz(), None
        if path == "/v1/query":
            if method != "POST":
                return 405, {"error": "query is POST-only"}, None
            return await self._query(body)
        self._counters["not_found"] += 1
        return 404, {"error": f"no route for {path!r}"}, None

    def _retry_header(self) -> List[str]:
        return [f"Retry-After: {self.retry_after:g}"]

    async def _query(self, body: bytes) -> Tuple[int, dict, "List[str] | None"]:
        self._counters["requests_total"] += 1
        if self._draining:
            return (
                503,
                {"error": "server is draining"},
                self._retry_header(),
            )
        try:
            payload = json.loads(body)
        except ValueError as exc:
            self._counters["bad_requests"] += 1
            return 400, {"error": f"invalid JSON: {exc}"}, None
        if not isinstance(payload, dict):
            self._counters["bad_requests"] += 1
            return 400, {"error": "request body must be a JSON object"}, None
        workload = payload.get("workload", "")
        if not isinstance(workload, str):
            self._counters["bad_requests"] += 1
            return 400, {"error": "workload must be a string"}, None
        try:
            lows = np.asarray(payload.get("lows"), dtype=np.int64)
            highs = np.asarray(payload.get("highs"), dtype=np.int64)
        except (TypeError, ValueError) as exc:
            self._counters["bad_requests"] += 1
            return (
                400,
                {"error": f"lows/highs must be (q, d) integer arrays ({exc})"},
                None,
            )
        n_queries = int(lows.shape[0]) if lows.ndim >= 1 else 0
        if n_queries > self.max_batch_queries:
            self._counters["rejected_oversized"] += 1
            return (
                413,
                {
                    "error": f"batch of {n_queries} queries exceeds "
                    f"max_batch_queries={self.max_batch_queries}",
                    "max_batch_queries": self.max_batch_queries,
                },
                None,
            )
        if self._in_progress >= self.max_pending_requests:
            self._counters["rejected_queue_full"] += 1
            return (
                503,
                {
                    "error": f"pending queue full "
                    f"({self.max_pending_requests} requests in flight)",
                    "max_pending_requests": self.max_pending_requests,
                },
                self._retry_header(),
            )
        request = QueryRequest(lows, highs, workload=workload)
        loop = asyncio.get_running_loop()
        self._in_progress += 1
        start = loop.time()
        try:
            pending = self.batcher.answer(request)
            if self.request_timeout is not None:
                answer = await asyncio.wait_for(pending, self.request_timeout)
            else:
                answer = await pending
        except asyncio.TimeoutError:
            # wait_for cancelled the request's future: it is dropped at
            # flush (or on demux) without disturbing its tick-mates.
            self._counters["timeouts"] += 1
            return (
                504,
                {
                    "error": f"request timed out after "
                    f"{self.request_timeout:g}s",
                    "timeout_seconds": self.request_timeout,
                },
                None,
            )
        except (QueryError, ValidationError) as exc:
            self._counters["bad_requests"] += 1
            return 400, {"error": str(exc)}, None
        finally:
            self._in_progress -= 1
        self._latencies.append(loop.time() - start)
        self._counters["answered_requests"] += 1
        self._counters["answered_queries"] += answer.n_queries
        return (
            200,
            {
                "answers": answer.answers.tolist(),
                "plan": answer.plan,
                "workload": answer.workload,
                "n_queries": answer.n_queries,
                "shard_bounds": [list(b) for b in answer.shard_bounds],
                "shard_plans": list(answer.shard_plans),
                "skipped_shards": answer.skipped_shards,
                "elapsed_seconds": answer.elapsed_seconds,
            },
            None,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def statz(self) -> dict:
        """The ``/statz`` payload: monotone counters + gauges."""
        batch_stats = self.batcher.stats
        latencies = sorted(self._latencies)
        ticks = sorted(self.batcher.recent_tick_queries)
        counters = dict(self._counters)
        counters["ticks"] = int(batch_stats["ticks"])
        counters["dropped_requests"] = int(batch_stats["dropped_requests"])
        return {
            "uptime_seconds": time.time() - self._started_at,
            "draining": self._draining,
            "off_loop": self.off_loop,
            "counters": counters,
            "queue": {
                "in_progress": self._in_progress,
                "pending_requests": self.batcher.pending_requests,
                "inflight_ticks": self.batcher.inflight_ticks,
                "max_pending_requests": self.max_pending_requests,
            },
            "latency_ms": {
                "count": len(latencies),
                "p50": 1e3 * percentile(latencies, 50),
                "p95": 1e3 * percentile(latencies, 95),
                "p99": 1e3 * percentile(latencies, 99),
                "max": 1e3 * (latencies[-1] if latencies else 0.0),
            },
            "tick_queries": {
                "count": len(ticks),
                "p50": percentile(ticks, 50),
                "max": int(batch_stats["max_tick_queries"]),
                "mean": batch_stats["mean_tick_queries"],
                "last": int(batch_stats["last_tick_queries"]),
            },
            "loop": {
                "heartbeat_interval_ms": 1e3 * self.monitor.interval,
                "max_lag_ms": 1e3 * self.monitor.max_lag,
                "beats": self.monitor.beats,
            },
            # Resident shard-worker gauges (null unless the engine is
            # running a ShardWorkerPool): alive count, restarts, queue
            # depth, per-worker batch counts.
            "workers": getattr(self.engine, "pool_stats", lambda: None)(),
        }
