"""Typed request/response objects of the serving facade.

A :class:`QueryRequest` is what a client hands the engine: the batch's
inclusive cell-index bounds as ``(q, d)`` arrays plus an optional
workload tag that rides along for bookkeeping.  A :class:`QueryAnswer`
is everything the engine knows about how the batch was answered: the
answer vector, the plan that actually ran, per-shard execution evidence
when the sharded layout was used, and the wall-clock of the engine
invocation.  Both are plain data — no behavior beyond light conversion
and convenience accessors — so they pickle, log, and compare cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from ..core.frequency_matrix import Box
from ..core.packed import boxes_to_arrays
from ..core.sharding import SHARD_SKIPPED


@dataclass(frozen=True)
class QueryRequest:
    """A batch of inclusive cell-index range queries.

    ``lows``/``highs`` are ``(q, d)`` integer arrays (anything
    array-like; the engine validates them against its matrix's shape).
    ``workload`` is a free-form tag echoed back on the answer — the
    evaluator uses it to name the workload set, a serving client can
    use it to correlate responses.
    """

    lows: np.ndarray
    highs: np.ndarray
    workload: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "lows", np.asarray(self.lows))
        object.__setattr__(self, "highs", np.asarray(self.highs))

    @classmethod
    def from_boxes(
        cls, boxes: Sequence[Box], workload: str = ""
    ) -> "QueryRequest":
        """Build a request from a list of inclusive box tuples."""
        boxes = list(boxes)
        if not boxes:
            empty = np.zeros((0, 0), dtype=np.int64)
            return cls(empty, empty, workload)
        lows, highs = boxes_to_arrays(boxes)
        return cls(lows, highs, workload)

    @property
    def n_queries(self) -> int:
        return int(self.lows.shape[0])

    def __len__(self) -> int:
        return self.n_queries


@dataclass(frozen=True)
class QueryAnswer:
    """Answers plus execution evidence for one engine invocation.

    ``plan`` is the strategy that actually ran for the batch (after any
    graceful fallback), one of ``dense`` / ``broadcast`` / ``pruned`` /
    ``sharded``.  For the sharded layout, ``shard_bounds`` and
    ``shard_plans`` carry the per-shard evidence of
    :class:`~repro.core.sharding.ShardedAnswer` — which partition
    ranges existed and what each did (including provable skips) — so
    downstream aggregation never needs to special-case rows that lack a
    plan.  ``elapsed_seconds`` is the engine-side wall-clock of the
    invocation; for answers demultiplexed out of an async tick it is
    the *tick's* wall-clock, shared by every client in the batch.
    """

    answers: np.ndarray
    plan: str
    workload: str = ""
    shard_bounds: Tuple[Tuple[int, int], ...] = field(default_factory=tuple)
    shard_plans: Tuple[str, ...] = field(default_factory=tuple)
    elapsed_seconds: float = 0.0

    @property
    def n_queries(self) -> int:
        return int(self.answers.shape[0])

    def __len__(self) -> int:
        return self.n_queries

    # ------------------------------------------------------------------
    # Sharded-execution evidence
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        """Shards the batch ran across (0 for single-node plans)."""
        return len(self.shard_bounds)

    @property
    def skipped_shards(self) -> int:
        """How many shards proved they had no overlapping query."""
        return sum(1 for p in self.shard_plans if p == SHARD_SKIPPED)

    @property
    def skip_rate(self) -> float:
        """Fraction of shards that skipped (0.0 for single-node plans)."""
        if not self.shard_plans:
            return 0.0
        return self.skipped_shards / len(self.shard_plans)
