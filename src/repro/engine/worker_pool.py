"""Resident shard-worker pool: persistent processes over shm shards.

``BENCH_sharded.json`` showed why per-call fan-out loses: every
``ProcessPoolTrialExecutor`` round pays process spawn plus pickling the
full shard arrays, which swamps the kernel time it was supposed to
parallelize.  :class:`ShardWorkerPool` fixes the cost model by making
both prices one-time:

* **Arrays** — the shards' packed ``lo``/``hi``/``noisy_counts`` and
  interval-index buffers live in one shared-memory segment
  (:class:`~repro.core.shm.ShmShardLayout`), built once per matrix.
  Workers attach zero-copy views; a restarted worker re-attaches the
  *still-live* segment instead of receiving a fresh copy.
* **Processes** — one worker per shard, spawned once, answering query
  batches over request/response queues until shutdown.  Per request
  only the ``(q, d)`` bound arrays and the ``(q,)`` partial cross the
  queues.

Protocol frames (full tables in ``docs/WORKERS.md``)::

    parent -> worker   ("batch", batch_id, lows, highs)
                       ("ping", token)
                       ("crash_next",)            # test hook
                       ("stop",)
    worker -> parent   ("ready", shard_id, pid)   # warmup handshake
                       ("done", shard_id, batch_id, partial, plan)
                       ("error", shard_id, batch_id, traceback)
                       ("pong", shard_id, token, batches_done)

Determinism: a worker executes the *same*
:meth:`~repro.core.sharding.PartitionShard.partial` the serial path
runs, over buffer-identical arrays, with the same
:class:`~repro.core.interval_index.PlanCost`; the parent merges
partials as a fixed-order sum in shard order.  Workers never consult
(or re-derive) any RNG state — a shard answer is pure arithmetic over
the shm arrays — so pool answers are **bit-identical** to
``shard_executor="serial"``, and the equivalence suite asserts exactly
that (``==``, not a tolerance).

Lifecycle: spawn + ready handshake (:meth:`ShardWorkerPool.__init__`),
per-worker heartbeat (:meth:`ShardWorkerPool.ping`), automatic restart
of a crashed worker with the in-flight batch retried once
(:meth:`ShardWorkerPool.answer`), then a clean
:class:`~repro.engine.ServingError`; :meth:`ShardWorkerPool.shutdown`
is idempotent and unlinks the segment exactly once.  A
:func:`weakref.finalize` net tears down workers and segment if a pool
is dropped without shutdown.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import threading
import time
import traceback
import weakref
from typing import TYPE_CHECKING, Dict, List, Tuple

import numpy as np

from ..core.interval_index import PlanCost
from ..core.sharding import SHARD_SKIPPED, ShardedAnswer
from ..core.shm import ShmShardLayout, ShmShardSpec
from .client import ServingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.packed import PackedPartitioning

#: Seconds a freshly spawned worker gets to attach its shard and send
#: the ``ready`` handshake before the pool declares it failed.
DEFAULT_WARMUP_TIMEOUT = 60.0

#: Seconds the pool waits for one shard's partial before declaring the
#: batch failed (a worker that is alive but silent for this long is
#: indistinguishable from a livelocked one).
DEFAULT_BATCH_TIMEOUT = 120.0

#: Poll interval while waiting on a worker's response queue; each miss
#: re-checks worker liveness, which is what turns a kill -9 into a
#: restart instead of a hang.
_POLL_INTERVAL = 0.05

#: Exit code of the ``crash_next`` test hook, distinguishable from a
#: real kill in worker post-mortems.
_CRASH_EXIT_CODE = 117


def _preferred_context() -> multiprocessing.context.BaseContext:
    """Fork where available (cheap spawn, POSIX), else spawn.

    Either way the shard arrays arrive via the shm segment, not via
    inherited memory — fork only saves the interpreter+numpy import.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def _worker_main(
    spec: ShmShardSpec,
    shard_id: int,
    cost: PlanCost | None,
    request_queue,
    response_queue,
) -> None:
    """One resident worker: attach the shm shard, answer until told to stop.

    Module-level so the spawn start method can import it by name.  The
    body deliberately touches no RNG (global or otherwise): everything
    it computes is a deterministic function of the shm arrays and the
    batch bounds, which is what makes pool answers bit-identical to
    serial execution.
    """
    attached = spec.attach(shard_id)
    batches_done = 0
    crash_next = False
    try:
        response_queue.put(("ready", shard_id, os.getpid()))
        while True:
            frame = request_queue.get()
            kind = frame[0]
            if kind == "stop":
                return
            if kind == "ping":
                response_queue.put(
                    ("pong", shard_id, frame[1], batches_done)
                )
            elif kind == "crash_next":
                # Test hook: die *mid-batch* (after dequeue, before
                # reply), the exact window the restart logic covers.
                crash_next = True
            elif kind == "batch":
                _, batch_id, lows, highs = frame
                if crash_next:
                    os._exit(_CRASH_EXIT_CODE)
                try:
                    partial, plan = attached.shard.partial(
                        lows, highs, cost
                    )
                except BaseException:
                    response_queue.put(
                        (
                            "error",
                            shard_id,
                            batch_id,
                            traceback.format_exc(),
                        )
                    )
                else:
                    batches_done += 1
                    response_queue.put(
                        ("done", shard_id, batch_id, partial, plan)
                    )
    finally:
        attached.close()


class _Worker:
    """Parent-side handle: process + its private queue pair + gauges."""

    __slots__ = (
        "shard_id",
        "process",
        "request_queue",
        "response_queue",
        "batches",
        "restarts",
    )

    def __init__(self, shard_id, process, request_queue, response_queue):
        self.shard_id = shard_id
        self.process = process
        self.request_queue = request_queue
        self.response_queue = response_queue
        self.batches = 0
        self.restarts = 0

    def discard_queues(self) -> None:
        """Drop this life's queues (a restart gets a fresh pair, so a
        dead worker's half-written frames can never leak into the next
        life's responses)."""
        for q in (self.request_queue, self.response_queue):
            try:
                q.close()
                q.join_thread()
            except (OSError, ValueError):  # pragma: no cover - torn down
                pass


def _finalize_pool(layout: ShmShardLayout, workers: List[_Worker]) -> None:
    """GC safety net: kill workers, then release the segment."""
    for worker in workers:
        if worker.process.is_alive():
            worker.process.terminate()
    for worker in workers:
        worker.process.join(timeout=5.0)
        worker.discard_queues()
    layout.close()


class ShardWorkerPool:
    """Persistent per-shard worker processes answering query batches.

    Parameters
    ----------
    packed:
        The partition-backed matrix to shard (its cached
        ``split_shards`` result seeds the shm layout, so pool and
        serial execution share the very same shard arrays).
    n_shards:
        Worker/shard count (clipped to the partition count, like every
        sharded path).  ``None`` uses
        :data:`~repro.core.sharding.DEFAULT_N_SHARDS`.
    cost:
        Per-shard :class:`~repro.core.interval_index.PlanCost`, shipped
        to each worker once so pooled and serial planning are
        identical.
    start_method:
        ``"fork"`` / ``"spawn"`` / ``"forkserver"`` override; default
        prefers fork where the platform has it.
    warmup_timeout / batch_timeout:
        Handshake and per-shard response deadlines (seconds).

    The pool is thread-safe (one internal lock serializes dispatch) and
    usable as a context manager; :meth:`shutdown` is idempotent.
    """

    def __init__(
        self,
        packed: "PackedPartitioning",
        n_shards: int | None = None,
        *,
        cost: PlanCost | None = None,
        start_method: str | None = None,
        warmup_timeout: float = DEFAULT_WARMUP_TIMEOUT,
        batch_timeout: float = DEFAULT_BATCH_TIMEOUT,
    ):
        self._layout = ShmShardLayout(packed, n_shards)
        self._spec = self._layout.spec
        self._cost = cost
        self._ctx = (
            multiprocessing.get_context(start_method)
            if start_method is not None
            else _preferred_context()
        )
        self._warmup_timeout = float(warmup_timeout)
        self._batch_timeout = float(batch_timeout)
        self._lock = threading.Lock()
        self._closed = False
        self._restarts_total = 0
        self._next_batch_id = 0
        self._inflight = 0
        # Mutated in place on restart — the finalizer holds this exact
        # list, so it always sees the current processes.
        self._workers: List[_Worker] = []
        self._finalizer = weakref.finalize(
            self, _finalize_pool, self._layout, self._workers
        )
        try:
            for shard_id in range(self._spec.n_shards):
                self._workers.append(self._spawn_worker(shard_id))
            for worker in self._workers:
                self._await_ready(worker)
        except BaseException:
            self._finalizer()
            raise

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return self._spec.n_shards

    @property
    def bounds(self) -> Tuple[Tuple[int, int], ...]:
        return self._spec.bounds

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def layout(self) -> ShmShardLayout:
        return self._layout

    @property
    def restarts(self) -> int:
        """Total worker restarts over the pool's lifetime."""
        return self._restarts_total

    def stats(self) -> Dict[str, object]:
        """Worker gauges for ``/statz``: liveness, restarts, depth,
        per-worker batch counts."""
        return {
            "n_workers": self.n_shards,
            "alive": sum(
                1 for w in self._workers if w.process.is_alive()
            ),
            "restarts": self._restarts_total,
            "queue_depth": self._inflight,
            "worker_batches": [w.batches for w in self._workers],
            "worker_restarts": [w.restarts for w in self._workers],
            "pids": [w.process.pid for w in self._workers],
            "segment_bytes": self._layout.nbytes,
            "closed": self._closed,
        }

    def ping(self, timeout: float = 5.0) -> List[bool]:
        """Heartbeat every worker; ``True`` per worker that answered.

        A dead or silent worker reads ``False`` — it is *not* restarted
        here (restart is the dispatch path's job, where the in-flight
        batch context exists); the next :meth:`answer` will revive it.
        """
        with self._lock:
            self._ensure_open()
            token = f"ping-{time.monotonic_ns()}"
            alive: List[bool] = []
            for worker in self._workers:
                if not worker.process.is_alive():
                    alive.append(False)
                    continue
                try:
                    worker.request_queue.put(("ping", token))
                except (OSError, ValueError):
                    alive.append(False)
                    continue
                alive.append(self._await_pong(worker, token, timeout))
            return alive

    # ------------------------------------------------------------------
    # Answering
    # ------------------------------------------------------------------
    def answer(self, lows: np.ndarray, highs: np.ndarray) -> ShardedAnswer:
        """Fan a validated batch out to the workers; merge fixed-order.

        Same contract as :func:`repro.core.sharding.answer_sharded`
        with this pool's shard layout: identical bounds, identical
        per-shard plans, and a merge that sums partials in shard order,
        so the answers are bit-identical to serial execution.  A worker
        found dead is restarted from the live shm segment before
        dispatch; a worker dying mid-batch triggers one restart + retry
        of that shard's batch, after which the failure surfaces as a
        :class:`~repro.engine.ServingError` (status 503).
        """
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        q = int(lows.shape[0])
        with self._lock:
            self._ensure_open()
            if q == 0:
                # Mirror answer_sharded: evidence without dispatch.
                return ShardedAnswer(
                    answers=np.zeros(0, dtype=np.float64),
                    bounds=self.bounds,
                    plans=(SHARD_SKIPPED,) * self.n_shards,
                )
            batch_id = self._next_batch_id
            self._next_batch_id += 1
            for shard_id in range(self.n_shards):
                self._dispatch(shard_id, batch_id, lows, highs)
            self._inflight = self.n_shards
            try:
                partials = []
                for shard_id in range(self.n_shards):
                    partials.append(
                        self._collect(shard_id, batch_id, lows, highs)
                    )
                    self._inflight -= 1
            finally:
                self._inflight = 0
        answers = np.zeros(q, dtype=np.float64)
        plans: List[str] = []
        for partial, plan in partials:
            plans.append(plan)
            if partial is not None:
                answers += partial
        return ShardedAnswer(
            answers=answers, bounds=self.bounds, plans=tuple(plans)
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self, timeout: float = 10.0) -> None:
        """Graceful stop: drain workers, unlink the segment exactly once.

        Idempotent — a second call returns immediately.  Workers get a
        ``stop`` frame and ``timeout`` seconds to exit before being
        terminated; the segment is unlinked afterwards either way (the
        layout's own guard makes the unlink exactly-once even against
        the GC finalizer).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for worker in self._workers:
                if worker.process.is_alive():
                    try:
                        worker.request_queue.put(("stop",))
                    except (OSError, ValueError):
                        pass
            deadline = time.monotonic() + timeout
            for worker in self._workers:
                worker.process.join(
                    timeout=max(0.0, deadline - time.monotonic())
                )
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=5.0)
                worker.discard_queues()
            self._finalizer.detach()  # cleanup is done; drop the net
            self._layout.close()

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardWorkerPool(shards={self.n_shards}, "
            f"segment={self._layout.name!r}, closed={self._closed})"
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _ensure_open(self) -> None:
        if self._closed:
            raise ServingError(
                503, {"error": "shard worker pool is shut down"}
            )

    def _spawn_worker(self, shard_id: int) -> _Worker:
        request_queue = self._ctx.Queue()
        response_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                self._spec,
                shard_id,
                self._cost,
                request_queue,
                response_queue,
            ),
            name=f"repro-shard-{shard_id}",
            daemon=True,
        )
        process.start()
        return _Worker(shard_id, process, request_queue, response_queue)

    def _await_ready(self, worker: _Worker) -> None:
        deadline = time.monotonic() + self._warmup_timeout
        while True:
            try:
                frame = worker.response_queue.get(timeout=_POLL_INTERVAL)
            except queue_mod.Empty:
                if not worker.process.is_alive():
                    raise ServingError(
                        503,
                        {
                            "error": f"shard worker "
                            f"{worker.shard_id} died during warmup "
                            f"(exit code "
                            f"{worker.process.exitcode})"
                        },
                    )
                if time.monotonic() > deadline:
                    raise ServingError(
                        503,
                        {
                            "error": f"shard worker "
                            f"{worker.shard_id} failed the warmup "
                            f"handshake within "
                            f"{self._warmup_timeout:g}s"
                        },
                    )
                continue
            if frame[0] == "ready" and frame[1] == worker.shard_id:
                return

    def _await_pong(
        self, worker: _Worker, token: str, timeout: float
    ) -> bool:
        deadline = time.monotonic() + timeout
        while True:
            try:
                frame = worker.response_queue.get(timeout=_POLL_INTERVAL)
            except queue_mod.Empty:
                if (
                    not worker.process.is_alive()
                    or time.monotonic() > deadline
                ):
                    return False
                continue
            if frame[0] == "pong" and frame[2] == token:
                return True
            # Anything else on the queue here is stale (e.g. an older
            # pong); keep draining until ours arrives or time is up.

    def _restart_worker(self, shard_id: int) -> None:
        """Replace a dead worker, re-attaching the still-live segment.

        Fresh queues per life: frames from the previous incarnation can
        never be read as answers from the new one.
        """
        old = self._workers[shard_id]
        if old.process.is_alive():  # pragma: no cover - defensive
            old.process.terminate()
            old.process.join(timeout=5.0)
        old.discard_queues()
        replacement = self._spawn_worker(shard_id)
        replacement.batches = old.batches
        replacement.restarts = old.restarts + 1
        self._workers[shard_id] = replacement
        self._restarts_total += 1
        try:
            self._await_ready(replacement)
        except ServingError as exc:
            raise ServingError(
                503,
                {
                    "error": f"shard worker {shard_id} could not be "
                    f"restarted: "
                    f"{exc.payload.get('error', str(exc))}"
                },
            ) from exc

    def _dispatch(
        self,
        shard_id: int,
        batch_id: int,
        lows: np.ndarray,
        highs: np.ndarray,
    ) -> None:
        worker = self._workers[shard_id]
        if not worker.process.is_alive():
            # Died idle (e.g. kill -9 between requests): revive before
            # send — this is a restart, not a retry.
            self._restart_worker(shard_id)
            worker = self._workers[shard_id]
        try:
            worker.request_queue.put(("batch", batch_id, lows, highs))
        except (OSError, ValueError) as exc:
            raise ServingError(
                503,
                {
                    "error": f"could not dispatch to shard worker "
                    f"{shard_id}: {exc}"
                },
            ) from exc

    def _collect(
        self,
        shard_id: int,
        batch_id: int,
        lows: np.ndarray,
        highs: np.ndarray,
        *,
        retried: bool = False,
    ) -> Tuple[np.ndarray | None, str]:
        worker = self._workers[shard_id]
        deadline = time.monotonic() + self._batch_timeout
        while True:
            try:
                frame = worker.response_queue.get(timeout=_POLL_INTERVAL)
            except queue_mod.Empty:
                if not worker.process.is_alive():
                    return self._retry(
                        shard_id, batch_id, lows, highs, retried
                    )
                if time.monotonic() > deadline:
                    raise ServingError(
                        503,
                        {
                            "error": f"shard worker {shard_id} did "
                            f"not answer batch {batch_id} within "
                            f"{self._batch_timeout:g}s"
                        },
                    )
                continue
            kind = frame[0]
            if kind == "done":
                if frame[2] != batch_id:
                    continue  # stale frame from an abandoned batch
                worker.batches += 1
                return frame[3], frame[4]
            if kind == "error":
                if frame[2] != batch_id:
                    continue
                raise ServingError(
                    500,
                    {
                        "error": f"shard worker {shard_id} failed "
                        f"batch {batch_id}",
                        "traceback": frame[3],
                    },
                )
            # "pong"/"ready" stragglers: ignore and keep waiting.

    def _retry(
        self,
        shard_id: int,
        batch_id: int,
        lows: np.ndarray,
        highs: np.ndarray,
        retried: bool,
    ) -> Tuple[np.ndarray | None, str]:
        """Crash mid-batch: restart once and re-run, then give up."""
        exitcode = self._workers[shard_id].process.exitcode
        if retried:
            raise ServingError(
                503,
                {
                    "error": f"shard worker {shard_id} crashed twice "
                    f"answering batch {batch_id} (last exit code "
                    f"{exitcode}); giving up after one retry"
                },
            )
        self._restart_worker(shard_id)
        self._dispatch(shard_id, batch_id, lows, highs)
        return self._collect(
            shard_id, batch_id, lows, highs, retried=True
        )
