"""Query workloads, accuracy metrics, and the evaluation engine."""

from .evaluator import EvaluationResult, WorkloadEvaluator
from .metrics import (
    DEFAULT_FLOOR,
    AccuracyReport,
    accuracy_report,
    mean_absolute_error,
    mean_relative_error,
    relative_errors,
    root_mean_squared_error,
)
from .workload import (
    Workload,
    centered_workload,
    fixed_coverage_workload,
    paper_workloads,
    random_workload,
)

__all__ = [
    "AccuracyReport",
    "DEFAULT_FLOOR",
    "EvaluationResult",
    "Workload",
    "WorkloadEvaluator",
    "accuracy_report",
    "centered_workload",
    "fixed_coverage_workload",
    "mean_absolute_error",
    "mean_relative_error",
    "paper_workloads",
    "random_workload",
    "relative_errors",
    "root_mean_squared_error",
]
