"""Range-query workload generators (paper Section 6.1).

Two workload families drive the evaluation:

* **random shape and size** — every dimension gets an independent uniform
  random inclusive interval ("1000 queries generated based on random
  shapes and sizes");
* **fixed coverage** — square(-ish) queries whose side spans a fixed
  fraction of each dimension (the paper's 1 % / 5 % / 10 % "query
  coverage" panels), placed uniformly at random.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..core.exceptions import ValidationError
from ..core.frequency_matrix import Box
from ..core.packed import boxes_to_arrays, validate_box_arrays
from ..dp.rng import RNGLike, ensure_rng


@dataclass(frozen=True)
class Workload:
    """A named list of box queries against a fixed matrix shape."""

    name: str
    shape: Tuple[int, ...]
    queries: Tuple[Box, ...]

    def __post_init__(self) -> None:
        if not self.queries:
            raise ValidationError("a workload needs at least one query")
        for q in self.queries:
            if len(q) != len(self.shape):
                raise ValidationError(
                    f"query {q} does not match shape {self.shape}"
                )

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The queries as validated ``(lows, highs)`` int64 arrays.

        Built and validated once, then cached on the instance: the batch
        query engines (:meth:`PrivateFrequencyMatrix.answer_arrays`,
        :meth:`PrefixSumTable.query_arrays`) consume these directly, so a
        workload evaluated across many private matrices pays conversion
        exactly once.
        """
        cached = getattr(self, "_arrays", None)
        if cached is None:
            lows, highs = boxes_to_arrays(self.queries)
            cached = validate_box_arrays(lows, highs, self.shape)
            object.__setattr__(self, "_arrays", cached)
        return cached

    def coverage_fractions(self) -> np.ndarray:
        """Fraction of total cells each query covers."""
        total = float(np.prod(self.shape, dtype=np.int64))
        sizes = [
            float(np.prod([hi - lo + 1 for lo, hi in q], dtype=np.int64))
            for q in self.queries
        ]
        return np.asarray(sizes) / total


def random_workload(
    shape: Sequence[int],
    n_queries: int = 1000,
    rng: RNGLike = None,
    name: str = "random",
) -> Workload:
    """Random shape-and-size queries: per dimension, an independent
    uniform random inclusive interval."""
    shape = tuple(int(s) for s in shape)
    if n_queries < 1:
        raise ValidationError(f"n_queries must be >= 1, got {n_queries}")
    gen = ensure_rng(rng)
    queries: List[Box] = []
    for _ in range(n_queries):
        box = []
        for s in shape:
            a = int(gen.integers(0, s))
            b = int(gen.integers(0, s))
            box.append((min(a, b), max(a, b)))
        queries.append(tuple(box))
    return Workload(name, shape, tuple(queries))


def fixed_coverage_workload(
    shape: Sequence[int],
    coverage: float,
    n_queries: int = 1000,
    rng: RNGLike = None,
    name: str | None = None,
) -> Workload:
    """Queries whose side spans ``coverage`` of each dimension ("x %
    query coverage" in the paper's figures), uniformly placed.

    Side length per dimension is ``max(1, round(coverage * size))``.
    """
    shape = tuple(int(s) for s in shape)
    if not 0.0 < coverage <= 1.0:
        raise ValidationError(f"coverage must be in (0, 1], got {coverage}")
    if n_queries < 1:
        raise ValidationError(f"n_queries must be >= 1, got {n_queries}")
    gen = ensure_rng(rng)
    sides = [max(1, int(round(coverage * s))) for s in shape]
    queries: List[Box] = []
    for _ in range(n_queries):
        box = []
        for s, side in zip(shape, sides):
            lo = int(gen.integers(0, s - side + 1))
            box.append((lo, lo + side - 1))
        queries.append(tuple(box))
    if name is None:
        name = f"coverage_{coverage:g}"
    return Workload(name, shape, tuple(queries))


def centered_workload(
    shape: Sequence[int],
    coverage: float,
    centers: np.ndarray,
    name: str | None = None,
) -> Workload:
    """Fixed-coverage queries centred at given cell multi-indices —
    useful for data-aware workloads (e.g. around known hotspots)."""
    shape = tuple(int(s) for s in shape)
    if not 0.0 < coverage <= 1.0:
        raise ValidationError(f"coverage must be in (0, 1], got {coverage}")
    centers = np.asarray(centers, dtype=np.int64)
    if centers.ndim != 2 or centers.shape[1] != len(shape):
        raise ValidationError(
            f"centers must have shape (n, {len(shape)}), got {centers.shape}"
        )
    sides = [max(1, int(round(coverage * s))) for s in shape]
    queries: List[Box] = []
    for row in centers:
        box = []
        for c, s, side in zip(row, shape, sides):
            lo = int(np.clip(c - side // 2, 0, s - side))
            box.append((lo, lo + side - 1))
        queries.append(tuple(box))
    if name is None:
        name = f"centered_{coverage:g}"
    return Workload(name, shape, tuple(queries))


def paper_workloads(
    shape: Sequence[int],
    n_queries: int = 1000,
    rng: RNGLike = None,
) -> List[Workload]:
    """The four workloads of the paper's real-data figures: random plus
    1 % / 5 % / 10 % coverage."""
    gen = ensure_rng(rng)
    out = [random_workload(shape, n_queries, gen)]
    for coverage in (0.01, 0.05, 0.10):
        out.append(fixed_coverage_workload(shape, coverage, n_queries, gen))
    return out
