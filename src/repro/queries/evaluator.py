"""Evaluating private matrices against ground truth over workloads.

Ground-truth answers come from a :class:`~repro.core.PrefixSumTable` built
once per matrix; private answers use the matrix's own engine.  The result
rows feed the experiment harness and the figure benchmarks directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from ..core.frequency_matrix import FrequencyMatrix
from ..core.prefix_sum import PrefixSumTable
from ..core.private_matrix import PrivateFrequencyMatrix
from .metrics import DEFAULT_FLOOR, AccuracyReport, accuracy_report
from .workload import Workload


@dataclass(frozen=True)
class EvaluationResult:
    """Accuracy of one private matrix on one workload."""

    method: str
    workload: str
    epsilon: float
    report: AccuracyReport

    @property
    def mre(self) -> float:
        return self.report.mre

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "method": self.method,
            "workload": self.workload,
            "epsilon": self.epsilon,
        }
        out.update(self.report.as_dict())
        return out


class WorkloadEvaluator:
    """Caches ground-truth answers for a matrix across many evaluations."""

    def __init__(self, matrix: FrequencyMatrix, floor: float = DEFAULT_FLOOR):
        self._matrix = matrix
        self._floor = floor
        self._table = PrefixSumTable(matrix.data)
        self._truth_cache: Dict[str, np.ndarray] = {}

    @property
    def matrix(self) -> FrequencyMatrix:
        return self._matrix

    def true_answers(self, workload: Workload) -> np.ndarray:
        """Exact workload answers (cached per workload name + length)."""
        key = f"{workload.name}:{len(workload)}:{hash(workload.queries)}"
        if key not in self._truth_cache:
            self._truth_cache[key] = self._table.query_many(list(workload))
        return self._truth_cache[key]

    def evaluate(
        self, private: PrivateFrequencyMatrix, workload: Workload
    ) -> EvaluationResult:
        """Accuracy of ``private`` on ``workload``."""
        truth = self.true_answers(workload)
        estimates = private.answer_many(list(workload))
        return EvaluationResult(
            method=private.method,
            workload=workload.name,
            epsilon=private.epsilon,
            report=accuracy_report(truth, estimates, self._floor),
        )

    def evaluate_many(
        self,
        privates: Iterable[PrivateFrequencyMatrix],
        workloads: Sequence[Workload],
    ) -> List[EvaluationResult]:
        """Cross product of private matrices and workloads."""
        results: List[EvaluationResult] = []
        for private in privates:
            for workload in workloads:
                results.append(self.evaluate(private, workload))
        return results
