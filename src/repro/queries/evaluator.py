"""Evaluating private matrices against ground truth over workloads.

Ground-truth answers come from a :class:`~repro.core.PrefixSumTable` built
once per matrix; private answers use the matrix's own engine.  The result
rows feed the experiment harness and the figure benchmarks directly.

Everything here is batch-first: workloads expose their queries as packed
``(lows, highs)`` arrays (:meth:`~repro.queries.workload.Workload.as_arrays`),
ground truth per workload is computed in one
:meth:`~repro.core.PrefixSumTable.query_arrays` call and cached, and
:meth:`WorkloadEvaluator.evaluate_all` answers *all* workloads for a
private matrix with a single concatenated
:meth:`~repro.core.PrivateFrequencyMatrix.answer_arrays` pass — the engine
(geometric kernel or dense prefix sums) is chosen once for the whole batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from ..core.exceptions import QueryError
from ..core.frequency_matrix import FrequencyMatrix
from ..core.prefix_sum import PrefixSumTable
from ..core.private_matrix import PrivateFrequencyMatrix
from .metrics import DEFAULT_FLOOR, AccuracyReport, accuracy_report
from .workload import Workload


@dataclass(frozen=True)
class EvaluationResult:
    """Accuracy of one private matrix on one workload."""

    method: str
    workload: str
    epsilon: float
    report: AccuracyReport
    #: Query plan the engine chose for the batch this workload was
    #: answered in (``dense`` / ``broadcast`` / ``pruned``; see
    #: :meth:`~repro.core.PrivateFrequencyMatrix.plan_queries`).
    plan: str = ""

    @property
    def mre(self) -> float:
        return self.report.mre

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "method": self.method,
            "workload": self.workload,
            "epsilon": self.epsilon,
            "plan": self.plan,
        }
        out.update(self.report.as_dict())
        return out


class WorkloadEvaluator:
    """Caches ground-truth answers for a matrix across many evaluations.

    ``n_shards`` forces partition-backed private matrices through the
    sharded engine (``plan="sharded"``) with that many partition-axis
    shards; dense-backed outputs (identity, Privlet) have no partition
    list to shard and keep their normal dense route.  ``shard_executor``
    optionally fans the shards across a process pool (an ordered-``map``
    provider such as
    :class:`~repro.experiments.parallel.ProcessPoolTrialExecutor`) —
    setting it without ``n_shards`` still selects the sharded plan, at
    the default shard count, matching
    :meth:`~repro.core.PrivateFrequencyMatrix.answer_arrays`.  Leave it
    ``None`` inside trial workers — trial-level parallelism already owns
    the pool there.
    """

    def __init__(
        self,
        matrix: FrequencyMatrix,
        floor: float = DEFAULT_FLOOR,
        *,
        n_shards: int | None = None,
        shard_executor: object | None = None,
    ):
        self._matrix = matrix
        self._floor = floor
        self._table = PrefixSumTable(matrix.data)
        self._truth_cache: Dict[str, np.ndarray] = {}
        self._n_shards = n_shards
        self._shard_executor = shard_executor

    @property
    def matrix(self) -> FrequencyMatrix:
        return self._matrix

    @staticmethod
    def _cache_key(workload: Workload) -> str:
        return f"{workload.name}:{len(workload)}:{hash(workload.queries)}"

    def true_answers(self, workload: Workload) -> np.ndarray:
        """Exact workload answers (cached per workload name + content)."""
        # Workload arrays are validated against *their own* shape; the
        # cheap guard here keeps a mismatched workload a clean QueryError
        # instead of a raw gather IndexError (or a silent wrong answer).
        if workload.shape != self._matrix.shape:
            raise QueryError(
                f"workload {workload.name!r} is for shape {workload.shape}, "
                f"evaluator matrix has shape {self._matrix.shape}"
            )
        key = self._cache_key(workload)
        if key not in self._truth_cache:
            lows, highs = workload.as_arrays()
            self._truth_cache[key] = self._table.query_arrays(lows, highs)
        return self._truth_cache[key]

    def evaluate(
        self, private: PrivateFrequencyMatrix, workload: Workload
    ) -> EvaluationResult:
        """Accuracy of ``private`` on ``workload``."""
        return self.evaluate_all(private, [workload])[0]

    def evaluate_all(
        self,
        private: PrivateFrequencyMatrix,
        workloads: Sequence[Workload],
    ) -> List[EvaluationResult]:
        """Accuracy of ``private`` on every workload, in one batched pass.

        All workloads' boxes are concatenated into a single
        :meth:`~repro.core.PrivateFrequencyMatrix.answer_arrays` call so
        the plan choice (broadcast kernel, index-pruned gather, or dense
        prefix sums) and any dense reconstruction are amortized across
        the whole cross product, then the answer vector is split back per
        workload.  The chosen plan is recorded on every result.
        """
        workloads = list(workloads)
        if not workloads:
            return []
        truths = [self.true_answers(w) for w in workloads]
        arrays = [w.as_arrays() for w in workloads]
        lows = np.concatenate([a[0] for a in arrays], axis=0)
        highs = np.concatenate([a[1] for a in arrays], axis=0)
        sharding_requested = (
            self._n_shards is not None or self._shard_executor is not None
        )
        if sharding_requested and not private.is_dense_backed:
            estimates, plan = private.answer_arrays(
                lows,
                highs,
                n_shards=self._n_shards,
                shard_executor=self._shard_executor,
                return_plan=True,
            )
        else:
            estimates, plan = private.answer_arrays(
                lows, highs, return_plan=True
            )
        results: List[EvaluationResult] = []
        offset = 0
        for workload, truth in zip(workloads, truths):
            chunk = estimates[offset : offset + len(workload)]
            offset += len(workload)
            results.append(
                EvaluationResult(
                    method=private.method,
                    workload=workload.name,
                    epsilon=private.epsilon,
                    report=accuracy_report(truth, chunk, self._floor),
                    plan=plan,
                )
            )
        return results

    def evaluate_many(
        self,
        privates: Iterable[PrivateFrequencyMatrix],
        workloads: Sequence[Workload],
    ) -> List[EvaluationResult]:
        """Cross product of private matrices and workloads."""
        results: List[EvaluationResult] = []
        for private in privates:
            results.extend(self.evaluate_all(private, workloads))
        return results
