"""Evaluating private matrices against ground truth over workloads.

Ground-truth answers come from a :class:`~repro.core.PrefixSumTable` built
once per matrix; private answers go through the
:mod:`repro.engine` serving facade.  The result rows feed the
experiment harness and the figure benchmarks directly.

Everything here is batch-first: workloads expose their queries as packed
``(lows, highs)`` arrays (:meth:`~repro.queries.workload.Workload.as_arrays`),
ground truth per workload is computed in one
:meth:`~repro.core.PrefixSumTable.query_arrays` call and cached, and
:meth:`WorkloadEvaluator.evaluate_all` answers *all* workloads for a
private matrix with a single :meth:`~repro.engine.Engine.answer`
invocation — the engine (geometric kernel, pruned gather, dense prefix
sums, or the sharded layout) is chosen once for the whole batch, under
one :class:`~repro.engine.EngineConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..core.exceptions import QueryError
from ..core.frequency_matrix import FrequencyMatrix
from ..core.prefix_sum import PrefixSumTable
from ..core.private_matrix import PrivateFrequencyMatrix
from ..engine import Engine, EngineConfig, QueryRequest
from .metrics import DEFAULT_FLOOR, AccuracyReport, accuracy_report
from .workload import Workload


@dataclass(frozen=True)
class EvaluationResult:
    """Accuracy of one private matrix on one workload."""

    method: str
    workload: str
    epsilon: float
    report: AccuracyReport
    #: Query plan the engine chose for the batch this workload was
    #: answered in (``dense`` / ``broadcast`` / ``pruned`` /
    #: ``sharded``; always stamped — see
    #: :attr:`~repro.engine.QueryAnswer.plan`).
    plan: str = ""
    #: Per-shard execution evidence when the batch ran sharded
    #: (:attr:`~repro.engine.QueryAnswer.shard_plans`): what each shard
    #: did, including provable skips.  Empty for single-node plans.
    shard_plans: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def mre(self) -> float:
        return self.report.mre

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "method": self.method,
            "workload": self.workload,
            "epsilon": self.epsilon,
            "plan": self.plan,
        }
        out.update(self.report.as_dict())
        return out


class WorkloadEvaluator:
    """Caches ground-truth answers for a matrix across many evaluations.

    ``engine_config`` is the :class:`~repro.engine.EngineConfig` every
    private matrix is answered under (``None`` = default config, cost
    model picks the plan per batch).  The legacy ``n_shards`` /
    ``shard_executor`` keywords survive as sugar for a sharded config —
    they force partition-backed private matrices through the sharded
    engine, while dense-backed outputs (identity, Privlet) have no
    partition list to shard and keep their dense route (the engine
    handles that fallback itself now).  Passing ``engine_config``
    together with the legacy keywords is ambiguous and rejected.  Leave
    executors ``None`` inside trial workers — trial-level parallelism
    already owns the pool there.
    """

    def __init__(
        self,
        matrix: FrequencyMatrix,
        floor: float = DEFAULT_FLOOR,
        *,
        n_shards: int | None = None,
        shard_executor: object | None = None,
        engine_config: EngineConfig | None = None,
    ):
        if engine_config is not None and (
            n_shards is not None or shard_executor is not None
        ):
            raise QueryError(
                "pass either engine_config or the legacy "
                "n_shards/shard_executor keywords, not both"
            )
        if engine_config is None:
            engine_config = EngineConfig(
                n_shards=n_shards, shard_executor=shard_executor
            )
        self._matrix = matrix
        self._floor = floor
        self._table = PrefixSumTable(matrix.data)
        self._truth_cache: Dict[str, np.ndarray] = {}
        self._engine_config = engine_config

    @property
    def matrix(self) -> FrequencyMatrix:
        return self._matrix

    @property
    def engine_config(self) -> EngineConfig:
        return self._engine_config

    @staticmethod
    def _cache_key(workload: Workload) -> str:
        return f"{workload.name}:{len(workload)}:{hash(workload.queries)}"

    def true_answers(self, workload: Workload) -> np.ndarray:
        """Exact workload answers (cached per workload name + content)."""
        # Workload arrays are validated against *their own* shape; the
        # cheap guard here keeps a mismatched workload a clean QueryError
        # instead of a raw gather IndexError (or a silent wrong answer).
        if workload.shape != self._matrix.shape:
            raise QueryError(
                f"workload {workload.name!r} is for shape {workload.shape}, "
                f"evaluator matrix has shape {self._matrix.shape}"
            )
        key = self._cache_key(workload)
        if key not in self._truth_cache:
            lows, highs = workload.as_arrays()
            self._truth_cache[key] = self._table.query_arrays(lows, highs)
        return self._truth_cache[key]

    def evaluate(
        self, private: PrivateFrequencyMatrix, workload: Workload
    ) -> EvaluationResult:
        """Accuracy of ``private`` on ``workload``."""
        return self.evaluate_all(private, [workload])[0]

    def evaluate_all(
        self,
        private: PrivateFrequencyMatrix,
        workloads: Sequence[Workload],
    ) -> List[EvaluationResult]:
        """Accuracy of ``private`` on every workload, in one batched pass.

        All workloads' boxes are concatenated into a single
        :meth:`~repro.engine.Engine.answer` call so the plan choice
        (broadcast kernel, index-pruned gather, dense prefix sums, or
        the configured sharded layout) and any dense reconstruction are
        amortized across the whole cross product, then the answer
        vector is split back per workload.  The chosen plan — and the
        per-shard evidence, when sharded — is recorded on every result.
        """
        workloads = list(workloads)
        if not workloads:
            return []
        truths = [self.true_answers(w) for w in workloads]
        arrays = [w.as_arrays() for w in workloads]
        lows = np.concatenate([a[0] for a in arrays], axis=0)
        highs = np.concatenate([a[1] for a in arrays], axis=0)
        engine = Engine(private, self._engine_config)
        answer = engine.answer(
            QueryRequest(
                lows, highs, workload="+".join(w.name for w in workloads)
            )
        )
        results: List[EvaluationResult] = []
        offset = 0
        for workload, truth in zip(workloads, truths):
            chunk = answer.answers[offset : offset + len(workload)]
            offset += len(workload)
            results.append(
                EvaluationResult(
                    method=private.method,
                    workload=workload.name,
                    epsilon=private.epsilon,
                    report=accuracy_report(truth, chunk, self._floor),
                    plan=answer.plan,
                    shard_plans=answer.shard_plans,
                )
            )
        return results

    def evaluate_many(
        self,
        privates: Iterable[PrivateFrequencyMatrix],
        workloads: Sequence[Workload],
    ) -> List[EvaluationResult]:
        """Cross product of private matrices and workloads."""
        results: List[EvaluationResult] = []
        for private in privates:
            results.extend(self.evaluate_all(private, workloads))
        return results
