"""Accuracy metrics, principally Mean Relative Error (paper Eq. 3).

``MRE(q) = |p_hat - p| / p * 100``.  The raw formula is undefined for
empty queries, so the denominator is guarded with ``max(p, floor)`` —
``floor = 1`` by default, the standard dpbench-style smoothing (documented
in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..core.exceptions import ValidationError

#: Default denominator floor for relative error.
DEFAULT_FLOOR = 1.0


def relative_errors(
    true: np.ndarray, estimated: np.ndarray, floor: float = DEFAULT_FLOOR
) -> np.ndarray:
    """Per-query relative error in percent (Eq. 3 with a floored
    denominator)."""
    true = np.asarray(true, dtype=np.float64)
    estimated = np.asarray(estimated, dtype=np.float64)
    if true.shape != estimated.shape:
        raise ValidationError(
            f"shape mismatch: true {true.shape} vs estimated {estimated.shape}"
        )
    if floor <= 0:
        raise ValidationError(f"floor must be positive, got {floor}")
    denom = np.maximum(true, floor)
    return np.abs(estimated - true) / denom * 100.0


def mean_relative_error(
    true: np.ndarray, estimated: np.ndarray, floor: float = DEFAULT_FLOOR
) -> float:
    """Mean of :func:`relative_errors` over the workload."""
    return float(relative_errors(true, estimated, floor).mean())


def mean_absolute_error(true: np.ndarray, estimated: np.ndarray) -> float:
    true = np.asarray(true, dtype=np.float64)
    estimated = np.asarray(estimated, dtype=np.float64)
    if true.shape != estimated.shape:
        raise ValidationError("shape mismatch")
    return float(np.abs(estimated - true).mean())


def root_mean_squared_error(true: np.ndarray, estimated: np.ndarray) -> float:
    true = np.asarray(true, dtype=np.float64)
    estimated = np.asarray(estimated, dtype=np.float64)
    if true.shape != estimated.shape:
        raise ValidationError("shape mismatch")
    return float(np.sqrt(((estimated - true) ** 2).mean()))


@dataclass(frozen=True)
class AccuracyReport:
    """Bundle of accuracy metrics for one (method, workload) pair."""

    mre: float
    median_re: float
    mae: float
    rmse: float
    n_queries: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "mre": self.mre,
            "median_re": self.median_re,
            "mae": self.mae,
            "rmse": self.rmse,
            "n_queries": float(self.n_queries),
        }


def accuracy_report(
    true: np.ndarray, estimated: np.ndarray, floor: float = DEFAULT_FLOOR
) -> AccuracyReport:
    """All metrics at once for one answered workload."""
    errs = relative_errors(true, estimated, floor)
    return AccuracyReport(
        mre=float(errs.mean()),
        median_re=float(np.median(errs)),
        mae=mean_absolute_error(true, estimated),
        rmse=root_mean_squared_error(true, estimated),
        n_queries=int(errs.size),
    )
