"""Taxi-fleet trip generator — a public-GPS-style OD workload.

OD-matrix research commonly evaluates on public taxi data (NYC TLC,
Porto); no such corpus ships offline, so this module synthesizes trips
with the structural features that make taxi OD matrices distinctive and
that stress sanitizers differently from commute mobility:

* pickups concentrate at a few *stands* (stations, airport, nightlife)
  far more sharply than population density;
* a large share of flow is directional between specific stand pairs
  (airport <-> centre), so the OD matrix has dominant off-diagonal cells;
* demand mixes short in-town hops with long airport runs — a bimodal
  trip-length distribution.

Trips optionally record one intermediate waypoint (e.g. a via-stop or
shared-ride pickup) so the stops machinery is exercised too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..core.exceptions import ValidationError
from ..dp.rng import RNGLike, ensure_rng
from ..trajectories.grid import SpatialGrid
from ..trajectories.trajectory import TrajectoryDataset


@dataclass(frozen=True)
class TaxiStand:
    """A pickup/dropoff hotspot: location (km), spread (km), demand weight."""

    x: float
    y: float
    std_km: float
    weight: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.std_km <= 0:
            raise ValidationError(f"std_km must be positive, got {self.std_km}")
        if self.weight <= 0:
            raise ValidationError(f"weight must be positive, got {self.weight}")


class TaxiFleetModel:
    """Synthesizes taxi trips over a square city.

    Parameters
    ----------
    stands:
        Pickup/dropoff hotspots.  Defaults to a downtown core, a rail
        station, an airport on the periphery, and a nightlife strip.
    side_km:
        City extent (matches the paper's 70 km square by default).
    street_hail_fraction:
        Share of pickups drawn uniformly anywhere (street hails) rather
        than at stands.
    pair_affinity:
        Strength of directional stand-to-stand flow: with this
        probability a trip's dropoff is drawn from the stand *paired*
        with its pickup stand (ring pairing), otherwise from the overall
        stand mix.
    """

    def __init__(
        self,
        stands: Sequence[TaxiStand] | None = None,
        side_km: float = 70.0,
        street_hail_fraction: float = 0.25,
        pair_affinity: float = 0.5,
    ):
        if side_km <= 0:
            raise ValidationError(f"side_km must be positive, got {side_km}")
        if not 0.0 <= street_hail_fraction <= 1.0:
            raise ValidationError(
                f"street_hail_fraction must be in [0, 1], got "
                f"{street_hail_fraction}"
            )
        if not 0.0 <= pair_affinity <= 1.0:
            raise ValidationError(
                f"pair_affinity must be in [0, 1], got {pair_affinity}"
            )
        if stands is None:
            c = side_km / 2
            stands = (
                TaxiStand(c, c, 1.5, 10.0, "downtown"),
                TaxiStand(c - 6, c + 4, 1.0, 6.0, "rail_station"),
                TaxiStand(c + 22, c - 18, 2.0, 5.0, "airport"),
                TaxiStand(c - 4, c - 7, 1.2, 4.0, "nightlife"),
            )
        if not stands:
            raise ValidationError("need at least one taxi stand")
        self.stands: Tuple[TaxiStand, ...] = tuple(stands)
        self.side_km = float(side_km)
        self.street_hail_fraction = float(street_hail_fraction)
        self.pair_affinity = float(pair_affinity)

    # ------------------------------------------------------------------
    @property
    def grid(self) -> SpatialGrid:
        return SpatialGrid.city(1000, self.side_km)

    def _stand_weights(self) -> np.ndarray:
        w = np.array([s.weight for s in self.stands])
        return w / w.sum()

    def _sample_at_stands(
        self, assignment: np.ndarray, gen: np.random.Generator
    ) -> np.ndarray:
        means = np.array([[s.x, s.y] for s in self.stands])
        stds = np.array([s.std_km for s in self.stands])
        pts = means[assignment] + gen.normal(
            0.0, 1.0, size=(assignment.size, 2)
        ) * stds[assignment][:, None]
        return pts

    # ------------------------------------------------------------------
    def sample_trips(
        self,
        n_trips: int,
        with_waypoint: bool = False,
        rng: RNGLike = None,
    ) -> TrajectoryDataset:
        """Sample a trip dataset; each trip records 2 points (pickup,
        dropoff) or 3 when ``with_waypoint`` is set."""
        if n_trips < 1:
            raise ValidationError(f"n_trips must be >= 1, got {n_trips}")
        gen = ensure_rng(rng)
        k = len(self.stands)
        weights = self._stand_weights()

        pickup_stand = gen.choice(k, size=n_trips, p=weights)
        pickups = self._sample_at_stands(pickup_stand, gen)
        hail = gen.random(n_trips) < self.street_hail_fraction
        pickups[hail] = gen.uniform(0, self.side_km, size=(int(hail.sum()), 2))

        # Dropoffs: paired stand with pair_affinity, else the global mix.
        paired_stand = (pickup_stand + 1) % k
        mixed_stand = gen.choice(k, size=n_trips, p=weights)
        use_pair = gen.random(n_trips) < self.pair_affinity
        dropoff_stand = np.where(use_pair, paired_stand, mixed_stand)
        dropoffs = self._sample_at_stands(dropoff_stand, gen)

        if with_waypoint:
            t = gen.uniform(0.25, 0.75, size=(n_trips, 1))
            waypoints = pickups + t * (dropoffs - pickups)
            waypoints += gen.normal(0.0, 1.0, size=(n_trips, 2))
            points = np.stack([pickups, waypoints, dropoffs], axis=1)
        else:
            points = np.stack([pickups, dropoffs], axis=1)
        np.clip(points, 0.0, np.nextafter(self.side_km, 0.0), out=points)
        return TrajectoryDataset(points)

    def stand_regions(
        self, radius_km: float = 3.0
    ) -> List[Tuple[str, Tuple[Tuple[float, float], Tuple[float, float]]]]:
        """Named bounding-box regions around each stand, for OD queries."""
        if radius_km <= 0:
            raise ValidationError(f"radius_km must be positive, got {radius_km}")
        out = []
        for i, s in enumerate(self.stands):
            name = s.name or f"stand{i}"
            out.append((
                name,
                ((s.x - radius_km, s.x + radius_km),
                 (s.y - radius_km, s.y + radius_km)),
            ))
        return out
