"""Synthetic city population models — the Veraset substitute.

The paper evaluates on proprietary Veraset cell-phone pings for New York,
Denver and Detroit, "chosen to represent cities with high, moderate and low
densities" (Section 6.1), each modelled as 10^6 points on a 1000x1000 grid
over a 70x70 km^2 region.  The sanitization algorithms consume nothing but
that frequency matrix, so any density field with the same skew regime
exercises identical code paths (see DESIGN.md, Substitutions).

:class:`CityModel` is a mixture of Gaussian activity centres over a uniform
background.  The three built-in profiles are calibrated qualitatively:

* ``new_york``  — one dominant core plus dense secondary centres, tight
  spreads, little background (high density concentration / high skew);
* ``denver``    — a moderate downtown plus sprawling suburbs (moderate);
* ``detroit``   — weak, spread-out centres and a heavy uniform background
  (low density concentration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..core.exceptions import ValidationError
from ..core.frequency_matrix import FrequencyMatrix
from ..dp.rng import RNGLike, ensure_rng
from ..trajectories.grid import SpatialGrid

#: The paper's city extent and resolution.
CITY_SIDE_KM = 70.0
CITY_RESOLUTION = 1000
DEFAULT_CITY_POINTS = 1_000_000


@dataclass(frozen=True)
class ActivityCenter:
    """One Gaussian activity cluster: centre (km), spread (km), weight."""

    x: float
    y: float
    std_km: float
    weight: float

    def __post_init__(self) -> None:
        if self.std_km <= 0:
            raise ValidationError(f"std_km must be positive, got {self.std_km}")
        if self.weight <= 0:
            raise ValidationError(f"weight must be positive, got {self.weight}")


@dataclass(frozen=True)
class CityModel:
    """A mixture-of-Gaussians population density over a square city."""

    name: str
    centers: Tuple[ActivityCenter, ...]
    background_fraction: float = 0.05
    side_km: float = CITY_SIDE_KM

    def __post_init__(self) -> None:
        if not self.centers:
            raise ValidationError("a city needs at least one activity centre")
        if not 0.0 <= self.background_fraction < 1.0:
            raise ValidationError(
                f"background_fraction must be in [0, 1), got "
                f"{self.background_fraction}"
            )
        if self.side_km <= 0:
            raise ValidationError(f"side_km must be positive, got {self.side_km}")

    # ------------------------------------------------------------------
    @property
    def grid(self) -> SpatialGrid:
        return SpatialGrid.city(CITY_RESOLUTION, self.side_km)

    def center_weights(self) -> np.ndarray:
        w = np.array([c.weight for c in self.centers], dtype=np.float64)
        return w / w.sum()

    # ------------------------------------------------------------------
    def sample_points(
        self, n_points: int, rng: RNGLike = None
    ) -> np.ndarray:
        """``(n, 2)`` continuous (x, y) points in km, clipped to the city."""
        if n_points < 1:
            raise ValidationError(f"n_points must be >= 1, got {n_points}")
        gen = ensure_rng(rng)
        n_background = int(round(n_points * self.background_fraction))
        n_clustered = n_points - n_background

        weights = self.center_weights()
        assignment = gen.choice(len(self.centers), size=n_clustered, p=weights)
        means = np.array([[c.x, c.y] for c in self.centers])
        stds = np.array([c.std_km for c in self.centers])
        pts = means[assignment] + gen.normal(
            0.0, 1.0, size=(n_clustered, 2)
        ) * stds[assignment][:, None]

        background = gen.uniform(0.0, self.side_km, size=(n_background, 2))
        all_pts = np.concatenate([pts, background], axis=0)
        np.clip(all_pts, 0.0, np.nextafter(self.side_km, 0.0), out=all_pts)
        gen.shuffle(all_pts)
        return all_pts

    def population_matrix(
        self,
        n_points: int = DEFAULT_CITY_POINTS,
        resolution: int = CITY_RESOLUTION,
        rng: RNGLike = None,
    ) -> FrequencyMatrix:
        """The 2-D population histogram (the paper's Figure 6/7 input)."""
        gen = ensure_rng(rng)
        grid = SpatialGrid.city(resolution, self.side_km)
        pts = self.sample_points(n_points, gen)
        cells = grid.to_cells(pts)
        return FrequencyMatrix.from_cells(cells, grid.domain())


def _ring(cx: float, cy: float, radius: float, n: int, std: float,
          weight: float) -> List[ActivityCenter]:
    """Evenly spaced activity centres on a circle (suburban rings)."""
    out = []
    for i in range(n):
        theta = 2.0 * np.pi * i / n
        out.append(
            ActivityCenter(
                cx + radius * np.cos(theta),
                cy + radius * np.sin(theta),
                std, weight,
            )
        )
    return out


def _new_york() -> CityModel:
    centers = [
        ActivityCenter(35.0, 35.0, 1.2, 30.0),   # dominant core (Manhattan-like)
        ActivityCenter(38.5, 31.0, 1.6, 14.0),   # second dense borough
        ActivityCenter(31.5, 38.0, 1.8, 10.0),
        ActivityCenter(41.0, 38.5, 2.2, 7.0),
    ] + _ring(35.0, 35.0, 12.0, 6, 2.0, 3.0)
    return CityModel("new_york", tuple(centers), background_fraction=0.02)


def _denver() -> CityModel:
    centers = [
        ActivityCenter(35.0, 35.0, 3.0, 18.0),   # downtown
        ActivityCenter(28.0, 30.0, 4.0, 8.0),
        ActivityCenter(42.0, 40.0, 4.5, 8.0),
    ] + _ring(35.0, 35.0, 16.0, 5, 4.0, 4.0)
    return CityModel("denver", tuple(centers), background_fraction=0.08)


def _detroit() -> CityModel:
    centers = [
        ActivityCenter(35.0, 35.0, 6.0, 10.0),   # weak downtown
        ActivityCenter(25.0, 40.0, 7.0, 6.0),
        ActivityCenter(45.0, 28.0, 7.0, 6.0),
        ActivityCenter(40.0, 45.0, 8.0, 5.0),
    ] + _ring(35.0, 35.0, 20.0, 4, 8.0, 4.0)
    return CityModel("detroit", tuple(centers), background_fraction=0.18)


_CITY_FACTORIES = {
    "new_york": _new_york,
    "denver": _denver,
    "detroit": _detroit,
}

#: The paper's evaluation cities in its ordering.
CITY_NAMES: List[str] = ["new_york", "denver", "detroit"]


def get_city(name: str) -> CityModel:
    """Built-in city profile by name (``new_york``, ``denver``, ``detroit``)."""
    key = str(name).lower()
    if key not in _CITY_FACTORIES:
        raise ValidationError(
            f"unknown city {name!r}; available: {sorted(_CITY_FACTORIES)}"
        )
    return _CITY_FACTORIES[key]()


def los_angeles_like() -> CityModel:
    """A polycentric sprawl profile used for the Figure 3 visualization
    (the paper renders 500 k Veraset points over Los Angeles)."""
    centers = [
        ActivityCenter(30.0, 38.0, 2.5, 14.0),   # downtown
        ActivityCenter(20.0, 30.0, 2.5, 10.0),   # coastal strip
        ActivityCenter(25.0, 34.0, 2.0, 8.0),
        ActivityCenter(40.0, 42.0, 3.5, 8.0),    # valley
        ActivityCenter(46.0, 30.0, 3.0, 6.0),
        ActivityCenter(34.0, 25.0, 3.0, 6.0),
    ] + _ring(32.0, 35.0, 15.0, 5, 3.5, 3.0)
    return CityModel("los_angeles", tuple(centers), background_fraction=0.10)
