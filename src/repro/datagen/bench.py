"""Deterministic serving substrates for benchmarks and load tests.

The serving benchmark needs two things a sanitizer run cannot cheaply
guarantee: a *known, reproducible* partition count (so the broadcast
kernel's per-tick cost — ``O(q · k · d)`` — is controlled by flags, not
by what a sanitizer happened to emit), and *bit-identical* rebuilds
across processes (so ``tools/loadtest.py`` can reconstruct the exact
engine a separately-booted ``repro serve`` process holds and verify
HTTP answers against in-process ``Engine.answer`` at drift 0.0).

:func:`grid_substrate` provides both: an ``m × m`` uniform-grid
:class:`~repro.core.PrivateFrequencyMatrix` (``k = m**d`` partitions)
with Poisson+Laplace pseudo-noisy counts derived only from ``(shape,
m, seed)``.  It is a *benchmark* substrate — no privacy budget was
spent on it — which is exactly why it never goes through a sanitizer.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..core.exceptions import ValidationError
from ..core.packed import packed_from_intervals
from ..core.private_matrix import PrivateFrequencyMatrix
from ..methods._grid import axis_intervals

DEFAULT_SHAPE: Tuple[int, int] = (256, 256)
DEFAULT_GRID_M = 64


def grid_substrate(
    shape: Sequence[int] = DEFAULT_SHAPE,
    m: int = DEFAULT_GRID_M,
    seed: int = 0,
    mean_count: float = 40.0,
    noise_scale: float = 2.0,
) -> PrivateFrequencyMatrix:
    """An ``m``-per-dimension uniform-grid private matrix, ``(shape, m,
    seed)``-deterministic across processes.

    ``k = m ** len(shape)`` partitions with ``Poisson(mean_count) +
    Laplace(0, noise_scale)`` counts drawn from a fresh
    ``default_rng(seed)`` — the same substrate family the async/query
    micro-benchmarks build inline.
    """
    shape = tuple(int(s) for s in shape)
    if any(s < 1 for s in shape):
        raise ValidationError(f"shape must be positive, got {shape}")
    if not all(1 <= m <= s for s in shape):
        raise ValidationError(
            f"grid m={m} must be within [1, min(shape)] for shape {shape}"
        )
    rng = np.random.default_rng(seed)
    intervals = [axis_intervals(s, m) for s in shape]
    k = m ** len(shape)
    noisy = rng.poisson(mean_count, size=k).astype(float)
    noisy += rng.laplace(0.0, noise_scale, size=k)
    packed = packed_from_intervals(intervals, noisy, shape)
    return PrivateFrequencyMatrix.from_packed(packed, method="bench_grid")
