"""Data generation: synthetic matrices (Section 6.1) and the Veraset
substitute city/mobility models (see DESIGN.md, Substitutions)."""

from .bench import grid_substrate
from .cities import (
    CITY_NAMES,
    CITY_RESOLUTION,
    CITY_SIDE_KM,
    DEFAULT_CITY_POINTS,
    ActivityCenter,
    CityModel,
    get_city,
    los_angeles_like,
)
from .gaussian import (
    DEFAULT_N_POINTS,
    gaussian_cluster_points,
    gaussian_matrix,
    paper_shape,
    variance_for_skew,
)
from .movement import (
    DEFAULT_N_TRAJECTORIES,
    MovementSimulator,
    simulate_od_dataset,
)
from .taxi import TaxiFleetModel, TaxiStand
from .zipf import zipf_matrix, zipf_points

__all__ = [
    "ActivityCenter",
    "grid_substrate",
    "CITY_NAMES",
    "CITY_RESOLUTION",
    "CITY_SIDE_KM",
    "CityModel",
    "DEFAULT_CITY_POINTS",
    "DEFAULT_N_POINTS",
    "DEFAULT_N_TRAJECTORIES",
    "MovementSimulator",
    "gaussian_cluster_points",
    "gaussian_matrix",
    "get_city",
    "los_angeles_like",
    "paper_shape",
    "simulate_od_dataset",
    "TaxiFleetModel",
    "TaxiStand",
    "variance_for_skew",
    "zipf_matrix",
    "zipf_points",
]
