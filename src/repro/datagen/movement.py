"""Trajectory simulation over a city density — the mobility substitute.

The paper samples 300 k real trajectories per city from Veraset pings and
records origin, intermediate stops and destination (Section 6.1).  This
module produces the synthetic equivalent with a gravity-style model:

* **origins** are drawn from the city's population density;
* **destinations** are drawn from the density with an exponential
  distance-decay re-weighting relative to the origin (trips are far more
  often short than cross-metro — the standard gravity assumption);
* **intermediate stops** lie near the origin-destination corridor with
  lateral Gaussian jitter, drawn towards activity centres by sampling the
  along-corridor position uniformly per stop and ordering stops by it.

The output exercises exactly the code path the paper's OD experiments
need: a :class:`~repro.trajectories.TrajectoryDataset` whose recorded
points become a 2k-dimensional frequency matrix.
"""

from __future__ import annotations

import numpy as np

from ..core.exceptions import ValidationError
from ..dp.rng import RNGLike, ensure_rng
from ..trajectories.trajectory import TrajectoryDataset
from .cities import CityModel

#: The paper's per-city trajectory count.
DEFAULT_N_TRAJECTORIES = 300_000


class MovementSimulator:
    """Gravity-style trajectory sampler over a :class:`CityModel`.

    Parameters
    ----------
    city:
        The population-density model trips are drawn from.
    trip_scale_km:
        Mean of the exponential distance-decay kernel: larger values allow
        longer trips.
    stop_jitter_km:
        Lateral standard deviation of intermediate stops around the
        origin-destination corridor.
    candidate_factor:
        Oversampling factor for the destination re-weighting step (the
        sampler draws ``candidate_factor`` density-distributed candidates
        per trip and picks one by distance-decay weight).
    """

    def __init__(
        self,
        city: CityModel,
        trip_scale_km: float = 8.0,
        stop_jitter_km: float = 1.5,
        candidate_factor: int = 8,
    ):
        if trip_scale_km <= 0:
            raise ValidationError(f"trip_scale_km must be positive, got {trip_scale_km}")
        if stop_jitter_km < 0:
            raise ValidationError(
                f"stop_jitter_km must be non-negative, got {stop_jitter_km}"
            )
        if candidate_factor < 1:
            raise ValidationError(
                f"candidate_factor must be >= 1, got {candidate_factor}"
            )
        self.city = city
        self.trip_scale_km = float(trip_scale_km)
        self.stop_jitter_km = float(stop_jitter_km)
        self.candidate_factor = int(candidate_factor)

    # ------------------------------------------------------------------
    def sample(
        self,
        n_trajectories: int = DEFAULT_N_TRAJECTORIES,
        n_stops: int = 0,
        rng: RNGLike = None,
    ) -> TrajectoryDataset:
        """Sample a dataset of trips, each recording ``n_stops`` stops.

        Every trajectory has ``n_stops + 2`` recorded points.
        """
        if n_trajectories < 1:
            raise ValidationError(
                f"n_trajectories must be >= 1, got {n_trajectories}"
            )
        if n_stops < 0:
            raise ValidationError(f"n_stops must be >= 0, got {n_stops}")
        gen = ensure_rng(rng)
        origins = self.city.sample_points(n_trajectories, gen)
        destinations = self._sample_destinations(origins, gen)
        points = np.empty((n_trajectories, n_stops + 2, 2), dtype=np.float64)
        points[:, 0, :] = origins
        points[:, -1, :] = destinations
        if n_stops > 0:
            points[:, 1:-1, :] = self._sample_stops(
                origins, destinations, n_stops, gen
            )
        side = self.city.side_km
        np.clip(points, 0.0, np.nextafter(side, 0.0), out=points)
        return TrajectoryDataset(points)

    # ------------------------------------------------------------------
    def _sample_destinations(
        self, origins: np.ndarray, gen: np.random.Generator
    ) -> np.ndarray:
        """Gravity destinations: density-distributed candidates re-weighted
        by exp(-distance / trip_scale)."""
        n = origins.shape[0]
        k = self.candidate_factor
        candidates = self.city.sample_points(n * k, gen).reshape(n, k, 2)
        dists = np.sqrt(((candidates - origins[:, None, :]) ** 2).sum(axis=2))
        weights = np.exp(-dists / self.trip_scale_km)
        weights_sum = weights.sum(axis=1, keepdims=True)
        # Degenerate rows (all candidates astronomically far) fall back to
        # uniform choice among candidates.
        uniform = np.full_like(weights, 1.0 / k)
        probs = np.where(weights_sum > 0, weights / np.maximum(weights_sum, 1e-300), uniform)
        cumulative = np.cumsum(probs, axis=1)
        u = gen.random((n, 1))
        choice = (u > cumulative).sum(axis=1)
        np.clip(choice, 0, k - 1, out=choice)
        return candidates[np.arange(n), choice]

    def _sample_stops(
        self,
        origins: np.ndarray,
        destinations: np.ndarray,
        n_stops: int,
        gen: np.random.Generator,
    ) -> np.ndarray:
        """Stops along the O-D corridor: along-position Beta(2, 2) (biased
        to mid-trip), sorted per trajectory, with lateral Gaussian jitter."""
        n = origins.shape[0]
        t = np.sort(gen.beta(2.0, 2.0, size=(n, n_stops)), axis=1)
        base = origins[:, None, :] + t[:, :, None] * (
            destinations - origins
        )[:, None, :]
        jitter = gen.normal(0.0, self.stop_jitter_km, size=(n, n_stops, 2))
        return base + jitter


def simulate_od_dataset(
    city: CityModel,
    n_trajectories: int = DEFAULT_N_TRAJECTORIES,
    n_stops: int = 0,
    rng: RNGLike = None,
    **simulator_kwargs,
) -> TrajectoryDataset:
    """Convenience wrapper: default simulator over ``city``."""
    sim = MovementSimulator(city, **simulator_kwargs)
    return sim.sample(n_trajectories, n_stops, rng)
