"""Gaussian synthetic frequency matrices (paper Section 6.1).

"To generate a d-dimensional Gaussian frequency matrix F ... a uniformly
random integer is sampled in each dimension [as the cluster centre] and 1
million datapoints are generated ... each data point is sampled from a
multivariate Gaussian with X_i ~ N(c_i, var)."  Lower variance means more
skew.  The per-dimension width follows Section 6.2's convention
``F_i = floor(N^(1/d))`` unless an explicit shape is given.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..core.domain import Domain
from ..core.exceptions import ValidationError
from ..core.frequency_matrix import FrequencyMatrix
from ..dp.rng import RNGLike, ensure_rng

#: The paper's default point count.
DEFAULT_N_POINTS = 1_000_000


def paper_shape(ndim: int, n_points: int = DEFAULT_N_POINTS) -> Tuple[int, ...]:
    """Per-dimension width ``floor(N^(1/d))`` (Section 6.2)."""
    if ndim < 1:
        raise ValidationError(f"ndim must be >= 1, got {ndim}")
    if n_points < 1:
        raise ValidationError(f"n_points must be >= 1, got {n_points}")
    # The epsilon guards float dust: 10^6 ** (1/6) evaluates to 9.999...,
    # but the paper's intended width is 10.
    width = int(np.floor(n_points ** (1.0 / ndim) + 1e-9))
    return tuple([max(2, width)] * ndim)


def gaussian_cluster_points(
    shape: Sequence[int],
    variance: float,
    n_points: int,
    rng: RNGLike = None,
    center: Sequence[int] | None = None,
) -> np.ndarray:
    """Integer data points from the paper's single-cluster Gaussian model.

    Points are rounded to the integer lattice and clipped to the matrix
    extent (out-of-range samples land in boundary cells, preserving the
    total count of exactly ``n_points``).
    """
    gen = ensure_rng(rng)
    shape = tuple(int(s) for s in shape)
    if any(s < 1 for s in shape):
        raise ValidationError(f"shape must be positive, got {shape}")
    if variance <= 0 or not np.isfinite(variance):
        raise ValidationError(f"variance must be positive, got {variance}")
    if n_points < 1:
        raise ValidationError(f"n_points must be >= 1, got {n_points}")
    d = len(shape)
    if center is None:
        center = np.array([gen.integers(0, s) for s in shape], dtype=np.float64)
    else:
        center = np.asarray(list(center), dtype=np.float64)
        if center.shape != (d,):
            raise ValidationError(f"center must have {d} coordinates")
    std = float(np.sqrt(variance))
    pts = gen.normal(loc=center, scale=std, size=(n_points, d))
    cells = np.rint(pts).astype(np.int64)
    for axis, s in enumerate(shape):
        np.clip(cells[:, axis], 0, s - 1, out=cells[:, axis])
    return cells


def gaussian_matrix(
    ndim: int,
    variance: float,
    n_points: int = DEFAULT_N_POINTS,
    rng: RNGLike = None,
    shape: Sequence[int] | None = None,
) -> FrequencyMatrix:
    """A complete Gaussian synthetic frequency matrix.

    Parameters
    ----------
    ndim:
        Dimensionality ``d`` (the paper sweeps 2, 4, 6).
    variance:
        Gaussian variance; smaller = more skewed.
    n_points:
        Population size (paper: 10^6).
    shape:
        Explicit matrix shape; defaults to :func:`paper_shape`.
    """
    gen = ensure_rng(rng)
    if shape is None:
        shape = paper_shape(ndim, n_points)
    else:
        shape = tuple(int(s) for s in shape)
        if len(shape) != ndim:
            raise ValidationError(f"shape must have {ndim} dimensions")
    cells = gaussian_cluster_points(shape, variance, n_points, gen)
    domain = Domain.regular(shape)
    return FrequencyMatrix.from_cells(cells, domain)


def variance_for_skew(shape: Sequence[int], std_fraction: float) -> float:
    """Variance whose standard deviation is ``std_fraction`` of the
    smallest matrix width — a scale-free way to express skew levels
    across dimensionalities (used by the Figure 4 harness)."""
    if not 0 < std_fraction:
        raise ValidationError(f"std_fraction must be positive, got {std_fraction}")
    width = min(int(s) for s in shape)
    return (std_fraction * width) ** 2
