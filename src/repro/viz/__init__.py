"""Plain-text visualization (Figure 3 reproduction without matplotlib)."""

from .ascii_heatmap import (
    DENSITY_CHARS,
    ascii_heatmap,
    ascii_partition_overlay,
    downsample_2d,
    render_grid_partitioning,
)

__all__ = [
    "DENSITY_CHARS",
    "ascii_heatmap",
    "ascii_partition_overlay",
    "downsample_2d",
    "render_grid_partitioning",
]
