"""ASCII rendering of 2-D frequency matrices and DAF partition overlays.

No plotting libraries are available offline, so the paper's Figure 3 —
heat map of a city with the first-dimension splits (green vertical lines)
and second-dimension splits (yellow horizontal lines) — is reproduced in
plain text: density shading characters, ``|`` for dimension-1 cuts and
``-`` for dimension-2 cuts (``+`` at crossings).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..core.exceptions import ValidationError
from ..core.frequency_matrix import FrequencyMatrix

#: Density ramp from empty to dense.
DENSITY_CHARS = " .:-=+*#%@"


def downsample_2d(data: np.ndarray, rows: int, cols: int) -> np.ndarray:
    """Average-pool a 2-D array to approximately ``rows x cols``."""
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValidationError(f"need a 2-D array, got ndim={data.ndim}")
    r = min(rows, data.shape[0])
    c = min(cols, data.shape[1])
    row_edges = np.linspace(0, data.shape[0], r + 1).astype(int)
    col_edges = np.linspace(0, data.shape[1], c + 1).astype(int)
    out = np.zeros((r, c))
    for i in range(r):
        for j in range(c):
            block = data[row_edges[i]:row_edges[i + 1],
                         col_edges[j]:col_edges[j + 1]]
            out[i, j] = block.mean() if block.size else 0.0
    return out


def ascii_heatmap(
    matrix: FrequencyMatrix | np.ndarray,
    rows: int = 30,
    cols: int = 60,
    log_scale: bool = True,
) -> str:
    """Shade a 2-D matrix with :data:`DENSITY_CHARS`.

    ``log_scale`` compresses the dynamic range (city data is heavy-tailed).
    """
    data = matrix.data if isinstance(matrix, FrequencyMatrix) else np.asarray(matrix)
    if data.ndim != 2:
        raise ValidationError("ascii_heatmap renders 2-D matrices only")
    pooled = downsample_2d(data, rows, cols)
    if log_scale:
        pooled = np.log1p(pooled)
    top = pooled.max()
    if top <= 0:
        levels = np.zeros_like(pooled, dtype=int)
    else:
        levels = np.minimum(
            (pooled / top * (len(DENSITY_CHARS) - 1)).astype(int),
            len(DENSITY_CHARS) - 1,
        )
    lines = ["".join(DENSITY_CHARS[v] for v in row) for row in levels]
    return "\n".join(lines)


def _collect_cuts(split_tree: Dict[str, object], max_depth: int = 2
                  ) -> Tuple[List[int], List[Tuple[int, int, int]]]:
    """Extract dimension-0 cuts (global) and dimension-1 cuts (per slab)
    from a DAF ``split_tree`` metadata dict.

    Returns ``(vertical_cuts, horizontal_cuts)`` where each horizontal cut
    is ``(row_cut, col_lo, col_hi)`` limited to its slab.
    """
    vertical: List[int] = []
    horizontal: List[Tuple[int, int, int]] = []

    def walk(node: Dict[str, object]) -> None:
        depth = int(node["depth"])  # type: ignore[arg-type]
        children = node.get("children")
        if not children or depth >= max_depth:
            return
        axis = int(node.get("split_axis", depth))  # type: ignore[arg-type]
        box = node["box"]
        for child in children[1:]:  # type: ignore[index]
            cut = int(child["box"][axis][0])  # type: ignore[index]
            if axis == 0:
                vertical.append(cut)
            elif axis == 1:
                (c_lo, c_hi) = (int(box[0][0]), int(box[0][1]))  # type: ignore[index]
                horizontal.append((cut, c_lo, c_hi))
        for child in children:  # type: ignore[union-attr]
            walk(child)

    walk(split_tree)
    return vertical, horizontal


def ascii_partition_overlay(
    matrix: FrequencyMatrix,
    split_tree: Dict[str, object],
    rows: int = 30,
    cols: int = 60,
    log_scale: bool = True,
) -> str:
    """The Figure 3 rendition: heat map + DAF level-1/level-2 cut lines.

    The matrix's dimension 0 is drawn on the x-axis (so dimension-0 cuts
    are vertical lines, matching the paper's green lines) and dimension 1
    on the y-axis (dimension-1 cuts are horizontal, the yellow lines).
    """
    data = matrix.data
    if data.ndim != 2:
        raise ValidationError("partition overlay renders 2-D matrices only")
    # Transpose so dim 0 becomes columns (x-axis).
    grid = [list(line) for line in
            ascii_heatmap(data.T, rows, cols, log_scale).split("\n")]
    n_rows = len(grid)
    n_cols = len(grid[0]) if grid else 0
    dim0, dim1 = data.shape

    def col_of(cut: int) -> int:
        return min(n_cols - 1, int(round(cut / dim0 * n_cols)))

    def row_of(cut: int) -> int:
        return min(n_rows - 1, int(round(cut / dim1 * n_rows)))

    vertical, horizontal = _collect_cuts(split_tree)
    for cut in vertical:
        c = col_of(cut)
        for r in range(n_rows):
            grid[r][c] = "|"
    for cut, c_lo, c_hi in horizontal:
        r = row_of(cut)
        for c in range(col_of(c_lo), col_of(c_hi) + 1):
            grid[r][c] = "+" if grid[r][c] == "|" else "-"
    return "\n".join("".join(row) for row in grid)


def render_grid_partitioning(
    shape: Tuple[int, int],
    m: int,
    rows: int = 30,
    cols: int = 60,
) -> str:
    """Uniform m x m grid lines only (the non-adaptive panel of Fig. 3a)."""
    if len(shape) != 2:
        raise ValidationError("grid rendering is 2-D only")
    grid = [[" "] * cols for _ in range(rows)]
    for k in range(1, m):
        c = min(cols - 1, int(round(k / m * cols)))
        r = min(rows - 1, int(round(k / m * rows)))
        for i in range(rows):
            grid[i][c] = "|"
        for j in range(cols):
            grid[r][j] = "+" if grid[r][j] == "|" else "-"
    return "\n".join("".join(row) for row in grid)
