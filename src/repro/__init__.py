"""repro — differentially-private publication of origin-destination
matrices with intermediate stops.

A full reproduction of *"Differentially-Private Publication of
Origin-Destination Matrices with Intermediate Stops"* (EDBT 2022):
frequency-matrix sanitization under epsilon-DP with the paper's complete
method set (IDENTITY, UNIFORM, MKM, EUG, EBP, DAF-Entropy,
DAF-Homogeneity) plus extensions, a trajectory/OD substrate, synthetic
data generators substituting the proprietary Veraset corpus, and an
experiment harness regenerating every table and figure.

Quickstart
----------
>>> import numpy as np
>>> from repro import FrequencyMatrix, get_sanitizer
>>> fm = FrequencyMatrix(np.random.default_rng(0).poisson(2, (64, 64)))
>>> private = get_sanitizer("daf_entropy").sanitize(fm, epsilon=0.5, rng=1)
>>> estimate = private.answer(((0, 31), (0, 31)))
"""

from .core import (
    BudgetError,
    Box,
    DimensionSpec,
    Domain,
    FrequencyMatrix,
    MethodError,
    Partition,
    Partitioning,
    PartitioningError,
    PrefixSumTable,
    PrivateFrequencyMatrix,
    QueryError,
    ReproError,
    SparseFrequencyMatrix,
    ValidationError,
)
from .dp import (
    BudgetLedger,
    GeometricMechanism,
    LaplaceMechanism,
    ensure_rng,
    geometric_level_budgets,
    laplace_noise,
    report_noisy_min,
)
from .methods import (
    EBP,
    EUG,
    MKM,
    DAFEntropy,
    DAFHomogeneity,
    Identity,
    KDTree,
    Privlet,
    Quadtree,
    Sanitizer,
    Uniform,
    available_methods,
    get_sanitizer,
)
from .engine import (
    AsyncBatchEngine,
    Engine,
    EngineConfig,
    QueryAnswer,
    QueryRequest,
)
from .queries import (
    Workload,
    WorkloadEvaluator,
    fixed_coverage_workload,
    mean_relative_error,
    random_workload,
)
from .trajectories import (
    ODMatrixBuilder,
    SpatialGrid,
    Trajectory,
    TrajectoryDataset,
    classical_od_matrix,
    od_matrix_with_stops,
)

__version__ = "1.0.0"

__all__ = [
    "AsyncBatchEngine",
    "BudgetError",
    "BudgetLedger",
    "Box",
    "DAFEntropy",
    "DAFHomogeneity",
    "DimensionSpec",
    "Domain",
    "EBP",
    "EUG",
    "Engine",
    "EngineConfig",
    "FrequencyMatrix",
    "GeometricMechanism",
    "Identity",
    "KDTree",
    "LaplaceMechanism",
    "MKM",
    "MethodError",
    "ODMatrixBuilder",
    "Partition",
    "Partitioning",
    "PartitioningError",
    "PrefixSumTable",
    "PrivateFrequencyMatrix",
    "Privlet",
    "QueryAnswer",
    "QueryError",
    "QueryRequest",
    "Quadtree",
    "ReproError",
    "Sanitizer",
    "SparseFrequencyMatrix",
    "SpatialGrid",
    "Trajectory",
    "TrajectoryDataset",
    "Uniform",
    "ValidationError",
    "Workload",
    "WorkloadEvaluator",
    "available_methods",
    "classical_od_matrix",
    "ensure_rng",
    "fixed_coverage_workload",
    "geometric_level_budgets",
    "get_sanitizer",
    "laplace_noise",
    "mean_relative_error",
    "od_matrix_with_stops",
    "random_workload",
    "report_noisy_min",
    "__version__",
]
