"""Closed-form grid-granularity formulas (paper Eq. 8, 9, 13, 19 + MKM).

Each formula maps a (sanitized) total count ``N`` and the data-perturbation
budget ``eps`` to the number ``m`` of equal intervals every dimension is cut
into, so a ``d``-dimensional matrix becomes an ``m^d`` uniform grid.
"""

from __future__ import annotations

import math

from ..core.exceptions import MethodError

#: EUG's empirical constant (Section 3.2: "empirically set to 10/sqrt(2)").
DEFAULT_C0 = 10.0 / math.sqrt(2.0)


def _check_inputs(n_total: float, epsilon: float, ndim: int) -> None:
    if not math.isfinite(n_total):
        raise MethodError(f"total count must be finite, got {n_total}")
    if epsilon <= 0 or not math.isfinite(epsilon):
        raise MethodError(f"epsilon must be positive, got {epsilon}")
    if ndim < 1:
        raise MethodError(f"ndim must be >= 1, got {ndim}")


def eug_granularity(
    n_total: float,
    epsilon: float,
    ndim: int,
    *,
    query_ratio: float | None = None,
    c0: float = DEFAULT_C0,
) -> float:
    """EUG's optimal ``m`` (Eq. 8 for a known query ratio, Eq. 13 otherwise).

    Parameters
    ----------
    n_total:
        Sanitized total count ``N^hat``.  Negative noisy counts are clamped
        to 1, which degenerates to the coarsest useful grid.
    epsilon:
        Data-perturbation budget (``eps_tot - eps_0``).
    ndim:
        Matrix dimensionality ``d``.
    query_ratio:
        ``r`` — the fraction of the matrix a query covers, when known in
        advance (Eq. 8).  ``None`` assumes all sizes equally likely and uses
        the integrated form (Eq. 13).
    c0:
        The uniformity-error constant; the paper sets ``10/sqrt(2)``.

    Notes
    -----
    For ``d = 1`` the non-uniformity error term of Eq. (6) vanishes
    (its ``d - 1`` factor is zero) and the optimization degenerates; we
    use the 2-D base-case formula (Eq. 9), which is also what the original
    UG paper prescribes for low dimensions.
    """
    _check_inputs(n_total, epsilon, ndim)
    if c0 <= 0 or not math.isfinite(c0):
        raise MethodError(f"c0 must be positive, got {c0}")
    n_total = max(n_total, 1.0)
    if ndim <= 2:
        # Eq. (9): the base case, identical to UG in the original paper.
        return math.sqrt(n_total * epsilon / (math.sqrt(2.0) * c0))
    d = float(ndim)
    base = (2.0 * (d - 1.0) / d) * n_total * epsilon / (math.sqrt(2.0) * c0)
    if query_ratio is not None:
        if not 0.0 < query_ratio <= 1.0:
            raise MethodError(f"query_ratio must be in (0, 1], got {query_ratio}")
        base = base * query_ratio ** (1.0 / d - 0.5)
        return base ** (2.0 / (3.0 * d - 2.0))
    # Eq. (13): integrate Eq. (8) over r in (0, 1].
    alpha = base ** (2.0 / (3.0 * d - 2.0))
    factor = d * (3.0 * d - 2.0) / (3.0 * d * d - 3.0 * d + 2.0)
    return alpha * factor


def ebp_granularity(n_total: float, epsilon: float, ndim: int) -> float:
    """EBP's entropy-balanced ``m`` (Eq. 19): ``(N eps / sqrt(2))^(2/(3d))``.

    Balances the Laplace-noise entropy (Eq. 14) against the information
    loss of coarsening (Eq. 15) under the uniform-spread approximation
    (Eq. 17).  No empirical constants required — the point of EBP.
    """
    _check_inputs(n_total, epsilon, ndim)
    n_total = max(n_total, 1.0)
    value = n_total * epsilon / math.sqrt(2.0)
    if value < 1.0:
        return 1.0
    return value ** (2.0 / (3.0 * ndim))


def mkm_granularity(n_total: float, ndim: int) -> float:
    """MKM's per-dimension granularity: ``N^(2/(d+2))``.

    Ref. [11] (Lei 2011) chooses the histogram bin width from the total
    count alone — the formula has no dependence on ``epsilon``, which is
    why the paper observes MKM "does not follow the epsilon-scale
    exchangeability principle" and saturates at the matrix's maximum
    granularity on the 1000x1000 / N = 10^6 city datasets
    (10^6^(2/4) = 1000).
    """
    if not math.isfinite(n_total):
        raise MethodError(f"total count must be finite, got {n_total}")
    if ndim < 1:
        raise MethodError(f"ndim must be >= 1, got {ndim}")
    n_total = max(n_total, 1.0)
    return n_total ** (2.0 / (ndim + 2.0))


def clamp_granularity(m: float, dim_size: int, *, minimum: int = 1) -> int:
    """Round ``m`` and clamp to ``[minimum, dim_size]``.

    A granularity below 1 means "do not split"; above the dimension size it
    saturates at one cell per interval (the IDENTITY regime).
    """
    if dim_size < 1:
        raise MethodError(f"dim_size must be >= 1, got {dim_size}")
    if not math.isfinite(m):
        m = float(dim_size)
    rounded = int(round(m))
    return max(minimum, min(rounded, dim_size))
