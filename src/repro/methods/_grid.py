"""Shared machinery for uniform-grid sanitizers (EUG, EBP, MKM).

All three methods follow the same two-phase recipe from Algorithm 1:

1. spend ``eps_0`` sanitizing the total count ``N`` and plug ``N^hat`` into a
   granularity formula to pick ``m``;
2. cut every dimension into ``m`` near-equal intervals and sanitize each of
   the ``m^d`` partition counts with the remaining budget (sensitivity 1,
   parallel composition across the disjoint partitions).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple  # noqa: F401 (Tuple in annotations)

import numpy as np

from ..core.frequency_matrix import FrequencyMatrix
from ..core.packed import packed_from_intervals
from ..core.private_matrix import PrivateFrequencyMatrix
from ..dp.budget import BudgetLedger
from ..dp.mechanisms import laplace_noise


def axis_cut_starts(size: int, m: int) -> np.ndarray:
    """Start indices of the ``m`` near-equal intervals cutting ``[0, size)``.

    Matches the interval generation of
    :func:`repro.core.partition.grid_boxes` (numpy ``linspace`` semantics,
    duplicate cuts dropped when ``m > size``).
    """
    m = max(1, min(int(m), int(size)))
    cuts = np.linspace(0, size, m + 1).astype(np.int64)
    starts = np.unique(cuts[:-1])
    return starts


def axis_intervals(size: int, m: int) -> List[Tuple[int, int]]:
    """The inclusive ``(lo, hi)`` intervals behind :func:`axis_cut_starts`."""
    starts = axis_cut_starts(size, m)
    ends = np.append(starts[1:], size)
    return [(int(lo), int(hi - 1)) for lo, hi in zip(starts, ends)]


def aggregate_uniform_grid(
    data: np.ndarray, m_per_dim: Sequence[int]
) -> np.ndarray:
    """Aggregate cell counts into the uniform-grid partition totals.

    Returns an array whose axis ``i`` has one entry per interval of
    dimension ``i``, in the same C-order as
    :func:`~repro.core.partition.grid_boxes` enumerates boxes.
    """
    agg = np.asarray(data, dtype=np.float64)
    for axis, m in enumerate(m_per_dim):
        # Interval starts are computed against the ORIGINAL axis length:
        # reduceat only shrinks the axes already aggregated.
        starts = axis_cut_starts(data.shape[axis], m)
        agg = np.add.reduceat(agg, starts, axis=axis)
    return agg


#: Above this partition count a grid output is stored densely (per-cell
#: values) rather than as a list of Partition objects.
DENSE_OUTPUT_THRESHOLD = 100_000


def sanitize_uniform_grid(
    matrix: FrequencyMatrix,
    m: int,
    epsilon_data: float,
    ledger: BudgetLedger,
    rng: np.random.Generator,
    *,
    method: str,
    metadata: Dict[str, object] | None = None,
) -> PrivateFrequencyMatrix:
    """Phase 2 of Algorithm 1: grid-partition and sanitize each count.

    ``m`` is clamped per-dimension to the dimension size, so requesting a
    granularity finer than the matrix degrades gracefully to per-cell noise
    (the behaviour the paper observes for MKM).  Very fine grids (beyond
    :data:`DENSE_OUTPUT_THRESHOLD` partitions) are published dense-backed:
    identical answers, no per-partition object overhead.

    The output is packed (array-backed): the per-dimension intervals and
    the raveled aggregate feed
    :func:`~repro.core.packed.packed_from_intervals` directly, so no
    per-partition Python objects are built on the sanitization path.
    """
    shape = matrix.shape
    m_per_dim = [max(1, min(int(m), s)) for s in shape]
    agg = aggregate_uniform_grid(matrix.data, m_per_dim)
    n_partitions = int(agg.size)
    # Partitions are disjoint: parallel composition, one charge for them all.
    ledger.charge(epsilon_data, scope="grid-counts", note=f"{n_partitions} partitions")
    noisy = agg + laplace_noise(1.0, epsilon_data, rng, size=agg.shape)
    meta: Dict[str, object] = {"m": int(m), "m_per_dim": m_per_dim,
                               "n_partitions": n_partitions}
    if metadata:
        meta.update(metadata)

    if n_partitions > DENSE_OUTPUT_THRESHOLD:
        dense = _expand_grid_to_cells(noisy, shape, m_per_dim)
        return PrivateFrequencyMatrix.from_dense_noisy(
            dense,
            matrix.domain,
            epsilon=ledger.epsilon_total,
            method=method,
            metadata=meta,
        )

    intervals_per_dim = [
        axis_intervals(size, mi) for size, mi in zip(shape, m_per_dim)
    ]
    packed = packed_from_intervals(
        intervals_per_dim, noisy.ravel(), shape, true_counts=agg.ravel()
    )
    if packed.n_partitions != n_partitions:
        raise AssertionError(
            f"grid bookkeeping mismatch: {packed.n_partitions} boxes vs "
            f"{n_partitions} aggregated counts"
        )
    return PrivateFrequencyMatrix.from_packed(
        packed,
        matrix.domain,
        epsilon=ledger.epsilon_total,
        method=method,
        metadata=meta,
    )


def _expand_grid_to_cells(
    noisy: np.ndarray, shape: Tuple[int, ...], m_per_dim: Sequence[int]
) -> np.ndarray:
    """Spread each grid partition's noisy count uniformly over its cells."""
    lengths_per_dim = []
    for size, m in zip(shape, m_per_dim):
        starts = axis_cut_starts(size, m)
        ends = np.append(starts[1:], size)
        lengths_per_dim.append((ends - starts).astype(np.int64))
    # Per-partition cell counts via an outer product, then divide & repeat.
    cells = np.ones_like(noisy)
    for axis, lengths in enumerate(lengths_per_dim):
        view_shape = [1] * noisy.ndim
        view_shape[axis] = lengths.size
        cells = cells * lengths.reshape(view_shape)
    dense = noisy / cells
    for axis, lengths in enumerate(lengths_per_dim):
        dense = np.repeat(dense, lengths, axis=axis)
    return dense


def sanitized_total(
    matrix: FrequencyMatrix,
    epsilon_0: float,
    ledger: BudgetLedger,
    rng: np.random.Generator,
) -> float:
    """Phase 1 of Algorithm 1: ``N^hat = N + Lap(1/eps_0)`` (Eq. 5)."""
    ledger.charge(epsilon_0, note="total-count estimate")
    return matrix.total + laplace_noise(1.0, epsilon_0, rng)
