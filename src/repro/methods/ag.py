"""Adaptive Grid (AG) [Qardaji, Yang, Li 2013; ref. 15].

The hybrid companion of UG that the paper cites ("UG and AG [15]"): a
coarse level-1 uniform grid is laid data-independently from the sanitized
total, then every level-1 cell whose noisy count warrants it is refined by
a level-2 grid sized from that cell's own noisy count.  Generalized here
from the original 2-D formulation to arbitrary dimensionality using the
same analytical granularities as EUG (Eq. 8/13), with the original's
conventions: budget split ``alpha`` between levels (0.5), level-1
granularity halved relative to the single-level optimum, and a smaller
uniformity constant at level 2.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..core.exceptions import MethodError
from ..core.frequency_matrix import Box, FrequencyMatrix, box_slices
from ..core.packed import PackedPartitioning, boxes_to_arrays
from ..core.partition import grid_boxes
from ..core.private_matrix import PrivateFrequencyMatrix
from ..dp.budget import BudgetLedger
from ..dp.mechanisms import laplace_noise
from ._grid import sanitized_total
from .base import Sanitizer
from .granularity import DEFAULT_C0, clamp_granularity, eug_granularity


class AdaptiveGrid(Sanitizer):
    """Two-level adaptive grid (AG), generalized to d dimensions.

    Parameters
    ----------
    alpha:
        Fraction of the (post-estimate) budget spent on level-1 counts;
        the remainder sanitizes level-2 cells.  The original uses 0.5.
    eps0_fraction:
        Budget fraction for the initial total-count estimate.
    c0:
        Level-1 uniformity constant (EUG's default).  Level 2 uses
        ``c0 / 2`` per the original's guidance that refinement tolerates
        finer granularity.
    min_refine_count:
        Level-1 cells whose noisy count falls below this threshold are
        not refined (their level-2 grid would be all noise).
    """

    name = "ag"

    def __init__(
        self,
        alpha: float = 0.5,
        eps0_fraction: float = 0.01,
        c0: float = DEFAULT_C0,
        min_refine_count: float = 0.0,
    ):
        if not 0.0 < alpha < 1.0:
            raise MethodError(f"alpha must be in (0, 1), got {alpha}")
        if not 0.0 < eps0_fraction < 1.0:
            raise MethodError(
                f"eps0_fraction must be in (0, 1), got {eps0_fraction}"
            )
        if c0 <= 0:
            raise MethodError(f"c0 must be positive, got {c0}")
        self.alpha = float(alpha)
        self.eps0_fraction = float(eps0_fraction)
        self.c0 = float(c0)
        self.min_refine_count = float(min_refine_count)

    # ------------------------------------------------------------------
    def _sanitize(
        self,
        matrix: FrequencyMatrix,
        ledger: BudgetLedger,
        rng: np.random.Generator,
    ) -> PrivateFrequencyMatrix:
        epsilon = ledger.epsilon_total
        eps0 = epsilon * self.eps0_fraction
        eps_rest = epsilon - eps0
        eps1 = self.alpha * eps_rest
        eps2 = eps_rest - eps1

        n_hat = sanitized_total(matrix, eps0, ledger, rng)
        d = matrix.ndim
        # Level-1 granularity: half the single-level optimum (AG's rule).
        m1_raw = eug_granularity(n_hat, eps_rest, d, c0=self.c0) / 2.0
        m1 = clamp_granularity(max(m1_raw, 1.0), max(matrix.shape))
        level1_boxes = grid_boxes(matrix.shape, [m1] * d)

        ledger.charge(eps1, scope="ag-level1", note=f"{len(level1_boxes)} cells")
        ledger.charge(eps2, scope="ag-level2", note="refined cells")

        boxes: List[Box] = []
        noisy_counts: List[float] = []
        true_counts: List[float] = []
        n_refined = 0
        for box in level1_boxes:
            view = matrix.data[box_slices(box)]
            true1 = float(view.sum())
            noisy1 = true1 + laplace_noise(1.0, eps1, rng)
            m2 = self._level2_granularity(noisy1, eps2, box, d)
            if m2 <= 1 or noisy1 < self.min_refine_count:
                # Publish the level-1 cell; fold the unused level-2 noise
                # budget into nothing (the cell keeps its eps1 estimate).
                boxes.append(box)
                noisy_counts.append(noisy1)
                true_counts.append(true1)
                continue
            n_refined += 1
            for sub, true2, noisy2 in self._refine(matrix, box, m2, eps2, rng):
                boxes.append(sub)
                noisy_counts.append(noisy2)
                true_counts.append(true2)

        lows, highs = boxes_to_arrays(boxes)
        packed = PackedPartitioning(
            lows,
            highs,
            np.array(noisy_counts, dtype=np.float64),
            matrix.shape,
            np.array(true_counts, dtype=np.float64),
            validate=False,
        )
        meta: Dict[str, object] = {
            "m1": m1,
            "n_hat": n_hat,
            "alpha": self.alpha,
            "n_level1_cells": len(level1_boxes),
            "n_refined": n_refined,
            "n_partitions": packed.n_partitions,
        }
        return self.publish_packed(packed, matrix, ledger, metadata=meta)

    # ------------------------------------------------------------------
    def _level2_granularity(
        self, noisy_count: float, eps2: float, box: Box, d: int
    ) -> int:
        if noisy_count <= 0:
            return 1
        m2_raw = eug_granularity(noisy_count, eps2, d, c0=self.c0 / 2.0)
        max_width = max(hi - lo + 1 for lo, hi in box)
        return clamp_granularity(m2_raw, max_width)

    def _refine(
        self,
        matrix: FrequencyMatrix,
        box: Box,
        m2: int,
        eps2: float,
        rng: np.random.Generator,
    ) -> List[Tuple[Box, float, float]]:
        """Level-2 uniform grid inside one level-1 cell.

        Returns ``(box, true_count, noisy_count)`` triples; the caller
        packs them into arrays.
        """
        widths = [hi - lo + 1 for lo, hi in box]
        inner = grid_boxes(tuple(widths), [m2] * len(widths))
        out: List[Tuple[Box, float, float]] = []
        for ib in inner:
            absolute = tuple(
                (lo + ilo, lo + ihi)
                for (lo, _), (ilo, ihi) in zip(box, ib)
            )
            true = float(matrix.data[box_slices(absolute)].sum())
            out.append((absolute, true, true + laplace_noise(1.0, eps2, rng)))
        return out

    def describe(self):
        return {
            "name": self.name,
            "alpha": self.alpha,
            "eps0_fraction": self.eps0_fraction,
            "c0": self.c0,
            "min_refine_count": self.min_refine_count,
        }
