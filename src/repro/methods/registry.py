"""Name-based sanitizer registry.

The experiment harness refers to methods by the symbols of the paper's
Table 2 (lower-cased); :func:`get_sanitizer` builds a fresh, optionally
configured instance for each.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..core.exceptions import MethodError
from .ag import AdaptiveGrid
from .base import Sanitizer
from .daf.entropy import DAFEntropy
from .daf.homogeneity import DAFHomogeneity
from .ebp import EBP
from .eug import EUG
from .identity import Identity
from .kdtree import KDTree
from .mkm import MKM
from .privlet import Privlet
from .quadtree import Quadtree
from .spacefilling import SpaceFillingCurve
from .uniform import Uniform

_REGISTRY: Dict[str, Callable[..., Sanitizer]] = {
    "identity": Identity,
    "uniform": Uniform,
    "eug": EUG,
    "ebp": EBP,
    "mkm": MKM,
    "daf_entropy": DAFEntropy,
    "daf_homogeneity": DAFHomogeneity,
    "privlet": Privlet,
    "quadtree": Quadtree,
    "kdtree": KDTree,
    "ag": AdaptiveGrid,
    "hilbert1d": SpaceFillingCurve,
}

#: The six techniques of the paper's experimental section (Table 2).
PAPER_METHODS: List[str] = [
    "identity",
    "eug",
    "ebp",
    "mkm",
    "daf_entropy",
    "daf_homogeneity",
]

#: Extension methods implemented beyond the paper's compared set.
EXTENSION_METHODS: List[str] = [
    "uniform", "ag", "privlet", "quadtree", "kdtree", "hilbert1d",
]


def available_methods() -> List[str]:
    """All registered method names, paper methods first."""
    return PAPER_METHODS + EXTENSION_METHODS


def get_sanitizer(name: str, **kwargs) -> Sanitizer:
    """Instantiate a sanitizer by registry name.

    >>> get_sanitizer("ebp").name
    'ebp'
    """
    key = str(name).lower()
    if key not in _REGISTRY:
        raise MethodError(
            f"unknown method {name!r}; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[key](**kwargs)


def register(name: str, factory: Callable[..., Sanitizer]) -> None:
    """Register a custom sanitizer factory (used by downstream code)."""
    key = str(name).lower()
    if key in _REGISTRY:
        raise MethodError(f"method {name!r} is already registered")
    _REGISTRY[key] = factory
