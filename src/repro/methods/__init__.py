"""Sanitization methods: the paper's Table 2 set plus extensions."""

from .ag import AdaptiveGrid
from .base import Sanitizer
from .daf import (
    AllStop,
    AnyStop,
    CountThreshold,
    DAFBase,
    DAFEntropy,
    DAFHomogeneity,
    DAFNode,
    NeverStop,
    NoiseAdaptiveThreshold,
    SparsityStop,
    StopCondition,
    daf_granularity,
    homogeneity_objective,
)
from .ebp import EBP
from .eug import EUG
from .granularity import (
    DEFAULT_C0,
    clamp_granularity,
    ebp_granularity,
    eug_granularity,
    mkm_granularity,
)
from .identity import Identity
from .kdtree import KDTree, exponential_median_split
from .mkm import MKM
from .privlet import (
    Privlet,
    haar_axis_weights,
    haar_forward_axis,
    haar_inverse_axis,
    haar_level_count,
)
from .quadtree import Quadtree, binary_intervals
from .spacefilling import (
    SpaceFillingCurve,
    adaptive_1d_runs,
    morton_order,
)
from .registry import (
    EXTENSION_METHODS,
    PAPER_METHODS,
    available_methods,
    get_sanitizer,
    register,
)
from .uniform import Uniform

__all__ = [
    "AdaptiveGrid",
    "AllStop",
    "AnyStop",
    "CountThreshold",
    "DAFBase",
    "DAFEntropy",
    "DAFHomogeneity",
    "DAFNode",
    "DEFAULT_C0",
    "EBP",
    "EUG",
    "EXTENSION_METHODS",
    "Identity",
    "KDTree",
    "MKM",
    "NeverStop",
    "NoiseAdaptiveThreshold",
    "PAPER_METHODS",
    "Privlet",
    "Quadtree",
    "Sanitizer",
    "SpaceFillingCurve",
    "SparsityStop",
    "StopCondition",
    "Uniform",
    "available_methods",
    "binary_intervals",
    "clamp_granularity",
    "daf_granularity",
    "ebp_granularity",
    "eug_granularity",
    "exponential_median_split",
    "get_sanitizer",
    "haar_forward_axis",
    "haar_inverse_axis",
    "haar_axis_weights",
    "haar_level_count",
    "homogeneity_objective",
    "mkm_granularity",
    "morton_order",
    "adaptive_1d_runs",
    "register",
]
