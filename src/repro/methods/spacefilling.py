"""1-D dimensionality-reduction baseline via space-filling curves.

The paper's related work (§5) discusses the DAWA family: "general purpose
mechanisms ... operate over a discrete 1D domain; however, they can be
applied to the 2D domain by dimensional reduction transformations such as
Hilbert curves.  Unfortunately, dimensionality reduction can prevent
range queries from being answered accurately."

This module implements that category so the claim can be measured: cells
are ordered along a Morton (Z-order) curve, an adaptive 1-D partitioner
groups consecutive curve positions into runs of near-uniform density, the
run counts are sanitized, and the result is published densely (a curve
run is generally *not* an axis-aligned box, so the partition-list output
shape does not apply).  ``benchmarks/test_extension_methods.py`` shows it
trailing native multi-dimensional partitioning on range workloads —
exactly the paper's argument for structures that preserve proximity
semantics.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from ..core.exceptions import MethodError
from ..core.frequency_matrix import FrequencyMatrix
from ..core.private_matrix import PrivateFrequencyMatrix
from ..dp.budget import BudgetLedger
from ..dp.mechanisms import laplace_noise
from ._grid import sanitized_total
from .base import Sanitizer
from .granularity import ebp_granularity


def morton_order(shape: Tuple[int, ...]) -> np.ndarray:
    """Flat cell indices (C-order) sorted along the Morton (Z-order) curve.

    Bits of each coordinate are interleaved across dimensions; sorting by
    the interleaved key walks the grid in Z-order, keeping most spatially
    close cells close on the curve.  Works for any dimensionality and any
    (non-power-of-two) extent.
    """
    shape = tuple(int(s) for s in shape)
    if any(s < 1 for s in shape):
        raise MethodError(f"shape must be positive, got {shape}")
    grids = np.meshgrid(*[np.arange(s, dtype=np.uint64) for s in shape],
                        indexing="ij")
    coords = [g.ravel() for g in grids]
    bits = max(1, max(int(math.ceil(math.log2(max(s, 2)))) for s in shape))
    keys = np.zeros(coords[0].shape, dtype=np.uint64)
    d = len(shape)
    for bit in range(bits):
        for axis, c in enumerate(coords):
            keys |= ((c >> np.uint64(bit)) & np.uint64(1)) << np.uint64(
                bit * d + axis
            )
    return np.argsort(keys, kind="stable")


def adaptive_1d_runs(
    values: np.ndarray, n_runs: int
) -> List[Tuple[int, int]]:
    """Split a 1-D sequence into ``n_runs`` inclusive runs of roughly equal
    *mass* (greedy prefix walk) — denser curve regions get shorter runs.

    Falls back to equal-length runs when the sequence is empty.
    """
    n = values.size
    n_runs = max(1, min(int(n_runs), n))
    total = float(values.sum())
    if total <= 0:
        cuts = np.linspace(0, n, n_runs + 1).astype(np.int64)
    else:
        cumulative = np.cumsum(values)
        targets = np.linspace(0, total, n_runs + 1)[1:-1]
        interior = np.searchsorted(cumulative, targets, side="left") + 1
        cuts = np.concatenate(([0], interior, [n])).astype(np.int64)
        cuts = np.unique(cuts)
    return [
        (int(cuts[i]), int(cuts[i + 1]) - 1)
        for i in range(len(cuts) - 1)
        if cuts[i + 1] > cuts[i]
    ]


class SpaceFillingCurve(Sanitizer):
    """Morton-curve 1-D reduction + mass-adaptive 1-D partitioning.

    Parameters
    ----------
    eps0_fraction:
        Budget for the total-count estimate that sizes the run count.
    partition_fraction:
        Budget share spent privately estimating the curve profile used to
        place the run boundaries (the data-dependent step); the remainder
        sanitizes the run counts.
    """

    name = "hilbert1d"

    def __init__(
        self,
        eps0_fraction: float = 0.01,
        partition_fraction: float = 0.3,
    ):
        if not 0.0 < eps0_fraction < 1.0:
            raise MethodError(
                f"eps0_fraction must be in (0, 1), got {eps0_fraction}"
            )
        if not 0.0 < partition_fraction < 1.0:
            raise MethodError(
                f"partition_fraction must be in (0, 1), got {partition_fraction}"
            )
        self.eps0_fraction = float(eps0_fraction)
        self.partition_fraction = float(partition_fraction)

    def _sanitize(
        self,
        matrix: FrequencyMatrix,
        ledger: BudgetLedger,
        rng: np.random.Generator,
    ) -> PrivateFrequencyMatrix:
        epsilon = ledger.epsilon_total
        eps0 = epsilon * self.eps0_fraction
        eps_rest = epsilon - eps0
        eps_prt = eps_rest * self.partition_fraction
        eps_data = eps_rest - eps_prt

        n_hat = sanitized_total(matrix, eps0, ledger, rng)
        order = morton_order(matrix.shape)
        flat = matrix.data.ravel()[order]

        # Number of runs from the 1-D entropy-balanced granularity: the
        # curve is a single dimension of length n_cells.
        n_runs = max(1, int(round(ebp_granularity(n_hat, eps_data, 1))))
        n_runs = min(n_runs, flat.size)

        # Private coarse profile guides the run boundaries (sensitivity 1
        # per coarse bucket, disjoint buckets -> parallel composition).
        n_buckets = min(flat.size, max(n_runs * 4, 16))
        bucket_edges = np.linspace(0, flat.size, n_buckets + 1).astype(np.int64)
        profile = np.add.reduceat(flat, bucket_edges[:-1])
        ledger.charge(eps_prt, scope="curve-profile",
                      note=f"{n_buckets} buckets")
        noisy_profile = profile + laplace_noise(
            1.0, eps_prt, rng, size=profile.shape
        )
        bucket_runs = adaptive_1d_runs(
            np.maximum(noisy_profile, 0.0), n_runs
        )
        runs = [
            (int(bucket_edges[blo]), int(bucket_edges[bhi + 1]) - 1)
            for blo, bhi in bucket_runs
        ]

        ledger.charge(eps_data, scope="curve-runs", note=f"{len(runs)} runs")
        dense_curve = np.empty_like(flat)
        for lo, hi in runs:
            true = float(flat[lo:hi + 1].sum())
            noisy = true + laplace_noise(1.0, eps_data, rng)
            dense_curve[lo:hi + 1] = noisy / (hi - lo + 1)

        # Scatter curve positions back to grid cells.
        dense = np.empty_like(dense_curve)
        dense[order] = dense_curve
        return PrivateFrequencyMatrix.from_dense_noisy(
            dense.reshape(matrix.shape),
            matrix.domain,
            epsilon=epsilon,
            method=self.name,
            metadata={
                "n_runs": len(runs),
                "n_buckets": n_buckets,
                "n_hat": n_hat,
                "n_partitions": len(runs),
            },
        )

    def describe(self):
        return {
            "name": self.name,
            "eps0_fraction": self.eps0_fraction,
            "partition_fraction": self.partition_fraction,
        }
