"""MKM grid baseline [Lei 2011, ref. 11 in the paper].

Chooses the grid granularity from the (sanitized) total count alone:
``m = N^(2/(d+2))`` per dimension, independent of ``epsilon``.  Because the
formula ignores the privacy budget ("does not follow the epsilon-scale
exchangeability principle", Section 6.2), it saturates at the matrix's
maximum granularity on dense low-dimensional data and then behaves like
IDENTITY — the paper's observed failure mode, which our benchmarks
reproduce.
"""

from __future__ import annotations

import numpy as np

from ..core.exceptions import MethodError
from ..core.frequency_matrix import FrequencyMatrix
from ..core.private_matrix import PrivateFrequencyMatrix
from ..dp.budget import BudgetLedger
from ._grid import sanitize_uniform_grid, sanitized_total
from .base import Sanitizer
from .granularity import clamp_granularity, mkm_granularity


class MKM(Sanitizer):
    """M-estimator-style grid sanitizer (partially data-dependent baseline).

    Parameters
    ----------
    eps0_fraction:
        Fraction of the budget spent on the total-count estimate.
    """

    name = "mkm"

    def __init__(self, eps0_fraction: float = 0.01):
        if not 0.0 < eps0_fraction < 1.0:
            raise MethodError(
                f"eps0_fraction must be in (0, 1), got {eps0_fraction}"
            )
        self.eps0_fraction = float(eps0_fraction)

    def _sanitize(
        self,
        matrix: FrequencyMatrix,
        ledger: BudgetLedger,
        rng: np.random.Generator,
    ) -> PrivateFrequencyMatrix:
        epsilon = ledger.epsilon_total
        eps0 = epsilon * self.eps0_fraction
        eps_data = epsilon - eps0
        n_hat = sanitized_total(matrix, eps0, ledger, rng)
        m_raw = mkm_granularity(n_hat, matrix.ndim)
        m = clamp_granularity(m_raw, max(matrix.shape))
        return sanitize_uniform_grid(
            matrix, m, eps_data, ledger, rng,
            method=self.name,
            metadata={"n_hat": n_hat, "m_raw": m_raw,
                      "eps0": eps0, "eps_data": eps_data},
        )

    def describe(self):
        return {"name": self.name, "eps0_fraction": self.eps0_fraction}
