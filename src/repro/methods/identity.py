"""IDENTITY baseline [Dwork et al. 2006]: Laplace noise on every cell.

Each matrix entry is its own partition, so sensitivity is 1 and parallel
composition makes the total cost exactly ``epsilon``.  No uniformity error,
maximal noise error — the reference point for every adaptive method.
"""

from __future__ import annotations

import numpy as np

from ..core.frequency_matrix import FrequencyMatrix
from ..core.private_matrix import PrivateFrequencyMatrix
from ..dp.budget import BudgetLedger
from ..dp.mechanisms import geometric_noise, laplace_noise
from ..core.exceptions import MethodError
from .base import Sanitizer


class Identity(Sanitizer):
    """Per-cell Laplace (or geometric) noise with the full budget.

    Parameters
    ----------
    mechanism:
        ``"laplace"`` (the paper's choice) or ``"geometric"`` (the
        integer-valued analogue, provided as an extension).
    """

    name = "identity"

    def __init__(self, mechanism: str = "laplace"):
        if mechanism not in ("laplace", "geometric"):
            raise MethodError(
                f"mechanism must be 'laplace' or 'geometric', got {mechanism!r}"
            )
        self.mechanism = mechanism

    def _sanitize(
        self,
        matrix: FrequencyMatrix,
        ledger: BudgetLedger,
        rng: np.random.Generator,
    ) -> PrivateFrequencyMatrix:
        epsilon = ledger.epsilon_total
        ledger.charge(epsilon, scope="cells", note=f"{matrix.n_cells} cells")
        if self.mechanism == "laplace":
            noise = laplace_noise(1.0, epsilon, rng, size=matrix.shape)
        else:
            noise = geometric_noise(1.0, epsilon, rng, size=matrix.shape)
        return PrivateFrequencyMatrix.from_dense_noisy(
            matrix.data + noise,
            matrix.domain,
            epsilon=epsilon,
            method=self.name,
            metadata={"mechanism": self.mechanism, "n_partitions": matrix.n_cells},
        )

    def describe(self):
        return {"name": self.name, "mechanism": self.mechanism}
