"""Privlet-style wavelet sanitizer [Xiao, Wang, Gehrke 2010; ref. 18].

The paper discusses Privlet as related work but does not evaluate it; we
provide it as an extension baseline.  The matrix is transformed with an
*unnormalized* Haar wavelet along every axis (the standard tensor
decomposition), each coefficient receives Laplace noise calibrated to its
own sensitivity, and the inverse transform yields per-cell noisy counts.

Calibration
-----------
For an axis of length ``2^h``, one individual's +1 moves the level-``l``
detail coefficient by at most ``2^-l`` and the scaling coefficient by
``2^-h``.  Giving the coefficient group at level ``l`` noise scale

    lambda_l = (h + 1) * 2^-l / eps

makes the per-axis privacy degradation sum to exactly ``eps`` across the
``h + 1`` groups; for ``d`` axes the scales multiply per-axis weights and
the group count becomes ``prod_i (h_i + 1)``, again summing to ``eps``.
Because coarse coefficients get proportionally *small* absolute noise while
covering big blocks, a contiguous range query touches only ``O(log n)``
noisy partial coefficients per axis — the polylogarithmic range-error
guarantee that motivates wavelet publication, versus IDENTITY's error
growing with the query volume.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..core.frequency_matrix import FrequencyMatrix
from ..core.private_matrix import PrivateFrequencyMatrix
from ..dp.budget import BudgetLedger
from .base import Sanitizer


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p *= 2
    return p


def haar_forward_axis(data: np.ndarray, axis: int) -> np.ndarray:
    """Unnormalized Haar transform along ``axis`` (length must be 2^h).

    Layout after the transform: position 0 holds the scaling coefficient
    (the mean); positions ``[2^(j-1), 2^j)`` hold the details of level
    ``h - j + 1`` (position 1 is the coarsest detail, the top half the
    finest).
    """
    x = np.moveaxis(np.asarray(data, dtype=np.float64), axis, 0).copy()
    n = x.shape[0]
    if n & (n - 1):
        raise ValueError(f"axis length must be a power of two, got {n}")
    length = n
    while length > 1:
        evens = x[0:length:2].copy()
        odds = x[1:length:2].copy()
        half = length // 2
        x[:half] = (evens + odds) / 2.0
        x[half:length] = (evens - odds) / 2.0
        length = half
    return np.moveaxis(x, 0, axis)


def haar_inverse_axis(data: np.ndarray, axis: int) -> np.ndarray:
    """Inverse of :func:`haar_forward_axis`."""
    x = np.moveaxis(np.asarray(data, dtype=np.float64), axis, 0).copy()
    n = x.shape[0]
    if n & (n - 1):
        raise ValueError(f"axis length must be a power of two, got {n}")
    length = 2
    while length <= n:
        half = length // 2
        approx = x[:half].copy()
        detail = x[half:length].copy()
        x[0:length:2] = approx + detail
        x[1:length:2] = approx - detail
        length *= 2
    return np.moveaxis(x, 0, axis)


def haar_axis_weights(length_pow2: int) -> np.ndarray:
    """Per-position sensitivity weights ``w(p)`` for one transformed axis.

    ``w(0) = 2^-h`` (scaling); for ``p >= 1`` at detail level
    ``l = h - floor(log2 p)``, ``w(p) = 2^-l``.  These are exactly the
    maximal per-coefficient contributions of a unit impulse, verified
    empirically by the test suite.
    """
    n = int(length_pow2)
    if n < 1 or (n & (n - 1)):
        raise ValueError(f"length must be a power of two, got {n}")
    h = int(math.log2(n))
    w = np.empty(n, dtype=np.float64)
    w[0] = 2.0 ** (-h)
    for p in range(1, n):
        level = h - int(math.floor(math.log2(p)))
        w[p] = 2.0 ** (-level)
    return w


def haar_level_count(length_pow2: int) -> int:
    """Number of coefficient groups per axis: ``h + 1``."""
    n = int(length_pow2)
    if n < 1 or (n & (n - 1)):
        raise ValueError(f"length must be a power of two, got {n}")
    return int(math.log2(n)) + 1


class Privlet(Sanitizer):
    """Wavelet-domain Laplace sanitizer (dense-backed output)."""

    name = "privlet"

    def _sanitize(
        self,
        matrix: FrequencyMatrix,
        ledger: BudgetLedger,
        rng: np.random.Generator,
    ) -> PrivateFrequencyMatrix:
        epsilon = ledger.epsilon_total
        ledger.charge(epsilon, note="wavelet coefficients")
        padded_shape: Tuple[int, ...] = tuple(_next_pow2(s) for s in matrix.shape)
        work = np.zeros(padded_shape, dtype=np.float64)
        work[tuple(slice(0, s) for s in matrix.shape)] = matrix.data

        n_groups = 1
        for axis, size in enumerate(padded_shape):
            work = haar_forward_axis(work, axis)
            n_groups *= haar_level_count(size)

        # Per-coefficient scale: (prod_i (h_i + 1) / eps) * prod_i w_i(p_i).
        scale = np.full(padded_shape, n_groups / epsilon, dtype=np.float64)
        for axis, size in enumerate(padded_shape):
            view_shape = [1] * len(padded_shape)
            view_shape[axis] = size
            scale = scale * haar_axis_weights(size).reshape(view_shape)
        work = work + rng.laplace(0.0, 1.0, size=work.shape) * scale

        for axis in range(work.ndim):
            work = haar_inverse_axis(work, axis)
        noisy = work[tuple(slice(0, s) for s in matrix.shape)]
        return PrivateFrequencyMatrix.from_dense_noisy(
            noisy,
            matrix.domain,
            epsilon=epsilon,
            method=self.name,
            metadata={
                "padded_shape": list(padded_shape),
                "coefficient_groups": n_groups,
                "n_partitions": matrix.n_cells,
            },
        )
