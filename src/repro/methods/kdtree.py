"""Private kd-tree baseline [Xiao, Xiong, Yuan 2010; ref. 19].

A data-*dependent* hierarchical decomposition: a fraction of the budget is
reserved for privately selecting split positions (here via the exponential
mechanism with a balance utility), the rest sanitizes the leaf counts.
Split axes rotate round-robin; split positions aim to balance the count on
either side (the noisy-median strategy the paper's related-work section
describes).  Included as an extension baseline.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..core.exceptions import MethodError
from ..core.frequency_matrix import Box, FrequencyMatrix, box_slices, full_box
from ..core.packed import PackedPartitioning, boxes_to_arrays
from ..core.private_matrix import PrivateFrequencyMatrix
from ..dp.budget import BudgetLedger
from ..dp.mechanisms import laplace_noise
from .base import Sanitizer


def exponential_median_split(
    profile: np.ndarray, epsilon: float, rng: np.random.Generator
) -> int:
    """Pick a cut index c in ``[1, len(profile) - 1]`` via the exponential
    mechanism with utility ``-|count_left(c) - count_right(c)|``.

    Adding/removing one record changes the utility by at most 1, so
    sampling with ``exp(eps * u / 2)`` weights is ``eps``-DP.
    Returns the cut as an offset into the profile (records with index
    ``< c`` go left).
    """
    n = profile.size
    if n < 2:
        raise MethodError("profile must span at least two cells to split")
    prefix = np.cumsum(profile)
    total = prefix[-1]
    cuts = np.arange(1, n)
    left = prefix[cuts - 1]
    utility = -np.abs(2.0 * left - total)
    # Stabilize the softmax before exponentiation.
    logits = (epsilon / 2.0) * utility
    logits -= logits.max()
    weights = np.exp(logits)
    weights /= weights.sum()
    return int(rng.choice(cuts, p=weights))


class KDTree(Sanitizer):
    """DP kd-tree: exponential-mechanism median splits, leaf publication.

    Parameters
    ----------
    height:
        Number of split levels (tree has up to ``2^height`` leaves).
        ``None`` derives ``round(log2(sqrt(#cells)))`` bounded to
        ``[1, max_height]``.
    split_fraction:
        Fraction of the budget reserved for split selection, divided
        uniformly across levels.
    max_height:
        Safety cap on the derived height.
    """

    name = "kdtree"

    def __init__(
        self,
        height: int | None = None,
        split_fraction: float = 0.3,
        max_height: int = 16,
    ):
        if height is not None and height < 1:
            raise MethodError(f"height must be >= 1, got {height}")
        if not 0.0 < split_fraction < 1.0:
            raise MethodError(
                f"split_fraction must be in (0, 1), got {split_fraction}"
            )
        if max_height < 1:
            raise MethodError(f"max_height must be >= 1, got {max_height}")
        self.height = height
        self.split_fraction = float(split_fraction)
        self.max_height = int(max_height)

    def _resolve_height(self, n_cells: int) -> int:
        if self.height is not None:
            return min(self.height, self.max_height)
        derived = max(1, round(math.log2(max(2.0, math.sqrt(n_cells)))))
        return min(derived, self.max_height)

    def _sanitize(
        self,
        matrix: FrequencyMatrix,
        ledger: BudgetLedger,
        rng: np.random.Generator,
    ) -> PrivateFrequencyMatrix:
        epsilon = ledger.epsilon_total
        height = self._resolve_height(matrix.n_cells)
        eps_split_total = epsilon * self.split_fraction
        eps_leaf = epsilon - eps_split_total
        eps_split_level = eps_split_total / height

        boxes: List[Box] = [full_box(matrix.shape)]
        for level in range(height):
            # Disjoint boxes at one level: parallel composition.
            ledger.charge(eps_split_level, scope=f"kd-split-{level}")
            new_boxes: List[Box] = []
            for box in boxes:
                split = self._split_box(matrix, box, level, eps_split_level, rng)
                new_boxes.extend(split)
            boxes = new_boxes

        ledger.charge(eps_leaf, scope="kd-leaves", note=f"{len(boxes)} leaves")
        true = np.array(
            [matrix.data[box_slices(box)].sum() for box in boxes],
            dtype=np.float64,
        )
        noisy = true + laplace_noise(1.0, eps_leaf, rng, size=true.shape)
        lows, highs = boxes_to_arrays(boxes)
        packed = PackedPartitioning(
            lows, highs, noisy, matrix.shape, true, validate=False
        )
        return self.publish_packed(
            packed,
            matrix,
            ledger,
            metadata={
                "height": height,
                "split_fraction": self.split_fraction,
                "n_partitions": packed.n_partitions,
            },
        )

    def _split_box(
        self,
        matrix: FrequencyMatrix,
        box: Box,
        level: int,
        eps_split: float,
        rng: np.random.Generator,
    ) -> List[Box]:
        ndim = len(box)
        # Round-robin over axes, skipping axes already at unit width.
        for offset in range(ndim):
            axis = (level + offset) % ndim
            lo, hi = box[axis]
            if hi > lo:
                break
        else:
            return [box]  # every axis has a single cell: nothing to split
        view = matrix.data[box_slices(box)]
        other = tuple(a for a in range(ndim) if a != axis)
        profile = view.sum(axis=other) if other else view
        cut = exponential_median_split(profile, eps_split, rng)
        left = tuple(
            (lo, lo + cut - 1) if a == axis else box[a] for a in range(ndim)
        )
        right = tuple(
            (lo + cut, hi) if a == axis else box[a] for a in range(ndim)
        )
        return [left, right]

    def describe(self):
        return {
            "name": self.name,
            "height": self.height,
            "split_fraction": self.split_fraction,
            "max_height": self.max_height,
        }
