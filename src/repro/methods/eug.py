"""Extended Uniform Grid (EUG) — paper Section 3.1, Algorithm 1.

Extends the 2-D Uniform Grid of Qardaji et al. [15] to arbitrary
dimensionality: a small budget ``eps_0`` sanitizes the total count, the
analytical model of Eq. (6)-(13) converts it to an optimal per-dimension
granularity ``m``, and the remaining budget sanitizes the ``m^d`` uniform
partitions.
"""

from __future__ import annotations

import numpy as np

from ..core.exceptions import MethodError
from ..core.frequency_matrix import FrequencyMatrix
from ..core.private_matrix import PrivateFrequencyMatrix
from ..dp.budget import BudgetLedger
from ._grid import sanitize_uniform_grid, sanitized_total
from .base import Sanitizer
from .granularity import DEFAULT_C0, clamp_granularity, eug_granularity


class EUG(Sanitizer):
    """Extended Uniform Grid sanitizer.

    Parameters
    ----------
    eps0_fraction:
        Fraction of the total budget used to sanitize the total count
        (Algorithm 1's ``eps_0``).  Default 0.01, matching the paper's root
        budget convention (Eq. 33).
    query_ratio:
        Known query-coverage ratio ``r`` for Eq. (8); ``None`` (default)
        integrates over all sizes (Eq. 13).
    c0:
        Uniformity-error constant; the paper sets ``10/sqrt(2)``.
    """

    name = "eug"

    def __init__(
        self,
        eps0_fraction: float = 0.01,
        query_ratio: float | None = None,
        c0: float = DEFAULT_C0,
    ):
        if not 0.0 < eps0_fraction < 1.0:
            raise MethodError(
                f"eps0_fraction must be in (0, 1), got {eps0_fraction}"
            )
        if query_ratio is not None and not 0.0 < query_ratio <= 1.0:
            raise MethodError(f"query_ratio must be in (0, 1], got {query_ratio}")
        if c0 <= 0:
            raise MethodError(f"c0 must be positive, got {c0}")
        self.eps0_fraction = float(eps0_fraction)
        self.query_ratio = query_ratio
        self.c0 = float(c0)

    def _sanitize(
        self,
        matrix: FrequencyMatrix,
        ledger: BudgetLedger,
        rng: np.random.Generator,
    ) -> PrivateFrequencyMatrix:
        epsilon = ledger.epsilon_total
        eps0 = epsilon * self.eps0_fraction
        eps_data = epsilon - eps0
        n_hat = sanitized_total(matrix, eps0, ledger, rng)
        m_raw = eug_granularity(
            n_hat, eps_data, matrix.ndim,
            query_ratio=self.query_ratio, c0=self.c0,
        )
        m = clamp_granularity(m_raw, max(matrix.shape))
        return sanitize_uniform_grid(
            matrix, m, eps_data, ledger, rng,
            method=self.name,
            metadata={"n_hat": n_hat, "m_raw": m_raw,
                      "eps0": eps0, "eps_data": eps_data},
        )

    def describe(self):
        return {
            "name": self.name,
            "eps0_fraction": self.eps0_fraction,
            "query_ratio": self.query_ratio,
            "c0": self.c0,
        }
