"""The common interface every sanitization method implements.

A :class:`Sanitizer` consumes a :class:`~repro.core.FrequencyMatrix` and a
total privacy budget and returns a
:class:`~repro.core.PrivateFrequencyMatrix`.  Implementations must:

* never mutate the input matrix;
* record every expenditure in a :class:`~repro.dp.BudgetLedger` and stay
  within the total (the returned object carries the ledger summary in its
  metadata);
* route all randomness through the ``rng`` argument.
"""

from __future__ import annotations

import abc
from typing import Dict, Mapping

from ..core.exceptions import MethodError, ValidationError
from ..core.frequency_matrix import FrequencyMatrix
from ..core.packed import PackedPartitioning
from ..core.private_matrix import PrivateFrequencyMatrix
from ..dp.budget import BudgetLedger
from ..dp.rng import RNGLike, ensure_rng


class Sanitizer(abc.ABC):
    """Abstract base class for frequency-matrix sanitizers."""

    #: Registry symbol; subclasses override (``"eug"``, ``"daf_entropy"``...).
    name: str = ""

    def sanitize(
        self,
        matrix: FrequencyMatrix,
        epsilon: float,
        rng: RNGLike = None,
    ) -> PrivateFrequencyMatrix:
        """Produce an ``epsilon``-DP private version of ``matrix``.

        This wrapper validates inputs, builds the budget ledger, delegates
        to :meth:`_sanitize` and verifies the ledger afterwards.
        """
        if not isinstance(matrix, FrequencyMatrix):
            raise ValidationError(
                f"matrix must be a FrequencyMatrix, got {type(matrix).__name__}"
            )
        if not (epsilon > 0):
            raise ValidationError(f"epsilon must be positive, got {epsilon}")
        ledger = BudgetLedger(epsilon_total=float(epsilon))
        generator = ensure_rng(rng)
        result = self._sanitize(matrix, ledger, generator)
        ledger.assert_within_budget()
        if result.shape != matrix.shape:
            raise MethodError(
                f"{self.name or type(self).__name__} returned shape "
                f"{result.shape} for input shape {matrix.shape}"
            )
        result._metadata.setdefault("budget_summary", ledger.summary())
        return result

    @abc.abstractmethod
    def _sanitize(
        self,
        matrix: FrequencyMatrix,
        ledger: BudgetLedger,
        rng,
    ) -> PrivateFrequencyMatrix:
        """Method-specific sanitization; must charge ``ledger`` as it spends."""

    # ------------------------------------------------------------------
    def publish_packed(
        self,
        packed: PackedPartitioning,
        matrix: FrequencyMatrix,
        ledger: BudgetLedger,
        metadata: Mapping[str, object] | None = None,
    ) -> PrivateFrequencyMatrix:
        """Wrap a packed partitioning as this method's published output.

        Sanitizers emit contiguous arrays straight from their aggregation
        step; :class:`~repro.core.partition.Partition` objects are only
        materialized later, if a consumer iterates partitions or
        validates an externally supplied tiling.
        """
        return PrivateFrequencyMatrix.from_packed(
            packed,
            matrix.domain,
            epsilon=ledger.epsilon_total,
            method=self.name,
            metadata=metadata,
        )

    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """Human-readable configuration summary (used in reports)."""
        return {"name": self.name or type(self).__name__}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(
            f"{k}={v!r}" for k, v in self.describe().items() if k != "name"
        )
        return f"{type(self).__name__}({params})"
