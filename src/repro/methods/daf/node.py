"""Tree nodes for the Density-Aware Framework (paper Section 4.1).

Each node covers an axis-aligned box of the frequency matrix; children are
a non-overlapping split of the parent's box along the dimension equal to
the parent's depth.  Nodes keep the attributes Algorithm 2 manipulates
(``F`` as the box, ``count``, ``ncount``, ``depth``) plus bookkeeping used
for budget verification and visualization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ...core.frequency_matrix import Box, box_n_cells


@dataclass
class DAFNode:
    """One node of a DAF tree."""

    box: Box
    depth: int
    count: float
    ncount: float = 0.0
    children: List["DAFNode"] = field(default_factory=list)
    #: Dimension this node's children split (== depth), None for leaves.
    split_axis: Optional[int] = None
    #: Chosen fanout m at this node (None for leaves).
    fanout: Optional[int] = None
    #: Privacy budget charged against this node's own data.
    eps_spent: float = 0.0
    #: Variance of ``ncount`` as an estimator of ``count``.  Not simply
    #: ``2/eps_spent^2``: homogeneity diverts part of the node budget to
    #: split selection, and early-stopped nodes re-estimate.  Maintained
    #: by the framework; consumed by consistency boosting.
    ncount_variance: float = 0.0
    #: True when a stop condition pruned the subtree here.
    stopped_early: bool = False

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def n_cells(self) -> int:
        return box_n_cells(self.box)

    def iter_nodes(self) -> Iterator["DAFNode"]:
        """Pre-order traversal of the subtree rooted here."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_leaves(self) -> Iterator["DAFNode"]:
        for node in self.iter_nodes():
            if node.is_leaf:
                yield node

    def max_path_epsilon(self) -> float:
        """Maximum root-to-leaf sum of per-node charges.

        By parallel composition across disjoint sibling subtrees, this is
        the true privacy cost of the whole tree mechanism.
        """
        if self.is_leaf:
            return self.eps_spent
        return self.eps_spent + max(c.max_path_epsilon() for c in self.children)

    def height(self) -> int:
        """Number of levels below this node (0 for a leaf)."""
        if self.is_leaf:
            return 0
        return 1 + max(c.height() for c in self.children)

    def n_leaves(self) -> int:
        return sum(1 for _ in self.iter_leaves())

    def to_public_dict(self) -> Dict[str, object]:
        """DP-safe summary (boxes, noisy counts, fanouts; no true counts).

        Used by the visualization module to draw the partition overlay of
        the paper's Fig. 3.
        """
        out: Dict[str, object] = {
            "box": [list(r) for r in self.box],
            "depth": self.depth,
            "ncount": self.ncount,
            "stopped_early": self.stopped_early,
        }
        if not self.is_leaf:
            out["split_axis"] = self.split_axis
            out["fanout"] = self.fanout
            out["children"] = [c.to_public_dict() for c in self.children]
        return out
