"""Density-Aware Framework (paper Section 4)."""

from .boosting import apply_boosting, boost_tree_consistency
from .entropy import DAFEntropy
from .framework import DAFBase, daf_granularity
from .homogeneity import DAFHomogeneity, homogeneity_objective
from .node import DAFNode
from .stop import (
    AllStop,
    AnyStop,
    CountThreshold,
    NeverStop,
    NoiseAdaptiveThreshold,
    SparsityStop,
    StopCondition,
)

__all__ = [
    "AllStop",
    "apply_boosting",
    "boost_tree_consistency",
    "AnyStop",
    "CountThreshold",
    "DAFBase",
    "DAFEntropy",
    "DAFHomogeneity",
    "DAFNode",
    "NeverStop",
    "NoiseAdaptiveThreshold",
    "SparsityStop",
    "StopCondition",
    "daf_granularity",
    "homogeneity_objective",
]
