"""Stop conditions for DAF tree growth (paper Section 4.2).

The paper prunes a subtree when the node's *sanitized* count satisfies an
application-chosen predicate, "the most prominent stop condition ... is to
stop when the sanitized count is below a certain threshold".  Testing only
the sanitized count keeps the decision differentially private — no extra
budget is consumed.

Several predicates are provided; they can be combined with
:class:`AnyStop` / :class:`AllStop`.  The ablation benchmark
``benchmarks/test_ablation_stop.py`` sweeps them.
"""

from __future__ import annotations

import abc
import math
from typing import Sequence

from ...core.exceptions import MethodError


class StopCondition(abc.ABC):
    """Decides whether a DAF node should become a leaf before full depth."""

    @abc.abstractmethod
    def should_stop(
        self, noisy_count: float, remaining_epsilon: float, n_cells: int
    ) -> bool:
        """True to prune: ``noisy_count`` is the node's sanitized count,
        ``remaining_epsilon`` the budget left below this node, ``n_cells``
        the number of matrix entries the node covers."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class NeverStop(StopCondition):
    """Grow to full depth ``d`` unconditionally (the ablation baseline)."""

    def should_stop(self, noisy_count, remaining_epsilon, n_cells) -> bool:
        return False


class CountThreshold(StopCondition):
    """Stop when the sanitized count falls below a fixed threshold."""

    def __init__(self, threshold: float):
        if not math.isfinite(threshold):
            raise MethodError(f"threshold must be finite, got {threshold}")
        self.threshold = float(threshold)

    def should_stop(self, noisy_count, remaining_epsilon, n_cells) -> bool:
        return noisy_count < self.threshold

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CountThreshold({self.threshold!r})"


class NoiseAdaptiveThreshold(StopCondition):
    """Stop when the sanitized count is small relative to the noise floor.

    Splitting further is pointless once a node's count is comparable to the
    standard deviation of the Laplace noise the remaining budget can pay
    for: the children would be indistinguishable from noise.  Stops when
    ``noisy_count < factor * sqrt(2) / remaining_epsilon``.

    This is the library default (``factor = 2``); it adapts across the
    privacy budgets and dimensionalities the paper sweeps without manual
    retuning.
    """

    def __init__(self, factor: float = 2.0):
        if factor < 0 or not math.isfinite(factor):
            raise MethodError(f"factor must be non-negative, got {factor}")
        self.factor = float(factor)

    def should_stop(self, noisy_count, remaining_epsilon, n_cells) -> bool:
        if remaining_epsilon <= 0:
            return True
        noise_std = math.sqrt(2.0) / remaining_epsilon
        return noisy_count < self.factor * noise_std

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NoiseAdaptiveThreshold({self.factor!r})"


class SparsityStop(StopCondition):
    """Stop when the average sanitized density per cell is below a floor.

    Useful for very high-dimensional matrices where large empty regions
    should collapse into single partitions early.
    """

    def __init__(self, min_density: float = 0.1):
        if min_density < 0 or not math.isfinite(min_density):
            raise MethodError(f"min_density must be non-negative, got {min_density}")
        self.min_density = float(min_density)

    def should_stop(self, noisy_count, remaining_epsilon, n_cells) -> bool:
        if n_cells <= 0:
            return True
        return noisy_count / n_cells < self.min_density


class AnyStop(StopCondition):
    """Stop when *any* member condition fires."""

    def __init__(self, conditions: Sequence[StopCondition]):
        if not conditions:
            raise MethodError("AnyStop needs at least one condition")
        self.conditions = tuple(conditions)

    def should_stop(self, noisy_count, remaining_epsilon, n_cells) -> bool:
        return any(
            c.should_stop(noisy_count, remaining_epsilon, n_cells)
            for c in self.conditions
        )


class AllStop(StopCondition):
    """Stop only when *all* member conditions fire."""

    def __init__(self, conditions: Sequence[StopCondition]):
        if not conditions:
            raise MethodError("AllStop needs at least one condition")
        self.conditions = tuple(conditions)

    def should_stop(self, noisy_count, remaining_epsilon, n_cells) -> bool:
        return all(
            c.should_stop(noisy_count, remaining_epsilon, n_cells)
            for c in self.conditions
        )
