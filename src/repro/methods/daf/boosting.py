"""Hierarchical consistency boosting for DAF trees.

DAF sanitizes *every* node it visits (the count drives the fanout
formula) but publishes only the leaves — the internal-node estimates'
budget is spent either way.  Constrained inference on tree-structured
counts [Hay et al., "Boosting the accuracy of differentially private
histograms through consistency", VLDB 2010] recovers that information:

1. **Upward pass** — each internal node combines its own noisy count
   with the sum of its children's combined estimates, weighting by
   inverse variance (both are unbiased estimates of the same total);
2. **Downward pass** — starting from the root's combined estimate, the
   residual between a parent's final value and its children's combined
   sum is distributed over the children proportionally to their
   variances, making the tree exactly *consistent* (children sum to
   parent) without changing expectations.

The generalization here handles DAF's non-uniform fanout and per-node
budgets (Eq. 32 gives different levels different epsilons), tracking each
node's estimate variance explicitly.  Pure post-processing of already-
published noisy values: the DP guarantee is untouched.

Enable via ``DAFEntropy(tree_consistency=True)`` (likewise
DAF-Homogeneity), or call :func:`boost_tree_consistency` on a tree.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ...core.exceptions import MethodError
from .node import DAFNode

#: Variance of a Laplace estimate with sensitivity 1 and budget eps.
def _laplace_variance(eps: float) -> float:
    if eps <= 0:
        raise MethodError(f"node budget must be positive, got {eps}")
    return 2.0 / (eps * eps)


def boost_tree_consistency(root: DAFNode) -> Dict[int, float]:
    """Compute consistent, variance-optimal estimates for every node.

    Parameters
    ----------
    root:
        A DAF tree whose nodes carry ``ncount`` (noisy estimate) and
        ``eps_spent`` (the budget that produced it).

    Returns
    -------
    dict
        ``id(node) -> final estimate``.  Leaves' entries are the values
        to publish; for every internal node the children's estimates sum
        exactly to the parent's.
    """
    combined: Dict[int, Tuple[float, float]] = {}  # id -> (estimate, variance)

    def upward(node: DAFNode) -> Tuple[float, float]:
        own_var = _laplace_variance(node.eps_spent)
        if node.is_leaf:
            result = (node.ncount, own_var)
            combined[id(node)] = result
            return result
        child_sum = 0.0
        child_var = 0.0
        for child in node.children:
            est, var = upward(child)
            child_sum += est
            child_var += var
        # Inverse-variance weighting of two unbiased estimates of the
        # node total: its own noisy count and the children's sum.
        w_own = 1.0 / own_var
        w_children = 1.0 / child_var
        est = (w_own * node.ncount + w_children * child_sum) / (w_own + w_children)
        var = 1.0 / (w_own + w_children)
        combined[id(node)] = (est, var)
        return est, var

    upward(root)

    final: Dict[int, float] = {id(root): combined[id(root)][0]}

    def downward(node: DAFNode) -> None:
        if node.is_leaf:
            return
        parent_value = final[id(node)]
        child_estimates = [combined[id(c)] for c in node.children]
        child_sum = sum(e for e, _ in child_estimates)
        residual = parent_value - child_sum
        total_var = sum(v for _, v in child_estimates)
        for child, (est, var) in zip(node.children, child_estimates):
            # Higher-variance children absorb more of the residual: this
            # is the minimum-variance consistent adjustment.
            final[id(child)] = est + residual * (var / total_var)
            downward(child)

    downward(root)
    return final


def apply_boosting(root: DAFNode) -> int:
    """Overwrite every node's ``ncount`` with its boosted estimate.

    Returns the number of nodes updated.  Called by the DAF framework
    when ``tree_consistency=True``.
    """
    final = boost_tree_consistency(root)
    n = 0
    for node in root.iter_nodes():
        node.ncount = final[id(node)]
        n += 1
    return n
