"""The Density-Aware Framework's shared recursive engine (paper Section 4).

Both DAF variants walk the same tree (Algorithm 2 / Algorithm 3):

* nodes at depth ``i`` split dimension ``i`` of their box (0-based here;
  the paper's "(i+1)-th dimension" in 1-based notation);
* the root is sanitized with ``eps_0 = eps_tot/100`` (Eq. 33) and its noisy
  count sets both the root fanout and the budget-allocation constant
  ``m0``;
* internal nodes receive the geometric level budget of Eq. (32);
* fanout at every node is the entropy-balanced granularity of Eq. (19),
  applied to the *remaining* dimensions: ``m = (ncount * eps_left /
  sqrt(2))^(2 / (3 (d - depth)))``;
* a stop condition on the sanitized count may prune the subtree early, in
  which case the node is re-sanitized with all remaining budget (Algorithm
  2 lines 17-20);
* leaves' sanitized counts form the published partitioning.

Subclasses customize only how a node's level budget is split between data
and partition selection, and where the split points go.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...core.exceptions import MethodError
from ...core.frequency_matrix import Box, FrequencyMatrix, box_slices, full_box
from ...core.packed import PackedPartitioning, boxes_to_arrays
from ...core.private_matrix import PrivateFrequencyMatrix
from ...dp.allocation import level_budget, root_budget, uniform_level_budgets
from ...dp.budget import BudgetLedger
from ...dp.mechanisms import laplace_noise
from ..base import Sanitizer
from .node import DAFNode
from .stop import NoiseAdaptiveThreshold, StopCondition

#: Numeric floor guarding divisions by vanishing remaining budget.
_EPS_FLOOR = 1e-12


def daf_granularity(ncount: float, eps_left: float, remaining_dims: int) -> float:
    """Eq. (19) applied to the remaining dimensions (Algorithm 2 line 11/16).

    ``m = (ncount * eps_left / sqrt(2)) ** (2 / (3 * (d - d')))`` with the
    noisy count clamped at 1 (a negative noisy count means "essentially
    empty": do not split).
    """
    if remaining_dims < 1:
        raise MethodError(f"remaining_dims must be >= 1, got {remaining_dims}")
    if eps_left <= 0:
        return 1.0
    value = max(ncount, 1.0) * eps_left / math.sqrt(2.0)
    if value <= 1.0:
        return 1.0
    return value ** (2.0 / (3.0 * remaining_dims))


class DAFBase(Sanitizer):
    """Common engine for DAF-Entropy and DAF-Homogeneity.

    Parameters
    ----------
    stop_condition:
        Predicate on sanitized counts that prunes subtrees
        (default: :class:`NoiseAdaptiveThreshold` with factor 2).
    refine:
        What to do with the fresh estimate drawn when a node stops early:
        ``"replace"`` discards the earlier noisy count (Algorithm 2 line
        19, the paper's behaviour) while ``"average"`` combines both
        unbiased estimates with inverse-variance weights (an accuracy
        extension; same privacy cost).
    allocation:
        ``"geometric"`` applies Eq. (32); ``"uniform"`` splits the budget
        equally across levels (the ablation baseline).
    max_fanout:
        Safety cap on any single node's fanout (noisy counts can explode
        the closed-form m); defaults to 4096.
    tree_consistency:
        When True, apply hierarchical consistency boosting (see
        :mod:`repro.methods.daf.boosting`) before publishing the leaves:
        the internal-node estimates the recursion already paid for are
        folded back in by inverse-variance averaging.  Pure
        post-processing; same privacy cost.
    """

    name = "daf"

    def __init__(
        self,
        stop_condition: Optional[StopCondition] = None,
        refine: str = "replace",
        allocation: str = "geometric",
        max_fanout: int = 4096,
        tree_consistency: bool = False,
    ):
        if refine not in ("replace", "average"):
            raise MethodError(f"refine must be 'replace' or 'average', got {refine!r}")
        if allocation not in ("geometric", "uniform"):
            raise MethodError(
                f"allocation must be 'geometric' or 'uniform', got {allocation!r}"
            )
        if max_fanout < 1:
            raise MethodError(f"max_fanout must be >= 1, got {max_fanout}")
        self.stop_condition = stop_condition or NoiseAdaptiveThreshold(2.0)
        self.refine = refine
        self.allocation = allocation
        self.max_fanout = int(max_fanout)
        self.tree_consistency = bool(tree_consistency)

    # ------------------------------------------------------------------
    # Hooks customized by the two variants
    # ------------------------------------------------------------------
    def _split_budget(self, eps_node: float) -> Tuple[float, float]:
        """Split a node's level budget into ``(eps_data, eps_partition)``."""
        return eps_node, 0.0

    def _choose_cuts(
        self,
        matrix: FrequencyMatrix,
        node: DAFNode,
        axis: int,
        m: int,
        eps_prt: float,
        rng: np.random.Generator,
    ) -> List[int]:
        """Interior cut points (absolute indices, strictly increasing) that
        split ``node.box[axis]`` into ``m`` intervals.  The base
        implementation cuts uniformly (DAF-Entropy)."""
        lo, hi = node.box[axis]
        size = hi - lo + 1
        cuts = np.linspace(0, size, m + 1).astype(np.int64)[1:-1]
        return sorted({int(c) + lo for c in cuts if 0 < c < size})

    # ------------------------------------------------------------------
    # The recursive engine
    # ------------------------------------------------------------------
    def _sanitize(
        self,
        matrix: FrequencyMatrix,
        ledger: BudgetLedger,
        rng: np.random.Generator,
    ) -> PrivateFrequencyMatrix:
        eps_tot = ledger.epsilon_total
        d = matrix.ndim
        root = DAFNode(box=full_box(matrix.shape), depth=0, count=matrix.total)
        state = _TreeState(eps_tot=eps_tot, ndim=d)
        self._visit(matrix, root, acc=0.0, state=state, rng=rng)

        # The true privacy cost is the maximum root-to-leaf charge sum
        # (parallel composition across disjoint sibling subtrees).
        spent = root.max_path_epsilon()
        if spent > eps_tot + 1e-6:
            raise MethodError(
                f"DAF spent {spent:g} along some path, exceeding budget {eps_tot:g}"
            )
        ledger.charge(min(spent, eps_tot), note="max root-to-leaf composition")

        if self.tree_consistency and not root.is_leaf:
            from .boosting import apply_boosting
            apply_boosting(root)

        leaves = list(root.iter_leaves())
        lows, highs = boxes_to_arrays([leaf.box for leaf in leaves])
        packed = PackedPartitioning(
            lows,
            highs,
            np.array([leaf.ncount for leaf in leaves], dtype=np.float64),
            matrix.shape,
            np.array([leaf.count for leaf in leaves], dtype=np.float64),
            validate=False,
        )
        metadata: Dict[str, object] = {
            "m0": state.m0,
            "n_partitions": len(leaves),
            "tree_height": root.height(),
            "n_stopped_early": sum(1 for n in root.iter_nodes() if n.stopped_early),
            "split_tree": root.to_public_dict(),
        }
        result = PrivateFrequencyMatrix.from_packed(
            packed,
            matrix.domain,
            epsilon=eps_tot,
            method=self.name,
            metadata=metadata,
        )
        #: expose the raw tree for tests / visualization (not serialized).
        self.tree_ = root
        return result

    def _visit(
        self,
        matrix: FrequencyMatrix,
        node: DAFNode,
        acc: float,
        state: "_TreeState",
        rng: np.random.Generator,
    ) -> None:
        d = state.ndim
        depth = node.depth
        eps_tot = state.eps_tot

        if depth == d:
            # Algorithm 2 lines 5-7: full depth, spend everything left.
            eps = max(eps_tot - acc, _EPS_FLOOR)
            node.ncount = node.count + laplace_noise(1.0, eps, rng)
            node.ncount_variance = 2.0 / (eps * eps)
            node.eps_spent += eps
            return

        if depth == 0:
            # Algorithm 2 lines 8-11: sanitize root, derive m0.
            eps0 = root_budget(eps_tot)
            node.ncount = node.count + laplace_noise(1.0, eps0, rng)
            node.ncount_variance = 2.0 / (eps0 * eps0)
            node.eps_spent += eps0
            acc += eps0
            m_raw = daf_granularity(node.ncount, eps_tot - acc, d)
            m = self._clamp_fanout(m_raw, node, axis=0)
            state.m0 = max(m, 1)
            eps_prt = 0.0
        else:
            # Algorithm 2 lines 12-16: geometric level budget (Eq. 32).
            eps_node = self._level_budget(state, depth)
            eps_data, eps_prt = self._split_budget(eps_node)
            node.ncount = node.count + laplace_noise(1.0, eps_data, rng)
            node.ncount_variance = 2.0 / (eps_data * eps_data)
            node.eps_spent += eps_node
            acc += eps_node
            m_raw = daf_granularity(node.ncount, eps_tot - acc, d - depth)
            m = self._clamp_fanout(m_raw, node, axis=depth)

        # Algorithm 2 lines 17-20: stop condition on the sanitized count.
        if self.stop_condition.should_stop(node.ncount, eps_tot - acc, node.n_cells):
            eps_rest = eps_tot - acc
            if eps_rest > _EPS_FLOOR:
                fresh = node.count + laplace_noise(1.0, eps_rest, rng)
                fresh_var = 2.0 / (eps_rest * eps_rest)
                node.ncount, node.ncount_variance = self._refine(
                    node.ncount, node.ncount_variance, fresh, fresh_var
                )
                node.eps_spent += eps_rest
            node.stopped_early = True
            return

        # Split dimension ``depth`` into m intervals and recurse.
        axis = depth
        cuts = self._choose_cuts(matrix, node, axis, m, eps_prt, rng)
        intervals = _intervals_from_cuts(node.box[axis], cuts)
        node.split_axis = axis
        node.fanout = len(intervals)
        child_counts = _interval_counts(matrix, node.box, axis, intervals)
        for (ilo, ihi), ccount in zip(intervals, child_counts):
            child_box = tuple(
                (ilo, ihi) if a == axis else node.box[a] for a in range(d)
            )
            child = DAFNode(box=child_box, depth=depth + 1, count=ccount)
            node.children.append(child)
            self._visit(matrix, child, acc, state, rng)

    # ------------------------------------------------------------------
    def _level_budget(self, state: "_TreeState", depth: int) -> float:
        eps_prime = state.eps_tot * (1.0 - 0.01)  # eps_tot - eps_0 (Eq. 33)
        if self.allocation == "uniform":
            return uniform_level_budgets(eps_prime, state.ndim)[depth - 1]
        return level_budget(eps_prime, float(max(state.m0, 1)), state.ndim, depth)

    def _clamp_fanout(self, m_raw: float, node: DAFNode, axis: int) -> int:
        lo, hi = node.box[axis]
        size = hi - lo + 1
        if not math.isfinite(m_raw):
            m_raw = float(self.max_fanout)
        return max(1, min(int(round(m_raw)), size, self.max_fanout))

    def _refine(
        self, old: float, old_var: float, fresh: float, fresh_var: float
    ) -> Tuple[float, float]:
        if self.refine == "replace":
            return fresh, fresh_var
        # Inverse-variance weighting of two unbiased estimates.
        w_old = 1.0 / old_var
        w_new = 1.0 / fresh_var
        value = (w_old * old + w_new * fresh) / (w_old + w_new)
        return value, 1.0 / (w_old + w_new)

    def describe(self):
        return {
            "name": self.name,
            "stop_condition": repr(self.stop_condition),
            "refine": self.refine,
            "allocation": self.allocation,
            "max_fanout": self.max_fanout,
            "tree_consistency": self.tree_consistency,
        }


class _TreeState:
    """Per-sanitization mutable state shared down the recursion."""

    __slots__ = ("eps_tot", "ndim", "m0")

    def __init__(self, eps_tot: float, ndim: int):
        self.eps_tot = eps_tot
        self.ndim = ndim
        self.m0: int = 1


def _intervals_from_cuts(
    interval: Tuple[int, int], cuts: Sequence[int]
) -> List[Tuple[int, int]]:
    """Inclusive sub-intervals of ``interval`` delimited by interior cuts."""
    lo, hi = interval
    out: List[Tuple[int, int]] = []
    prev = lo
    for c in cuts:
        out.append((prev, c - 1))
        prev = c
    out.append((prev, hi))
    return out


def _interval_counts(
    matrix: FrequencyMatrix,
    box: Box,
    axis: int,
    intervals: Sequence[Tuple[int, int]],
) -> List[float]:
    """True counts of ``box`` restricted to each interval along ``axis``.

    Computed from a single 1-D profile (sum over all other axes) so the
    node's cells are scanned once regardless of fanout.
    """
    view = matrix.data[box_slices(box)]
    other_axes = tuple(a for a in range(view.ndim) if a != axis)
    profile = view.sum(axis=other_axes) if other_axes else view
    lo = box[axis][0]
    return [float(profile[ilo - lo : ihi - lo + 1].sum()) for ilo, ihi in intervals]
