"""DAF-Entropy (paper Section 4.2, Algorithm 2).

The fanout at every node comes from the entropy-balanced granularity
formula (Eq. 19) applied to the node's sanitized count and the remaining
dimensions; split points are uniform.  All behaviour lives in
:class:`~repro.methods.daf.framework.DAFBase` — DAF-Entropy is exactly the
base engine.
"""

from __future__ import annotations

from .framework import DAFBase


class DAFEntropy(DAFBase):
    """Density-Aware Framework with entropy-driven fanout, uniform splits."""

    name = "daf_entropy"
