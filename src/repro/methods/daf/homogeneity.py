"""DAF-Homogeneity (paper Section 4.3, Algorithm 3).

Fanout is chosen exactly as in DAF-Entropy, but the *positions* of the
split points are optimized: each node reserves a fraction ``q`` of its
level budget (Eq. 20, q = 0.3 in the paper) to privately pick, among ``p``
randomized candidate cut sets, the one minimizing the homogeneity objective

    O(K) = sum over resulting sub-boxes F_i of sum_j |f_j - mean(F_i)|   (Eq. 22)

whose sensitivity is 2 (Lemma 4.1).  Candidate ``j`` draws its ``i``-th cut
uniformly from the ``i``-th interval of the uniform division (Section 4.3's
construction), so candidates are perturbations of the uniform split.

Noise on the candidate scores
-----------------------------
Algorithm 3 line 14 writes ``Lap(2/(p * eps_prt))``, which *reduces* noise
as the number of candidates grows and does not compose.  The default here
is **report-noisy-min** (scale ``2*s/eps_prt`` with s = 2), which is
``eps_prt``-DP for any ``p`` since only the argmin is released.  Both the
literal paper formula and per-candidate sequential composition are
available via ``split_noise`` for comparison; DESIGN.md documents the
substitution.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ...core.exceptions import MethodError
from ...core.frequency_matrix import FrequencyMatrix, box_slices
from ...dp.mechanisms import laplace_noise, report_noisy_min
from .framework import DAFBase, _intervals_from_cuts
from .node import DAFNode

#: Sensitivity of the homogeneity objective (Lemma 4.1).
OBJECTIVE_SENSITIVITY = 2.0


def homogeneity_objective(
    matrix: FrequencyMatrix, node_box, axis: int, cuts: List[int]
) -> float:
    """Eq. (22): summed absolute deviation from each sub-box's mean."""
    view = matrix.data[box_slices(node_box)]
    lo = node_box[axis][0]
    total = 0.0
    for ilo, ihi in _intervals_from_cuts(node_box[axis], cuts):
        sl = [slice(None)] * view.ndim
        sl[axis] = slice(ilo - lo, ihi - lo + 1)
        sub = view[tuple(sl)]
        total += float(np.abs(sub - sub.mean()).sum())
    return total


class DAFHomogeneity(DAFBase):
    """Density-Aware Framework with homogeneity-optimized split points.

    Parameters
    ----------
    q:
        Fraction of each node's budget reserved for split selection
        (Eq. 20; the paper sets 0.3 experimentally).
    p:
        Number of randomized candidate cut sets per node.
    split_noise:
        ``"noisy_min"`` (default, correct for any p), ``"composed"``
        (eps_prt/p per candidate), or ``"paper"`` (the literal Algorithm 3
        line 14 scale — kept for comparison only).
    (plus all :class:`~repro.methods.daf.framework.DAFBase` parameters)
    """

    name = "daf_homogeneity"

    def __init__(
        self,
        q: float = 0.3,
        p: int = 8,
        split_noise: str = "noisy_min",
        **kwargs,
    ):
        super().__init__(**kwargs)
        if not 0.0 < q < 1.0:
            raise MethodError(f"q must be in (0, 1), got {q}")
        if p < 1:
            raise MethodError(f"p must be >= 1, got {p}")
        if split_noise not in ("noisy_min", "composed", "paper"):
            raise MethodError(
                "split_noise must be 'noisy_min', 'composed' or 'paper', "
                f"got {split_noise!r}"
            )
        self.q = float(q)
        self.p = int(p)
        self.split_noise = split_noise

    # ------------------------------------------------------------------
    def _split_budget(self, eps_node: float):
        # Eq. (20): eps_prt = q * eps_i, eps_data = (1 - q) * eps_i.
        return (1.0 - self.q) * eps_node, self.q * eps_node

    def _choose_cuts(
        self,
        matrix: FrequencyMatrix,
        node: DAFNode,
        axis: int,
        m: int,
        eps_prt: float,
        rng: np.random.Generator,
    ) -> List[int]:
        uniform_cuts = super()._choose_cuts(matrix, node, axis, m, eps_prt, rng)
        if len(uniform_cuts) == 0:
            return uniform_cuts  # fanout 1: nothing to optimize.
        if eps_prt <= 0.0:
            # The root's budget is fully devoted to its count (Algorithm 3
            # line 9 uses all of eps_tot/100); without a partitioning
            # budget we keep the uniform cuts.
            return uniform_cuts
        candidates = [
            self._draw_candidate(node, axis, uniform_cuts, rng)
            for _ in range(self.p)
        ]
        scores = [
            homogeneity_objective(matrix, node.box, axis, cand)
            for cand in candidates
        ]
        best = self._pick_noisy_min(scores, eps_prt, rng)
        return candidates[best]

    # ------------------------------------------------------------------
    def _draw_candidate(
        self,
        node: DAFNode,
        axis: int,
        uniform_cuts: List[int],
        rng: np.random.Generator,
    ) -> List[int]:
        """One candidate cut set: the i-th cut is uniform over the i-th
        interval of the uniform division (strictly increasing by
        construction, every sub-interval non-empty)."""
        lo, hi = node.box[axis]
        boundaries = [lo] + list(uniform_cuts) + [hi + 1]
        cuts: List[int] = []
        for i in range(len(uniform_cuts)):
            seg_lo = boundaries[i] + 1  # cut must leave interval i non-empty
            seg_hi = boundaries[i + 1]
            cuts.append(int(rng.integers(seg_lo, seg_hi + 1)))
        return cuts

    def _pick_noisy_min(
        self, scores: List[float], eps_prt: float, rng: np.random.Generator
    ) -> int:
        if self.split_noise == "noisy_min":
            return report_noisy_min(scores, OBJECTIVE_SENSITIVITY, eps_prt, rng)
        if self.split_noise == "composed":
            per_candidate = eps_prt / len(scores)
            noisy = [
                s + laplace_noise(OBJECTIVE_SENSITIVITY, per_candidate, rng)
                for s in scores
            ]
            return int(np.argmin(noisy))
        # "paper": the literal Algorithm 3 line 14 scale 2/(p * eps_prt).
        scale = 2.0 / (len(scores) * eps_prt)
        noisy = [s + float(rng.laplace(0.0, scale)) for s in scores]
        return int(np.argmin(noisy))

    def describe(self):
        base = super().describe()
        base.update({"name": self.name, "q": self.q, "p": self.p,
                     "split_noise": self.split_noise})
        return base
