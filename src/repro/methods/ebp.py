"""Entropy-Based Partitioning (EBP) — paper Section 3.2.

Same two-phase structure as EUG (Algorithm 1) but the granularity ``m`` is
chosen by balancing the entropy of the Laplace noise (Eq. 14) against the
information lost by coarsening (Eq. 15), yielding the closed form
``m = (N eps / sqrt(2))^(2/(3d))`` (Eq. 19) with no empirical constant.
"""

from __future__ import annotations

import numpy as np

from ..core.exceptions import MethodError
from ..core.frequency_matrix import FrequencyMatrix
from ..core.private_matrix import PrivateFrequencyMatrix
from ..dp.budget import BudgetLedger
from ._grid import sanitize_uniform_grid, sanitized_total
from .base import Sanitizer
from .granularity import clamp_granularity, ebp_granularity


class EBP(Sanitizer):
    """Entropy-based uniform-grid sanitizer.

    Parameters
    ----------
    eps0_fraction:
        Fraction of the budget spent on the total-count estimate.
    """

    name = "ebp"

    def __init__(self, eps0_fraction: float = 0.01):
        if not 0.0 < eps0_fraction < 1.0:
            raise MethodError(
                f"eps0_fraction must be in (0, 1), got {eps0_fraction}"
            )
        self.eps0_fraction = float(eps0_fraction)

    def _sanitize(
        self,
        matrix: FrequencyMatrix,
        ledger: BudgetLedger,
        rng: np.random.Generator,
    ) -> PrivateFrequencyMatrix:
        epsilon = ledger.epsilon_total
        eps0 = epsilon * self.eps0_fraction
        eps_data = epsilon - eps0
        n_hat = sanitized_total(matrix, eps0, ledger, rng)
        m_raw = ebp_granularity(n_hat, eps_data, matrix.ndim)
        m = clamp_granularity(m_raw, max(matrix.shape))
        return sanitize_uniform_grid(
            matrix, m, eps_data, ledger, rng,
            method=self.name,
            metadata={"n_hat": n_hat, "m_raw": m_raw,
                      "eps0": eps0, "eps_data": eps_data},
        )

    def describe(self):
        return {"name": self.name, "eps0_fraction": self.eps0_fraction}
