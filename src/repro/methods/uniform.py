"""UNIFORM (a.k.a. *singular*) baseline: one partition for the whole matrix.

The total count is sanitized once with the full budget and queries are
answered assuming perfectly uniform data (Section 5's "singular" algorithm).
Minimal noise error, maximal uniformity error.
"""

from __future__ import annotations

import numpy as np

from ..core.frequency_matrix import FrequencyMatrix
from ..core.partition import Partitioning
from ..core.private_matrix import PrivateFrequencyMatrix
from ..dp.budget import BudgetLedger
from ..dp.mechanisms import laplace_noise
from .base import Sanitizer


class Uniform(Sanitizer):
    """Single-partition sanitizer (the paper's UNIFORM / singular baseline)."""

    name = "uniform"

    def _sanitize(
        self,
        matrix: FrequencyMatrix,
        ledger: BudgetLedger,
        rng: np.random.Generator,
    ) -> PrivateFrequencyMatrix:
        epsilon = ledger.epsilon_total
        ledger.charge(epsilon, note="total count")
        noisy_total = matrix.total + laplace_noise(1.0, epsilon, rng)
        partitioning = Partitioning.single(matrix.shape, noisy_total, matrix.total)
        return PrivateFrequencyMatrix(
            partitioning,
            matrix.domain,
            epsilon=epsilon,
            method=self.name,
            metadata={"n_partitions": 1},
        )
