"""Data-independent quadtree baseline [Cormode et al. 2012; ref. 4].

Splits every dimension in half at every level regardless of data placement
(the ``2^d``-ary generalization of the 2-D quadtree), down to a fixed
height.  Because the splits ignore the data, the leaf boxes form the
cartesian product of per-dimension binary interval sets, so the method is
equivalent to a (power-of-two) uniform grid and is aggregated as one.
Included as an extension baseline: the paper cites it as the canonical
data-independent spatial decomposition.

Only leaf counts are published (a partition-based output cannot represent
the classical method's internal-node refinement), so the entire budget goes
to the leaves — a strict accuracy improvement for this baseline.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from ..core.exceptions import MethodError
from ..core.frequency_matrix import FrequencyMatrix
from ..core.packed import packed_from_intervals
from ..core.private_matrix import PrivateFrequencyMatrix
from ..dp.budget import BudgetLedger
from ..dp.mechanisms import laplace_noise
from .base import Sanitizer


def binary_intervals(size: int, height: int) -> List[Tuple[int, int]]:
    """Inclusive intervals produced by ``height`` successive mid-splits."""
    intervals = [(0, size - 1)]
    for _ in range(height):
        nxt: List[Tuple[int, int]] = []
        for lo, hi in intervals:
            if hi <= lo:
                nxt.append((lo, hi))
            else:
                mid = (lo + hi) // 2
                nxt.append((lo, mid))
                nxt.append((mid + 1, hi))
        if nxt == intervals:
            break
        intervals = nxt
    return intervals


class Quadtree(Sanitizer):
    """Fixed mid-point splits, full budget on the leaf counts.

    Parameters
    ----------
    height:
        Number of halving levels.  ``None`` (default) picks
        ``ceil(log2(max dimension size))`` capped at ``max_height``.
    max_height:
        Upper bound protecting high-resolution matrices from an
        exponential leaf count (``2^(d * height)`` leaves).
    """

    name = "quadtree"

    def __init__(self, height: int | None = None, max_height: int = 8):
        if height is not None and height < 1:
            raise MethodError(f"height must be >= 1, got {height}")
        if max_height < 1:
            raise MethodError(f"max_height must be >= 1, got {max_height}")
        self.height = height
        self.max_height = int(max_height)

    def _resolve_height(self, shape: Tuple[int, ...]) -> int:
        if self.height is not None:
            return min(self.height, self.max_height)
        return min(self.max_height, max(1, math.ceil(math.log2(max(shape)))))

    def _sanitize(
        self,
        matrix: FrequencyMatrix,
        ledger: BudgetLedger,
        rng: np.random.Generator,
    ) -> PrivateFrequencyMatrix:
        epsilon = ledger.epsilon_total
        height = self._resolve_height(matrix.shape)
        per_dim = [binary_intervals(s, height) for s in matrix.shape]

        # Aggregate counts with one reduceat pass per axis.
        agg = matrix.data
        for axis, intervals in enumerate(per_dim):
            starts = np.array([lo for lo, _ in intervals], dtype=np.int64)
            agg = np.add.reduceat(agg, starts, axis=axis)
        true_counts = np.asarray(agg, dtype=np.float64).ravel()

        ledger.charge(epsilon, scope="leaves", note=f"{true_counts.size} leaves")
        noise = laplace_noise(1.0, epsilon, rng, size=true_counts.shape)

        # Leaf boxes are the cartesian product of the per-dimension binary
        # intervals, in the same C order as the reduceat aggregation above.
        packed = packed_from_intervals(
            per_dim, true_counts + noise, matrix.shape, true_counts=true_counts
        )
        return self.publish_packed(
            packed,
            matrix,
            ledger,
            metadata={"height": height, "n_partitions": packed.n_partitions},
        )

    def describe(self):
        return {"name": self.name, "height": self.height,
                "max_height": self.max_height}
