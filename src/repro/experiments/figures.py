"""One function per paper artifact: Figures 4-8 and Table 3.

Every function builds the figure's datasets, runs the compared methods,
and returns a :class:`FigureResult` whose rows are the series the paper
plots.  Absolute values depend on the synthetic substrate (see DESIGN.md),
but the *shape* — method ordering, epsilon/coverage trends, dimensionality
effects — is what the benchmarks assert and ``EXPERIMENTS.md`` records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..core.frequency_matrix import FrequencyMatrix
from ..datagen.cities import CITY_NAMES, get_city
from ..datagen.gaussian import gaussian_matrix, paper_shape, variance_for_skew
from ..datagen.movement import MovementSimulator
from ..datagen.zipf import zipf_matrix
from ..dp.rng import RNGLike, ensure_rng, spawn
from ..methods.registry import PAPER_METHODS
from ..queries.workload import (
    Workload,
    fixed_coverage_workload,
    random_workload,
)
from ..trajectories.od import ODMatrixBuilder
from .config import (
    ExperimentScale,
    TINY_SCALE,
    default_method_specs,
)
from .reporting import format_table, pivot
from .runner import aggregate_rows, run_methods

#: The paper's privacy budgets (Section 6.1: high / moderate / low privacy).
PAPER_EPSILONS = (0.1, 0.3, 0.5)

#: Methods shown in Figures 6 (with baselines) and 7/8 (without).
FIG6_METHODS = PAPER_METHODS
FIG7_METHODS = ["eug", "ebp", "daf_entropy", "daf_homogeneity"]

#: Gaussian skew levels for Figure 4's x-axis, expressed as the cluster
#: standard deviation relative to the matrix width (scale-free across d).
FIG4_SKEW_FRACTIONS = (0.02, 0.05, 0.1, 0.25, 0.5)

#: Zipf skew parameters for Figure 5's x-axis.
FIG5_ZIPF_A = (1.5, 2.0, 2.5, 3.0)


@dataclass
class FigureResult:
    """Rows + rendering for one reproduced artifact."""

    figure_id: str
    description: str
    rows: List[Dict[str, object]] = field(default_factory=list)

    def filtered(self, **conditions) -> List[Dict[str, object]]:
        out = []
        for row in self.rows:
            if all(row.get(k) == v for k, v in conditions.items()):
                out.append(row)
        return out

    def panel(
        self, index: str, column: str = "method", value: str = "mre",
        **conditions,
    ) -> str:
        rows = self.filtered(**conditions) if conditions else self.rows
        cond = ", ".join(f"{k}={v}" for k, v in conditions.items())
        title = f"[{self.figure_id}] {self.description}"
        if cond:
            title += f" ({cond})"
        return pivot(rows, index, column, value, title=title)

    def to_text(self, columns: Sequence[str] | None = None) -> str:
        if columns is None:
            columns = list(self.rows[0].keys()) if self.rows else []
        return format_table(
            self.rows, list(columns),
            title=f"[{self.figure_id}] {self.description}",
        )


# ----------------------------------------------------------------------
# Figure 4: Gaussian synthetic, d in {2, 4, 6}, eps in {0.1, 0.3, 0.5}
# ----------------------------------------------------------------------
def figure4(
    scale: ExperimentScale = TINY_SCALE,
    dims: Sequence[int] = (2, 4, 6),
    epsilons: Sequence[float] = PAPER_EPSILONS,
    skew_fractions: Sequence[float] = FIG4_SKEW_FRACTIONS,
    methods: Sequence[str] = PAPER_METHODS,
    rng: RNGLike = 2022,
) -> FigureResult:
    """Gaussian synthetic results, random shape-and-size queries.

    One row per (d, epsilon, skew, method); the paper's 3x3 panel grid is
    the (d, epsilon) cross product with skew on the x-axis.
    """
    gen = ensure_rng(rng)
    specs = default_method_specs(list(methods))
    result = FigureResult(
        "figure4", "Gaussian synthetic, random queries (MRE %)"
    )
    for d in dims:
        shape = paper_shape(d, scale.n_points)
        for frac in skew_fractions:
            data_rng, wl_rng, run_rng = spawn(gen, 3)
            variance = variance_for_skew(shape, frac)
            matrix = gaussian_matrix(
                d, variance, scale.n_points, data_rng, shape=shape
            )
            workload = random_workload(shape, scale.n_queries, wl_rng)
            rows = run_methods(
                matrix, specs, list(epsilons), [workload],
                n_trials=scale.n_trials, rng=run_rng, n_jobs=scale.n_jobs,
                n_shards=scale.n_shards,
                engine_config=scale.engine_config,
                extra={"d": d, "skew_fraction": frac, "variance": variance},
            )
            result.rows.extend(
                aggregate_rows(rows, ("method", "epsilon", "d",
                                      "skew_fraction"))
            )
    return result


# ----------------------------------------------------------------------
# Figure 5: Zipf synthetic, d in {2, 4, 6}, eps = 0.1
# ----------------------------------------------------------------------
def figure5(
    scale: ExperimentScale = TINY_SCALE,
    dims: Sequence[int] = (2, 4, 6),
    a_values: Sequence[float] = FIG5_ZIPF_A,
    epsilon: float = 0.1,
    methods: Sequence[str] = PAPER_METHODS,
    rng: RNGLike = 2022,
) -> FigureResult:
    """Zipf synthetic results, random queries, eps = 0.1 (one panel per d,
    skew parameter a on the x-axis)."""
    gen = ensure_rng(rng)
    specs = default_method_specs(list(methods))
    result = FigureResult("figure5", "Zipf synthetic, random queries (MRE %)")
    for d in dims:
        shape = paper_shape(d, scale.n_points)
        for a in a_values:
            data_rng, wl_rng, run_rng = spawn(gen, 3)
            matrix = zipf_matrix(d, a, scale.n_points, data_rng, shape=shape)
            workload = random_workload(shape, scale.n_queries, wl_rng)
            rows = run_methods(
                matrix, specs, [epsilon], [workload],
                n_trials=scale.n_trials, rng=run_rng, n_jobs=scale.n_jobs,
                n_shards=scale.n_shards,
                engine_config=scale.engine_config,
                extra={"d": d, "zipf_a": a},
            )
            result.rows.extend(
                aggregate_rows(rows, ("method", "epsilon", "d", "zipf_a"))
            )
    return result


# ----------------------------------------------------------------------
# Figures 6 and 7: 2-D city population histograms
# ----------------------------------------------------------------------
def _city_matrix(
    city_name: str, scale: ExperimentScale, rng: np.random.Generator
) -> FrequencyMatrix:
    city = get_city(city_name)
    return city.population_matrix(
        n_points=scale.n_points, resolution=scale.city_resolution, rng=rng
    )


def _city_workloads(
    shape: Sequence[int], scale: ExperimentScale, rng: np.random.Generator
) -> List[Workload]:
    wls = [random_workload(shape, scale.n_queries, rng, name="random")]
    for coverage in (0.01, 0.05, 0.10):
        wls.append(
            fixed_coverage_workload(
                shape, coverage, scale.n_queries, rng,
                name=f"{int(coverage * 100)}%",
            )
        )
    return wls


def figure6(
    scale: ExperimentScale = TINY_SCALE,
    cities: Sequence[str] = tuple(CITY_NAMES),
    epsilons: Sequence[float] = PAPER_EPSILONS,
    methods: Sequence[str] = FIG6_METHODS,
    rng: RNGLike = 2022,
) -> FigureResult:
    """2-D population histograms, all methods including baselines.

    One row per (city, workload, epsilon, method); the paper shows a 3x4
    panel grid (city x workload) with epsilon on the x-axis.
    """
    gen = ensure_rng(rng)
    specs = default_method_specs(list(methods))
    result = FigureResult(
        "figure6", "2-D city histograms, all methods (MRE %)"
    )
    for city_name in cities:
        data_rng, wl_rng, run_rng = spawn(gen, 3)
        matrix = _city_matrix(city_name, scale, data_rng)
        workloads = _city_workloads(matrix.shape, scale, wl_rng)
        rows = run_methods(
            matrix, specs, list(epsilons), workloads,
            n_trials=scale.n_trials, rng=run_rng, n_jobs=scale.n_jobs,
            n_shards=scale.n_shards,
            engine_config=scale.engine_config,
            extra={"city": city_name},
        )
        result.rows.extend(
            aggregate_rows(rows, ("method", "epsilon", "workload", "city"))
        )
    return result


def figure7(
    scale: ExperimentScale = TINY_SCALE,
    cities: Sequence[str] = tuple(CITY_NAMES),
    epsilons: Sequence[float] = PAPER_EPSILONS,
    methods: Sequence[str] = tuple(FIG7_METHODS),
    rng: RNGLike = 2022,
) -> FigureResult:
    """Figure 6 without the IDENTITY/MKM baselines (the paper's linear-
    scale close-up of the proposed methods)."""
    result = figure6(scale, cities, epsilons, methods, rng)
    result.figure_id = "figure7"
    result.description = "2-D city histograms, proposed methods only (MRE %)"
    return result


# ----------------------------------------------------------------------
# Figure 8: 4-D origin-destination matrices
# ----------------------------------------------------------------------
def figure8(
    scale: ExperimentScale = TINY_SCALE,
    cities: Sequence[str] = tuple(CITY_NAMES),
    epsilons: Sequence[float] = PAPER_EPSILONS,
    methods: Sequence[str] = tuple(FIG7_METHODS),
    n_stops: int = 0,
    rng: RNGLike = 2022,
) -> FigureResult:
    """OD matrices built from simulated trajectories (4-D when
    ``n_stops = 0``; add stops for 6-D and beyond)."""
    gen = ensure_rng(rng)
    specs = default_method_specs(list(methods))
    ndim = 2 * (n_stops + 2)
    result = FigureResult(
        "figure8", f"{ndim}-D OD matrices from simulated trajectories (MRE %)"
    )
    for city_name in cities:
        data_rng, wl_rng, run_rng = spawn(gen, 3)
        city = get_city(city_name)
        simulator = MovementSimulator(city)
        dataset = simulator.sample(scale.n_trajectories, n_stops, data_rng)
        builder = ODMatrixBuilder(
            city.grid, frames=None, cell_budget=scale.od_cell_budget
        )
        matrix = builder.build(dataset)
        workloads = _city_workloads(matrix.shape, scale, wl_rng)
        rows = run_methods(
            matrix, specs, list(epsilons), workloads,
            n_trials=scale.n_trials, rng=run_rng, n_jobs=scale.n_jobs,
            n_shards=scale.n_shards,
            engine_config=scale.engine_config,
            extra={"city": city_name, "od_shape": "x".join(map(str, matrix.shape))},
        )
        result.rows.extend(
            aggregate_rows(rows, ("method", "epsilon", "workload", "city"))
        )
    return result


# ----------------------------------------------------------------------
# Table 3: runtime
# ----------------------------------------------------------------------
def table3(
    scale: ExperimentScale = TINY_SCALE,
    cities: Sequence[str] = tuple(CITY_NAMES),
    epsilon: float = 0.1,
    methods: Sequence[str] = PAPER_METHODS,
    rng: RNGLike = 2022,
) -> FigureResult:
    """Sanitization wall-clock on the 2-D city histograms, eps = 0.1.

    The paper's headline: DAF methods are orders of magnitude faster than
    the grid methods because they adapt and avoid unnecessary splits.
    """
    gen = ensure_rng(rng)
    specs = default_method_specs(list(methods))
    result = FigureResult(
        "table3", f"Sanitization runtime (seconds), 2-D, eps={epsilon}"
    )
    for city_name in cities:
        data_rng, wl_rng, run_rng = spawn(gen, 3)
        matrix = _city_matrix(city_name, scale, data_rng)
        # A minimal workload: Table 3 measures sanitize time only.
        workload = random_workload(matrix.shape, 1, wl_rng)
        rows = run_methods(
            matrix, specs, [epsilon], [workload],
            n_trials=scale.n_trials, rng=run_rng, n_jobs=scale.n_jobs,
            n_shards=scale.n_shards,
            engine_config=scale.engine_config,
            extra={"city": city_name},
        )
        result.rows.extend(
            aggregate_rows(rows, ("method", "epsilon", "city"))
        )
    return result


#: Registry used by the reproduce-everything example and EXPERIMENTS.md.
ALL_ARTIFACTS = {
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "table3": table3,
}


def run_all(
    scale: ExperimentScale = TINY_SCALE, rng: RNGLike = 2022
) -> Dict[str, FigureResult]:
    """Run every artifact at the given scale (used by
    ``examples/reproduce_paper.py``)."""
    gen = ensure_rng(rng)
    out: Dict[str, FigureResult] = {}
    for name, fn in ALL_ARTIFACTS.items():
        child = spawn(gen, 1)[0]
        out[name] = fn(scale=scale, rng=child)
    return out
