"""The experiment runner: methods x budgets x workloads -> result rows.

One :class:`ResultRow` per (method, epsilon, workload, trial) carrying the
accuracy report and two per-phase wall-clocks: sanitization (Table 3's
metric) and query answering.  Each sanitized matrix is evaluated against
*all* workloads in a single vectorized pass
(:meth:`~repro.queries.WorkloadEvaluator.evaluate_all`), so the query
phase costs one batched engine invocation per trial instead of one Python
loop per (workload, query, partition).  Rows are plain data;
:mod:`repro.experiments.reporting` renders them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from ..core.frequency_matrix import FrequencyMatrix
from ..dp.rng import RNGLike, ensure_rng, spawn
from ..methods.registry import get_sanitizer
from ..queries.evaluator import WorkloadEvaluator
from ..queries.metrics import AccuracyReport
from ..queries.workload import Workload
from .config import MethodSpec


@dataclass(frozen=True)
class ResultRow:
    """One measured data point."""

    method: str
    epsilon: float
    workload: str
    trial: int
    report: AccuracyReport
    sanitize_seconds: float
    n_partitions: int
    extra: Dict[str, object]
    #: Wall-clock of the batched query phase for this trial (all workloads
    #: answered together; the same value is recorded on each of the trial's
    #: rows).
    query_seconds: float = 0.0

    @property
    def mre(self) -> float:
        return self.report.mre

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "method": self.method,
            "epsilon": self.epsilon,
            "workload": self.workload,
            "trial": self.trial,
            "sanitize_seconds": self.sanitize_seconds,
            "query_seconds": self.query_seconds,
            "n_partitions": self.n_partitions,
        }
        out.update(self.report.as_dict())
        out.update(self.extra)
        return out


def run_methods(
    matrix: FrequencyMatrix,
    method_specs: Sequence[MethodSpec],
    epsilons: Sequence[float],
    workloads: Sequence[Workload],
    n_trials: int = 1,
    rng: RNGLike = None,
    extra: Dict[str, object] | None = None,
) -> List[ResultRow]:
    """Evaluate every (method, epsilon) pair on every workload.

    Each trial re-runs sanitization with an independent child generator;
    the ground truth is computed once and cached.  Per trial, all
    workloads are answered in one batched
    :meth:`~repro.queries.WorkloadEvaluator.evaluate_all` call, and the
    sanitize and query phases are timed separately.
    """
    gen = ensure_rng(rng)
    evaluator = WorkloadEvaluator(matrix)
    rows: List[ResultRow] = []
    extra = dict(extra or {})
    for spec in method_specs:
        for epsilon in epsilons:
            for trial, child in enumerate(spawn(gen, n_trials)):
                sanitizer = get_sanitizer(spec.name, **spec.as_kwargs())
                start = time.perf_counter()
                private = sanitizer.sanitize(matrix, epsilon, child)
                sanitize_elapsed = time.perf_counter() - start
                start = time.perf_counter()
                results = evaluator.evaluate_all(private, workloads)
                query_elapsed = time.perf_counter() - start
                for result in results:
                    rows.append(
                        ResultRow(
                            method=spec.label,
                            epsilon=float(epsilon),
                            workload=result.workload,
                            trial=trial,
                            report=result.report,
                            sanitize_seconds=sanitize_elapsed,
                            n_partitions=private.n_partitions,
                            extra=extra,
                            query_seconds=query_elapsed,
                        )
                    )
    return rows


def mean_mre(rows: Iterable[ResultRow]) -> float:
    """Average MRE across rows (e.g. across trials)."""
    values = [r.mre for r in rows]
    if not values:
        raise ValueError("no rows to average")
    return float(np.mean(values))


def aggregate_rows(
    rows: Sequence[ResultRow], keys: Sequence[str] = ("method", "epsilon", "workload")
) -> List[Dict[str, object]]:
    """Group rows by ``keys`` and average MRE and runtime across trials."""
    groups: Dict[tuple, List[ResultRow]] = {}
    for row in rows:
        d = row.as_dict()
        key = tuple(d[k] for k in keys)
        groups.setdefault(key, []).append(row)
    out: List[Dict[str, object]] = []
    for key, members in groups.items():
        entry: Dict[str, object] = dict(zip(keys, key))
        entry["mre"] = float(np.mean([m.mre for m in members]))
        entry["mre_std"] = float(np.std([m.mre for m in members]))
        entry["sanitize_seconds"] = float(
            np.mean([m.sanitize_seconds for m in members])
        )
        entry["query_seconds"] = float(
            np.mean([m.query_seconds for m in members])
        )
        entry["n_partitions"] = float(
            np.mean([m.n_partitions for m in members])
        )
        entry["n_trials"] = len(members)
        if members and members[0].extra:
            for k, v in members[0].extra.items():
                entry.setdefault(k, v)
        out.append(entry)
    return out
