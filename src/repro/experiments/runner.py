"""The experiment runner: methods x budgets x workloads -> result rows.

One :class:`ResultRow` per (method, epsilon, workload, trial) carrying the
accuracy report and two per-phase wall-clocks: sanitization (Table 3's
metric) and query answering.  Each sanitized matrix is evaluated against
*all* workloads in a single vectorized pass
(:meth:`~repro.queries.WorkloadEvaluator.evaluate_all`), so the query
phase costs one batched engine invocation per trial instead of one Python
loop per (workload, query, partition).  Rows are plain data;
:mod:`repro.experiments.reporting` renders them.

Trials are independent tasks executed through an
:class:`~repro.experiments.parallel.Executor` (``n_jobs=1`` runs them
in-process; ``n_jobs>1`` fans them out across worker processes).  Each
trial's generator is keyed by its (method, epsilon, trial) grid
coordinates rather than spawned sequentially, so serial and parallel
runs of the same seed produce bit-identical rows in identical order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Sequence

import numpy as np

from ..core.exceptions import ValidationError
from ..core.frequency_matrix import FrequencyMatrix
from ..dp.rng import RNGLike, derive_entropy, ensure_rng
from ..queries.metrics import AccuracyReport
from ..queries.workload import Workload
from .config import MethodSpec
from .parallel import Executor, TrialTask, get_executor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import EngineConfig


@dataclass(frozen=True)
class ResultRow:
    """One measured data point."""

    method: str
    epsilon: float
    workload: str
    trial: int
    report: AccuracyReport
    sanitize_seconds: float
    n_partitions: int
    extra: Dict[str, object]
    #: Wall-clock of the batched query phase for this trial.  Measured
    #: *once per trial* (all workloads are answered in one engine call)
    #: and recorded verbatim on each of the trial's rows — like
    #: ``sanitize_seconds``, it is a per-trial quantity, not a per-row
    #: one, so summing it over rows multi-counts.  Aggregation
    #: (:func:`aggregate_rows`) averages over distinct trials.
    query_seconds: float = 0.0
    #: Query plan the engine chose for the trial's batched query phase
    #: (``dense`` / ``broadcast`` / ``pruned`` / ``sharded``), so
    #: ``query_seconds`` is attributable to a strategy.  Deterministic
    #: for a given matrix and workload set, hence identical between
    #: serial and parallel runs.
    plan: str = ""

    @property
    def mre(self) -> float:
        return self.report.mre

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "method": self.method,
            "epsilon": self.epsilon,
            "workload": self.workload,
            "trial": self.trial,
            "sanitize_seconds": self.sanitize_seconds,
            "query_seconds": self.query_seconds,
            "plan": self.plan,
            "n_partitions": self.n_partitions,
        }
        out.update(self.report.as_dict())
        out.update(self.extra)
        return out


def build_trial_tasks(
    method_specs: Sequence[MethodSpec],
    epsilons: Sequence[float],
    n_trials: int,
    entropy: int,
) -> List[TrialTask]:
    """The experiment grid as an ordered task list.

    Tasks are enumerated method-major, then epsilon, then trial — the
    same nesting the serial loop always used — and each carries its grid
    coordinates as the RNG spawn key, so its random stream is fixed by
    position, not by execution order.
    """
    if n_trials < 0:
        raise ValueError(f"cannot run {n_trials} trials")
    return [
        TrialTask(
            spec=spec,
            epsilon=float(epsilon),
            trial=trial,
            entropy=entropy,
            spawn_key=(spec_index, eps_index, trial),
        )
        for spec_index, spec in enumerate(method_specs)
        for eps_index, epsilon in enumerate(epsilons)
        for trial in range(n_trials)
    ]


def run_methods(
    matrix: FrequencyMatrix,
    method_specs: Sequence[MethodSpec],
    epsilons: Sequence[float],
    workloads: Sequence[Workload],
    n_trials: int = 1,
    rng: RNGLike = None,
    extra: Dict[str, object] | None = None,
    n_jobs: int = 1,
    executor: Executor | None = None,
    n_shards: int | None = None,
    engine_config: "EngineConfig | None" = None,
) -> List[ResultRow]:
    """Evaluate every (method, epsilon) pair on every workload.

    Each trial re-runs sanitization with an independent child generator
    keyed by its (method, epsilon, trial) grid position; the ground truth
    is computed once per evaluator and cached.  Per trial, all workloads
    are answered in one batched
    :meth:`~repro.queries.WorkloadEvaluator.evaluate_all` call, and the
    sanitize and query phases are timed separately.

    ``n_jobs`` selects the execution backend (1 = serial in-process,
    ``k > 1`` = a pool of ``k`` worker processes, -1 = all cores); an
    explicit ``executor`` overrides it.  ``engine_config`` is the
    :class:`~repro.engine.EngineConfig` every trial's query phase runs
    under (it must pickle for pooled backends, so its
    ``shard_executor`` must stay ``None`` there); ``n_shards`` is the
    legacy sugar for a sharded config — it forces each trial's query
    phase through the sharded engine with that many partition-axis
    shards (dense-backed methods keep their dense route); shards run
    serially inside each trial, so either knob composes with ``n_jobs``
    without nesting pools.  Passing both is ambiguous and rejected.
    For the same ``rng`` seed every backend returns bit-identical rows
    in identical order — only the timing fields vary.  Sharded answers
    match the single-node engine within float reassociation (1e-9,
    pinned by the plan-equivalence suite), and the rows' ``plan``
    column records ``"sharded"``.
    """
    if engine_config is not None and n_shards is not None:
        raise ValidationError(
            "pass either engine_config or the legacy n_shards knob, not both"
        )
    entropy = derive_entropy(ensure_rng(rng))
    tasks = build_trial_tasks(method_specs, epsilons, n_trials, entropy)
    if executor is None:
        executor = get_executor(n_jobs)
    if n_shards is None and engine_config is None:
        # The pre-sharding call shape, so Executor implementations
        # written against it keep working when sharding is off.
        row_lists = executor.run_trials(
            matrix, list(workloads), tasks, dict(extra or {})
        )
    elif engine_config is not None:
        row_lists = executor.run_trials(
            matrix, list(workloads), tasks, dict(extra or {}),
            engine_config=engine_config,
        )
    else:
        row_lists = executor.run_trials(
            matrix, list(workloads), tasks, dict(extra or {}),
            n_shards=n_shards,
        )
    return [row for rows in row_lists for row in rows]


def mean_mre(rows: Iterable[ResultRow]) -> float:
    """Average MRE across rows (e.g. across trials)."""
    values = [r.mre for r in rows]
    if not values:
        raise ValueError("no rows to average")
    return float(np.mean(values))


def aggregate_rows(
    rows: Sequence[ResultRow], keys: Sequence[str] = ("method", "epsilon", "workload")
) -> List[Dict[str, object]]:
    """Group rows by ``keys`` and average MRE and runtime across trials.

    MRE and partition counts are averaged over the member rows.  The
    timing fields are *per-trial* quantities duplicated onto every row of
    a trial (see :attr:`ResultRow.query_seconds`), so they are averaged
    over the distinct trials in the group — a group spanning several
    workloads, or with uneven rows per trial, does not multi-count or
    re-weight a trial's one measurement.
    """
    groups: Dict[tuple, List[ResultRow]] = {}
    for row in rows:
        d = row.as_dict()
        key = tuple(d[k] for k in keys)
        groups.setdefault(key, []).append(row)
    out: List[Dict[str, object]] = []
    for key, members in groups.items():
        entry: Dict[str, object] = dict(zip(keys, key))
        entry["mre"] = float(np.mean([m.mre for m in members]))
        entry["mre_std"] = float(np.std([m.mre for m in members]))
        # extra is part of the identity: merged row sets (e.g. several
        # cities) reuse trial indices, and their measurements must all
        # survive the dedup.
        trial_times: Dict[tuple, tuple] = {
            (m.method, m.epsilon, m.trial, repr(sorted(m.extra.items()))):
                (m.sanitize_seconds, m.query_seconds)
            for m in members
        }
        entry["sanitize_seconds"] = float(
            np.mean([t[0] for t in trial_times.values()])
        )
        entry["query_seconds"] = float(
            np.mean([t[1] for t in trial_times.values()])
        )
        # Every row carries a concrete plan now — the engine stamps one
        # on each batch (sharded batches additionally expose per-shard
        # plans on the evaluation result), so mixed groups are a plain
        # sorted dedup join.  A blank plan can only come from rows built
        # outside the engine (hand-constructed, pre-engine archives);
        # surface those honestly as "unknown" rather than dropping them
        # or emitting a leading separator.
        entry["plan"] = "+".join(sorted({m.plan or "unknown" for m in members}))
        entry["n_partitions"] = float(
            np.mean([m.n_partitions for m in members])
        )
        entry["n_trials"] = len(members)
        if members and members[0].extra:
            for k, v in members[0].extra.items():
                entry.setdefault(k, v)
        out.append(entry)
    return out
