"""Saving and loading experiment results.

Figure regeneration at paper scale is expensive; these helpers persist
result rows as JSON (lossless) or CSV (spreadsheet-friendly) so runs can
be captured once and re-rendered or diffed later.  ``EXPERIMENTS.md`` is
generated from saved runs via :func:`results_to_markdown`.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Mapping, Sequence

from ..core.exceptions import ValidationError
from .figures import FigureResult


def save_result_json(result: FigureResult, path: str | Path) -> None:
    """Serialize a :class:`FigureResult` to JSON."""
    payload = {
        "figure_id": result.figure_id,
        "description": result.description,
        "rows": result.rows,
    }
    Path(path).write_text(json.dumps(payload, indent=1, default=str))


def load_result_json(path: str | Path) -> FigureResult:
    """Inverse of :func:`save_result_json`."""
    try:
        payload = json.loads(Path(path).read_text())
        return FigureResult(
            figure_id=str(payload["figure_id"]),
            description=str(payload["description"]),
            rows=list(payload["rows"]),
        )
    except (KeyError, TypeError, ValueError, OSError) as exc:
        raise ValidationError(f"cannot load result from {path}: {exc}") from exc


def save_rows_csv(
    rows: Sequence[Mapping[str, object]], path: str | Path
) -> None:
    """Write result rows as CSV (columns = union of row keys)."""
    if not rows:
        raise ValidationError("no rows to save")
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow({k: row.get(k, "") for k in columns})


def load_rows_csv(path: str | Path) -> List[Dict[str, object]]:
    """Read rows back, converting numeric-looking fields to float."""
    out: List[Dict[str, object]] = []
    try:
        with open(path, newline="") as fh:
            for raw in csv.DictReader(fh):
                row: Dict[str, object] = {}
                for key, value in raw.items():
                    try:
                        row[key] = float(value)
                    except (TypeError, ValueError):
                        row[key] = value
                out.append(row)
    except OSError as exc:
        raise ValidationError(f"cannot load rows from {path}: {exc}") from exc
    return out


def results_to_markdown(
    results: Mapping[str, FigureResult],
    value: str = "mre",
    floatfmt: str = "{:.2f}",
) -> str:
    """Render a set of figure results as Markdown tables (one section per
    artifact) — the format EXPERIMENTS.md uses."""
    sections: List[str] = []
    for name, result in results.items():
        sections.append(f"### {name}\n\n{result.description}\n")
        if not result.rows:
            sections.append("(no rows)\n")
            continue
        columns = [c for c in result.rows[0] if c not in ("mre_std", "n_trials")]
        header = "| " + " | ".join(columns) + " |"
        sep = "|" + "|".join("---" for _ in columns) + "|"
        lines = [header, sep]
        for row in result.rows:
            cells = []
            for col in columns:
                v = row.get(col, "")
                cells.append(floatfmt.format(v) if isinstance(v, float) else str(v))
            lines.append("| " + " | ".join(cells) + " |")
        sections.append("\n".join(lines) + "\n")
    return "\n".join(sections)
