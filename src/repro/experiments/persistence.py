"""Saving and loading experiment results.

Figure regeneration at paper scale is expensive; these helpers persist
result rows as JSON (lossless) or CSV (spreadsheet-friendly) so runs can
be captured once and re-rendered or diffed later.  ``EXPERIMENTS.md`` is
generated from saved runs via :func:`results_to_markdown`.

Runs produced in pieces — parallel shards, per-city checkpoints, resumed
grids — are combined with :func:`merge_rows`, which imposes a canonical
(method, epsilon, workload, trial) ordering so the merged file is
byte-identical no matter how the pieces were scheduled or concatenated.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from ..core.exceptions import ValidationError
from .figures import FigureResult

#: Canonical ordering for merged result rows.
ROW_ORDER_KEYS: Tuple[str, ...] = ("method", "epsilon", "workload", "trial")


def row_sort_key(
    row: Mapping[str, object], keys: Sequence[str] = ROW_ORDER_KEYS
) -> tuple:
    """A total-order sort key over possibly heterogeneous row values.

    Missing fields sort first; numbers sort together (as floats) before
    everything else (as strings), so rows from different sources never
    raise on comparison.
    """
    out = []
    for key in keys:
        value = row.get(key)
        if value is None:
            out.append((0, ""))
        elif isinstance(value, bool):
            out.append((2, str(value)))
        elif isinstance(value, (int, float)):
            out.append((1, float(value)))
        else:
            out.append((2, str(value)))
    return tuple(out)


def merge_rows(
    row_lists: Iterable[Sequence[Mapping[str, object]]],
    keys: Sequence[str] = ROW_ORDER_KEYS,
) -> List[Mapping[str, object]]:
    """Merge result-row shards into one deterministically ordered list.

    For rows that are distinct on ``keys`` — the normal case, since
    (method, epsilon, workload, trial) identifies a result — the output
    order depends only on row content, not on which shard finished
    first.  The sort is stable, so any rows that *tie* on every key keep
    their concatenation order; shards whose rows collide on ``keys``
    (e.g. re-runs of the same grid cell) should extend ``keys`` with a
    disambiguating field.
    """
    merged = [row for rows in row_lists for row in rows]
    merged.sort(key=lambda r: row_sort_key(r, keys))
    return merged


def save_result_json(result: FigureResult, path: str | Path) -> None:
    """Serialize a :class:`FigureResult` to JSON."""
    payload = {
        "figure_id": result.figure_id,
        "description": result.description,
        "rows": result.rows,
    }
    Path(path).write_text(json.dumps(payload, indent=1, default=str))


def load_result_json(path: str | Path) -> FigureResult:
    """Inverse of :func:`save_result_json`."""
    try:
        payload = json.loads(Path(path).read_text())
        return FigureResult(
            figure_id=str(payload["figure_id"]),
            description=str(payload["description"]),
            rows=list(payload["rows"]),
        )
    except (KeyError, TypeError, ValueError, OSError) as exc:
        raise ValidationError(f"cannot load result from {path}: {exc}") from exc


def save_rows_csv(
    rows: Sequence[Mapping[str, object]], path: str | Path
) -> None:
    """Write result rows as CSV (columns = union of row keys)."""
    if not rows:
        raise ValidationError("no rows to save")
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow({k: row.get(k, "") for k in columns})


def load_rows_csv(path: str | Path) -> List[Dict[str, object]]:
    """Read rows back, converting numeric-looking fields to float."""
    out: List[Dict[str, object]] = []
    try:
        with open(path, newline="") as fh:
            for raw in csv.DictReader(fh):
                row: Dict[str, object] = {}
                for key, value in raw.items():
                    try:
                        row[key] = float(value)
                    except (TypeError, ValueError):
                        row[key] = value
                out.append(row)
    except OSError as exc:
        raise ValidationError(f"cannot load rows from {path}: {exc}") from exc
    return out


def results_to_markdown(
    results: Mapping[str, FigureResult],
    value: str = "mre",
    floatfmt: str = "{:.2f}",
) -> str:
    """Render a set of figure results as Markdown tables (one section per
    artifact) — the format EXPERIMENTS.md uses."""
    sections: List[str] = []
    for name, result in results.items():
        sections.append(f"### {name}\n\n{result.description}\n")
        if not result.rows:
            sections.append("(no rows)\n")
            continue
        columns = [c for c in result.rows[0] if c not in ("mre_std", "n_trials")]
        header = "| " + " | ".join(columns) + " |"
        sep = "|" + "|".join("---" for _ in columns) + "|"
        lines = [header, sep]
        for row in result.rows:
            cells = []
            for col in columns:
                v = row.get(col, "")
                cells.append(floatfmt.format(v) if isinstance(v, float) else str(v))
            lines.append("| " + " | ".join(cells) + " |")
        sections.append("\n".join(lines) + "\n")
    return "\n".join(sections)
