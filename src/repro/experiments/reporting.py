"""Plain-text rendering of experiment results.

No plotting dependencies are available offline, so every figure is
reported as the table of series it plots: one row per x-axis value, one
column per method — exactly the information content of the paper's
figures.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str],
    *,
    floatfmt: str = "{:.3f}",
    title: str | None = None,
) -> str:
    """Fixed-width ASCII table of the given columns."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    rendered: List[List[str]] = []
    for row in rows:
        line = []
        for col in columns:
            value = row.get(col, "")
            if isinstance(value, float):
                line.append(floatfmt.format(value))
            else:
                line.append(str(value))
        rendered.append(line)
    widths = [
        max(len(col), *(len(line[i]) for line in rendered))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(cell.ljust(w) for cell, w in zip(line, widths))
        for line in rendered
    )
    parts = []
    if title:
        parts.append(title)
    parts.extend([header, sep, body])
    return "\n".join(parts)


def pivot(
    rows: Sequence[Mapping[str, object]],
    index: str,
    column: str,
    value: str = "mre",
    floatfmt: str = "{:.2f}",
    title: str | None = None,
) -> str:
    """Render rows as a 2-D pivot: one line per ``index`` value, one column
    per ``column`` value — the shape of one figure panel."""
    index_values: List[object] = []
    column_values: List[object] = []
    cells: Dict[tuple, object] = {}
    for row in rows:
        iv, cv = row[index], row[column]
        if iv not in index_values:
            index_values.append(iv)
        if cv not in column_values:
            column_values.append(cv)
        cells[(iv, cv)] = row.get(value, "")
    table_rows = []
    for iv in index_values:
        entry: Dict[str, object] = {index: iv}
        for cv in column_values:
            entry[str(cv)] = cells.get((iv, cv), "")
        table_rows.append(entry)
    columns = [index] + [str(c) for c in column_values]
    return format_table(table_rows, columns, floatfmt=floatfmt, title=title)


def summarize_winner(
    rows: Sequence[Mapping[str, object]],
    group_keys: Sequence[str],
    method_key: str = "method",
    value_key: str = "mre",
) -> List[Dict[str, object]]:
    """Per group, which method achieved the lowest value (the "who wins"
    shape check the reproduction asserts)."""
    groups: Dict[tuple, List[Mapping[str, object]]] = {}
    for row in rows:
        key = tuple(row[k] for k in group_keys)
        groups.setdefault(key, []).append(row)
    out: List[Dict[str, object]] = []
    for key, members in groups.items():
        best = min(members, key=lambda r: float(r[value_key]))
        entry = dict(zip(group_keys, key))
        entry["winner"] = best[method_key]
        entry[value_key] = best[value_key]
        out.append(entry)
    return out
