"""Process-parallel trial execution for :func:`~repro.experiments.runner.run_methods`.

The experiment grid (methods x epsilons x trials) is embarrassingly
parallel across trials: each trial sanitizes independently and, since the
query phase is one batched engine call, holds no shared mutable state.
This module extracts the per-trial work into a pure, picklable task
(:func:`_run_trial` over a :class:`TrialTask`) and provides two
:class:`Executor` backends to map tasks to rows:

* :class:`SerialExecutor` — an in-process loop sharing one
  ground-truth-cached :class:`~repro.queries.WorkloadEvaluator`;
* :class:`ProcessPoolTrialExecutor` — a
  :class:`concurrent.futures.ProcessPoolExecutor` fan-out whose workers
  each build the evaluator once (pool initializer), so the matrix and
  workloads are pickled once per worker rather than once per trial.

**Equivalence guarantee.**  Each trial's generator is rebuilt from the
run's root entropy and the trial's grid coordinates via
:func:`~repro.dp.rng.spawn_key_rng` — a pure function of
``(entropy, (method_index, epsilon_index, trial))`` — so the noise a
trial sees does not depend on scheduling, worker assignment, or which
trials ran before it.  Both backends return rows in task-submission
order (``Executor.map`` preserves order), making ``n_jobs > 1`` output
row-for-row identical to serial; ``tests/experiments/test_parallel.py``
enforces this across grid, AG, quadtree, kd-tree, and DAF sanitizers.
"""

from __future__ import annotations

import abc
import multiprocessing
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, TYPE_CHECKING

from ..core.exceptions import ValidationError
from ..core.frequency_matrix import FrequencyMatrix
from ..dp.rng import spawn_key_rng
from ..methods.registry import get_sanitizer
from ..queries.evaluator import WorkloadEvaluator
from ..queries.workload import Workload
from .config import MethodSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from ..engine import EngineConfig
    from .runner import ResultRow


@dataclass(frozen=True)
class TrialTask:
    """One (method, epsilon, trial) cell of the experiment grid.

    ``spawn_key`` is the cell's coordinates ``(method_index,
    epsilon_index, trial)``; together with the run-wide root ``entropy``
    it fully determines the trial's random stream, independent of
    execution order (see :func:`~repro.dp.rng.spawn_key_rng`).
    """

    spec: MethodSpec
    epsilon: float
    trial: int
    entropy: int
    spawn_key: Tuple[int, int, int]


def _run_trial(
    matrix: FrequencyMatrix,
    workloads: Sequence[Workload],
    task: TrialTask,
    extra: Dict[str, object] | None = None,
    evaluator: WorkloadEvaluator | None = None,
    n_shards: int | None = None,
    engine_config: "EngineConfig | None" = None,
) -> List["ResultRow"]:
    """Run one trial: sanitize, answer all workloads, build result rows.

    Pure with respect to process state: everything the trial needs
    arrives through the arguments, and the random stream is rebuilt from
    ``task.entropy`` and ``task.spawn_key`` alone.  ``evaluator`` is an
    optional ground-truth cache; omitting it only costs recomputation.
    ``engine_config`` is the :class:`~repro.engine.EngineConfig` the
    trial's query phase runs under; ``n_shards`` is legacy sugar for a
    sharded config (shards run serially inside the trial — the process
    pool, if any, is already spent on trial-level parallelism).
    """
    from .runner import ResultRow

    rng = spawn_key_rng(task.entropy, task.spawn_key)
    sanitizer = get_sanitizer(task.spec.name, **task.spec.as_kwargs())
    start = time.perf_counter()
    private = sanitizer.sanitize(matrix, task.epsilon, rng)
    sanitize_elapsed = time.perf_counter() - start
    if evaluator is None:
        evaluator = WorkloadEvaluator(
            matrix, n_shards=n_shards, engine_config=engine_config
        )
    start = time.perf_counter()
    results = evaluator.evaluate_all(private, list(workloads))
    query_elapsed = time.perf_counter() - start
    return [
        ResultRow(
            method=task.spec.label,
            epsilon=task.epsilon,
            workload=result.workload,
            trial=task.trial,
            report=result.report,
            sanitize_seconds=sanitize_elapsed,
            n_partitions=private.n_partitions,
            extra=dict(extra or {}),
            query_seconds=query_elapsed,
            plan=result.plan,
        )
        for result in results
    ]


def resolve_n_jobs(n_jobs: int) -> int:
    """Normalize an ``n_jobs`` request: ``-1`` means all cores."""
    n_jobs = int(n_jobs)
    if n_jobs == -1:
        return max(1, os.cpu_count() or 1)
    if n_jobs < 1:
        raise ValidationError(f"n_jobs must be >= 1 or -1, got {n_jobs}")
    return n_jobs


class Executor(abc.ABC):
    """Maps :class:`TrialTask`s to their result rows, preserving order.

    Executors double as generic ordered-``map`` providers: anything that
    needs to fan independent work items out (the sharded query engine's
    per-shard partials, most prominently) can hand a picklable function
    and an item list to :meth:`map` and get results back in item order,
    serially or across the backend's process pool.
    """

    @abc.abstractmethod
    def run_trials(
        self,
        matrix: FrequencyMatrix,
        workloads: Sequence[Workload],
        tasks: Sequence[TrialTask],
        extra: Dict[str, object] | None = None,
        n_shards: int | None = None,
        engine_config: "EngineConfig | None" = None,
    ) -> List[List["ResultRow"]]:
        """One row list per task, in task order.

        ``engine_config`` (a picklable
        :class:`~repro.engine.EngineConfig`; its ``shard_executor``
        must be ``None`` for pooled backends) configures every trial's
        query phase; ``n_shards`` is the legacy sharded shorthand.
        """

    def map(self, fn, items: Sequence) -> List:
        """Ordered map over independent items (serial by default)."""
        return [fn(item) for item in items]


class SerialExecutor(Executor):
    """In-process execution; ground truth is computed once and shared."""

    def run_trials(self, matrix, workloads, tasks, extra=None, n_shards=None,
                   engine_config=None):
        evaluator = WorkloadEvaluator(
            matrix, n_shards=n_shards, engine_config=engine_config
        )
        return [
            _run_trial(matrix, workloads, task, extra, evaluator=evaluator)
            for task in tasks
        ]


# Per-worker-process cache, so the matrix/workloads reach each worker
# once rather than once per task.  Populated either in the parent just
# before forking (workers inherit it copy-on-write, no pickling at all)
# or by the pool initializer on platforms without fork.
_WORKER_STATE: Dict[str, object] = {}


def _init_worker(
    matrix: FrequencyMatrix,
    workloads: Sequence[Workload],
    extra: Dict[str, object] | None,
    n_shards: int | None = None,
    engine_config: "EngineConfig | None" = None,
) -> None:
    evaluator = WorkloadEvaluator(
        matrix, n_shards=n_shards, engine_config=engine_config
    )
    for workload in workloads:
        evaluator.true_answers(workload)  # warm the cache before any trial
    _WORKER_STATE["matrix"] = matrix
    _WORKER_STATE["workloads"] = list(workloads)
    _WORKER_STATE["extra"] = extra
    _WORKER_STATE["evaluator"] = evaluator


def _run_trial_in_worker(task: TrialTask) -> List["ResultRow"]:
    return _run_trial(
        _WORKER_STATE["matrix"],
        _WORKER_STATE["workloads"],
        task,
        _WORKER_STATE["extra"],
        evaluator=_WORKER_STATE["evaluator"],
    )


class ProcessPoolTrialExecutor(Executor):
    """Fan trials out across worker processes.

    ``Executor.map`` returns results in submission order regardless of
    completion order, so row ordering matches :class:`SerialExecutor`.
    """

    def __init__(self, n_jobs: int):
        self.n_jobs = resolve_n_jobs(n_jobs)

    @staticmethod
    def _fork_context():
        # Fork is only safe where no BLAS/runtime threads predate it:
        # macOS forking after Accelerate/ObjC initialization can deadlock
        # (the reason CPython's default start method there is spawn).
        if sys.platform == "linux":
            try:
                return multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - fork unavailable
                return None
        return None

    def run_trials(self, matrix, workloads, tasks, extra=None, n_shards=None,
                   engine_config=None):
        tasks = list(tasks)
        if not tasks:
            return []
        workers = min(self.n_jobs, len(tasks))
        if workers <= 1:
            return SerialExecutor().run_trials(
                matrix, workloads, tasks, extra, n_shards, engine_config
            )
        ctx = self._fork_context()
        if ctx is not None:
            # Fork path: stage the state in the parent so workers inherit
            # the matrix, workloads, and warmed ground-truth cache
            # copy-on-write — nothing heavyweight crosses a pipe.
            _init_worker(matrix, list(workloads), extra, n_shards,
                         engine_config)
            try:
                with ProcessPoolExecutor(
                    max_workers=workers, mp_context=ctx
                ) as pool:
                    return list(pool.map(_run_trial_in_worker, tasks))
            finally:
                _WORKER_STATE.clear()
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(matrix, list(workloads), extra, n_shards,
                      engine_config),
        ) as pool:
            return list(pool.map(_run_trial_in_worker, tasks))

    def map(self, fn, items):
        """Ordered map across the worker pool (used for shard fan-out).

        ``fn`` and every item must be picklable (module-level function,
        array-backed shards).  Falls back to a serial loop when one
        worker would do all the work anyway.
        """
        items = list(items)
        if not items:
            return []
        workers = min(self.n_jobs, len(items))
        if workers <= 1:
            return [fn(item) for item in items]
        ctx = self._fork_context()
        kwargs = {"max_workers": workers}
        if ctx is not None:
            kwargs["mp_context"] = ctx
        with ProcessPoolExecutor(**kwargs) as pool:
            return list(pool.map(fn, items))


def get_executor(n_jobs: int = 1) -> Executor:
    """Executor for an ``n_jobs`` request (1 = serial, -1 = all cores)."""
    resolved = resolve_n_jobs(n_jobs)
    if resolved == 1:
        return SerialExecutor()
    return ProcessPoolTrialExecutor(resolved)
