"""Experiment configuration: scales and method sets.

The paper's full scale (10^6 points, 1000x1000 city grids, 1000 queries per
data point) takes minutes per figure panel; the figure functions therefore
accept an :class:`ExperimentScale` so CI runs a faithful-but-smaller
version of every experiment while ``PAPER_SCALE`` reproduces the published
setting.  Scaling down shrinks counts and grids proportionally — the
*relative* comparison between methods, which is what the figures show, is
preserved (the benchmarks assert the orderings, not absolute numbers).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Tuple

from ..core.exceptions import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import EngineConfig


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that trade fidelity for runtime.

    Attributes
    ----------
    n_points:
        Population size for synthetic matrices and city histograms
        (paper: 10^6).
    n_trajectories:
        Trajectories per city for OD experiments (paper: 3 * 10^5).
    city_resolution:
        Per-axis cells of the 2-D city grid (paper: 1000).
    od_cell_budget:
        Dense-cell ceiling for OD matrices, which fixes the per-endpoint
        resolution (paper's 4-D experiments imply ~ N^(1/4)).
    n_queries:
        Queries per workload (paper: 1000).
    n_trials:
        Sanitization repetitions averaged per data point.
    n_jobs:
        Trial parallelism for :func:`~repro.experiments.runner.run_methods`
        (1 = serial, ``k > 1`` = that many worker processes, -1 = all
        cores).  Results are bit-identical across settings; serial is
        usually faster for tiny grids where process startup dominates.
    n_shards:
        When set, each trial's query phase runs through the sharded
        engine with this many partition-axis shards (``None`` lets the
        planner route normally).  Answers match the single-node engine
        within 1e-9; rows record ``plan="sharded"``.  Mostly a scale-out
        and CI-forcing knob — on one node sharding pays off only when
        shard skipping bites.
    engine_config:
        Full :class:`~repro.engine.EngineConfig` for every trial's
        query phase (the CLI ``--engine-config`` flag lands here).
        Mutually exclusive with ``n_shards``, which is sugar for the
        sharded special case; the config must pickle for ``n_jobs > 1``
        (so keep its ``shard_executor`` ``None``).
    """

    name: str
    n_points: int
    n_trajectories: int
    city_resolution: int
    od_cell_budget: int
    n_queries: int
    n_trials: int = 1
    n_jobs: int = 1
    n_shards: int | None = None
    engine_config: "EngineConfig | None" = None

    def __post_init__(self) -> None:
        for attr in ("n_points", "n_trajectories", "city_resolution",
                     "od_cell_budget", "n_queries", "n_trials"):
            if getattr(self, attr) < 1:
                raise ValidationError(f"{attr} must be >= 1")
        if self.n_jobs < 1 and self.n_jobs != -1:
            raise ValidationError(
                f"n_jobs must be >= 1 or -1 (all cores), got {self.n_jobs}"
            )
        if self.n_shards is not None and self.n_shards < 1:
            raise ValidationError(
                f"n_shards must be >= 1 or None, got {self.n_shards}"
            )
        if self.engine_config is not None and self.n_shards is not None:
            raise ValidationError(
                "set either engine_config or the legacy n_shards knob, "
                "not both"
            )

    def with_overrides(self, **kwargs) -> "ExperimentScale":
        return replace(self, **kwargs)


#: Full fidelity — the paper's published parameters.
PAPER_SCALE = ExperimentScale(
    name="paper",
    n_points=1_000_000,
    n_trajectories=300_000,
    city_resolution=1000,
    od_cell_budget=2_000_000,
    n_queries=1000,
    n_trials=1,
)

#: Reduced fidelity for local iteration (~seconds per panel).
SMALL_SCALE = ExperimentScale(
    name="small",
    n_points=120_000,
    n_trajectories=40_000,
    city_resolution=256,
    od_cell_budget=250_000,
    n_queries=300,
    n_trials=1,
)

#: Minimal fidelity for CI and unit tests.
TINY_SCALE = ExperimentScale(
    name="tiny",
    n_points=20_000,
    n_trajectories=6_000,
    city_resolution=64,
    od_cell_budget=40_000,
    n_queries=80,
    n_trials=1,
)

_SCALES: Dict[str, ExperimentScale] = {
    s.name: s for s in (PAPER_SCALE, SMALL_SCALE, TINY_SCALE)
}


def get_scale(name: str) -> ExperimentScale:
    """Scale preset by name (``paper``, ``small``, ``tiny``)."""
    key = str(name).lower()
    if key not in _SCALES:
        raise ValidationError(
            f"unknown scale {name!r}; available: {sorted(_SCALES)}"
        )
    return _SCALES[key]


@dataclass(frozen=True)
class MethodSpec:
    """A method name plus constructor keyword arguments."""

    name: str
    kwargs: Tuple[Tuple[str, object], ...] = field(default_factory=tuple)

    @classmethod
    def of(cls, name: str, **kwargs) -> "MethodSpec":
        return cls(name, tuple(sorted(kwargs.items())))

    def as_kwargs(self) -> Dict[str, object]:
        return dict(self.kwargs)

    @property
    def label(self) -> str:
        if not self.kwargs:
            return self.name
        params = ",".join(f"{k}={v}" for k, v in self.kwargs)
        return f"{self.name}({params})"


def default_method_specs(names: List[str]) -> List[MethodSpec]:
    """Plain (no-kwargs) specs for a list of registry names."""
    return [MethodSpec.of(n) for n in names]
