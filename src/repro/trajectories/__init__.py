"""Trajectory and origin-destination matrix substrate (paper Section 2.3)."""

from .grid import SpatialGrid
from .od import (
    DEFAULT_CELL_BUDGET,
    ODMatrixBuilder,
    auto_resolution,
    classical_od_matrix,
    frame_names,
    od_matrix_with_stops,
)
from .queries import (
    Region,
    circle_region,
    exposure_count,
    flow_between,
    flow_via,
    visits_through,
)
from .semantic import (
    DEFAULT_CATEGORIES,
    SemanticMap,
    semantic_sequence_count,
    semantic_transition_matrix,
)
from .trajectory import Trajectory, TrajectoryDataset

__all__ = [
    "DEFAULT_CATEGORIES",
    "DEFAULT_CELL_BUDGET",
    "ODMatrixBuilder",
    "SemanticMap",
    "Region",
    "SpatialGrid",
    "Trajectory",
    "TrajectoryDataset",
    "auto_resolution",
    "circle_region",
    "classical_od_matrix",
    "exposure_count",
    "flow_between",
    "flow_via",
    "frame_names",
    "od_matrix_with_stops",
    "semantic_sequence_count",
    "semantic_transition_matrix",
    "visits_through",
]
