"""Spatial discretization grids for city maps.

The paper models each city as a ``1000 x 1000`` frequency matrix covering a
``70 x 70 km^2`` region (Section 6.1).  :class:`SpatialGrid` captures that
mapping: a square (or rectangular) continuous region divided into a regular
cell grid, convertible to the :class:`~repro.core.Domain` machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..core.domain import DimensionSpec, Domain
from ..core.exceptions import ValidationError


@dataclass(frozen=True)
class SpatialGrid:
    """A rectangular region discretized into ``nx x ny`` cells.

    Parameters
    ----------
    nx, ny:
        Cell counts along x and y.
    x_min, x_max, y_min, y_max:
        Continuous extent (kilometres, degrees — any consistent unit).
    """

    nx: int
    ny: int
    x_min: float = 0.0
    x_max: float = 1.0
    y_min: float = 0.0
    y_max: float = 1.0

    def __post_init__(self) -> None:
        if self.nx < 1 or self.ny < 1:
            raise ValidationError("grid must have at least one cell per axis")
        if self.x_max <= self.x_min or self.y_max <= self.y_min:
            raise ValidationError("grid extent must be non-empty")

    # ------------------------------------------------------------------
    @classmethod
    def city(cls, resolution: int = 1000, side_km: float = 70.0) -> "SpatialGrid":
        """The paper's city model: ``resolution^2`` cells over a
        ``side_km``-by-``side_km`` square."""
        return cls(resolution, resolution, 0.0, side_km, 0.0, side_km)

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return (self.nx, self.ny)

    @property
    def cell_width(self) -> float:
        return (self.x_max - self.x_min) / self.nx

    @property
    def cell_height(self) -> float:
        return (self.y_max - self.y_min) / self.ny

    def x_spec(self, name: str = "x") -> DimensionSpec:
        return DimensionSpec(self.nx, self.x_min, self.x_max, name)

    def y_spec(self, name: str = "y") -> DimensionSpec:
        return DimensionSpec(self.ny, self.y_min, self.y_max, name)

    def domain(self, prefix: str = "") -> Domain:
        """A 2-D :class:`Domain` for this grid (for population histograms)."""
        return Domain((self.x_spec(prefix + "x"), self.y_spec(prefix + "y")))

    def coarsen(self, nx: int, ny: int) -> "SpatialGrid":
        """A coarser grid over the same extent."""
        if nx > self.nx or ny > self.ny:
            raise ValidationError(
                f"cannot coarsen {self.shape} to finer {(nx, ny)}"
            )
        return SpatialGrid(nx, ny, self.x_min, self.x_max, self.y_min, self.y_max)

    # ------------------------------------------------------------------
    def to_cells(self, points: np.ndarray) -> np.ndarray:
        """Map ``(n, 2)`` continuous points to ``(n, 2)`` cell indices,
        clipping out-of-extent points to the boundary cells."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise ValidationError(f"points must have shape (n, 2), got {pts.shape}")
        ix = np.floor((pts[:, 0] - self.x_min) / self.cell_width).astype(np.int64)
        iy = np.floor((pts[:, 1] - self.y_min) / self.cell_height).astype(np.int64)
        return np.stack(
            [np.clip(ix, 0, self.nx - 1), np.clip(iy, 0, self.ny - 1)], axis=1
        )

    def cell_center(self, ix: int, iy: int) -> Tuple[float, float]:
        """Continuous centre of cell ``(ix, iy)``."""
        if not (0 <= ix < self.nx and 0 <= iy < self.ny):
            raise ValidationError(f"cell ({ix}, {iy}) outside grid {self.shape}")
        return (
            self.x_min + (ix + 0.5) * self.cell_width,
            self.y_min + (iy + 0.5) * self.cell_height,
        )

    def sample_cell_points(
        self, cells: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Uniform continuous points inside the given ``(n, 2)`` cells."""
        cells = np.asarray(cells, dtype=np.int64)
        u = rng.random(cells.shape)
        x = self.x_min + (cells[:, 0] + u[:, 0]) * self.cell_width
        y = self.y_min + (cells[:, 1] + u[:, 1]) * self.cell_height
        return np.stack([x, y], axis=1)
