"""Analyst-facing OD query helpers.

These express the queries the paper's introduction motivates — "how many
users traveled from a 1 km circle centered at A to a 1 km circle centered
at B", optionally constrained to pass through a region — as range queries
over a (private or raw) OD frequency matrix.

Circles are approximated by their bounding boxes, which is how axis-
aligned-partition structures answer them; the approximation is an analyst-
side choice, orthogonal to the privacy mechanism.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

from ..core.exceptions import QueryError
from ..core.frequency_matrix import Box, FrequencyMatrix
from ..core.private_matrix import PrivateFrequencyMatrix

MatrixLike = Union[FrequencyMatrix, PrivateFrequencyMatrix]

#: A continuous axis-aligned region: ((x_lo, x_hi), (y_lo, y_hi)).
Region = Tuple[Tuple[float, float], Tuple[float, float]]


def circle_region(center: Tuple[float, float], radius_km: float) -> Region:
    """Bounding-box region of a circle (the analyst-side approximation)."""
    if radius_km <= 0:
        raise QueryError(f"radius must be positive, got {radius_km}")
    (cx, cy) = center
    return ((cx - radius_km, cx + radius_km), (cy - radius_km, cy + radius_km))


def _region_to_frame_box(matrix: MatrixLike, frame: int, region: Region) -> Box:
    """Cell ranges for one frame's (x, y) dimension pair; other frames full."""
    domain = matrix.domain
    if domain.ndim % 2 != 0:
        raise QueryError(
            f"OD matrices have an even dimension count, got {domain.ndim}"
        )
    n_frames = domain.ndim // 2
    frame = frame % n_frames
    box = []
    for f in range(n_frames):
        if f == frame:
            (x_lo, x_hi), (y_lo, y_hi) = region
            box.append(domain[2 * f].interval_to_cells(x_lo, x_hi))
            box.append(domain[2 * f + 1].interval_to_cells(y_lo, y_hi))
        else:
            box.append((0, domain[2 * f].size - 1))
            box.append((0, domain[2 * f + 1].size - 1))
    return tuple(box)


def _intersect_boxes(a: Box, b: Box) -> Box:
    out = []
    for (alo, ahi), (blo, bhi) in zip(a, b):
        lo, hi = max(alo, blo), min(ahi, bhi)
        if lo > hi:
            raise QueryError("query regions select disjoint cell ranges")
        out.append((lo, hi))
    return tuple(out)


def _answer(matrix: MatrixLike, box: Box) -> float:
    if isinstance(matrix, PrivateFrequencyMatrix):
        return matrix.answer(box)
    return matrix.range_count(box)


def flow_between(
    matrix: MatrixLike, origin_region: Region, dest_region: Region
) -> float:
    """Trips starting in ``origin_region`` and ending in ``dest_region``."""
    box = _intersect_boxes(
        _region_to_frame_box(matrix, 0, origin_region),
        _region_to_frame_box(matrix, -1, dest_region),
    )
    return _answer(matrix, box)


def flow_via(
    matrix: MatrixLike,
    origin_region: Region,
    dest_region: Region,
    stop_region: Region,
    stop_frame: int = 1,
) -> float:
    """Trips from origin to destination that pass through ``stop_region``
    at the given intermediate frame (1 = first stop)."""
    box = _intersect_boxes(
        _intersect_boxes(
            _region_to_frame_box(matrix, 0, origin_region),
            _region_to_frame_box(matrix, -1, dest_region),
        ),
        _region_to_frame_box(matrix, stop_frame, stop_region),
    )
    return _answer(matrix, box)


def visits_through(matrix: MatrixLike, region: Region, frame: int) -> float:
    """Trips whose recorded point at ``frame`` falls in ``region``
    (the exposure-style query of the COVID use case)."""
    return _answer(matrix, _region_to_frame_box(matrix, frame, region))


def exposure_count(
    matrix: MatrixLike, regions: Sequence[Region], frames: Sequence[int]
) -> float:
    """Trips passing through *all* of the given (region, frame) pairs —
    e.g. store at noon AND gym in the evening."""
    if len(regions) != len(frames):
        raise QueryError("need exactly one frame per region")
    if not regions:
        raise QueryError("need at least one region")
    box = _region_to_frame_box(matrix, frames[0], regions[0])
    for region, frame in zip(regions[1:], frames[1:]):
        box = _intersect_boxes(box, _region_to_frame_box(matrix, frame, region))
    return _answer(matrix, box)
