"""Semantic-feature queries over OD matrices — the paper's future-work
direction (Section 7).

"An analyst may be interested in trajectories that satisfy some semantic
constraint, like workplace-entertainment-sports sequences, where the type
of feature visited is more important than the actual geographical
placement."

A :class:`SemanticMap` labels every cell of a spatial grid with a
category; :func:`semantic_sequence_count` then counts trajectories whose
frames visit a given category *sequence*, evaluated against either the raw
OD matrix or a DP-sanitized one (a pure post-processing of the published
counts, so the privacy guarantee carries over).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from ..core.exceptions import QueryError, ValidationError
from ..core.frequency_matrix import FrequencyMatrix
from ..core.private_matrix import PrivateFrequencyMatrix
from ..dp.rng import RNGLike, ensure_rng
from .grid import SpatialGrid

MatrixLike = Union[FrequencyMatrix, PrivateFrequencyMatrix]

#: Default category vocabulary, loosely following the paper's example.
DEFAULT_CATEGORIES = (
    "residential", "workplace", "commercial", "entertainment", "sports",
)


class SemanticMap:
    """A categorical label per cell of a 2-D spatial grid."""

    __slots__ = ("_labels", "_categories")

    def __init__(self, labels: np.ndarray, categories: Sequence[str]):
        labels = np.asarray(labels, dtype=np.int32)
        if labels.ndim != 2:
            raise ValidationError("labels must be a 2-D cell array")
        categories = tuple(str(c) for c in categories)
        if len(set(categories)) != len(categories) or not categories:
            raise ValidationError("categories must be unique and non-empty")
        if labels.size and (labels.min() < 0 or labels.max() >= len(categories)):
            raise ValidationError("label indices outside the category list")
        self._labels = labels
        self._categories = categories

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return self._labels.shape

    @property
    def categories(self) -> Tuple[str, ...]:
        return self._categories

    @property
    def labels(self) -> np.ndarray:
        return self._labels

    def category_index(self, name: str) -> int:
        try:
            return self._categories.index(name)
        except ValueError:
            raise QueryError(
                f"unknown category {name!r}; available: {self._categories}"
            ) from None

    def mask(self, category: str) -> np.ndarray:
        """Boolean cell mask of one category."""
        return self._labels == self.category_index(category)

    def category_fraction(self, category: str) -> float:
        """Fraction of cells carrying the category."""
        return float(self.mask(category).mean())

    def coarsen(self, nx: int, ny: int) -> "SemanticMap":
        """Majority-vote re-labelling onto a coarser grid (to match a
        coarsened OD matrix resolution)."""
        sx, sy = self._labels.shape
        if nx > sx or ny > sy:
            raise ValidationError(f"cannot coarsen {self.shape} to {(nx, ny)}")
        out = np.zeros((nx, ny), dtype=np.int32)
        x_edges = np.linspace(0, sx, nx + 1).astype(int)
        y_edges = np.linspace(0, sy, ny + 1).astype(int)
        for i in range(nx):
            for j in range(ny):
                block = self._labels[x_edges[i]:x_edges[i + 1],
                                     y_edges[j]:y_edges[j + 1]]
                counts = np.bincount(block.ravel(),
                                     minlength=len(self._categories))
                out[i, j] = int(np.argmax(counts))
        return SemanticMap(out, self._categories)

    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        grid: SpatialGrid,
        categories: Sequence[str] = DEFAULT_CATEGORIES,
        patch_count: int = 40,
        rng: RNGLike = None,
    ) -> "SemanticMap":
        """A synthetic land-use map: Voronoi-style patches of categories.

        ``patch_count`` seeds are placed uniformly; every cell takes the
        category of its nearest seed — producing contiguous districts the
        way real land use clusters.
        """
        if patch_count < 1:
            raise ValidationError(f"patch_count must be >= 1, got {patch_count}")
        gen = ensure_rng(rng)
        nx, ny = grid.shape
        seeds = np.stack(
            [gen.integers(0, nx, size=patch_count),
             gen.integers(0, ny, size=patch_count)], axis=1
        )
        seed_cats = gen.integers(0, len(categories), size=patch_count)
        xs, ys = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
        coords = np.stack([xs.ravel(), ys.ravel()], axis=1)
        d2 = ((coords[:, None, :] - seeds[None, :, :]) ** 2).sum(axis=2)
        nearest = np.argmin(d2, axis=1)
        labels = seed_cats[nearest].reshape(nx, ny)
        return cls(labels, categories)


def _frame_masks(
    matrix: MatrixLike, semantic: SemanticMap, sequence: Sequence[str]
) -> List[np.ndarray]:
    ndim = matrix.ndim
    if ndim % 2 != 0:
        raise QueryError("OD matrices have an even dimension count")
    n_frames = ndim // 2
    if len(sequence) != n_frames:
        raise QueryError(
            f"sequence has {len(sequence)} categories, matrix has "
            f"{n_frames} frames"
        )
    frame_shape = (matrix.shape[0], matrix.shape[1])
    for f in range(n_frames):
        if (matrix.shape[2 * f], matrix.shape[2 * f + 1]) != frame_shape:
            raise QueryError("all frames must share one spatial resolution")
    sem = semantic
    if sem.shape != frame_shape:
        sem = sem.coarsen(*frame_shape)
    return [sem.mask(cat).astype(np.float64) for cat in sequence]


def semantic_sequence_count(
    matrix: MatrixLike, semantic: SemanticMap, sequence: Sequence[str]
) -> float:
    """Count trajectories visiting the given category sequence.

    ``sequence`` has one category per frame, e.g.
    ``("residential", "entertainment", "sports")`` for an OD matrix with
    one intermediate stop.  For a private matrix this is post-processing
    of the published counts: the result inherits the DP guarantee.
    """
    masks = _frame_masks(matrix, semantic, sequence)
    dense = (
        matrix.dense_array()
        if isinstance(matrix, PrivateFrequencyMatrix)
        else matrix.data
    )
    acc = dense
    # Contract frame by frame: multiply by the frame mask and sum out its
    # two axes, keeping memory at O(cells).
    for mask in masks:
        acc = np.tensordot(mask, acc, axes=([0, 1], [0, 1]))
    return float(acc)


def semantic_transition_matrix(
    matrix: MatrixLike,
    semantic: SemanticMap,
    frames: Tuple[int, int] = (0, -1),
) -> Dict[Tuple[str, str], float]:
    """Category-to-category flow totals between two frames.

    Returns ``{(from_category, to_category): count}`` — the
    semantic-level OD matrix an urban analyst reads ("how many
    residential->workplace trips?").
    """
    ndim = matrix.ndim
    if ndim % 2 != 0:
        raise QueryError("OD matrices have an even dimension count")
    n_frames = ndim // 2
    f_a, f_b = (f % n_frames for f in frames)
    if f_a == f_b:
        raise QueryError("transition frames must differ")
    dense = (
        matrix.dense_array()
        if isinstance(matrix, PrivateFrequencyMatrix)
        else matrix.data
    )
    frame_shape = (matrix.shape[2 * f_a], matrix.shape[2 * f_a + 1])
    sem = semantic if semantic.shape == frame_shape else semantic.coarsen(*frame_shape)
    # Sum out every frame except f_a and f_b.
    keep = {2 * f_a, 2 * f_a + 1, 2 * f_b, 2 * f_b + 1}
    drop = tuple(a for a in range(ndim) if a not in keep)
    reduced = dense.sum(axis=drop) if drop else dense
    # Order axes as (xa, ya, xb, yb).
    if f_a > f_b:
        reduced = np.transpose(reduced, (2, 3, 0, 1))
    out: Dict[Tuple[str, str], float] = {}
    for ca in sem.categories:
        mask_a = sem.mask(ca).astype(np.float64)
        partial = np.tensordot(mask_a, reduced, axes=([0, 1], [0, 1]))
        for cb in sem.categories:
            mask_b = sem.mask(cb).astype(np.float64)
            out[(ca, cb)] = float((partial * mask_b).sum())
    return out
