"""Trajectory model: ordered location sequences with a fixed stop count.

Section 2.3 of the paper models a trajectory as an ordered list of
recorded points — origin, zero or more intermediate stops, destination —
one pair of spatial coordinates per "time frame" (morning/noon/evening in
the paper's example).  :class:`TrajectoryDataset` stores a homogeneous
collection (every trajectory records the same number of points) as a
single ``(n, k, 2)`` array so 300 k-trajectory datasets stay vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

import numpy as np

from ..core.exceptions import ValidationError


@dataclass(frozen=True)
class Trajectory:
    """A single trip: origin, intermediate stops, destination.

    ``points`` is an ``(k, 2)`` array of continuous ``(x, y)`` coordinates
    ordered in time; ``k >= 2`` (origin and destination always present).
    """

    points: np.ndarray

    def __post_init__(self) -> None:
        pts = np.asarray(self.points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 2 or pts.shape[0] < 2:
            raise ValidationError(
                f"points must have shape (k >= 2, 2), got {pts.shape}"
            )
        if not np.all(np.isfinite(pts)):
            raise ValidationError("trajectory points must be finite")
        object.__setattr__(self, "points", pts)

    @property
    def origin(self) -> Tuple[float, float]:
        return (float(self.points[0, 0]), float(self.points[0, 1]))

    @property
    def destination(self) -> Tuple[float, float]:
        return (float(self.points[-1, 0]), float(self.points[-1, 1]))

    @property
    def stops(self) -> np.ndarray:
        """Intermediate points, shape ``(k - 2, 2)``."""
        return self.points[1:-1]

    @property
    def n_points(self) -> int:
        return int(self.points.shape[0])

    @property
    def n_stops(self) -> int:
        return self.n_points - 2

    def length(self) -> float:
        """Total Euclidean path length through all recorded points."""
        deltas = np.diff(self.points, axis=0)
        return float(np.sqrt((deltas**2).sum(axis=1)).sum())


class TrajectoryDataset:
    """A homogeneous collection of trajectories as an ``(n, k, 2)`` array."""

    __slots__ = ("_points",)

    def __init__(self, points: np.ndarray):
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 3 or pts.shape[2] != 2 or pts.shape[1] < 2:
            raise ValidationError(
                f"points must have shape (n, k >= 2, 2), got {pts.shape}"
            )
        if not np.all(np.isfinite(pts)):
            raise ValidationError("trajectory points must be finite")
        self._points = pts

    # ------------------------------------------------------------------
    @classmethod
    def from_trajectories(cls, trajectories: Sequence[Trajectory]) -> "TrajectoryDataset":
        if not trajectories:
            raise ValidationError("need at least one trajectory")
        k = trajectories[0].n_points
        for i, t in enumerate(trajectories):
            if t.n_points != k:
                raise ValidationError(
                    f"trajectory {i} has {t.n_points} points, expected {k}"
                )
        return cls(np.stack([t.points for t in trajectories]))

    # ------------------------------------------------------------------
    @property
    def points(self) -> np.ndarray:
        """The raw ``(n, k, 2)`` array (do not mutate)."""
        return self._points

    @property
    def n_trajectories(self) -> int:
        return int(self._points.shape[0])

    @property
    def n_points_each(self) -> int:
        return int(self._points.shape[1])

    @property
    def n_stops_each(self) -> int:
        return self.n_points_each - 2

    def __len__(self) -> int:
        return self.n_trajectories

    def __getitem__(self, i: int) -> Trajectory:
        return Trajectory(self._points[i])

    def __iter__(self) -> Iterator[Trajectory]:
        for i in range(self.n_trajectories):
            yield self[i]

    # ------------------------------------------------------------------
    @property
    def origins(self) -> np.ndarray:
        return self._points[:, 0, :]

    @property
    def destinations(self) -> np.ndarray:
        return self._points[:, -1, :]

    def recorded_points(self, frames: Sequence[int] | None = None) -> np.ndarray:
        """Points at the requested time frames, shape ``(n, len(frames), 2)``.

        ``None`` returns all frames.  Frame 0 is the origin, frame
        ``k - 1`` the destination.
        """
        if frames is None:
            return self._points
        frames = list(frames)
        k = self.n_points_each
        for f in frames:
            if not 0 <= f < k:
                raise ValidationError(f"frame {f} out of range [0, {k})")
        return self._points[:, frames, :]

    def subset(self, indices: np.ndarray) -> "TrajectoryDataset":
        """A new dataset containing only the given trajectory indices."""
        return TrajectoryDataset(self._points[np.asarray(indices, dtype=np.int64)])

    def lengths(self) -> np.ndarray:
        """Euclidean path length of every trajectory."""
        deltas = np.diff(self._points, axis=1)
        return np.sqrt((deltas**2).sum(axis=2)).sum(axis=1)
