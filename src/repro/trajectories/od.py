"""Building OD matrices (with intermediate stops) from trajectories.

Section 6.1: "for every trajectory with the origin coordinates (x_o, y_o)
and destination coordinates (x_d, y_d), the element F[x_o, y_o, x_d, y_d]
is incremented by one.  A similar process is conducted for intermediate
points, with the distinction that the matrix dimension count increases."

A trajectory recording ``k`` points therefore becomes one entry of a
``2k``-dimensional frequency matrix.  Because ``g^(2k)`` dense cells
explode quickly, construction goes through a sparse accumulator and the
per-endpoint resolution is chosen (or validated) against a dense-cell
budget — the same coarsening the paper's own ``d = 4, 6`` experiments
imply (Section 6.2 sets per-dimension width to ``N^(1/d)``).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..core.domain import DimensionSpec, Domain
from ..core.exceptions import ValidationError
from ..core.frequency_matrix import FrequencyMatrix
from ..core.sparse import SparseFrequencyMatrix
from .grid import SpatialGrid
from .trajectory import TrajectoryDataset

#: Default ceiling on dense cells when auto-selecting a resolution.
DEFAULT_CELL_BUDGET = 2_000_000

#: Conventional frame names used for domain labelling.
_FRAME_NAMES = {0: "origin", -1: "dest"}


def frame_names(n_frames: int) -> List[str]:
    """Human-readable frame labels: origin, stop1..stopK, dest."""
    if n_frames < 2:
        raise ValidationError(f"need at least 2 frames, got {n_frames}")
    names = ["origin"]
    names += [f"stop{i}" for i in range(1, n_frames - 1)]
    names.append("dest")
    return names


def auto_resolution(
    n_frames: int, cell_budget: int = DEFAULT_CELL_BUDGET
) -> int:
    """Largest per-endpoint grid resolution ``g`` with ``g^(2k)`` dense
    cells within budget."""
    if n_frames < 2:
        raise ValidationError(f"need at least 2 frames, got {n_frames}")
    if cell_budget < 2 ** (2 * n_frames):
        raise ValidationError(
            f"cell budget {cell_budget} cannot fit even a 2-cell grid "
            f"for {n_frames} frames"
        )
    g = int(np.floor(cell_budget ** (1.0 / (2 * n_frames))))
    return max(2, g)


class ODMatrixBuilder:
    """Accumulates trajectories into a multi-dimensional OD matrix.

    Parameters
    ----------
    grid:
        The continuous city grid trajectories live on.
    resolution:
        Per-endpoint grid resolution ``g`` (each recorded point occupies
        two dimensions of size ``g``).  ``None`` picks the largest
        resolution whose dense matrix fits ``cell_budget``.
    frames:
        Which recorded points to include, as indices into the trajectory's
        point list (default: all).  E.g. ``[0, -1]`` builds the classical
        4-D OD matrix from a dataset that also recorded stops.
    cell_budget:
        Dense-cell ceiling used both for ``resolution=None`` and to
        validate explicit resolutions.
    """

    def __init__(
        self,
        grid: SpatialGrid,
        resolution: int | None = None,
        frames: Sequence[int] | None = None,
        cell_budget: int = DEFAULT_CELL_BUDGET,
    ):
        self.grid = grid
        self.frames = None if frames is None else [int(f) for f in frames]
        self.cell_budget = int(cell_budget)
        self._resolution = resolution
        if resolution is not None and resolution < 1:
            raise ValidationError(f"resolution must be >= 1, got {resolution}")

    # ------------------------------------------------------------------
    def _resolve(self, dataset: TrajectoryDataset) -> Tuple[List[int], int]:
        k = dataset.n_points_each
        frames = self.frames if self.frames is not None else list(range(k))
        frames = [f % k for f in frames]
        if len(frames) < 2:
            raise ValidationError("an OD matrix needs at least 2 frames")
        if self._resolution is None:
            g = auto_resolution(len(frames), self.cell_budget)
        else:
            g = int(self._resolution)
            if g ** (2 * len(frames)) > self.cell_budget:
                raise ValidationError(
                    f"resolution {g} with {len(frames)} frames needs "
                    f"{g ** (2 * len(frames))} dense cells "
                    f"(budget {self.cell_budget}); lower the resolution or "
                    "raise cell_budget"
                )
        return frames, g

    def domain(self, dataset: TrajectoryDataset) -> Domain:
        """The OD matrix domain: (x, y) per selected frame."""
        frames, g = self._resolve(dataset)
        names = frame_names(dataset.n_points_each)
        dims: List[DimensionSpec] = []
        for f in frames:
            coarse = self.grid.coarsen(g, g)
            dims.append(coarse.x_spec(f"{names[f]}_x"))
            dims.append(coarse.y_spec(f"{names[f]}_y"))
        return Domain(tuple(dims))

    # ------------------------------------------------------------------
    def build_sparse(self, dataset: TrajectoryDataset) -> SparseFrequencyMatrix:
        """Accumulate into a sparse matrix (always memory-safe)."""
        frames, g = self._resolve(dataset)
        coarse = self.grid.coarsen(g, g)
        pts = dataset.recorded_points(frames)  # (n, len(frames), 2)
        n, nf, _ = pts.shape
        cells = coarse.to_cells(pts.reshape(n * nf, 2)).reshape(n, nf, 2)
        flat = cells.reshape(n, 2 * nf)
        out = SparseFrequencyMatrix(
            tuple([g] * (2 * nf)), self.domain(dataset)
        )
        out.increment_many(flat)
        return out

    def build(self, dataset: TrajectoryDataset) -> FrequencyMatrix:
        """Accumulate and densify (resolution guarantees this fits)."""
        return self.build_sparse(dataset).to_dense(limit=self.cell_budget)


def classical_od_matrix(
    dataset: TrajectoryDataset,
    grid: SpatialGrid,
    resolution: int | None = None,
    cell_budget: int = DEFAULT_CELL_BUDGET,
) -> FrequencyMatrix:
    """The conventional 4-D OD matrix (origin + destination only)."""
    builder = ODMatrixBuilder(
        grid, resolution=resolution, frames=[0, -1], cell_budget=cell_budget
    )
    return builder.build(dataset)


def od_matrix_with_stops(
    dataset: TrajectoryDataset,
    grid: SpatialGrid,
    resolution: int | None = None,
    cell_budget: int = DEFAULT_CELL_BUDGET,
) -> FrequencyMatrix:
    """The paper's OD matrix with all intermediate stops included."""
    builder = ODMatrixBuilder(
        grid, resolution=resolution, frames=None, cell_budget=cell_budget
    )
    return builder.build(dataset)
