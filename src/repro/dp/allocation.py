"""Per-level privacy-budget allocation for hierarchical methods (paper §4.4).

With a root fanout ``m0`` and a geometric fanout progression, level ``i`` of
a depth-``d`` DAF tree holds ~``m0^i`` nodes.  Minimizing the summed noise
variance ``sum_i m0^i / eps_i^2`` subject to ``sum_i eps_i = eps'`` (Eq. 29,
solved via the Lagrangian in Eq. 30-31) yields

    eps_i = eps' * m0^{i/3} / sum_{j=1..d} m0^{j/3}          (Eq. 32)

so deeper levels — whose sanitized leaves are what gets published — receive
geometrically more budget.  The root's own count is sanitized separately
with ``eps_0 = eps_tot / 100`` (Eq. 33).
"""

from __future__ import annotations

import math
from typing import List

from ..core.exceptions import BudgetError

#: The paper's root-budget fraction (Eq. 33).
ROOT_BUDGET_FRACTION = 0.01


def root_budget(epsilon_total: float) -> float:
    """``eps_0 = eps_tot / 100`` used to sanitize the root count (Eq. 33)."""
    if epsilon_total <= 0:
        raise BudgetError(f"epsilon_total must be positive, got {epsilon_total}")
    return epsilon_total * ROOT_BUDGET_FRACTION


def geometric_level_budgets(
    epsilon_prime: float, m0: float, depth: int
) -> List[float]:
    """Optimal per-level budgets ``[eps_1, ..., eps_depth]`` per Eq. (32).

    Parameters
    ----------
    epsilon_prime:
        Budget remaining after the root charge (``eps_tot - eps_0``).
    m0:
        Root fanout estimate; the assumed geometric progression ratio.
        ``m0 = 1`` degenerates gracefully to a uniform split.
    depth:
        Number of tree levels below the root (the matrix dimensionality
        ``d`` for DAF).
    """
    if epsilon_prime <= 0:
        raise BudgetError(f"epsilon_prime must be positive, got {epsilon_prime}")
    if depth < 1:
        raise BudgetError(f"depth must be >= 1, got {depth}")
    if m0 < 1 or not math.isfinite(m0):
        raise BudgetError(f"m0 must be >= 1 and finite, got {m0}")
    weights = [m0 ** (i / 3.0) for i in range(1, depth + 1)]
    total = sum(weights)
    budgets = [epsilon_prime * w / total for w in weights]
    # Absorb float residue into the last (largest) level so the sum is exact.
    budgets[-1] = epsilon_prime - sum(budgets[:-1])
    return budgets


def level_budget(epsilon_prime: float, m0: float, depth: int, level: int) -> float:
    """Budget of one level, ``eps_level`` (1-based), per Eq. (32).

    Matches Algorithm 2 line 13 / Algorithm 3 line 17, which compute the
    budget for the node's own depth via the closed geometric-series form.
    """
    if not 1 <= level <= depth:
        raise BudgetError(f"level must be in [1, {depth}], got {level}")
    return geometric_level_budgets(epsilon_prime, m0, depth)[level - 1]


def uniform_level_budgets(epsilon_prime: float, depth: int) -> List[float]:
    """Equal-per-level split, the natural ablation baseline for Eq. (32)."""
    if epsilon_prime <= 0:
        raise BudgetError(f"epsilon_prime must be positive, got {epsilon_prime}")
    if depth < 1:
        raise BudgetError(f"depth must be >= 1, got {depth}")
    part = epsilon_prime / depth
    budgets = [part] * depth
    budgets[-1] = epsilon_prime - part * (depth - 1)
    return budgets


def allocation_noise_variance(budgets: List[float], m0: float) -> float:
    """The objective of Eq. (29): ``sum_i m0^i / eps_i^2``.

    Exposed so tests can verify the geometric allocation is optimal among
    alternatives (it must score <= any other feasible allocation).
    """
    if any(b <= 0 for b in budgets):
        raise BudgetError("all level budgets must be positive")
    return sum(m0 ** (i + 1) / b**2 for i, b in enumerate(budgets))
