"""Differential-privacy substrate: mechanisms, budgets, allocation, rng."""

from .allocation import (
    ROOT_BUDGET_FRACTION,
    allocation_noise_variance,
    geometric_level_budgets,
    level_budget,
    root_budget,
    uniform_level_budgets,
)
from .budget import BudgetLedger, Charge, split_budget
from .mechanisms import (
    GeometricMechanism,
    LaplaceMechanism,
    geometric_noise,
    laplace_noise,
    laplace_scale,
    laplace_variance,
    report_noisy_min,
)
from .rng import RNGLike, derive_entropy, ensure_rng, spawn, spawn_key_rng

__all__ = [
    "BudgetLedger",
    "Charge",
    "GeometricMechanism",
    "LaplaceMechanism",
    "RNGLike",
    "ROOT_BUDGET_FRACTION",
    "allocation_noise_variance",
    "derive_entropy",
    "ensure_rng",
    "geometric_level_budgets",
    "geometric_noise",
    "laplace_noise",
    "laplace_scale",
    "laplace_variance",
    "level_budget",
    "report_noisy_min",
    "root_budget",
    "spawn",
    "spawn_key_rng",
    "split_budget",
    "uniform_level_budgets",
]
