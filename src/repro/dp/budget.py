"""Privacy-budget accounting.

Sequential composition (Section 2.1) says budgets of successive mechanisms
on the *same* data add up; parallel composition says mechanisms on
*disjoint* partitions cost only the maximum.  :class:`BudgetLedger` tracks
both: charges are grouped by a ``scope`` label, charges in different scopes
compose sequentially, and charges within one scope are declared parallel
(disjoint data) so the scope costs its per-item maximum.

Every sanitizer in :mod:`repro.methods` records its spending in a ledger and
asserts ``ledger.total_spent() <= epsilon_total`` before returning — the
test suite verifies this bound holds for every method and configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.exceptions import BudgetError

#: Tolerance for floating-point budget comparisons.
EPS_TOL = 1e-9


@dataclass(frozen=True)
class Charge:
    """One recorded privacy expenditure."""

    scope: str
    epsilon: float
    note: str = ""


@dataclass
class BudgetLedger:
    """Tracks privacy spending against a total budget ``epsilon_total``.

    Parameters
    ----------
    epsilon_total:
        The overall budget the producing mechanism must not exceed.
    strict:
        When True (default) a charge that would push the composed total over
        ``epsilon_total`` raises :class:`BudgetError` immediately.
    """

    epsilon_total: float
    strict: bool = True
    _charges: List[Charge] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.epsilon_total <= 0:
            raise BudgetError(
                f"epsilon_total must be positive, got {self.epsilon_total}"
            )

    # ------------------------------------------------------------------
    def charge(self, epsilon: float, scope: str = "", note: str = "") -> float:
        """Record a sequential-composition charge and return ``epsilon``.

        ``scope`` groups parallel charges: all charges sharing a non-empty
        scope are assumed to act on pairwise-disjoint partitions of the
        data, so the scope's composed cost is the maximum charge in it.
        The empty scope composes sequentially charge-by-charge.
        """
        if epsilon <= 0:
            raise BudgetError(f"charge must be positive, got {epsilon}")
        candidate = self._composed_total(extra=(scope, epsilon))
        if self.strict and candidate > self.epsilon_total + EPS_TOL:
            raise BudgetError(
                f"charge of {epsilon:g} in scope {scope!r} would raise the "
                f"composed total to {candidate:g} > budget {self.epsilon_total:g}"
            )
        self._charges.append(Charge(scope, float(epsilon), note))
        return float(epsilon)

    def _composed_total(self, extra: Tuple[str, float] | None = None) -> float:
        sequential = 0.0
        scopes: Dict[str, float] = {}
        charges: List[Tuple[str, float]] = [(c.scope, c.epsilon) for c in self._charges]
        if extra is not None:
            charges.append(extra)
        for scope, eps in charges:
            if scope:
                scopes[scope] = max(scopes.get(scope, 0.0), eps)
            else:
                sequential += eps
        return sequential + sum(scopes.values())

    # ------------------------------------------------------------------
    def total_spent(self) -> float:
        """Composed total under sequential + parallel composition."""
        return self._composed_total()

    def remaining(self) -> float:
        """Budget still available (never negative)."""
        return max(0.0, self.epsilon_total - self.total_spent())

    @property
    def charges(self) -> Tuple[Charge, ...]:
        return tuple(self._charges)

    def scope_spent(self, scope: str) -> float:
        """Composed cost of a single scope (max for parallel scopes)."""
        eps = [c.epsilon for c in self._charges if c.scope == scope]
        if not eps:
            return 0.0
        return max(eps) if scope else sum(eps)

    def assert_within_budget(self) -> None:
        """Raise :class:`BudgetError` if composed spending exceeds the total."""
        spent = self.total_spent()
        if spent > self.epsilon_total + EPS_TOL:
            raise BudgetError(
                f"composed spending {spent:g} exceeds budget {self.epsilon_total:g}"
            )

    def summary(self) -> Dict[str, float]:
        """Per-scope composed costs plus the overall total."""
        out: Dict[str, float] = {}
        for c in self._charges:
            key = c.scope or "<sequential>"
            if c.scope:
                out[key] = max(out.get(key, 0.0), c.epsilon)
            else:
                out[key] = out.get(key, 0.0) + c.epsilon
        out["<total>"] = self.total_spent()
        return out


def split_budget(epsilon: float, fractions: List[float]) -> List[float]:
    """Split ``epsilon`` into parts proportional to ``fractions``.

    Fractions must be positive; they are normalized, so ``[1, 1]`` halves
    the budget.  The parts sum to ``epsilon`` exactly (last part absorbs
    float residue).
    """
    if epsilon <= 0:
        raise BudgetError(f"epsilon must be positive, got {epsilon}")
    if not fractions or any(f <= 0 for f in fractions):
        raise BudgetError("fractions must be a non-empty list of positives")
    total = float(sum(fractions))
    parts = [epsilon * f / total for f in fractions]
    parts[-1] = epsilon - sum(parts[:-1])
    return parts
