"""Differential-privacy noise mechanisms.

The paper relies exclusively on the Laplace mechanism (Section 2.1,
Eq. 2); we additionally provide the geometric (discrete Laplace) mechanism —
the "more sophisticated mechanism" direction its conclusion sketches — and
report-noisy-min, used to select DAF-Homogeneity split candidates with a
total privacy cost independent of the number of candidates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..core.exceptions import ValidationError
from .rng import RNGLike, ensure_rng


def laplace_scale(sensitivity: float, epsilon: float) -> float:
    """The Laplace scale ``b = s / eps`` (paper Eq. 2)."""
    if sensitivity <= 0 or not math.isfinite(sensitivity):
        raise ValidationError(f"sensitivity must be positive, got {sensitivity}")
    if epsilon <= 0 or not math.isfinite(epsilon):
        raise ValidationError(f"epsilon must be positive, got {epsilon}")
    return sensitivity / epsilon


def laplace_noise(
    sensitivity: float,
    epsilon: float,
    rng: RNGLike = None,
    size: int | Tuple[int, ...] | None = None,
) -> float | np.ndarray:
    """Draw ``Lap(s/eps)`` noise — scalar when ``size`` is None."""
    scale = laplace_scale(sensitivity, epsilon)
    gen = ensure_rng(rng)
    if size is None:
        return float(gen.laplace(0.0, scale))
    return gen.laplace(0.0, scale, size=size)


def laplace_variance(sensitivity: float, epsilon: float) -> float:
    """Variance of the Laplace mechanism: ``2 (s/eps)^2``.

    The paper's error models repeatedly use the special case s=1:
    variance ``2/eps^2`` (Section 3.1).
    """
    return 2.0 * laplace_scale(sensitivity, epsilon) ** 2


def geometric_noise(
    sensitivity: float,
    epsilon: float,
    rng: RNGLike = None,
    size: int | Tuple[int, ...] | None = None,
) -> float | np.ndarray:
    """Two-sided geometric (discrete Laplace) noise.

    ``Pr[X = k] ∝ alpha^{|k|}`` with ``alpha = exp(-eps/s)``; integer-valued,
    hence publishable counts stay integers.  Sampled as the difference of
    two geometric variables.
    """
    if sensitivity <= 0 or not math.isfinite(sensitivity):
        raise ValidationError(f"sensitivity must be positive, got {sensitivity}")
    if epsilon <= 0 or not math.isfinite(epsilon):
        raise ValidationError(f"epsilon must be positive, got {epsilon}")
    gen = ensure_rng(rng)
    p = 1.0 - math.exp(-epsilon / sensitivity)
    shape = (1,) if size is None else size
    a = gen.geometric(p, size=shape)
    b = gen.geometric(p, size=shape)
    noise = (a - b).astype(np.float64)
    if size is None:
        return float(noise[0])
    return noise


@dataclass(frozen=True)
class LaplaceMechanism:
    """The ``eps``-DP Laplace mechanism for a fixed sensitivity.

    >>> mech = LaplaceMechanism(sensitivity=1.0)
    >>> noisy = mech.randomize(42.0, epsilon=0.5, rng=0)
    """

    sensitivity: float = 1.0

    def __post_init__(self) -> None:
        if self.sensitivity <= 0 or not math.isfinite(self.sensitivity):
            raise ValidationError(
                f"sensitivity must be positive, got {self.sensitivity}"
            )

    def scale(self, epsilon: float) -> float:
        return laplace_scale(self.sensitivity, epsilon)

    def variance(self, epsilon: float) -> float:
        return laplace_variance(self.sensitivity, epsilon)

    def randomize(self, value: float, epsilon: float, rng: RNGLike = None) -> float:
        """Add calibrated noise to a single scalar."""
        return float(value) + laplace_noise(self.sensitivity, epsilon, rng)

    def randomize_array(
        self, values: np.ndarray, epsilon: float, rng: RNGLike = None
    ) -> np.ndarray:
        """Add i.i.d. calibrated noise to every element of an array."""
        values = np.asarray(values, dtype=np.float64)
        noise = laplace_noise(self.sensitivity, epsilon, rng, size=values.shape)
        return values + noise


@dataclass(frozen=True)
class GeometricMechanism:
    """The ``eps``-DP geometric mechanism (integer-valued Laplace analogue)."""

    sensitivity: float = 1.0

    def __post_init__(self) -> None:
        if self.sensitivity <= 0 or not math.isfinite(self.sensitivity):
            raise ValidationError(
                f"sensitivity must be positive, got {self.sensitivity}"
            )

    def variance(self, epsilon: float) -> float:
        """Variance ``2 alpha / (1 - alpha)^2`` with ``alpha = e^{-eps/s}``."""
        alpha = math.exp(-epsilon / self.sensitivity)
        return 2.0 * alpha / (1.0 - alpha) ** 2

    def randomize(self, value: float, epsilon: float, rng: RNGLike = None) -> float:
        return float(value) + geometric_noise(self.sensitivity, epsilon, rng)

    def randomize_array(
        self, values: np.ndarray, epsilon: float, rng: RNGLike = None
    ) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        noise = geometric_noise(self.sensitivity, epsilon, rng, size=values.shape)
        return values + noise


def report_noisy_min(
    scores: Sequence[float],
    sensitivity: float,
    epsilon: float,
    rng: RNGLike = None,
) -> int:
    """Return the index of the (noisily) smallest score.

    Implements report-noisy-max on negated scores: add ``Lap(2*s/eps)`` to
    every score and release only the argmin.  This is ``eps``-DP regardless
    of the number of candidates — the property DAF-Homogeneity needs when
    scoring ``p`` split-candidate sets with a fixed partitioning budget.
    """
    arr = np.asarray(scores, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValidationError("scores must be a non-empty 1-D sequence")
    noisy = arr + laplace_noise(2.0 * sensitivity, epsilon, rng, size=arr.shape)
    return int(np.argmin(noisy))
