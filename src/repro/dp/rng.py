"""Randomness handling.

All stochastic code in the library takes an explicit
``numpy.random.Generator`` so experiments are reproducible from a single
seed.  ``ensure_rng`` normalizes the accepted spellings (``None``, an int
seed, or an existing Generator); ``spawn`` derives independent child
generators for parallel sub-tasks without correlated streams.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

RNGLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RNGLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for any accepted input.

    ``None`` gives fresh OS entropy; an int is used as a seed; an existing
    generator is returned unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)) and not isinstance(rng, bool):
        return np.random.default_rng(int(rng))
    raise TypeError(
        f"rng must be None, an int seed, or a numpy Generator, got {type(rng).__name__}"
    )


def spawn(rng: np.random.Generator, n: int) -> List[np.random.Generator]:
    """Derive ``n`` statistically independent child generators."""
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
