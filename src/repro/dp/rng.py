"""Randomness handling.

All stochastic code in the library takes an explicit
``numpy.random.Generator`` so experiments are reproducible from a single
seed.  ``ensure_rng`` normalizes the accepted spellings (``None``, an int
seed, or an existing Generator); ``spawn`` derives independent child
generators for parallel sub-tasks without correlated streams.

Two spawning disciplines exist:

* :func:`spawn` is *sequential*: each call consumes parent state, so the
  children depend on how many spawns happened before.  Fine for in-order
  code, wrong for work that may be scheduled out of order.
* :func:`spawn_key_rng` is *keyed*: the child at position ``key`` of the
  spawn tree is a pure function of ``(entropy, key)`` and nothing else,
  so any process can rebuild exactly its own stream regardless of which
  trials ran before it, on which worker, in which order.  This is what
  makes parallel trial execution bit-identical to serial
  (:mod:`repro.experiments.parallel`).
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

RNGLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RNGLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for any accepted input.

    ``None`` gives fresh OS entropy; an int is used as a seed; an existing
    generator is returned unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)) and not isinstance(rng, bool):
        return np.random.default_rng(int(rng))
    raise TypeError(
        f"rng must be None, an int seed, or a numpy Generator, got {type(rng).__name__}"
    )


def spawn(rng: np.random.Generator, n: int) -> List[np.random.Generator]:
    """Derive ``n`` statistically independent child generators."""
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_entropy(rng: RNGLike = None) -> int:
    """Draw one 63-bit root for a keyed spawn tree.

    Consumes exactly one draw from ``rng``; every child is then derived
    from the returned integer via :func:`spawn_key_rng`, never from the
    parent's state again.
    """
    return int(ensure_rng(rng).integers(0, 2**63 - 1))


def spawn_key_rng(entropy: int, key: Sequence[int]) -> np.random.Generator:
    """The child generator at position ``key`` of a keyed spawn tree.

    Unlike :func:`spawn`, the result is a pure function of
    ``(entropy, key)`` — no parent state is consumed — so children can be
    rebuilt independently, in any order, in any process, and still
    produce identical streams.  Distinct keys give statistically
    independent streams (``numpy.random.SeedSequence`` spawn keys).
    """
    entropy = int(entropy)
    if entropy < 0:
        raise ValueError(f"entropy must be non-negative, got {entropy}")
    spawn_key = tuple(int(k) for k in key)
    if any(k < 0 for k in spawn_key):
        raise ValueError(f"spawn key components must be non-negative, got {spawn_key}")
    return np.random.default_rng(
        np.random.SeedSequence(entropy, spawn_key=spawn_key)
    )
