"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``methods``
    List registered sanitization methods.
``sanitize``
    Generate a dataset (synthetic or city), sanitize it with one method,
    report accuracy, and optionally write the publishable JSON payload.
``figure``
    Regenerate one paper artifact (figure4..figure8, table3) at a chosen
    scale and print its panels.
``compare``
    MRE comparison table of several methods on one dataset.
``serve``
    With ``--port``: run the real HTTP serving layer
    (:class:`~repro.engine.EngineServer` — ``POST /v1/query``,
    ``GET /healthz``, ``GET /statz``) over one sanitized dataset until
    interrupted, draining gracefully on SIGINT/SIGTERM; ``--off-loop``
    (default) dispatches each tick's kernel into a worker thread so the
    event loop stays responsive under heavy ticks.  Without ``--port``:
    the in-process async micro-batching smoke demo (N concurrent
    asyncio clients, tick stats, batched-vs-serial drift, expected 0).

Every query-answering command accepts ``--engine-config`` with
comma-separated ``key=value`` pairs over the
:class:`~repro.engine.EngineConfig` fields (e.g.
``--engine-config plan=sharded,n_shards=4``); values layer on top of
any ``REPRO_ENGINE_*`` environment overrides.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
import time
from typing import List

import numpy as np

from .core.frequency_matrix import FrequencyMatrix
from .datagen import get_city, gaussian_matrix, grid_substrate, zipf_matrix
from .engine import (
    SHARD_EXECUTORS,
    AsyncBatchEngine,
    Engine,
    EngineConfig,
    EngineServer,
    QueryRequest,
    gather_answers,
)
from .experiments import ALL_ARTIFACTS, get_scale
from .methods import available_methods, get_sanitizer
from .queries import WorkloadEvaluator, random_workload


def _build_dataset(args: argparse.Namespace) -> FrequencyMatrix:
    if args.dataset in ("new_york", "denver", "detroit"):
        return get_city(args.dataset).population_matrix(
            n_points=args.n_points, resolution=args.resolution, rng=args.seed
        )
    if args.dataset == "gaussian":
        return gaussian_matrix(
            args.dims, variance=args.variance, n_points=args.n_points,
            rng=args.seed,
        )
    if args.dataset == "zipf":
        return zipf_matrix(
            args.dims, a=args.zipf_a, n_points=args.n_points, rng=args.seed
        )
    raise SystemExit(f"unknown dataset {args.dataset!r}")


def _add_dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", default="new_york",
        choices=["new_york", "denver", "detroit", "gaussian", "zipf"],
        help="city profile or synthetic distribution",
    )
    parser.add_argument("--n-points", type=int, default=100_000)
    parser.add_argument("--resolution", type=int, default=256,
                        help="city grid resolution (city datasets)")
    parser.add_argument("--dims", type=int, default=2,
                        help="dimensionality (synthetic datasets)")
    parser.add_argument("--variance", type=float, default=100.0,
                        help="Gaussian cluster variance")
    parser.add_argument("--zipf-a", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=0)


def _add_engine_config_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine-config", default=None, metavar="KEY=VALUE[,...]",
        help="engine tuning overrides (EngineConfig fields, e.g. "
             "plan=sharded,n_shards=4); layered over REPRO_ENGINE_* env vars",
    )


def _engine_config(args: argparse.Namespace) -> EngineConfig:
    """The command's engine config: env overrides, then the CLI flag."""
    config = EngineConfig.from_env()
    if getattr(args, "engine_config", None):
        config = EngineConfig.from_string(args.engine_config, base=config)
    return config


def cmd_methods(_: argparse.Namespace) -> int:
    for name in available_methods():
        print(f"{name:18s} {type(get_sanitizer(name)).__doc__.strip().splitlines()[0]}")
    return 0


def cmd_sanitize(args: argparse.Namespace) -> int:
    matrix = _build_dataset(args)
    print(f"dataset: shape={matrix.shape}, N={matrix.total:,.0f}",
          file=sys.stderr)
    sanitizer = get_sanitizer(args.method)
    start = time.perf_counter()
    private = sanitizer.sanitize(matrix, args.epsilon, rng=args.seed + 1)
    elapsed = time.perf_counter() - start
    workload = random_workload(matrix.shape, args.n_queries, rng=args.seed + 2)
    result = WorkloadEvaluator(
        matrix, engine_config=_engine_config(args)
    ).evaluate(private, workload)
    print(
        f"method={args.method} eps={args.epsilon} "
        f"partitions={private.n_partitions} time={elapsed:.2f}s "
        f"MRE={result.mre:.2f}%",
        file=sys.stderr,
    )
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(private.to_publishable(), fh)
        print(f"wrote publishable payload to {args.output}", file=sys.stderr)
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    if args.artifact not in ALL_ARTIFACTS:
        raise SystemExit(
            f"unknown artifact {args.artifact!r}; "
            f"available: {sorted(ALL_ARTIFACTS)}"
        )
    scale = get_scale(args.scale)
    if args.n_jobs is not None:
        scale = scale.with_overrides(n_jobs=args.n_jobs)
    if args.n_shards is not None:
        scale = scale.with_overrides(n_shards=args.n_shards)
    config = _engine_config(args)
    if config != EngineConfig():
        # Only a real override lands on the scale — a default config
        # would needlessly conflict with the legacy --n-shards knob.
        scale = scale.with_overrides(engine_config=config)
    result = ALL_ARTIFACTS[args.artifact](scale=scale, rng=args.seed)
    columns = [c for c in result.rows[0] if c not in ("mre_std", "n_trials")]
    print(result.to_text(columns))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    matrix = _build_dataset(args)
    evaluator = WorkloadEvaluator(matrix, engine_config=_engine_config(args))
    workload = random_workload(matrix.shape, args.n_queries, rng=args.seed + 2)
    methods: List[str] = args.methods or available_methods()
    print(f"{'method':18s} {'MRE %':>10s} {'partitions':>11s} {'time':>8s}")
    for name in methods:
        start = time.perf_counter()
        private = get_sanitizer(name).sanitize(
            matrix, args.epsilon, rng=args.seed + 1
        )
        elapsed = time.perf_counter() - start
        mre = evaluator.evaluate(private, workload).mre
        print(f"{name:18s} {mre:10.2f} {private.n_partitions:11d} "
              f"{elapsed:7.2f}s")
    return 0


def _serve_engine(args: argparse.Namespace) -> Engine:
    """The engine ``serve`` fronts: sanitized dataset or bench substrate."""
    config = _engine_config(args)
    # Dedicated serve flags layer on top of --engine-config / env vars
    # (most specific wins), mirroring the loadtest harness's knobs.
    if getattr(args, "shard_executor", None):
        config = config.with_overrides(shard_executor=args.shard_executor)
    if getattr(args, "n_shards", None) is not None:
        config = config.with_overrides(n_shards=args.n_shards)
    if args.bench_substrate is not None:
        private = grid_substrate(
            shape=(args.bench_shape,) * 2,
            m=args.bench_substrate,
            seed=args.seed,
        )
        print(
            f"bench substrate: shape={private.shape}, "
            f"k={private.n_partitions} partitions",
            file=sys.stderr,
        )
        return Engine(private, config)
    matrix = _build_dataset(args)
    print(f"dataset: shape={matrix.shape}, N={matrix.total:,.0f}",
          file=sys.stderr)
    sanitizer = get_sanitizer(args.method)
    private = sanitizer.sanitize(matrix, args.epsilon, rng=args.seed + 1)
    return Engine(private, config)


def _run_server(args: argparse.Namespace, engine: Engine) -> int:
    """Run the HTTP serving layer until SIGINT/SIGTERM, then drain."""
    server = EngineServer(
        engine,
        host=args.host,
        port=args.port,
        off_loop=args.off_loop,
        max_pending_requests=args.max_pending,
        max_batch_queries=args.max_batch_queries,
        request_timeout=args.request_timeout,
    )

    async def run():
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # pragma: no cover - non-Unix
                pass
        await server.start()
        # The loadtest harness parses this line to find the bound port.
        print(f"serving on {server.url} (off_loop={server.off_loop})",
              flush=True)
        try:
            await stop.wait()
        finally:
            print("draining...", file=sys.stderr)
            await server.shutdown()
            stats = server.statz()
            print(
                f"served {stats['counters']['answered_requests']} requests "
                f"({stats['counters']['answered_queries']} queries) in "
                f"{stats['counters']['ticks']} tick(s); "
                f"max loop lag {stats['loop']['max_lag_ms']:.1f} ms",
                file=sys.stderr,
            )

    asyncio.run(run())
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """HTTP serving layer (with ``--port``) or the async smoke demo.

    The smoke demo simulates ``--clients`` concurrent asyncio clients,
    each awaiting its own small random batch against one
    :class:`~repro.engine.AsyncBatchEngine`, then checks the batched
    answers against serial :meth:`~repro.engine.Engine.answer` calls
    and prints tick statistics and amortized per-query latency.
    """
    engine = _serve_engine(args)
    if args.port is not None:
        return _run_server(args, engine)
    matrix = engine.private  # smoke demo queries the private shape
    requests = [
        QueryRequest(
            *random_workload(
                matrix.shape, args.queries_per_client, rng=args.seed + 3 + i
            ).as_arrays(),
            workload=f"client-{i}",
        )
        for i in range(args.clients)
    ]

    async def demo():
        batcher = AsyncBatchEngine(engine)
        start = time.perf_counter()
        answers = await gather_answers(batcher, requests)
        elapsed = time.perf_counter() - start
        return answers, elapsed, batcher.stats

    answers, batched_seconds, stats = asyncio.run(demo())

    start = time.perf_counter()
    serial = [engine.answer(request) for request in requests]
    serial_seconds = time.perf_counter() - start
    drift = max(
        (float(np.abs(s.answers - a.answers).max()) if len(a) else 0.0)
        for s, a in zip(serial, answers)
    )
    n_queries = sum(len(a) for a in answers)
    plans = sorted({a.plan for a in answers})
    print(
        f"served {stats['answered_requests']:.0f} clients "
        f"({n_queries} queries) in {stats['ticks']:.0f} tick(s), "
        f"plan(s) {'+'.join(plans)}; "
        f"batched {1e6 * batched_seconds / max(1, n_queries):.1f} us/query "
        f"vs serial {1e6 * serial_seconds / max(1, n_queries):.1f} us/query; "
        f"max |batched - serial| = {drift:.3g}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DP publication of OD matrices with intermediate stops "
                    "(EDBT 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("methods", help="list sanitization methods")

    p_san = sub.add_parser("sanitize", help="sanitize one dataset")
    _add_dataset_args(p_san)
    p_san.add_argument("--method", default="daf_entropy",
                       choices=available_methods())
    p_san.add_argument("--epsilon", type=float, default=0.1)
    p_san.add_argument("--n-queries", type=int, default=500)
    p_san.add_argument("--output", help="write publishable JSON here")
    _add_engine_config_arg(p_san)

    p_fig = sub.add_parser("figure", help="regenerate a paper artifact")
    p_fig.add_argument("artifact", choices=sorted(ALL_ARTIFACTS))
    p_fig.add_argument("--scale", default="tiny",
                       choices=["tiny", "small", "paper"])
    p_fig.add_argument("--seed", type=int, default=2022)
    p_fig.add_argument("--n-jobs", type=int, default=None,
                       help="trial parallelism: 1 = serial (default), "
                            "k > 1 = worker processes, -1 = all cores; "
                            "results are identical across settings")
    p_fig.add_argument("--n-shards", type=int, default=None,
                       help="force the sharded query engine with this many "
                            "partition-axis shards per trial (default: let "
                            "the planner choose; answers agree within 1e-9)")
    _add_engine_config_arg(p_fig)

    p_cmp = sub.add_parser("compare", help="compare methods on one dataset")
    _add_dataset_args(p_cmp)
    p_cmp.add_argument("--methods", nargs="*",
                       help="subset of methods (default: all)")
    p_cmp.add_argument("--epsilon", type=float, default=0.1)
    p_cmp.add_argument("--n-queries", type=int, default=500)
    _add_engine_config_arg(p_cmp)

    p_srv = sub.add_parser(
        "serve",
        help="HTTP serving layer (--port) or the async micro-batching "
             "smoke demo (no --port)",
    )
    _add_dataset_args(p_srv)
    p_srv.add_argument("--method", default="ag", choices=available_methods())
    p_srv.add_argument("--epsilon", type=float, default=0.5)
    p_srv.add_argument("--clients", type=int, default=32,
                       help="simulated concurrent clients (smoke demo)")
    p_srv.add_argument("--queries-per-client", type=int, default=4)
    p_srv.add_argument("--host", default="127.0.0.1",
                       help="bind address for the HTTP server")
    p_srv.add_argument("--port", type=int, default=None,
                       help="run the real HTTP server on this port "
                            "(0 = ephemeral; omit for the smoke demo)")
    p_srv.add_argument("--off-loop", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="run each tick's kernel in a worker thread so "
                            "the event loop stays responsive (default on; "
                            "--no-off-loop runs kernels on the loop)")
    p_srv.add_argument("--max-pending", type=int, default=1024,
                       help="requests in flight before 503 backpressure")
    p_srv.add_argument("--request-timeout", type=float, default=30.0,
                       help="per-request deadline in seconds (504 past it)")
    p_srv.add_argument("--max-batch-queries", type=int, default=100_000,
                       help="largest query batch one POST may carry (413)")
    p_srv.add_argument("--bench-substrate", type=int, default=None,
                       metavar="M",
                       help="serve a deterministic M-per-dimension "
                            "uniform-grid substrate (k=M^2 partitions) "
                            "instead of sanitizing a dataset — for load "
                            "tests that verify exactness out-of-process")
    p_srv.add_argument("--bench-shape", type=int, default=256,
                       help="square side of the bench substrate matrix")
    p_srv.add_argument("--shard-executor", default=None,
                       choices=list(SHARD_EXECUTORS),
                       help="how sharded batches execute: 'serial' "
                            "in-process, or 'resident' through a "
                            "persistent shard-worker pool over "
                            "shared-memory shards (selects the sharded "
                            "plan; shorthand for the engine-config field)")
    p_srv.add_argument("--n-shards", type=int, default=None,
                       help="partition-axis shard count for the sharded "
                            "plan (shorthand for the engine-config field)")
    _add_engine_config_arg(p_srv)

    return parser


def main(argv: List[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "methods": cmd_methods,
        "sanitize": cmd_sanitize,
        "figure": cmd_figure,
        "compare": cmd_compare,
        "serve": cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
