"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``methods``
    List registered sanitization methods.
``sanitize``
    Generate a dataset (synthetic or city), sanitize it with one method,
    report accuracy, and optionally write the publishable JSON payload.
``figure``
    Regenerate one paper artifact (figure4..figure8, table3) at a chosen
    scale and print its panels.
``compare``
    MRE comparison table of several methods on one dataset.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List

from .core.frequency_matrix import FrequencyMatrix
from .datagen import get_city, gaussian_matrix, zipf_matrix
from .experiments import ALL_ARTIFACTS, get_scale
from .methods import available_methods, get_sanitizer
from .queries import WorkloadEvaluator, random_workload


def _build_dataset(args: argparse.Namespace) -> FrequencyMatrix:
    if args.dataset in ("new_york", "denver", "detroit"):
        return get_city(args.dataset).population_matrix(
            n_points=args.n_points, resolution=args.resolution, rng=args.seed
        )
    if args.dataset == "gaussian":
        return gaussian_matrix(
            args.dims, variance=args.variance, n_points=args.n_points,
            rng=args.seed,
        )
    if args.dataset == "zipf":
        return zipf_matrix(
            args.dims, a=args.zipf_a, n_points=args.n_points, rng=args.seed
        )
    raise SystemExit(f"unknown dataset {args.dataset!r}")


def _add_dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", default="new_york",
        choices=["new_york", "denver", "detroit", "gaussian", "zipf"],
        help="city profile or synthetic distribution",
    )
    parser.add_argument("--n-points", type=int, default=100_000)
    parser.add_argument("--resolution", type=int, default=256,
                        help="city grid resolution (city datasets)")
    parser.add_argument("--dims", type=int, default=2,
                        help="dimensionality (synthetic datasets)")
    parser.add_argument("--variance", type=float, default=100.0,
                        help="Gaussian cluster variance")
    parser.add_argument("--zipf-a", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=0)


def cmd_methods(_: argparse.Namespace) -> int:
    for name in available_methods():
        print(f"{name:18s} {type(get_sanitizer(name)).__doc__.strip().splitlines()[0]}")
    return 0


def cmd_sanitize(args: argparse.Namespace) -> int:
    matrix = _build_dataset(args)
    print(f"dataset: shape={matrix.shape}, N={matrix.total:,.0f}",
          file=sys.stderr)
    sanitizer = get_sanitizer(args.method)
    start = time.perf_counter()
    private = sanitizer.sanitize(matrix, args.epsilon, rng=args.seed + 1)
    elapsed = time.perf_counter() - start
    workload = random_workload(matrix.shape, args.n_queries, rng=args.seed + 2)
    result = WorkloadEvaluator(matrix).evaluate(private, workload)
    print(
        f"method={args.method} eps={args.epsilon} "
        f"partitions={private.n_partitions} time={elapsed:.2f}s "
        f"MRE={result.mre:.2f}%",
        file=sys.stderr,
    )
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(private.to_publishable(), fh)
        print(f"wrote publishable payload to {args.output}", file=sys.stderr)
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    if args.artifact not in ALL_ARTIFACTS:
        raise SystemExit(
            f"unknown artifact {args.artifact!r}; "
            f"available: {sorted(ALL_ARTIFACTS)}"
        )
    scale = get_scale(args.scale)
    if args.n_jobs is not None:
        scale = scale.with_overrides(n_jobs=args.n_jobs)
    if args.n_shards is not None:
        scale = scale.with_overrides(n_shards=args.n_shards)
    result = ALL_ARTIFACTS[args.artifact](scale=scale, rng=args.seed)
    columns = [c for c in result.rows[0] if c not in ("mre_std", "n_trials")]
    print(result.to_text(columns))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    matrix = _build_dataset(args)
    evaluator = WorkloadEvaluator(matrix)
    workload = random_workload(matrix.shape, args.n_queries, rng=args.seed + 2)
    methods: List[str] = args.methods or available_methods()
    print(f"{'method':18s} {'MRE %':>10s} {'partitions':>11s} {'time':>8s}")
    for name in methods:
        start = time.perf_counter()
        private = get_sanitizer(name).sanitize(
            matrix, args.epsilon, rng=args.seed + 1
        )
        elapsed = time.perf_counter() - start
        mre = evaluator.evaluate(private, workload).mre
        print(f"{name:18s} {mre:10.2f} {private.n_partitions:11d} "
              f"{elapsed:7.2f}s")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DP publication of OD matrices with intermediate stops "
                    "(EDBT 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("methods", help="list sanitization methods")

    p_san = sub.add_parser("sanitize", help="sanitize one dataset")
    _add_dataset_args(p_san)
    p_san.add_argument("--method", default="daf_entropy",
                       choices=available_methods())
    p_san.add_argument("--epsilon", type=float, default=0.1)
    p_san.add_argument("--n-queries", type=int, default=500)
    p_san.add_argument("--output", help="write publishable JSON here")

    p_fig = sub.add_parser("figure", help="regenerate a paper artifact")
    p_fig.add_argument("artifact", choices=sorted(ALL_ARTIFACTS))
    p_fig.add_argument("--scale", default="tiny",
                       choices=["tiny", "small", "paper"])
    p_fig.add_argument("--seed", type=int, default=2022)
    p_fig.add_argument("--n-jobs", type=int, default=None,
                       help="trial parallelism: 1 = serial (default), "
                            "k > 1 = worker processes, -1 = all cores; "
                            "results are identical across settings")
    p_fig.add_argument("--n-shards", type=int, default=None,
                       help="force the sharded query engine with this many "
                            "partition-axis shards per trial (default: let "
                            "the planner choose; answers agree within 1e-9)")

    p_cmp = sub.add_parser("compare", help="compare methods on one dataset")
    _add_dataset_args(p_cmp)
    p_cmp.add_argument("--methods", nargs="*",
                       help="subset of methods (default: all)")
    p_cmp.add_argument("--epsilon", type=float, default=0.1)
    p_cmp.add_argument("--n-queries", type=int, default=500)

    return parser


def main(argv: List[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "methods": cmd_methods,
        "sanitize": cmd_sanitize,
        "figure": cmd_figure,
        "compare": cmd_compare,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
