"""EngineServer HTTP transport: exactness, flow control, edge cases.

Every test boots a real :class:`EngineServer` on an ephemeral port
inside the test's own event loop and talks to it over actual TCP via
:class:`AsyncServingClient` (or raw sockets for the malformed-wire
cases) — no mocked transports.  The headline guarantee mirrors the
async-batch suite one level up the stack: answers that crossed HTTP
are **bit-identical** to in-process ``Engine.answer`` (drift exactly
0.0), because the JSON transport round-trips float64 through ``repr``.
"""

import asyncio
import json
import time

import numpy as np
import pytest

from repro.core import PrivateFrequencyMatrix, packed_from_intervals
from repro.core.exceptions import ValidationError
from repro.engine import (
    AsyncServingClient,
    Engine,
    EngineConfig,
    EngineServer,
    QueryRequest,
    ServingError,
)
from repro.methods._grid import axis_intervals

SHAPE = (128, 128)


def grid_private(m=32):
    rng = np.random.default_rng(0)
    intervals = [axis_intervals(s, m) for s in SHAPE]
    noisy = rng.poisson(40.0, size=m * m).astype(float)
    noisy += rng.laplace(0.0, 2.0, size=m * m)
    packed = packed_from_intervals(intervals, noisy, SHAPE)
    return PrivateFrequencyMatrix.from_packed(packed, method="grid")


def client_requests(n_clients, rng, q_low=1, q_high=6):
    requests = []
    for i in range(n_clients):
        q = int(rng.integers(q_low, q_high))
        a = rng.integers(0, SHAPE[0], size=(q, 2))
        b = rng.integers(0, SHAPE[0], size=(q, 2))
        requests.append(
            QueryRequest(
                np.minimum(a, b).astype(np.int64),
                np.maximum(a, b).astype(np.int64),
                workload=f"client-{i}",
            )
        )
    return requests


class SlowEngine:
    """Wraps a real engine, holding each tick for ``delay`` seconds."""

    def __init__(self, engine, delay=0.3):
        self._engine = engine
        self.delay = delay
        self.config = engine.config
        self.private = engine.private

    def answer(self, request):
        time.sleep(self.delay)
        return self._engine.answer(request)


@pytest.fixture(scope="module")
def private():
    return grid_private()


@pytest.fixture(scope="module")
def engine(private):
    return Engine(private, EngineConfig(plan="broadcast"))


def serve(engine, **kwargs):
    kwargs.setdefault("port", 0)
    return EngineServer(engine, **kwargs)


async def raw_exchange(port, payload: bytes, host="127.0.0.1"):
    """Write raw bytes, read one full HTTP response, close."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(payload)
    await writer.drain()
    status_line = await asyncio.wait_for(reader.readline(), 5.0)
    headers = {}
    while True:
        line = await asyncio.wait_for(reader.readline(), 5.0)
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    raw = await reader.readexactly(length) if length else b""
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionResetError, BrokenPipeError):
        pass
    status = int(status_line.split()[1])
    body = json.loads(raw) if raw else {}
    return status, headers, body


def post_bytes(path, body: bytes) -> bytes:
    return (
        f"POST {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode("latin-1") + body


class TestExactness:
    @pytest.mark.parametrize("off_loop", [True, False])
    def test_http_answers_bit_identical(self, engine, off_loop):
        requests = client_requests(8, np.random.default_rng(1))

        async def run():
            async with serve(engine, off_loop=off_loop) as server:
                async with AsyncServingClient(port=server.port) as client:
                    return [
                        await client.query_request(r) for r in requests
                    ]

        answers = asyncio.run(run())
        for request, answer in zip(requests, answers):
            serial = engine.answer(request)
            diff = float(np.abs(serial.answers - answer.answers).max())
            assert diff == 0.0, f"off_loop={off_loop}: HTTP drifted {diff}"
            assert answer.plan == serial.plan
            assert answer.workload == request.workload

    def test_concurrent_clients_share_ticks_exactly(self, engine):
        requests = client_requests(12, np.random.default_rng(2))

        async def run():
            async with serve(
                engine, max_batch_size=12, max_batch_latency=0.05
            ) as server:

                async def one(request):
                    async with AsyncServingClient(port=server.port) as c:
                        return await c.query_request(request)

                answers = await asyncio.gather(*(one(r) for r in requests))
                stats = server.statz()
            return answers, stats

        answers, stats = asyncio.run(run())
        assert stats["counters"]["ticks"] < len(requests)  # coalesced
        for request, answer in zip(requests, answers):
            assert (
                float(
                    np.abs(engine.answer(request).answers - answer.answers).max()
                )
                == 0.0
            )

    def test_empty_batch_round_trips(self, engine):
        async def run():
            async with serve(engine) as server:
                async with AsyncServingClient(port=server.port) as client:
                    return await client.query([], [])

        answer = asyncio.run(run())
        assert answer.n_queries == 0
        assert answer.answers.shape == (0,)


class TestBadRequests:
    def test_malformed_json_is_400_with_error_body(self, engine):
        async def run():
            async with serve(engine) as server:
                return await raw_exchange(
                    server.port, post_bytes("/v1/query", b"{not json")
                )

        status, _, body = asyncio.run(run())
        assert status == 400
        assert "invalid JSON" in body["error"]

    def test_non_object_body_is_400(self, engine):
        async def run():
            async with serve(engine) as server:
                return await raw_exchange(
                    server.port, post_bytes("/v1/query", b"[1, 2, 3]")
                )

        status, _, body = asyncio.run(run())
        assert status == 400
        assert "JSON object" in body["error"]

    def test_ragged_arrays_are_400(self, engine):
        payload = json.dumps(
            {"lows": [[0, 0], [1]], "highs": [[2, 2], [3, 3]]}
        ).encode()

        async def run():
            async with serve(engine) as server:
                return await raw_exchange(
                    server.port, post_bytes("/v1/query", payload)
                )

        status, _, body = asyncio.run(run())
        assert status == 400
        assert "lows/highs" in body["error"]

    def test_out_of_range_query_is_400(self, engine):
        async def run():
            async with serve(engine) as server:
                async with AsyncServingClient(port=server.port) as client:
                    with pytest.raises(ServingError) as excinfo:
                        await client.query([[0, 0]], [[999, 999]])
            return excinfo.value

        error = asyncio.run(run())
        assert error.status == 400
        assert "outside matrix shape" in str(error)

    def test_malformed_request_line_is_400(self, engine):
        async def run():
            async with serve(engine) as server:
                return await raw_exchange(server.port, b"GARBAGE\r\n\r\n")

        status, headers, _ = asyncio.run(run())
        assert status == 400
        assert headers.get("connection") == "close"

    def test_unknown_route_is_404_and_wrong_method_is_405(self, engine):
        async def run():
            async with serve(engine) as server:
                async with AsyncServingClient(port=server.port) as client:
                    missing = await client.request("GET", "/nope")
                    wrong = await client.request("GET", "/v1/query")
            return missing, wrong

        (missing_status, _, _), (wrong_status, _, wrong_body) = asyncio.run(
            run()
        )
        assert missing_status == 404
        assert wrong_status == 405
        assert "POST" in wrong_body["error"]


class TestFlowControl:
    def test_oversized_batch_is_413(self, engine):
        async def run():
            async with serve(engine, max_batch_queries=4) as server:
                async with AsyncServingClient(port=server.port) as client:
                    lows = [[0, 0]] * 5
                    highs = [[10, 10]] * 5
                    with pytest.raises(ServingError) as excinfo:
                        await client.query(lows, highs)
                    stats = await client.statz()
            return excinfo.value, stats

        error, stats = asyncio.run(run())
        assert error.status == 413
        assert error.payload["max_batch_queries"] == 4
        assert stats["counters"]["rejected_oversized"] == 1

    def test_oversized_body_is_413(self, engine):
        async def run():
            async with serve(engine, max_body_bytes=64) as server:
                return await raw_exchange(
                    server.port, post_bytes("/v1/query", b"x" * 65)
                )

        status, _, body = asyncio.run(run())
        assert status == 413
        assert body["max_body_bytes"] == 64

    def test_queue_full_is_503_with_retry_after(self, engine):
        slow = SlowEngine(engine, delay=0.3)

        async def run():
            async with serve(
                slow,
                max_pending_requests=1,
                max_batch_size=1,
                retry_after=2.5,
            ) as server:
                async with AsyncServingClient(port=server.port) as first:
                    request = client_requests(1, np.random.default_rng(3))[0]
                    task = asyncio.ensure_future(first.query_request(request))
                    while server._in_progress < 1:
                        await asyncio.sleep(0.005)
                    async with AsyncServingClient(port=server.port) as second:
                        with pytest.raises(ServingError) as excinfo:
                            await second.query([[0, 0]], [[1, 1]])
                    answer = await task
                stats = server.statz()
            return excinfo.value, answer, request, stats

        error, answer, request, stats = asyncio.run(run())
        assert error.status == 503
        assert error.retry_after == 2.5
        assert stats["counters"]["rejected_queue_full"] == 1
        # The request that held the queue slot still answered exactly.
        assert (
            float(np.abs(engine.answer(request).answers - answer.answers).max())
            == 0.0
        )

    def test_slow_tick_times_out_as_504(self, engine):
        slow = SlowEngine(engine, delay=0.5)

        async def run():
            async with serve(
                slow, request_timeout=0.05, max_batch_size=1
            ) as server:
                async with AsyncServingClient(port=server.port) as client:
                    with pytest.raises(ServingError) as excinfo:
                        await client.query([[0, 0]], [[1, 1]])
                    stats = await client.statz()
            return excinfo.value, stats

        error, stats = asyncio.run(run())
        assert error.status == 504
        assert error.payload["timeout_seconds"] == 0.05
        assert stats["counters"]["timeouts"] == 1

    def test_client_disconnect_mid_tick_leaves_tick_unharmed(self, engine):
        slow = SlowEngine(engine, delay=0.2)
        survivor, doomed = client_requests(2, np.random.default_rng(4))

        async def run():
            async with serve(
                slow, max_batch_size=2, max_batch_latency=30.0
            ) as server:
                async with AsyncServingClient(port=server.port) as client:
                    # The doomed client joins the tick, then vanishes
                    # before its answer can be written back.
                    body = json.dumps(
                        {
                            "lows": np.asarray(doomed.lows).tolist(),
                            "highs": np.asarray(doomed.highs).tolist(),
                        }
                    ).encode()
                    _, rude_writer = await asyncio.open_connection(
                        "127.0.0.1", server.port
                    )
                    rude_writer.write(post_bytes("/v1/query", body))
                    await rude_writer.drain()
                    task = asyncio.ensure_future(
                        client.query_request(survivor)
                    )
                    await asyncio.sleep(0.02)
                    rude_writer.close()
                    answer = await task
            return answer

        answer = asyncio.run(run())
        assert (
            float(
                np.abs(engine.answer(survivor).answers - answer.answers).max()
            )
            == 0.0
        )


class TestStatzAndHealth:
    def test_healthz_ok_while_serving(self, engine):
        async def run():
            async with serve(engine) as server:
                async with AsyncServingClient(port=server.port) as client:
                    return await client.healthz()

        assert asyncio.run(run())["status"] == "ok"

    def test_statz_counters_monotone_under_concurrent_load(self, engine):
        requests = client_requests(10, np.random.default_rng(5))
        monotone = [
            "connections_total",
            "requests_total",
            "answered_requests",
            "answered_queries",
            "ticks",
        ]

        async def run():
            async with serve(
                engine, max_batch_size=4, max_batch_latency=0.02
            ) as server:
                async with AsyncServingClient(port=server.port) as probe:
                    snapshots = [await probe.statz()]

                    async def one(request):
                        async with AsyncServingClient(port=server.port) as c:
                            return await c.query_request(request)

                    for wave in (requests[:5], requests[5:]):
                        await asyncio.gather(*(one(r) for r in wave))
                        snapshots.append(await probe.statz())
            return snapshots

        snapshots = asyncio.run(run())
        for before, after in zip(snapshots, snapshots[1:]):
            for key in monotone:
                assert after["counters"][key] >= before["counters"][key]
        final = snapshots[-1]["counters"]
        assert final["answered_requests"] == len(requests)
        assert final["answered_queries"] == sum(
            r.n_queries for r in requests
        )
        assert final["dropped_requests"] == 0
        assert snapshots[-1]["latency_ms"]["count"] == len(requests)
        assert snapshots[-1]["latency_ms"]["p50"] <= snapshots[-1][
            "latency_ms"
        ]["max"]

    def test_statz_reports_off_loop_and_loop_lag(self, engine):
        async def run():
            async with serve(engine, off_loop=True) as server:
                async with AsyncServingClient(port=server.port) as client:
                    await client.query([[0, 0]], [[5, 5]])
                    await asyncio.sleep(0.02)  # a few heartbeats
                    return await client.statz()

        stats = asyncio.run(run())
        assert stats["off_loop"] is True
        assert stats["loop"]["beats"] > 0
        assert stats["loop"]["max_lag_ms"] >= 0.0
        assert stats["queue"]["max_pending_requests"] >= 1


class TestLifecycle:
    def test_graceful_drain_finishes_inflight_then_refuses(self, engine):
        slow = SlowEngine(engine, delay=0.2)
        request = client_requests(1, np.random.default_rng(6))[0]

        async def run():
            server = serve(slow, max_batch_size=1)
            await server.start()
            client = AsyncServingClient(port=server.port)
            task = asyncio.ensure_future(client.query_request(request))
            while server._in_progress < 1:
                await asyncio.sleep(0.005)
            shutdown = asyncio.ensure_future(server.shutdown())
            answer = await task  # in-flight tick completes during drain
            await shutdown
            await client.close()
            # The port no longer accepts connections at all.
            with pytest.raises(OSError):
                await asyncio.open_connection("127.0.0.1", server.port)
            return answer

        answer = asyncio.run(run())
        assert (
            float(np.abs(engine.answer(request).answers - answer.answers).max())
            == 0.0
        )

    def test_draining_server_refuses_queries_and_health(self, engine):
        async def run():
            async with serve(engine) as server:
                async with AsyncServingClient(port=server.port) as client:
                    server._draining = True  # simulate mid-drain window
                    health_status, health_headers, _ = await client.request(
                        "GET", "/healthz"
                    )
                    query_status, query_headers, _ = await client.request(
                        "POST",
                        "/v1/query",
                        json.dumps(
                            {"lows": [[0, 0]], "highs": [[1, 1]]}
                        ).encode(),
                    )
                    server._draining = False
            return (
                health_status,
                health_headers,
                query_status,
                query_headers,
            )

        health_status, health_headers, query_status, query_headers = (
            asyncio.run(run())
        )
        assert health_status == 503
        assert query_status == 503
        assert "retry-after" in health_headers
        assert "retry-after" in query_headers

    def test_invalid_limits_rejected(self, engine):
        with pytest.raises(ValidationError, match="max_pending_requests"):
            EngineServer(engine, max_pending_requests=0)
        with pytest.raises(ValidationError, match="max_batch_queries"):
            EngineServer(engine, max_batch_queries=0)
        with pytest.raises(ValidationError, match="request_timeout"):
            EngineServer(engine, request_timeout=0.0)

    def test_keep_alive_serves_many_requests_per_connection(self, engine):
        async def run():
            async with serve(engine) as server:
                async with AsyncServingClient(port=server.port) as client:
                    for _ in range(5):
                        await client.query([[0, 0]], [[5, 5]])
                    stats = await client.statz()
            return stats

        stats = asyncio.run(run())
        # All five queries (plus the statz) rode one TCP connection.
        assert stats["counters"]["connections_total"] == 1
        assert stats["counters"]["answered_requests"] == 5
