"""EngineConfig: validation, string/env overrides, cost-rule threading."""

import pytest

from repro.core import PlanCost, QueryError, ValidationError
from repro.core.interval_index import (
    PRUNE_MIN_PARTITIONS,
    PRUNE_OVERHEAD_PAIRS,
    PRUNE_SAFETY_FACTOR,
)
from repro.core.private_matrix import (
    DENSE_SWITCH_FACTOR,
    DENSE_SWITCH_MAX_CELLS,
)
from repro.engine import ENGINE_PLANS, SHARD_EXECUTORS, EngineConfig


class TestDefaultsAndValidation:
    def test_defaults_mirror_module_constants(self):
        config = EngineConfig()
        assert config.dense_switch_factor == DENSE_SWITCH_FACTOR
        assert config.dense_switch_max_cells == DENSE_SWITCH_MAX_CELLS
        assert config.prune_min_partitions == PRUNE_MIN_PARTITIONS
        assert config.prune_overhead_pairs == PRUNE_OVERHEAD_PAIRS
        assert config.prune_safety_factor == PRUNE_SAFETY_FACTOR
        assert config.plan is None and not config.wants_sharding

    @pytest.mark.parametrize("plan", ENGINE_PLANS)
    def test_known_plans_accepted(self, plan):
        assert EngineConfig(plan=plan).plan == plan

    def test_unknown_plan_rejected(self):
        with pytest.raises(QueryError, match="unknown packed query plan"):
            EngineConfig(plan="sideways")

    def test_sharding_knobs_imply_sharded_only(self):
        assert EngineConfig(n_shards=3).wants_sharding
        assert EngineConfig(shard_executor=object()).wants_sharding
        assert EngineConfig(shard_executor="serial").wants_sharding
        assert EngineConfig(shard_executor="resident").wants_sharding
        assert EngineConfig(plan="sharded", n_shards=3).n_shards == 3
        with pytest.raises(QueryError, match="sharded"):
            EngineConfig(plan="broadcast", n_shards=3)
        with pytest.raises(QueryError, match="n_shards"):
            EngineConfig(n_shards=0)

    @pytest.mark.parametrize("field,value", [
        ("dense_switch_factor", 0),
        ("prune_safety_factor", -1.0),
        ("prune_overhead_pairs", 0),
        ("dense_switch_max_cells", -1),
        ("prune_min_partitions", -5),
        ("max_batch_size", 0),
        ("max_batch_latency", -0.1),
    ])
    def test_numeric_fields_validated(self, field, value):
        with pytest.raises(ValidationError, match=field):
            EngineConfig(**{field: value})

    def test_plan_cost_carries_prune_fields(self):
        config = EngineConfig(
            prune_min_partitions=9,
            prune_overhead_pairs=1.5,
            prune_safety_factor=2.0,
        )
        assert config.plan_cost() == PlanCost(
            min_partitions=9, overhead_pairs=1.5, safety_factor=2.0
        )

    def test_with_overrides_revalidates(self):
        config = EngineConfig()
        assert config.with_overrides(n_shards=4).n_shards == 4
        with pytest.raises(QueryError):
            config.with_overrides(plan="pruned", n_shards=4)


class TestStringOverrides:
    def test_parse_types(self):
        overrides = EngineConfig.parse_overrides(
            "plan=sharded, n_shards=4, prune_safety_factor=2.5,"
            "max_batch_size=32, max_batch_latency=0.01"
        )
        assert overrides == {
            "plan": "sharded",
            "n_shards": 4,
            "prune_safety_factor": 2.5,
            "max_batch_size": 32,
            "max_batch_latency": 0.01,
        }

    def test_from_string_layers_on_base(self):
        base = EngineConfig(max_batch_size=16)
        config = EngineConfig.from_string("plan=dense", base=base)
        assert config.plan == "dense" and config.max_batch_size == 16

    def test_none_clears_optional_field(self):
        base = EngineConfig(n_shards=4)
        assert EngineConfig.from_string("n_shards=none", base=base).n_shards is None

    def test_none_rejected_for_required_fields(self):
        # Clearing a threshold has no meaning; it must be a clean
        # ValidationError, not a TypeError out of __post_init__.
        with pytest.raises(ValidationError, match="cannot be cleared"):
            EngineConfig.from_string("max_batch_size=none")
        with pytest.raises(ValidationError, match="cannot be cleared"):
            EngineConfig.from_env(
                environ={"REPRO_ENGINE_DENSE_SWITCH_FACTOR": "none"}
            )

    def test_empty_string_is_noop(self):
        assert EngineConfig.from_string("") == EngineConfig()

    @pytest.mark.parametrize("text,match", [
        ("plan", "key=value"),
        ("bogus=1", "unknown engine-config field"),
        ("n_shards=lots", "bad value"),
    ])
    def test_malformed_rejected(self, text, match):
        with pytest.raises(ValidationError, match=match):
            EngineConfig.parse_overrides(text)

    @pytest.mark.parametrize("mode", SHARD_EXECUTORS)
    def test_shard_executor_named_modes_parse(self, mode):
        config = EngineConfig.from_string(f"shard_executor={mode}")
        assert config.shard_executor == mode
        assert config.wants_sharding  # executor alone selects sharding

    def test_shard_executor_unknown_name_rejected(self):
        # Parses (it's a known string field) but fails config
        # validation, like an unknown plan name.
        with pytest.raises(QueryError, match="unknown shard_executor"):
            EngineConfig.from_string("shard_executor=turbo")
        with pytest.raises(QueryError, match="unknown shard_executor"):
            EngineConfig(shard_executor="turbo")

    def test_shard_executor_cleared_with_none(self):
        base = EngineConfig(shard_executor="resident")
        cleared = EngineConfig.from_string("shard_executor=none", base=base)
        assert cleared.shard_executor is None
        assert not cleared.wants_sharding


class TestEnvOverrides:
    def test_env_vars_override(self):
        environ = {
            "REPRO_ENGINE_PLAN": "sharded",
            "REPRO_ENGINE_N_SHARDS": "5",
            "REPRO_ENGINE_MAX_BATCH_LATENCY": "0.5",
        }
        config = EngineConfig.from_env(environ=environ)
        assert config.plan == "sharded"
        assert config.n_shards == 5
        assert config.max_batch_latency == 0.5

    def test_empty_and_absent_vars_keep_base(self):
        base = EngineConfig(n_shards=2)
        config = EngineConfig.from_env(
            base=base, environ={"REPRO_ENGINE_PLAN": ""}
        )
        assert config == base

    def test_real_environ_consulted(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_PRUNE_SAFETY_FACTOR", "3.5")
        assert EngineConfig.from_env().prune_safety_factor == 3.5
