"""The kwarg-era shims: one DeprecationWarning, identical results.

``PrivateFrequencyMatrix.answer_arrays`` / ``answer_sharded`` survive as
thin shims over :class:`repro.engine.Engine`.  This suite is the one
place the old entry points are still called on purpose: each call must
emit a :class:`DeprecationWarning` pointing at ``Engine.answer``, and
return results identical to the facade — values, reported plans,
per-shard evidence, and errors alike.
"""

import warnings

import numpy as np
import pytest

from repro.core import (
    PLAN_BROADCAST,
    PLAN_DENSE,
    PLAN_PRUNED,
    PLAN_SHARDED,
    FrequencyMatrix,
    PrivateFrequencyMatrix,
    QueryError,
)
from repro.engine import Engine, EngineConfig, QueryRequest
from repro.methods import get_sanitizer

SHAPE = (32, 32)


@pytest.fixture(scope="module")
def private():
    rng = np.random.default_rng(3)
    matrix = FrequencyMatrix(rng.poisson(3.0, SHAPE).astype(float))
    return get_sanitizer("kdtree").sanitize(matrix, 0.5, 7)


@pytest.fixture(scope="module")
def bounds():
    rng = np.random.default_rng(5)
    a = rng.integers(0, SHAPE[0], size=(40, 2))
    b = rng.integers(0, SHAPE[0], size=(40, 2))
    return np.minimum(a, b).astype(np.int64), np.maximum(a, b).astype(np.int64)


def call_with_single_deprecation(fn, *args, **kwargs):
    """Invoke ``fn`` asserting exactly one DeprecationWarning fires."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = fn(*args, **kwargs)
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1, f"expected 1 warning, got {deprecations}"
    assert "Engine.answer" in str(deprecations[0].message)
    return result


class TestAnswerArraysShim:
    @pytest.mark.parametrize(
        "plan", [None, PLAN_DENSE, PLAN_BROADCAST, PLAN_PRUNED]
    )
    def test_identical_results_per_plan(self, private, bounds, plan):
        lows, highs = bounds
        old, old_plan = call_with_single_deprecation(
            private.answer_arrays, lows, highs, plan=plan, return_plan=True
        )
        new = Engine(private, EngineConfig(plan=plan)).answer(
            QueryRequest(lows, highs)
        )
        np.testing.assert_array_equal(old, new.answers)  # bit-identical
        assert old_plan == new.plan

    def test_n_shards_kwarg_selects_sharded(self, private, bounds):
        lows, highs = bounds
        old, old_plan = call_with_single_deprecation(
            private.answer_arrays, lows, highs, n_shards=3, return_plan=True
        )
        assert old_plan == PLAN_SHARDED
        new = Engine(private, EngineConfig(n_shards=3)).answer(
            QueryRequest(lows, highs)
        )
        np.testing.assert_array_equal(old, new.answers)

    def test_default_return_shape_unchanged(self, private, bounds):
        lows, highs = bounds
        old = call_with_single_deprecation(
            private.answer_arrays, lows, highs
        )
        assert isinstance(old, np.ndarray)  # no tuple without return_plan

    def test_old_errors_preserved(self, private):
        one = np.zeros((1, 2), dtype=np.int64)
        with pytest.raises(QueryError, match="sharded"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                private.answer_arrays(one, one, plan=PLAN_PRUNED, n_shards=2)
        with pytest.raises(QueryError, match="unknown packed query plan"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                private.answer_arrays(one, one, plan="sideways")


class TestAnswerShardedShim:
    def test_identical_evidence(self, private, bounds):
        lows, highs = bounds
        old = call_with_single_deprecation(
            private.answer_sharded, lows, highs, n_shards=3
        )
        new = Engine(private, EngineConfig(n_shards=3)).answer_sharded(
            lows, highs
        )
        np.testing.assert_array_equal(old.answers, new.answers)
        assert old.plans == new.plans
        assert old.bounds == new.bounds

    def test_dense_backed_still_rejected(self):
        dense = PrivateFrequencyMatrix.from_dense_noisy(np.ones((8, 8)))
        one = np.zeros((1, 2), dtype=np.int64)
        with pytest.raises(QueryError, match="dense-backed"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                dense.answer_sharded(one, one, n_shards=2)

    def test_dense_backed_empty_batch_with_n_shards_stays_empty(self):
        # The kwarg API returned an empty vector (plan "sharded")
        # before ever checking the backend; the shim must too.
        dense = PrivateFrequencyMatrix.from_dense_noisy(np.ones((8, 8)))
        empty = np.empty((0, 2), dtype=np.int64)
        answers, plan = call_with_single_deprecation(
            dense.answer_arrays, empty, empty, n_shards=2, return_plan=True
        )
        assert answers.size == 0 and plan == PLAN_SHARDED


class TestInternalPathsDoNotWarn:
    def test_answer_many_is_warning_free(self, private):
        boxes = [((0, 10), (0, 10)), ((5, 20), (4, 30))]
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            private.answer_many(boxes)
            private.plan_queries(
                np.array([[0, 0]], dtype=np.int64),
                np.array([[5, 5]], dtype=np.int64),
            )

    def test_evaluator_is_warning_free(self, private):
        from repro.queries import WorkloadEvaluator, random_workload

        rng = np.random.default_rng(11)
        matrix = FrequencyMatrix(rng.poisson(3.0, SHAPE).astype(float))
        workload = random_workload(SHAPE, 20, rng=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            WorkloadEvaluator(matrix, n_shards=2).evaluate(private, workload)
