"""ShardWorkerPool lifecycle and failure paths.

The equivalence suite (``tests/core/test_plan_equivalence.py``) pins
the happy path — pool answers bit-identical to serial sharded
execution across partitioning families and shard counts.  This module
covers everything that can go *wrong* around that path:

* a worker killed hard (``SIGKILL``) between batches is restarted from
  the still-live shm segment and the next batch is still exact;
* a worker dying **mid-batch** triggers restart + one retry of the
  in-flight batch; a second death surfaces as a clean
  :class:`~repro.engine.ServingError` (503) instead of a hang;
* a restart that itself fails surfaces as :class:`ServingError`;
* shutdown is idempotent, unlinks the shared-memory segment exactly
  once, and later ``answer`` calls fail with :class:`ServingError`;
* no path leaks a segment or trips the ``resource_tracker`` — verified
  end-to-end in a subprocess whose stderr must stay silent.
"""

import os
import signal
import subprocess
import sys
import time
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np
import pytest

from repro.core import QueryError, ShmShardLayout, boxes_to_arrays, full_box
from repro.core.sharding import SHARD_SKIPPED
from repro.engine import Engine, EngineConfig, ServingError, ShardWorkerPool
from repro.methods._grid import axis_intervals
from repro.core import PrivateFrequencyMatrix, packed_from_intervals

SHAPE = (32, 32)


def _private(m=8, seed=0):
    rng = np.random.default_rng(seed)
    intervals = [axis_intervals(s, m) for s in SHAPE]
    noisy = rng.poisson(20.0, size=m * m).astype(float)
    packed = packed_from_intervals(intervals, noisy, SHAPE)
    return PrivateFrequencyMatrix.from_packed(packed, method="grid")


def _batch(n=40, seed=1):
    rng = np.random.default_rng(seed)
    boxes = [full_box(SHAPE)]
    for _ in range(n):
        a = rng.integers(0, SHAPE[0], 2)
        b = rng.integers(0, SHAPE[1], 2)
        boxes.append(tuple((min(x, y), max(x, y)) for x, y in zip(a, b)))
    return boxes_to_arrays(boxes)


@pytest.fixture
def private():
    return _private()


@pytest.fixture
def pool(private):
    p = ShardWorkerPool(private.packed, 3)
    yield p
    p.shutdown()


def _serial(private, lows, highs):
    return Engine(
        private, EngineConfig(n_shards=3, shard_executor="serial")
    ).answer_sharded(lows, highs)


def _wait_dead(process, timeout=5.0):
    deadline = time.monotonic() + timeout
    while process.is_alive():
        assert time.monotonic() < deadline, "worker did not die"
        time.sleep(0.01)


class TestLifecycle:
    def test_answers_are_bit_identical_and_workers_persist(
        self, private, pool
    ):
        lows, highs = _batch()
        serial = _serial(private, lows, highs)
        pids = pool.stats()["pids"]
        for _ in range(3):
            result = pool.answer(lows, highs)
            np.testing.assert_array_equal(result.answers, serial.answers)
            assert result.plans == serial.plans
        stats = pool.stats()
        assert stats["pids"] == pids  # same processes across batches
        assert stats["worker_batches"] == [3, 3, 3]
        assert stats["restarts"] == 0 and stats["alive"] == 3

    def test_zero_query_batch_skips_dispatch(self, pool):
        empty = np.empty((0, 2), dtype=np.int64)
        result = pool.answer(empty, empty)
        assert result.answers.size == 0
        assert result.plans == (SHARD_SKIPPED,) * 3
        assert pool.stats()["worker_batches"] == [0, 0, 0]

    def test_ping_heartbeat(self, pool):
        assert pool.ping() == [True, True, True]
        os.kill(pool.stats()["pids"][1], signal.SIGKILL)
        _wait_dead(pool._workers[1].process)
        assert pool.ping() == [True, False, True]

    def test_stats_gauges(self, private, pool):
        stats = pool.stats()
        assert stats["n_workers"] == 3 and stats["alive"] == 3
        assert stats["queue_depth"] == 0 and not stats["closed"]
        assert stats["segment_bytes"] > 0
        assert len(stats["pids"]) == 3
        assert all(isinstance(p, int) for p in stats["pids"])


class TestCrashRecovery:
    def test_sigkill_idle_worker_restarts_on_next_batch(
        self, private, pool
    ):
        lows, highs = _batch()
        serial = _serial(private, lows, highs)
        victim = pool._workers[0].process
        os.kill(victim.pid, signal.SIGKILL)
        _wait_dead(victim)
        result = pool.answer(lows, highs)
        np.testing.assert_array_equal(result.answers, serial.answers)
        stats = pool.stats()
        assert stats["restarts"] == 1
        assert stats["worker_restarts"] == [1, 0, 0]
        assert stats["alive"] == 3
        assert stats["pids"][0] != victim.pid

    def test_crash_mid_batch_restarts_and_retries_once(
        self, private, pool
    ):
        lows, highs = _batch()
        serial = _serial(private, lows, highs)
        # The crash_next hook makes worker 1 die *after* dequeuing the
        # next batch frame and before replying — the exact in-flight
        # window the retry logic covers.
        pool._workers[1].request_queue.put(("crash_next",))
        result = pool.answer(lows, highs)
        np.testing.assert_array_equal(result.answers, serial.answers)
        assert pool.stats()["restarts"] == 1
        # The pool keeps serving normally afterwards.
        again = pool.answer(lows, highs)
        np.testing.assert_array_equal(again.answers, serial.answers)
        assert pool.stats()["restarts"] == 1

    def test_second_crash_surfaces_as_serving_error(
        self, private, pool, monkeypatch
    ):
        lows, highs = _batch()
        original = pool._restart_worker

        def sabotaged_restart(shard_id):
            # Restart succeeds, but the replacement is primed to crash
            # on its first batch — so the one allowed retry also dies.
            original(shard_id)
            pool._workers[shard_id].request_queue.put(("crash_next",))

        monkeypatch.setattr(pool, "_restart_worker", sabotaged_restart)
        pool._workers[0].request_queue.put(("crash_next",))
        with pytest.raises(ServingError) as excinfo:
            pool.answer(lows, highs)
        assert excinfo.value.status == 503
        assert "crashed twice" in str(excinfo.value)

    def test_failed_restart_surfaces_as_serving_error(
        self, private, pool, monkeypatch
    ):
        lows, highs = _batch()

        def broken_spawn(shard_id):
            raise ServingError(
                503, {"error": f"shard worker {shard_id} refused to start"}
            )

        monkeypatch.setattr(pool, "_restart_worker", broken_spawn)
        victim = pool._workers[2].process
        os.kill(victim.pid, signal.SIGKILL)
        _wait_dead(victim)
        with pytest.raises(ServingError) as excinfo:
            pool.answer(lows, highs)
        assert excinfo.value.status == 503

    def test_worker_error_frame_is_a_500(self, private, pool):
        # An in-worker exception (not a death) must come back as a 500
        # with the worker's traceback, and must not kill the worker.
        lows, highs = _batch()
        pool._workers[0].request_queue.put(
            ("batch", 10_000, "not-an-array", "nope")
        )
        deadline = time.monotonic() + 5.0
        frame = None
        while time.monotonic() < deadline:
            try:
                frame = pool._workers[0].response_queue.get(timeout=0.05)
                break
            except Exception:
                continue
        assert frame is not None and frame[0] == "error"
        assert frame[1] == 0 and frame[2] == 10_000
        assert "Traceback" in frame[3]
        assert pool._workers[0].process.is_alive()
        # And the pool still answers fine afterwards.
        serial = _serial(private, lows, highs)
        np.testing.assert_array_equal(
            pool.answer(lows, highs).answers, serial.answers
        )


class TestShutdown:
    def test_double_shutdown_is_idempotent(self, private):
        pool = ShardWorkerPool(private.packed, 3)
        segment = pool.layout.name
        lows, highs = _batch(10)
        pool.answer(lows, highs)
        pool.shutdown()
        pool.shutdown()  # second call: no error, no double-unlink
        assert pool.closed
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=segment)
        assert all(not w.process.is_alive() for w in pool._workers)

    def test_answer_after_shutdown_is_serving_error(self, private):
        pool = ShardWorkerPool(private.packed, 2)
        pool.shutdown()
        lows, highs = _batch(5)
        with pytest.raises(ServingError) as excinfo:
            pool.answer(lows, highs)
        assert excinfo.value.status == 503
        assert "shut down" in str(excinfo.value)
        with pytest.raises(ServingError):
            pool.ping()

    def test_context_manager_shuts_down(self, private):
        with ShardWorkerPool(private.packed, 2) as pool:
            segment = pool.layout.name
            assert pool.stats()["alive"] == 2
        assert pool.closed
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=segment)

    def test_engine_close_resets_and_pool_respawns(self, private):
        engine = Engine(
            private, EngineConfig(n_shards=2, shard_executor="resident")
        )
        lows, highs = _batch(10)
        serial = _serial(private, lows, highs)
        first = engine.shard_pool()
        engine.close()
        assert first.closed and engine.pool_stats() is None
        # The engine stays usable: a later batch spawns a fresh pool.
        result = engine.answer_sharded(lows, highs)
        try:
            np.testing.assert_array_equal(
                result.answers[: serial.answers.size],
                serial.answers[: result.answers.size],
            )
            second = engine.shard_pool()
            assert second is not first and not second.closed
        finally:
            engine.close()


class TestShmLayout:
    def test_attach_out_of_range_rejected(self, private):
        layout = ShmShardLayout(private.packed, 3)
        try:
            with pytest.raises(QueryError, match="shard id"):
                layout.spec.attach(3)
            with pytest.raises(QueryError, match="shard id"):
                layout.spec.attach(-1)
        finally:
            layout.close()

    def test_attached_views_are_readonly_and_zero_copy(self, private):
        layout = ShmShardLayout(private.packed, 2)
        try:
            attached = layout.spec.attach(0)
            shard = attached.shard
            assert not shard.packed.lo.flags.writeable
            with pytest.raises(ValueError):
                shard.packed.lo[0, 0] = 99
            # Same values as the parent's own shard split.
            parent = private.packed.split_shards(2)[0]
            np.testing.assert_array_equal(shard.packed.lo, parent.packed.lo)
            np.testing.assert_array_equal(
                shard.packed.noisy_counts, parent.packed.noisy_counts
            )
            attached.close()
            attached.close()  # idempotent
        finally:
            layout.close()

    def test_layout_close_is_exactly_once(self, private):
        layout = ShmShardLayout(private.packed, 2)
        name = layout.name
        assert not layout.unlinked
        layout.close()
        assert layout.unlinked
        layout.close()  # second close: no FileNotFoundError, no error
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestNoResourceLeaks:
    """End-to-end: a full pool lifecycle leaves no tracker complaints.

    Run in a subprocess so the ``resource_tracker`` of *that* process
    tree finishes its lifetime inside the test — leak warnings are
    emitted at interpreter exit, which an in-process test can't see.
    """

    SCRIPT = """
import os, signal, time
import numpy as np
from repro.core import packed_from_intervals, PrivateFrequencyMatrix
from repro.engine import ShardWorkerPool
from repro.methods._grid import axis_intervals

intervals = [axis_intervals(32, 8) for _ in range(2)]
noisy = np.arange(64, dtype=float)
packed = packed_from_intervals(intervals, noisy, (32, 32))
private = PrivateFrequencyMatrix.from_packed(packed, method="grid")

rng = np.random.default_rng(0)
lows = rng.integers(0, 32, (20, 2)).astype(np.int64)
highs = np.minimum(lows + 4, 31)

for start_method in (None, "spawn"):
    pool = ShardWorkerPool(
        private.packed, 3, start_method=start_method
    )
    first = pool.answer(lows, highs)
    # Hard-kill one worker (kill -9: no cleanup handlers run in it),
    # then keep serving through the restart path.
    os.kill(pool.stats()["pids"][0], signal.SIGKILL)
    time.sleep(0.2)
    second = pool.answer(lows, highs)
    assert np.array_equal(first.answers, second.answers)
    assert pool.stats()["restarts"] == 1
    pool.shutdown()

# One pool deliberately dropped without shutdown: the GC finalizer
# must clean it (workers + segment) without tracker noise either.
leaked = ShardWorkerPool(private.packed, 2)
leaked.answer(lows, highs)
del leaked
import gc; gc.collect()
print("LIFECYCLE-OK")
"""

    def test_subprocess_stderr_has_no_leak_warnings(self):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", self.SCRIPT],
            capture_output=True,
            text=True,
            timeout=180,
            env=env,
        )
        assert proc.returncode == 0, (
            f"lifecycle script failed\nstdout:\n{proc.stdout}\n"
            f"stderr:\n{proc.stderr}"
        )
        assert "LIFECYCLE-OK" in proc.stdout
        # The whole point of the untracked attach + exactly-once
        # unlink: neither "leaked shared_memory" warnings nor
        # resource_tracker tracebacks on any path, including kill -9
        # and a pool cleaned up by the GC.
        assert "leaked" not in proc.stderr.lower(), proc.stderr
        assert "resource_tracker" not in proc.stderr, proc.stderr
        assert "Traceback" not in proc.stderr, proc.stderr
