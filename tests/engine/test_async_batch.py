"""AsyncBatchEngine: concurrency equivalence, flush triggers, cancellation.

The headline guarantee: answers produced through the micro-batching
endpoint are **bit-identical** to one-by-one `Engine.answer` calls —
max absolute difference 0.0, not 1e-9 — because each query runs through
the same kernel invocation arithmetic regardless of the tick it rides
in (per-query reductions are batch-shape-independent; plan choice is
pinned by the config, the serving determinism lever).
"""

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core import (
    PLAN_BROADCAST,
    PLAN_DENSE,
    PLAN_PRUNED,
    PLAN_SHARDED,
    PrivateFrequencyMatrix,
    QueryError,
    packed_from_intervals,
)
from repro.engine import (
    AsyncBatchEngine,
    Engine,
    EngineConfig,
    QueryRequest,
    gather_answers,
)
from repro.methods._grid import axis_intervals

SHAPE = (128, 128)


def grid_private(m=32):
    rng = np.random.default_rng(0)
    intervals = [axis_intervals(s, m) for s in SHAPE]
    noisy = rng.poisson(40.0, size=m * m).astype(float)
    noisy += rng.laplace(0.0, 2.0, size=m * m)
    packed = packed_from_intervals(intervals, noisy, SHAPE)
    return PrivateFrequencyMatrix.from_packed(packed, method="grid")


def client_requests(n_clients, rng, q_low=1, q_high=6):
    requests = []
    for i in range(n_clients):
        q = int(rng.integers(q_low, q_high))
        a = rng.integers(0, SHAPE[0], size=(q, 2))
        b = rng.integers(0, SHAPE[0], size=(q, 2))
        requests.append(
            QueryRequest(
                np.minimum(a, b).astype(np.int64),
                np.maximum(a, b).astype(np.int64),
                workload=f"client-{i}",
            )
        )
    return requests


@pytest.fixture(scope="module")
def private():
    return grid_private()


class TestConcurrencyEquivalence:
    """N interleaved clients ≡ serial answers, exactly (0.0 drift)."""

    @pytest.mark.parametrize(
        "plan", [PLAN_BROADCAST, PLAN_PRUNED, PLAN_DENSE, PLAN_SHARDED]
    )
    def test_batched_equals_serial_bit_for_bit(self, private, plan):
        # For the sharded layout the per-shard kernel choice is also
        # batch-shaped, so the serving config pins the whole route:
        # plan="sharded" plus a prune threshold shards can never cross.
        config = EngineConfig(
            plan=plan,
            n_shards=4 if plan == PLAN_SHARDED else None,
            prune_min_partitions=(
                10**9 if plan == PLAN_SHARDED else EngineConfig().prune_min_partitions
            ),
        )
        engine = Engine(private, config)
        requests = client_requests(24, np.random.default_rng(1))

        async def run():
            batcher = AsyncBatchEngine(
                engine, max_batch_size=24, max_batch_latency=30.0
            )
            return await gather_answers(batcher, requests), batcher.stats

        answers, stats = asyncio.run(run())
        assert stats["ticks"] == 1  # one engine invocation for all clients
        assert stats["answered_requests"] == 24
        for request, answer in zip(requests, answers):
            serial = engine.answer(request)
            diff = float(np.abs(serial.answers - answer.answers).max())
            assert diff == 0.0, f"plan={plan}: batched drifted by {diff}"
            assert answer.workload == request.workload
            assert answer.plan == serial.plan

    def test_many_ticks_still_exact(self, private):
        engine = Engine(private, EngineConfig(plan=PLAN_BROADCAST))
        requests = client_requests(30, np.random.default_rng(2))

        async def run():
            # Short latency so the 30 % 7 residue tick flushes on the
            # timer instead of stalling the gather.
            batcher = AsyncBatchEngine(
                engine, max_batch_size=7, max_batch_latency=0.05
            )
            return await gather_answers(batcher, requests), batcher.stats

        answers, stats = asyncio.run(run())
        assert stats["ticks"] >= 4  # size-30 load over size-7 ticks
        for request, answer in zip(requests, answers):
            assert (
                float(
                    np.abs(engine.answer(request).answers - answer.answers).max()
                )
                == 0.0
            )


class TestFlushTriggers:
    def test_flush_on_size_does_not_wait_for_timeout(self, private):
        engine = Engine(private, EngineConfig(plan=PLAN_BROADCAST))
        requests = client_requests(4, np.random.default_rng(3))

        async def run():
            # A latency budget far beyond the test timeout: only the
            # size trigger can flush.
            batcher = AsyncBatchEngine(
                engine, max_batch_size=4, max_batch_latency=60.0
            )
            answers = await asyncio.wait_for(
                gather_answers(batcher, requests), timeout=5.0
            )
            return answers, batcher.stats

        answers, stats = asyncio.run(run())
        assert stats["ticks"] == 1 and len(answers) == 4

    def test_flush_on_timeout_serves_partial_tick(self, private):
        engine = Engine(private, EngineConfig(plan=PLAN_BROADCAST))
        requests = client_requests(2, np.random.default_rng(4))

        async def run():
            # Size trigger unreachable: only the latency timer fires.
            batcher = AsyncBatchEngine(
                engine, max_batch_size=10_000, max_batch_latency=0.05
            )
            loop = asyncio.get_running_loop()
            start = loop.time()
            answers = await asyncio.wait_for(
                gather_answers(batcher, requests), timeout=5.0
            )
            return answers, batcher.stats, loop.time() - start

        answers, stats, elapsed = asyncio.run(run())
        assert stats["ticks"] == 1 and len(answers) == 2
        assert elapsed >= 0.05  # the tick waited for the latency budget

    def test_drain_flushes_immediately(self, private):
        engine = Engine(private, EngineConfig(plan=PLAN_BROADCAST))
        [request] = client_requests(1, np.random.default_rng(5))

        async def run():
            batcher = AsyncBatchEngine(
                engine, max_batch_size=10_000, max_batch_latency=60.0
            )
            task = asyncio.ensure_future(batcher.answer(request))
            await asyncio.sleep(0)  # let the request enqueue
            assert batcher.pending_requests == 1
            await batcher.drain()
            return await asyncio.wait_for(task, timeout=1.0)

        answer = asyncio.run(run())
        assert (
            float(np.abs(engine.answer(request).answers - answer.answers).max())
            == 0.0
        )

    def test_invalid_flush_thresholds_rejected(self, private):
        engine = Engine(private)
        with pytest.raises(QueryError, match="max_batch_size"):
            AsyncBatchEngine(engine, max_batch_size=0)
        with pytest.raises(QueryError, match="max_batch_latency"):
            AsyncBatchEngine(engine, max_batch_latency=-1)


class TestCancellationAndErrors:
    def test_cancelled_client_does_not_corrupt_the_tick(self, private):
        engine = Engine(private, EngineConfig(plan=PLAN_BROADCAST))
        requests = client_requests(3, np.random.default_rng(6))

        async def run():
            batcher = AsyncBatchEngine(
                engine, max_batch_size=3, max_batch_latency=60.0
            )
            first = asyncio.ensure_future(batcher.answer(requests[0]))
            second = asyncio.ensure_future(batcher.answer(requests[1]))
            await asyncio.sleep(0)
            second.cancel()  # abandon a pending client mid-tick
            # The third request hits the size trigger and flushes.
            third = await batcher.answer(requests[2])
            return await first, third, second, batcher.stats

        first, third, second, stats = asyncio.run(run())
        assert second.cancelled()
        assert stats["dropped_requests"] == 1
        assert stats["answered_requests"] == 2
        # Survivors get exactly their own answers, unshifted.
        for request, answer in ((requests[0], first), (requests[2], third)):
            assert (
                float(
                    np.abs(engine.answer(request).answers - answer.answers).max()
                )
                == 0.0
            )

    def test_malformed_request_fails_its_caller_only(self, private):
        engine = Engine(private, EngineConfig(plan=PLAN_BROADCAST))
        good = client_requests(1, np.random.default_rng(7))[0]
        bad = QueryRequest(
            np.array([[0, 0]], dtype=np.int64),
            np.array([[999, 999]], dtype=np.int64),
        )

        async def run():
            batcher = AsyncBatchEngine(
                engine, max_batch_size=2, max_batch_latency=0.05
            )
            good_task = asyncio.ensure_future(batcher.answer(good))
            await asyncio.sleep(0)
            with pytest.raises(QueryError, match="outside matrix shape"):
                await batcher.answer(bad)  # rejected before enqueueing
            return await asyncio.wait_for(good_task, timeout=5.0)

        answer = asyncio.run(run())
        assert (
            float(np.abs(engine.answer(good).answers - answer.answers).max())
            == 0.0
        )

    def test_engine_failure_propagates_to_all_tick_clients(self, private):
        engine = Engine(private, EngineConfig(plan=PLAN_BROADCAST))

        class Boom(RuntimeError):
            pass

        class ExplodingEngine:
            config = engine.config
            private = engine.private

            def answer(self, request):
                raise Boom("kernel exploded")

        requests = client_requests(2, np.random.default_rng(8))

        async def run():
            batcher = AsyncBatchEngine(
                ExplodingEngine(), max_batch_size=2, max_batch_latency=60.0
            )
            results = await asyncio.gather(
                *(batcher.answer(r) for r in requests),
                return_exceptions=True,
            )
            return results

        results = asyncio.run(run())
        assert all(isinstance(r, Boom) for r in results)

    @pytest.mark.parametrize("width", [2, 0])
    def test_zero_query_request_resolves(self, private, width):
        # Zero-query requests — including the (0, 0)-shaped arrays
        # QueryRequest.from_boxes([]) builds — are answered inline
        # without entering (or stalling) a tick, matching the sync
        # engine's empty-batch contract.
        engine = Engine(private, EngineConfig(plan=PLAN_BROADCAST))
        empty = QueryRequest(
            np.empty((0, width), dtype=np.int64),
            np.empty((0, width), dtype=np.int64),
        )
        [other] = client_requests(1, np.random.default_rng(9))

        async def run():
            batcher = AsyncBatchEngine(
                engine, max_batch_size=1, max_batch_latency=60.0
            )
            empty_answer = await batcher.answer(empty)
            assert batcher.pending_requests == 0  # never enqueued
            other_answer = await batcher.answer(other)
            return empty_answer, other_answer

        empty_answer, other_answer = asyncio.run(run())
        assert empty_answer.n_queries == 0
        assert empty_answer.plan == PLAN_BROADCAST
        assert (
            float(
                np.abs(engine.answer(other).answers - other_answer.answers).max()
            )
            == 0.0
        )

    def test_from_boxes_empty_served_like_sync(self, private):
        engine = Engine(private)
        request = QueryRequest.from_boxes([])

        async def run():
            batcher = AsyncBatchEngine(engine, max_batch_size=4)
            return await batcher.answer(request)

        answer = asyncio.run(run())
        sync = engine.answer(request)
        assert answer.n_queries == sync.n_queries == 0
        assert answer.plan == sync.plan


class TestOffLoopExecutor:
    """The ``executor`` option: kernels off the loop, same contract."""

    def test_off_loop_answers_bit_identical(self, private):
        engine = Engine(private, EngineConfig(plan=PLAN_BROADCAST))
        requests = client_requests(16, np.random.default_rng(10))

        async def run():
            with ThreadPoolExecutor(max_workers=1) as pool:
                batcher = AsyncBatchEngine(
                    engine,
                    max_batch_size=4,
                    max_batch_latency=0.02,
                    executor=pool,
                )
                answers = await gather_answers(batcher, requests)
                await batcher.drain()
                return answers, batcher.stats

        answers, stats = asyncio.run(run())
        assert stats["ticks"] >= 4
        assert stats["answered_requests"] == 16
        for request, answer in zip(requests, answers):
            assert (
                float(
                    np.abs(engine.answer(request).answers - answer.answers).max()
                )
                == 0.0
            )

    def test_loop_stays_responsive_during_off_loop_tick(self, private):
        # The point of the executor: a heartbeat coroutine keeps beating
        # while a (deliberately slow) kernel runs in the worker thread.
        engine = Engine(private, EngineConfig(plan=PLAN_BROADCAST))

        class SlowEngine:
            config = engine.config
            private = engine.private

            def answer(self, request):
                time.sleep(0.15)
                return engine.answer(request)

        [request] = client_requests(1, np.random.default_rng(11))

        async def run():
            beats = 0
            done = asyncio.Event()

            async def heartbeat():
                nonlocal beats
                while not done.is_set():
                    await asyncio.sleep(0.01)
                    beats += 1

            with ThreadPoolExecutor(max_workers=1) as pool:
                batcher = AsyncBatchEngine(
                    SlowEngine(), max_batch_size=1, executor=pool
                )
                ticker = asyncio.ensure_future(heartbeat())
                answer = await batcher.answer(request)
                done.set()
                await ticker
            return answer, beats

        answer, beats = asyncio.run(run())
        # 0.15s of kernel at a 10ms heartbeat: an on-loop kernel would
        # allow ~0 beats; off-loop must land well clear of that.
        assert beats >= 5
        assert (
            float(np.abs(engine.answer(request).answers - answer.answers).max())
            == 0.0
        )

    def test_drain_awaits_inflight_off_loop_ticks(self, private):
        engine = Engine(private, EngineConfig(plan=PLAN_BROADCAST))
        requests = client_requests(3, np.random.default_rng(12))

        async def run():
            with ThreadPoolExecutor(max_workers=1) as pool:
                batcher = AsyncBatchEngine(
                    engine,
                    max_batch_size=10_000,
                    max_batch_latency=60.0,
                    executor=pool,
                )
                tasks = [
                    asyncio.ensure_future(batcher.answer(r)) for r in requests
                ]
                await asyncio.sleep(0)  # enqueue without flushing
                assert batcher.pending_requests == 3
                await batcher.drain()
                # After drain every client already holds its answer.
                assert all(t.done() for t in tasks)
                assert batcher.inflight_ticks == 0
                return [t.result() for t in tasks], batcher.stats

        answers, stats = asyncio.run(run())
        assert stats["ticks"] == 1
        for request, answer in zip(requests, answers):
            assert (
                float(
                    np.abs(engine.answer(request).answers - answer.answers).max()
                )
                == 0.0
            )

    def test_off_loop_engine_failure_propagates(self, private):
        engine = Engine(private, EngineConfig(plan=PLAN_BROADCAST))

        class Boom(RuntimeError):
            pass

        class ExplodingEngine:
            config = engine.config
            private = engine.private

            def answer(self, request):
                raise Boom("kernel exploded off-loop")

        requests = client_requests(2, np.random.default_rng(13))

        async def run():
            with ThreadPoolExecutor(max_workers=1) as pool:
                batcher = AsyncBatchEngine(
                    ExplodingEngine(), max_batch_size=2, executor=pool
                )
                return await asyncio.gather(
                    *(batcher.answer(r) for r in requests),
                    return_exceptions=True,
                )

        results = asyncio.run(run())
        assert all(isinstance(r, Boom) for r in results)

    def test_cancellation_during_off_loop_tick_drops_one_client(self, private):
        engine = Engine(private, EngineConfig(plan=PLAN_BROADCAST))

        class SlowEngine:
            config = engine.config
            private = engine.private

            def answer(self, request):
                time.sleep(0.1)
                return engine.answer(request)

        requests = client_requests(2, np.random.default_rng(14))

        async def run():
            with ThreadPoolExecutor(max_workers=1) as pool:
                batcher = AsyncBatchEngine(
                    SlowEngine(), max_batch_size=2, executor=pool
                )
                keeper = asyncio.ensure_future(batcher.answer(requests[0]))
                quitter = asyncio.ensure_future(batcher.answer(requests[1]))
                await asyncio.sleep(0.02)  # tick is now off-loop
                quitter.cancel()
                answer = await keeper
                await batcher.drain()
                return answer, quitter, batcher.stats

        answer, quitter, stats = asyncio.run(run())
        assert quitter.cancelled()
        assert stats["dropped_requests"] == 1
        assert stats["answered_requests"] == 1
        assert (
            float(
                np.abs(engine.answer(requests[0]).answers - answer.answers).max()
            )
            == 0.0
        )
