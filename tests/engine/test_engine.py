"""The synchronous Engine facade: routing, evidence, config thresholds."""

import numpy as np
import pytest

from repro.core import (
    PLAN_BROADCAST,
    PLAN_DENSE,
    PLAN_PRUNED,
    PLAN_SHARDED,
    FrequencyMatrix,
    PrivateFrequencyMatrix,
    QueryError,
    packed_from_intervals,
)
from repro.engine import Engine, EngineConfig, QueryRequest
from repro.methods import get_sanitizer
from repro.methods._grid import axis_intervals


def grid_private(shape=(64, 64), m=16):
    rng = np.random.default_rng(0)
    intervals = [axis_intervals(s, m) for s in shape]
    noisy = rng.poisson(40.0, size=m * m).astype(float)
    packed = packed_from_intervals(intervals, noisy, shape)
    return PrivateFrequencyMatrix.from_packed(packed, method="grid")


def random_bounds(shape, q, rng, extent=None):
    a = rng.integers(0, shape[0], size=(q, len(shape)))
    if extent is None:
        b = rng.integers(0, shape[0], size=(q, len(shape)))
    else:
        b = a + rng.integers(0, extent, size=(q, len(shape)))
    lows = np.minimum(a, b).astype(np.int64)
    highs = np.minimum(np.maximum(a, b), np.array(shape) - 1).astype(np.int64)
    return lows, highs


@pytest.fixture(scope="module")
def private():
    return grid_private()


class TestRouting:
    def test_answer_reports_the_plan_and_times(self, private):
        lows, highs = random_bounds(
            (64, 64), 20, np.random.default_rng(1)
        )
        answer = Engine(private).answer(QueryRequest(lows, highs, workload="w"))
        assert answer.plan in (PLAN_DENSE, PLAN_BROADCAST, PLAN_PRUNED)
        assert answer.workload == "w"
        assert answer.n_queries == 20
        assert answer.elapsed_seconds >= 0
        assert answer.shard_plans == () and answer.skip_rate == 0.0

    def test_forced_plans_agree(self, private):
        lows, highs = random_bounds((64, 64), 30, np.random.default_rng(2))
        request = QueryRequest(lows, highs)
        outs = {}
        for plan in (PLAN_DENSE, PLAN_BROADCAST, PLAN_PRUNED, PLAN_SHARDED):
            answer = Engine(private, EngineConfig(plan=plan)).answer(request)
            outs[plan] = answer.answers
        np.testing.assert_allclose(
            outs[PLAN_PRUNED], outs[PLAN_BROADCAST], rtol=0, atol=1e-9
        )
        np.testing.assert_allclose(
            outs[PLAN_SHARDED], outs[PLAN_BROADCAST], rtol=0, atol=1e-9
        )
        np.testing.assert_allclose(
            outs[PLAN_DENSE], outs[PLAN_BROADCAST], rtol=1e-9, atol=1e-6
        )

    def test_plan_queries_reflects_config(self, private):
        lows, highs = random_bounds(
            (64, 64), 10, np.random.default_rng(3), extent=2
        )
        assert Engine(private, EngineConfig(plan=PLAN_DENSE)).plan_queries(
            lows, highs
        ) == PLAN_DENSE
        assert Engine(private, EngineConfig(n_shards=2)).plan_queries(
            lows, highs
        ) == PLAN_SHARDED
        auto = Engine(private).plan_queries(lows, highs)
        answer = Engine(private).answer(QueryRequest(lows, highs))
        assert answer.plan == auto

    def test_matches_scalar_reference(self, private):
        rng = np.random.default_rng(4)
        lows, highs = random_bounds((64, 64), 10, rng)
        expected = np.array([
            private.answer(tuple(zip(lo, hi)))
            for lo, hi in zip(lows, highs)
        ])
        for config in (
            EngineConfig(),
            EngineConfig(plan=PLAN_BROADCAST),
            EngineConfig(plan=PLAN_DENSE),
            EngineConfig(n_shards=3),
        ):
            got = Engine(private, config).answer_arrays(lows, highs)
            np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-6)

    def test_empty_batch(self, private):
        empty = np.empty((0, 2), dtype=np.int64)
        answer = Engine(private).answer(QueryRequest(empty, empty))
        assert answer.answers.size == 0
        assert answer.plan == PLAN_BROADCAST
        forced = Engine(private, EngineConfig(plan=PLAN_DENSE)).answer(
            QueryRequest(empty, empty)
        )
        assert forced.plan == PLAN_DENSE

    def test_invalid_bounds_raise(self, private):
        one = np.array([[70, 0]], dtype=np.int64)
        with pytest.raises(QueryError, match="outside matrix shape"):
            Engine(private).answer(QueryRequest(one, one))


class TestDenseBacked:
    def test_dense_backed_routes_dense(self):
        dense = PrivateFrequencyMatrix.from_dense_noisy(np.ones((8, 8)))
        one = np.zeros((1, 2), dtype=np.int64)
        answer = Engine(dense).answer(QueryRequest(one, one))
        assert answer.plan == PLAN_DENSE and answer.answers[0] == 1.0

    def test_sharding_config_falls_through_to_dense(self):
        # One config can serve a mixed method set: dense-backed outputs
        # have no partition list, so the sharding knobs are ignored for
        # them instead of erroring (forcing plan="sharded" still errors).
        dense = PrivateFrequencyMatrix.from_dense_noisy(np.ones((8, 8)))
        one = np.zeros((1, 2), dtype=np.int64)
        answer = Engine(dense, EngineConfig(n_shards=4)).answer(
            QueryRequest(one, one)
        )
        assert answer.plan == PLAN_DENSE
        with pytest.raises(QueryError, match="dense-backed"):
            Engine(dense, EngineConfig(plan=PLAN_BROADCAST)).answer(
                QueryRequest(one, one)
            )

    def test_plan_queries_previews_answer_for_dense_backed(self):
        # plan_queries must agree with answer(): a forced partition
        # plan on a dense-backed matrix raises in both, the n_shards
        # fallback reports dense in both.
        dense = PrivateFrequencyMatrix.from_dense_noisy(np.ones((8, 8)))
        one = np.zeros((1, 2), dtype=np.int64)
        for plan in (PLAN_SHARDED, PLAN_BROADCAST, PLAN_PRUNED):
            with pytest.raises(QueryError, match="dense-backed"):
                Engine(dense, EngineConfig(plan=plan)).plan_queries(one, one)
        assert Engine(dense, EngineConfig(n_shards=4)).plan_queries(
            one, one
        ) == PLAN_DENSE


class TestConfigThresholds:
    """The config's thresholds actually steer the planner."""

    def test_dense_switch_factor(self, private):
        lows, highs = random_bounds((64, 64), 50, np.random.default_rng(5))
        # An enormous factor forbids densifying; a zero-ish one forces it.
        never = Engine(private, EngineConfig(dense_switch_factor=1e12))
        always = Engine(private, EngineConfig(dense_switch_factor=1e-12))
        assert never.plan_queries(lows, highs) != PLAN_DENSE
        assert always.plan_queries(lows, highs) == PLAN_DENSE

    def test_dense_switch_max_cells(self, private):
        lows, highs = random_bounds((64, 64), 5000, np.random.default_rng(6))
        small_cap = Engine(
            private,
            EngineConfig(dense_switch_factor=1e-12, dense_switch_max_cells=1),
        )
        assert small_cap.plan_queries(lows, highs) != PLAN_DENSE

    def test_prune_thresholds(self):
        # Tiny queries against 4096 partitions: default config prunes.
        private = grid_private(shape=(256, 256), m=64)
        lows, highs = random_bounds(
            (256, 256), 40, np.random.default_rng(7), extent=2
        )
        assert Engine(private).plan_queries(lows, highs) == PLAN_PRUNED
        # Raising min_partitions above k disables pruning...
        no_prune = Engine(
            private, EngineConfig(prune_min_partitions=10_000)
        )
        assert no_prune.plan_queries(lows, highs) == PLAN_BROADCAST
        # ...and the forced-pruned fallback obeys the same override.
        answer = Engine(
            private,
            EngineConfig(plan=PLAN_PRUNED, prune_min_partitions=10_000),
        ).answer(QueryRequest(lows, highs))
        assert answer.plan == PLAN_BROADCAST

    def test_prune_thresholds_reach_shards(self):
        private = grid_private(shape=(256, 256), m=64)
        lows, highs = random_bounds(
            (256, 256), 40, np.random.default_rng(8), extent=2
        )
        sharded = Engine(private, EngineConfig(n_shards=2)).answer_sharded(
            lows, highs
        )
        assert PLAN_PRUNED in sharded.plans  # default rule prunes shards
        blunt = Engine(
            private,
            EngineConfig(n_shards=2, prune_min_partitions=10_000),
        ).answer_sharded(lows, highs)
        assert all(p != PLAN_PRUNED for p in blunt.plans)
        np.testing.assert_allclose(
            sharded.answers, blunt.answers, rtol=0, atol=1e-9
        )


class TestRequestObjects:
    def test_from_boxes_round_trip(self, private):
        boxes = [((0, 5), (0, 5)), ((2, 60), (3, 61))]
        request = QueryRequest.from_boxes(boxes, workload="boxed")
        assert request.n_queries == len(request) == 2
        answer = Engine(private).answer(request)
        np.testing.assert_array_equal(
            answer.answers, private.answer_many(boxes)
        )

    def test_from_boxes_empty(self):
        request = QueryRequest.from_boxes([])
        assert request.n_queries == 0

    def test_engine_used_by_sanitizer_output(self):
        # End to end: a real sanitizer's matrix through the facade.
        rng = np.random.default_rng(9)
        matrix = FrequencyMatrix(rng.poisson(3.0, (24, 24)).astype(float))
        private = get_sanitizer("ag").sanitize(matrix, 0.5, 7)
        lows, highs = random_bounds((24, 24), 15, rng)
        answer = Engine(private).answer(QueryRequest(lows, highs))
        expected = np.array([
            private.answer(tuple(zip(lo, hi)))
            for lo, hi in zip(lows, highs)
        ])
        np.testing.assert_allclose(
            answer.answers, expected, rtol=1e-9, atol=1e-6
        )
