"""Tests for repro.experiments.reporting."""

from repro.experiments import format_table, pivot, summarize_winner


class TestFormatTable:
    def test_basic_render(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}]
        text = format_table(rows, ["a", "b"])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "2.500" in text
        assert "10" in text

    def test_title(self):
        text = format_table([{"a": 1}], ["a"], title="My Table")
        assert text.startswith("My Table")

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], ["a"])

    def test_missing_column_blank(self):
        text = format_table([{"a": 1}], ["a", "zzz"])
        assert "zzz" in text

    def test_custom_floatfmt(self):
        text = format_table([{"x": 3.14159}], ["x"], floatfmt="{:.1f}")
        assert "3.1" in text


class TestPivot:
    def test_panel_shape(self):
        rows = [
            {"eps": 0.1, "method": "a", "mre": 1.0},
            {"eps": 0.1, "method": "b", "mre": 2.0},
            {"eps": 0.5, "method": "a", "mre": 0.5},
            {"eps": 0.5, "method": "b", "mre": 0.7},
        ]
        text = pivot(rows, "eps", "method")
        lines = text.splitlines()
        assert lines[0].split() == ["eps", "a", "b"]
        assert len(lines) == 4  # header + sep + 2 data rows

    def test_missing_cell_blank(self):
        rows = [
            {"eps": 0.1, "method": "a", "mre": 1.0},
            {"eps": 0.5, "method": "b", "mre": 2.0},
        ]
        text = pivot(rows, "eps", "method")
        assert "a" in text and "b" in text


class TestSummarizeWinner:
    def test_winner_per_group(self):
        rows = [
            {"city": "x", "method": "a", "mre": 5.0},
            {"city": "x", "method": "b", "mre": 1.0},
            {"city": "y", "method": "a", "mre": 0.5},
            {"city": "y", "method": "b", "mre": 2.0},
        ]
        winners = summarize_winner(rows, ["city"])
        by_city = {w["city"]: w["winner"] for w in winners}
        assert by_city == {"x": "b", "y": "a"}
