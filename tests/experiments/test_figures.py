"""Tests for the per-figure reproduction functions (micro scale).

These verify the harness mechanics (row structure, panel rendering, method
coverage); the benchmarks assert the paper's accuracy *shapes* at a larger
scale.
"""

import pytest

from repro.experiments import (
    ALL_ARTIFACTS,
    FigureResult,
    TINY_SCALE,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    table3,
)

MICRO = TINY_SCALE.with_overrides(
    n_points=4000, n_trajectories=2000, city_resolution=32,
    od_cell_budget=20_000, n_queries=30,
)


class TestFigure4:
    def test_row_structure(self):
        res = figure4(MICRO, dims=(2,), epsilons=(0.5,),
                      skew_fractions=(0.1,), methods=("identity", "ebp"))
        assert res.figure_id == "figure4"
        assert len(res.rows) == 2
        row = res.rows[0]
        assert {"method", "epsilon", "d", "skew_fraction", "mre"} <= set(row)

    def test_all_combinations_present(self):
        res = figure4(MICRO, dims=(2, 4), epsilons=(0.1, 0.5),
                      skew_fractions=(0.1,), methods=("uniform",))
        assert len(res.rows) == 4

    def test_panel_rendering(self):
        res = figure4(MICRO, dims=(2,), epsilons=(0.5,),
                      skew_fractions=(0.1, 0.25), methods=("uniform",))
        text = res.panel("skew_fraction", "method", d=2, epsilon=0.5)
        assert "figure4" in text
        assert "uniform" in text


class TestFigure5:
    def test_row_structure(self):
        res = figure5(MICRO, dims=(2,), a_values=(2.0,),
                      methods=("identity", "ebp"))
        assert len(res.rows) == 2
        assert res.rows[0]["zipf_a"] == 2.0
        assert res.rows[0]["epsilon"] == 0.1


class TestFigure6And7:
    def test_figure6_includes_baselines(self):
        res = figure6(MICRO, cities=("denver",), epsilons=(0.5,),
                      methods=("identity", "mkm", "ebp"))
        methods = {r["method"] for r in res.rows}
        assert "identity" in methods and "mkm" in methods

    def test_figure6_workloads(self):
        res = figure6(MICRO, cities=("denver",), epsilons=(0.5,),
                      methods=("uniform",))
        workloads = {r["workload"] for r in res.rows}
        assert workloads == {"random", "1%", "5%", "10%"}

    def test_figure7_excludes_baselines(self):
        res = figure7(MICRO, cities=("denver",), epsilons=(0.5,))
        methods = {r["method"] for r in res.rows}
        assert "identity" not in methods
        assert "mkm" not in methods
        assert res.figure_id == "figure7"


class TestFigure8:
    def test_od_4d(self):
        res = figure8(MICRO, cities=("denver",), epsilons=(0.5,),
                      methods=("ebp",), n_stops=0)
        assert len(res.rows) == 4  # 4 workloads
        shape = res.rows[0]["od_shape"]
        assert shape.count("x") == 3  # 4-D

    def test_od_6d_with_stop(self):
        res = figure8(MICRO, cities=("denver",), epsilons=(0.5,),
                      methods=("ebp",), n_stops=1)
        assert res.rows[0]["od_shape"].count("x") == 5  # 6-D


class TestTable3:
    def test_runtime_rows(self):
        res = table3(MICRO, cities=("denver", "detroit"),
                     methods=("identity", "daf_entropy"))
        assert len(res.rows) == 4
        assert all(r["sanitize_seconds"] >= 0 for r in res.rows)


class TestFigureResult:
    def test_filtered(self):
        res = FigureResult("f", "d", rows=[
            {"a": 1, "mre": 2.0}, {"a": 2, "mre": 3.0}
        ])
        assert res.filtered(a=1) == [{"a": 1, "mre": 2.0}]

    def test_to_text(self):
        res = FigureResult("f", "desc", rows=[{"a": 1, "mre": 2.0}])
        text = res.to_text()
        assert "desc" in text and "mre" in text

    def test_artifact_registry_complete(self):
        assert set(ALL_ARTIFACTS) == {
            "figure4", "figure5", "figure6", "figure7", "figure8", "table3"
        }
