"""Golden serial-equivalence suite for the parallel trial executor.

The contract licensed here is what every future scaling PR leans on:
``run_methods(..., n_jobs=k)`` must reproduce ``n_jobs=1`` *row for row*
— same reports (bit-identical floats), same partition counts, same row
order — for the same seed, across the grid, AG, quadtree, kd-tree and
DAF sanitizer families.  Only the wall-clock fields may differ.
"""

from __future__ import annotations

import os
import random

import numpy as np
import pytest

from repro.core import FrequencyMatrix, ValidationError
from repro.experiments import (
    MethodSpec,
    ProcessPoolTrialExecutor,
    SerialExecutor,
    build_trial_tasks,
    default_method_specs,
    get_executor,
    merge_rows,
    resolve_n_jobs,
    run_methods,
)
from repro.experiments.parallel import _run_trial
from repro.queries import random_workload

#: One representative per sanitizer family named in the issue:
#: uniform grid, adaptive grid, quadtree, kd-tree, DAF.
GOLDEN_METHODS = ["eug", "ag", "quadtree", "kdtree", "daf_entropy"]

EPSILONS = [0.5, 1.0]
N_TRIALS = 2

#: The CI matrix exports this so the GitHub runner exercises exactly the
#: worker count it can schedule (see .github/workflows/ci.yml).
ENV_N_JOBS = int(os.environ.get("REPRO_TEST_N_JOBS", "2"))


@pytest.fixture(scope="module")
def matrix() -> FrequencyMatrix:
    rng = np.random.default_rng(20220707)
    return FrequencyMatrix(rng.poisson(3.0, size=(16, 16)).astype(float))


@pytest.fixture(scope="module")
def workloads(matrix):
    return [
        random_workload(matrix.shape, 12, np.random.default_rng(1), name="w1"),
        random_workload(matrix.shape, 12, np.random.default_rng(2), name="w2"),
    ]


def comparable(row):
    """Everything a row asserts except the wall-clock fields."""
    d = row.as_dict()
    d.pop("sanitize_seconds")
    d.pop("query_seconds")
    return d


def assert_rows_identical(lhs, rhs):
    assert len(lhs) == len(rhs)
    for a, b in zip(lhs, rhs):
        assert comparable(a) == comparable(b)
        assert a.report == b.report  # bit-identical floats, not approx
        assert a.n_partitions == b.n_partitions


class TestGoldenEquivalence:
    @pytest.fixture(scope="class")
    def serial_rows(self, matrix, workloads):
        return run_methods(
            matrix, default_method_specs(GOLDEN_METHODS), EPSILONS,
            workloads, n_trials=N_TRIALS, rng=2022, n_jobs=1,
        )

    def test_serial_is_rerunnable(self, matrix, workloads, serial_rows):
        again = run_methods(
            matrix, default_method_specs(GOLDEN_METHODS), EPSILONS,
            workloads, n_trials=N_TRIALS, rng=2022, n_jobs=1,
        )
        assert_rows_identical(serial_rows, again)

    @pytest.mark.parametrize("n_jobs", sorted({2, 4, ENV_N_JOBS}))
    def test_parallel_matches_serial(self, matrix, workloads, serial_rows, n_jobs):
        parallel_rows = run_methods(
            matrix, default_method_specs(GOLDEN_METHODS), EPSILONS,
            workloads, n_trials=N_TRIALS, rng=2022, n_jobs=n_jobs,
        )
        assert_rows_identical(serial_rows, parallel_rows)

    def test_row_order_is_grid_order(self, serial_rows, workloads):
        expected = [
            (method, eps, wl.name, trial)
            for method in GOLDEN_METHODS
            for eps in EPSILONS
            for trial in range(N_TRIALS)
            for wl in workloads
        ]
        observed = [
            (r.method, r.epsilon, r.workload, r.trial) for r in serial_rows
        ]
        assert observed == expected


class ScrambledExecutor(SerialExecutor):
    """Runs the tasks back to front, then restores submission order.

    A worst-case scheduler: if any trial's randomness leaked from
    execution order, this would diverge from the serial run.
    """

    def run_trials(self, matrix, workloads, tasks, extra=None, n_shards=None):
        reversed_rows = super().run_trials(
            matrix, workloads, list(reversed(tasks)), extra, n_shards
        )
        return list(reversed(reversed_rows))


class TestOrderIndependence:
    def test_scrambled_schedule_matches_serial(self, matrix, workloads):
        kwargs = dict(
            method_specs=default_method_specs(["eug", "daf_entropy"]),
            epsilons=EPSILONS, workloads=workloads,
            n_trials=N_TRIALS, rng=99,
        )
        serial = run_methods(matrix, n_jobs=1, **kwargs)
        scrambled = run_methods(matrix, executor=ScrambledExecutor(), **kwargs)
        assert_rows_identical(serial, scrambled)

    def test_run_trial_is_pure(self, matrix, workloads):
        tasks = build_trial_tasks(
            default_method_specs(["eug"]), [0.5], 2, entropy=1234
        )
        once = _run_trial(matrix, workloads, tasks[1])
        again = _run_trial(matrix, workloads, tasks[1])
        assert_rows_identical(once, again)


class TestTaskGrid:
    def test_spawn_keys_are_grid_coordinates(self):
        specs = default_method_specs(["eug", "ebp"])
        tasks = build_trial_tasks(specs, [0.1, 0.5], 3, entropy=7)
        assert len(tasks) == 2 * 2 * 3
        assert tasks[0].spawn_key == (0, 0, 0)
        assert tasks[-1].spawn_key == (1, 1, 2)
        assert len({t.spawn_key for t in tasks}) == len(tasks)
        assert all(t.entropy == 7 for t in tasks)

    def test_negative_trials_rejected(self):
        with pytest.raises(ValueError):
            build_trial_tasks(default_method_specs(["eug"]), [0.5], -3, 0)

    def test_zero_trials_empty_grid(self):
        assert build_trial_tasks(default_method_specs(["eug"]), [0.5], 0, 0) == []

    def test_tasks_are_picklable(self):
        import pickle

        task = build_trial_tasks(
            [MethodSpec.of("daf_entropy", allocation="uniform")], [0.5], 1, 3
        )[0]
        assert pickle.loads(pickle.dumps(task)) == task


class TestExecutorSelection:
    def test_serial_for_one_job(self):
        assert isinstance(get_executor(1), SerialExecutor)

    def test_pool_for_many_jobs(self):
        ex = get_executor(3)
        assert isinstance(ex, ProcessPoolTrialExecutor)
        assert ex.n_jobs == 3

    def test_all_cores(self):
        assert resolve_n_jobs(-1) == max(1, os.cpu_count() or 1)

    @pytest.mark.parametrize("bad", [0, -2, -17])
    def test_invalid_n_jobs(self, bad):
        with pytest.raises(ValidationError):
            resolve_n_jobs(bad)

    def test_pool_empty_tasks(self, matrix, workloads):
        assert ProcessPoolTrialExecutor(2).run_trials(matrix, workloads, []) == []

    def test_pool_single_task_runs_inline(self, matrix, workloads):
        tasks = build_trial_tasks(default_method_specs(["eug"]), [0.5], 1, 11)
        pool_rows = ProcessPoolTrialExecutor(4).run_trials(
            matrix, workloads, tasks
        )
        serial_rows = SerialExecutor().run_trials(matrix, workloads, tasks)
        assert len(pool_rows) == 1
        assert_rows_identical(pool_rows[0], serial_rows[0])


class TestMergeRows:
    def test_shard_order_does_not_matter(self, matrix, workloads):
        rows = run_methods(
            matrix, default_method_specs(["eug", "daf_entropy"]), EPSILONS,
            workloads, n_trials=N_TRIALS, rng=5,
        )
        dicts = [comparable(r) for r in rows]
        shards_a = [dicts[:10], dicts[10:]]
        shuffled = list(dicts)
        random.Random(0).shuffle(shuffled)
        shards_b = [shuffled[5:], shuffled[:5]]
        assert merge_rows(shards_a) == merge_rows(shards_b)
