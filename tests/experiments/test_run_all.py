"""Tests for run_all and cross-artifact consistency at micro scale."""

import pytest

from repro.experiments import TINY_SCALE, run_all

MICRO = TINY_SCALE.with_overrides(
    n_points=3000, n_trajectories=1500, city_resolution=24,
    od_cell_budget=15_000, n_queries=20,
)


@pytest.fixture(scope="module")
def all_results():
    return run_all(scale=MICRO, rng=7)


class TestRunAll:
    def test_every_artifact_present(self, all_results):
        assert set(all_results) == {
            "figure4", "figure5", "figure6", "figure7", "figure8", "table3"
        }

    def test_every_artifact_has_rows(self, all_results):
        for name, result in all_results.items():
            assert result.rows, f"{name} produced no rows"

    def test_figure_ids_match_keys(self, all_results):
        for name, result in all_results.items():
            assert result.figure_id == name

    def test_all_mres_finite_nonnegative(self, all_results):
        import math
        for name, result in all_results.items():
            for row in result.rows:
                mre = row.get("mre")
                if mre is not None:
                    assert math.isfinite(mre) and mre >= 0, (name, row)

    def test_runtime_rows_have_timings(self, all_results):
        for row in all_results["table3"].rows:
            assert row["sanitize_seconds"] >= 0

    def test_deterministic_given_seed(self):
        a = run_all(scale=MICRO, rng=7)
        b = run_all(scale=MICRO, rng=7)
        for name in a:
            mres_a = [r["mre"] for r in a[name].rows]
            mres_b = [r["mre"] for r in b[name].rows]
            assert mres_a == mres_b, name
