"""Tests for repro.experiments.config and repro.experiments.runner."""

import pytest

from repro.core import ValidationError
from repro.experiments import (
    ExperimentScale,
    MethodSpec,
    PAPER_SCALE,
    TINY_SCALE,
    aggregate_rows,
    default_method_specs,
    get_scale,
    mean_mre,
    run_methods,
)
from repro.queries import random_workload


class TestScale:
    def test_presets(self):
        assert get_scale("paper") is PAPER_SCALE
        assert get_scale("tiny") is TINY_SCALE
        assert get_scale("TINY") is TINY_SCALE

    def test_unknown(self):
        with pytest.raises(ValidationError):
            get_scale("galactic")

    def test_paper_scale_matches_paper(self):
        assert PAPER_SCALE.n_points == 1_000_000
        assert PAPER_SCALE.n_trajectories == 300_000
        assert PAPER_SCALE.city_resolution == 1000
        assert PAPER_SCALE.n_queries == 1000

    def test_overrides(self):
        s = TINY_SCALE.with_overrides(n_queries=7)
        assert s.n_queries == 7
        assert s.n_points == TINY_SCALE.n_points

    def test_validation(self):
        with pytest.raises(ValidationError):
            ExperimentScale("x", 0, 1, 1, 1, 1)

    def test_n_shards_validation(self):
        with pytest.raises(ValidationError):
            ExperimentScale("x", 1, 1, 1, 1, 1, n_shards=0)
        assert ExperimentScale("x", 1, 1, 1, 1, 1).n_shards is None
        s = TINY_SCALE.with_overrides(n_shards=3)
        assert s.n_shards == 3

    def test_engine_config_exclusive_with_n_shards(self):
        from repro.engine import EngineConfig

        s = TINY_SCALE.with_overrides(engine_config=EngineConfig(n_shards=3))
        assert s.engine_config.n_shards == 3
        with pytest.raises(ValidationError, match="not both"):
            TINY_SCALE.with_overrides(
                n_shards=3, engine_config=EngineConfig()
            )


class TestMethodSpec:
    def test_plain_label(self):
        assert MethodSpec.of("ebp").label == "ebp"

    def test_kwargs_label(self):
        spec = MethodSpec.of("daf_entropy", allocation="uniform")
        assert spec.label == "daf_entropy(allocation=uniform)"
        assert spec.as_kwargs() == {"allocation": "uniform"}

    def test_default_specs(self):
        specs = default_method_specs(["a", "b"])
        assert [s.name for s in specs] == ["a", "b"]


class TestRunner:
    def test_rows_cross_product(self, small_2d, rng):
        wls = [
            random_workload(small_2d.shape, 10, rng, name="w1"),
            random_workload(small_2d.shape, 10, rng, name="w2"),
        ]
        rows = run_methods(
            small_2d,
            default_method_specs(["identity", "uniform"]),
            [0.5, 1.0],
            wls,
            n_trials=2,
            rng=rng,
        )
        # 2 methods x 2 eps x 2 workloads x 2 trials
        assert len(rows) == 16
        assert all(r.sanitize_seconds >= 0 for r in rows)
        assert all(r.n_partitions >= 1 for r in rows)

    def test_extra_propagated(self, small_2d, rng):
        rows = run_methods(
            small_2d, default_method_specs(["uniform"]), [1.0],
            [random_workload(small_2d.shape, 5, rng)],
            rng=rng, extra={"city": "x"},
        )
        assert rows[0].as_dict()["city"] == "x"

    def test_mean_mre(self, small_2d, rng):
        rows = run_methods(
            small_2d, default_method_specs(["identity"]), [1.0],
            [random_workload(small_2d.shape, 5, rng)], n_trials=3, rng=rng,
        )
        assert mean_mre(rows) == pytest.approx(
            sum(r.mre for r in rows) / 3
        )

    def test_mean_mre_empty(self):
        with pytest.raises(ValueError):
            mean_mre([])

    def test_aggregate_rows_averages_trials(self, small_2d, rng):
        rows = run_methods(
            small_2d, default_method_specs(["identity"]), [1.0],
            [random_workload(small_2d.shape, 5, rng)], n_trials=4, rng=rng,
        )
        agg = aggregate_rows(rows)
        assert len(agg) == 1
        assert agg[0]["n_trials"] == 4
        assert agg[0]["mre"] == pytest.approx(mean_mre(rows))

    def test_method_kwargs_in_label(self, small_2d, rng):
        rows = run_methods(
            small_2d,
            [MethodSpec.of("daf_entropy", allocation="uniform")],
            [1.0],
            [random_workload(small_2d.shape, 5, rng)],
            rng=rng,
        )
        assert rows[0].method == "daf_entropy(allocation=uniform)"


class TestTrialTimingAggregation:
    """Timing is measured once per trial and duplicated onto each of the
    trial's rows; aggregation must average over trials, not rows."""

    @staticmethod
    def _row(workload, trial, sanitize_s, query_s, plan=""):
        from repro.queries.metrics import AccuracyReport

        report = AccuracyReport(
            mre=1.0, median_re=1.0, mae=1.0, rmse=1.0, n_queries=5
        )
        from repro.experiments import ResultRow

        return ResultRow(
            method="m", epsilon=1.0, workload=workload, trial=trial,
            report=report, sanitize_seconds=sanitize_s, n_partitions=4,
            extra={}, query_seconds=query_s, plan=plan,
        )

    def test_query_seconds_shared_across_trial_rows(self, small_2d, rng):
        wls = [
            random_workload(small_2d.shape, 5, rng, name="w1"),
            random_workload(small_2d.shape, 5, rng, name="w2"),
        ]
        rows = run_methods(
            small_2d, default_method_specs(["uniform"]), [1.0], wls,
            n_trials=2, rng=rng,
        )
        for trial in (0, 1):
            times = {r.query_seconds for r in rows if r.trial == trial}
            assert len(times) == 1

    def test_aggregation_averages_over_trials_not_rows(self):
        # Trial 0 contributes two workload rows, trial 1 only one: a
        # row-wise mean would weight trial 0's measurement double.
        rows = [
            self._row("w1", 0, 10.0, 1.0),
            self._row("w2", 0, 10.0, 1.0),
            self._row("w1", 1, 20.0, 3.0),
        ]
        agg = aggregate_rows(rows, keys=("method", "epsilon"))
        assert len(agg) == 1
        assert agg[0]["query_seconds"] == pytest.approx(2.0)  # (1 + 3) / 2
        assert agg[0]["sanitize_seconds"] == pytest.approx(15.0)

    def test_aggregation_does_not_multi_count_workloads(self):
        # Balanced workloads: the per-trial value must pass through
        # unchanged, never summed over the trial's rows.
        rows = [
            self._row(w, t, 4.0, 0.5) for w in ("w1", "w2", "w3")
            for t in (0, 1)
        ]
        agg = aggregate_rows(rows, keys=("method", "epsilon"))
        assert agg[0]["query_seconds"] == pytest.approx(0.5)
        assert agg[0]["sanitize_seconds"] == pytest.approx(4.0)


class TestMixedPlanAggregation:
    """A (method, epsilon) group whose trials took different query plans.

    The planner decides per batch, so trials of one group can
    legitimately split between plans (a borderline q x k near the dense
    switch, or an n_shards run mixed with archived serial rows).  The
    aggregate must list every plan that ran, deterministically.
    """

    _row = staticmethod(TestTrialTimingAggregation._row)

    def test_mixed_plans_join_sorted_and_deduplicated(self):
        rows = [
            self._row("w1", 0, 1.0, 0.1, plan="pruned"),
            self._row("w1", 1, 1.0, 0.1, plan="broadcast"),
            self._row("w1", 2, 1.0, 0.1, plan="sharded"),
            self._row("w1", 3, 1.0, 0.1, plan="pruned"),
        ]
        agg = aggregate_rows(rows, keys=("method", "epsilon"))
        assert len(agg) == 1
        assert agg[0]["plan"] == "broadcast+pruned+sharded"

    def test_every_member_plan_survives_the_join(self):
        # The engine stamps a concrete plan on every batch, so the join
        # is a plain sorted dedup — no blank-plan special-casing (mixed
        # sharded batches carry their per-shard detail on the
        # evaluation result's shard_plans instead).
        rows = [
            self._row("w1", 0, 1.0, 0.1, plan="dense"),
            self._row("w1", 1, 1.0, 0.1, plan="sharded"),
        ]
        agg = aggregate_rows(rows, keys=("method", "epsilon"))
        assert agg[0]["plan"] == "dense+sharded"

    def test_legacy_blank_plan_surfaces_as_unknown(self):
        # Rows built outside the engine (pre-engine archives) may still
        # carry the dataclass default "" — they surface honestly rather
        # than vanishing or producing a "+dense"-style join.
        rows = [
            self._row("w1", 0, 1.0, 0.1, plan="dense"),
            self._row("w1", 1, 1.0, 0.1),  # legacy row, no plan
        ]
        agg = aggregate_rows(rows, keys=("method", "epsilon"))
        assert agg[0]["plan"] == "dense+unknown"

    def test_homogeneous_plan_unchanged(self):
        rows = [
            self._row(w, t, 1.0, 0.1, plan="sharded")
            for w in ("w1", "w2") for t in (0, 1)
        ]
        agg = aggregate_rows(rows, keys=("method", "epsilon"))
        assert agg[0]["plan"] == "sharded"
        assert agg[0]["n_trials"] == 4

    def test_mixed_plans_do_not_perturb_timing_aggregation(self):
        # Plan differences must not affect the per-trial dedup of the
        # timing fields.
        rows = [
            self._row("w1", 0, 2.0, 0.4, plan="broadcast"),
            self._row("w2", 0, 2.0, 0.4, plan="broadcast"),
            self._row("w1", 1, 4.0, 0.8, plan="sharded"),
            self._row("w2", 1, 4.0, 0.8, plan="sharded"),
        ]
        agg = aggregate_rows(rows, keys=("method", "epsilon"))
        assert agg[0]["plan"] == "broadcast+sharded"
        assert agg[0]["query_seconds"] == pytest.approx(0.6)
        assert agg[0]["sanitize_seconds"] == pytest.approx(3.0)
