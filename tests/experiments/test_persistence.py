"""Tests for repro.experiments.persistence."""

import pytest

from repro.core import ValidationError
from repro.experiments import FigureResult
from repro.experiments.persistence import (
    load_result_json,
    load_rows_csv,
    results_to_markdown,
    save_result_json,
    save_rows_csv,
)


@pytest.fixture
def result():
    return FigureResult(
        "figure4", "demo", rows=[
            {"method": "ebp", "epsilon": 0.1, "mre": 12.5},
            {"method": "identity", "epsilon": 0.1, "mre": 99.0},
        ],
    )


class TestJsonRoundtrip:
    def test_roundtrip(self, result, tmp_path):
        path = tmp_path / "r.json"
        save_result_json(result, path)
        back = load_result_json(path)
        assert back.figure_id == "figure4"
        assert back.rows == result.rows

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ValidationError):
            load_result_json(tmp_path / "nope.json")

    def test_load_malformed(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"rows": []}')
        with pytest.raises(ValidationError):
            load_result_json(path)


class TestCsvRoundtrip:
    def test_roundtrip_with_numbers(self, result, tmp_path):
        path = tmp_path / "rows.csv"
        save_rows_csv(result.rows, path)
        back = load_rows_csv(path)
        assert back[0]["method"] == "ebp"
        assert back[0]["mre"] == 12.5
        assert back[1]["epsilon"] == 0.1

    def test_union_of_columns(self, tmp_path):
        rows = [{"a": 1.0}, {"b": 2.0}]
        path = tmp_path / "rows.csv"
        save_rows_csv(rows, path)
        back = load_rows_csv(path)
        assert set(back[0]) == {"a", "b"}

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            save_rows_csv([], tmp_path / "x.csv")

    def test_load_missing(self, tmp_path):
        with pytest.raises(ValidationError):
            load_rows_csv(tmp_path / "missing.csv")


class TestMarkdown:
    def test_render(self, result):
        md = results_to_markdown({"figure4": result})
        assert "### figure4" in md
        assert "| method |" in md
        assert "12.50" in md

    def test_empty_result(self):
        md = results_to_markdown({"x": FigureResult("x", "empty")})
        assert "(no rows)" in md
