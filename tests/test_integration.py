"""End-to-end integration tests across all subsystems."""

import numpy as np
import pytest

from repro import (
    DAFEntropy,
    FrequencyMatrix,
    PrivateFrequencyMatrix,
    WorkloadEvaluator,
    get_sanitizer,
    od_matrix_with_stops,
    random_workload,
)
from repro.datagen import get_city, simulate_od_dataset
from repro.methods import PAPER_METHODS
from repro.queries import fixed_coverage_workload
from repro.trajectories import circle_region, flow_between, flow_via


class TestCityPipeline:
    """City model -> population histogram -> sanitize -> evaluate."""

    @pytest.fixture(scope="class")
    def city_matrix(self):
        return get_city("new_york").population_matrix(
            n_points=50_000, resolution=64, rng=7
        )

    def test_full_pipeline_all_methods(self, city_matrix):
        evaluator = WorkloadEvaluator(city_matrix)
        workload = random_workload(city_matrix.shape, 100, rng=1)
        mres = {}
        for name in PAPER_METHODS:
            private = get_sanitizer(name).sanitize(city_matrix, 0.5, rng=2)
            mres[name] = evaluator.evaluate(private, workload).mre
        # Shape check: adaptive methods beat IDENTITY on skewed city data.
        assert mres["ebp"] < mres["identity"]
        assert mres["daf_entropy"] < mres["identity"]

    def test_coverage_trend(self, city_matrix):
        """Error decreases as query coverage grows (paper Section 6.3)."""
        evaluator = WorkloadEvaluator(city_matrix)
        private = get_sanitizer("ebp").sanitize(city_matrix, 0.3, rng=3)
        mres = []
        for coverage in (0.01, 0.05, 0.25):
            wl = fixed_coverage_workload(city_matrix.shape, coverage, 150, rng=4)
            mres.append(evaluator.evaluate(private, wl).mre)
        assert mres[-1] < mres[0]

    def test_epsilon_trend(self, city_matrix):
        """Error decreases as the privacy budget grows."""
        evaluator = WorkloadEvaluator(city_matrix)
        workload = random_workload(city_matrix.shape, 150, rng=5)
        mres = []
        for eps in (0.05, 0.5, 5.0):
            runs = [
                evaluator.evaluate(
                    get_sanitizer("ebp").sanitize(
                        city_matrix, eps, np.random.default_rng(s)
                    ),
                    workload,
                ).mre
                for s in range(3)
            ]
            mres.append(np.mean(runs))
        assert mres[2] < mres[0]


class TestODPipeline:
    """Trajectories -> OD matrix with stops -> sanitize -> OD queries."""

    @pytest.fixture(scope="class")
    def od_setup(self):
        city = get_city("denver")
        dataset = simulate_od_dataset(city, 20_000, n_stops=1, rng=11)
        matrix = od_matrix_with_stops(
            dataset, city.grid, cell_budget=120_000
        )
        return city, dataset, matrix

    def test_od_matrix_preserves_count(self, od_setup):
        _, dataset, matrix = od_setup
        assert matrix.total == dataset.n_trajectories
        assert matrix.ndim == 6

    def test_sanitize_and_query_flows(self, od_setup):
        city, dataset, matrix = od_setup
        private = DAFEntropy().sanitize(matrix, 1.0, rng=0)
        center = city.side_km / 2
        a = circle_region((center - 10, center - 10), 8.0)
        b = circle_region((center + 10, center + 10), 8.0)
        true_flow = flow_between(matrix, a, b)
        noisy_flow = flow_between(private, a, b)
        assert noisy_flow == pytest.approx(true_flow, abs=max(500, true_flow))

    def test_via_query_less_than_unconstrained(self, od_setup):
        city, dataset, matrix = od_setup
        center = city.side_km / 2
        a = circle_region((center - 10, center - 10), 8.0)
        b = circle_region((center + 10, center + 10), 8.0)
        s = circle_region((center, center), 5.0)
        assert flow_via(matrix, a, b, s) <= flow_between(matrix, a, b) + 1e-9

    def test_higher_dimensional_sanitization_all_paper_methods(self, od_setup):
        _, _, matrix = od_setup
        for name in PAPER_METHODS:
            private = get_sanitizer(name).sanitize(matrix, 0.5, rng=1)
            assert private.shape == matrix.shape


class TestSerializationRoundtrip:
    def test_publish_and_reload_preserves_answers(self, skewed_2d):
        private = get_sanitizer("daf_homogeneity").sanitize(
            skewed_2d, 0.5, rng=0
        )
        payload = private.to_publishable()
        reloaded = PrivateFrequencyMatrix.from_publishable(payload)
        box = ((3, 20), (5, 27))
        assert reloaded.answer(box) == pytest.approx(private.answer(box))

    def test_json_compatible(self, skewed_2d):
        import json
        private = get_sanitizer("ebp").sanitize(skewed_2d, 0.5, rng=0)
        payload = private.to_publishable()
        payload.pop("metadata")  # metadata may hold tuples; counts must ship
        text = json.dumps(payload)
        reloaded = PrivateFrequencyMatrix.from_publishable(json.loads(text))
        assert reloaded.n_partitions == private.n_partitions


class TestConsistencyAcrossEngines:
    @pytest.mark.parametrize("name", PAPER_METHODS)
    def test_partition_and_dense_answers_agree(self, name, skewed_2d, rng):
        private = get_sanitizer(name).sanitize(skewed_2d, 0.5, rng=9)
        boxes = []
        for _ in range(20):
            a, b = sorted(rng.integers(0, 32, size=2))
            c, d = sorted(rng.integers(0, 32, size=2))
            boxes.append(((int(a), int(b)), (int(c), int(d))))
        direct = np.array([private.answer(bx) for bx in boxes])
        via_prefix = private._prefix_table().query_many(boxes)
        assert np.allclose(direct, via_prefix, atol=1e-8)
