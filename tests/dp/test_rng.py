"""Tests for repro.dp.rng."""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.dp import derive_entropy, ensure_rng, spawn, spawn_key_rng


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = ensure_rng(42).random()
        b = ensure_rng(42).random()
        assert a == b

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            ensure_rng(True)

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_numpy_int_seed(self):
        assert isinstance(ensure_rng(np.int64(3)), np.random.Generator)


class TestSpawn:
    def test_count(self):
        children = spawn(ensure_rng(0), 5)
        assert len(children) == 5

    def test_children_independent_streams(self):
        children = spawn(ensure_rng(0), 2)
        a = children[0].random(10)
        b = children[1].random(10)
        assert not np.allclose(a, b)

    def test_deterministic_from_parent_seed(self):
        a = spawn(ensure_rng(7), 3)[1].random()
        b = spawn(ensure_rng(7), 3)[1].random()
        assert a == b

    def test_zero_children(self):
        assert spawn(ensure_rng(0), 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn(ensure_rng(0), -1)


class TestSpawnKeyRng:
    def test_same_key_same_stream(self):
        a = spawn_key_rng(1234, (0, 1, 2)).random(16)
        b = spawn_key_rng(1234, (0, 1, 2)).random(16)
        np.testing.assert_array_equal(a, b)

    def test_different_keys_independent_streams(self):
        a = spawn_key_rng(1234, (0, 0, 0)).random(16)
        b = spawn_key_rng(1234, (0, 0, 1)).random(16)
        assert not np.allclose(a, b)

    def test_different_entropy_different_streams(self):
        a = spawn_key_rng(1, (0, 0, 0)).random(16)
        b = spawn_key_rng(2, (0, 0, 0)).random(16)
        assert not np.allclose(a, b)

    def test_order_independent(self):
        """A child's stream does not depend on which children were built
        before it — the property that makes parallel trials reproducible."""
        forward = [spawn_key_rng(9, (0, k, 0)).random() for k in range(4)]
        backward = [
            spawn_key_rng(9, (0, k, 0)).random() for k in reversed(range(4))
        ]
        assert forward == list(reversed(backward))

    def test_accepts_numpy_key_components(self):
        a = spawn_key_rng(7, np.array([1, 2], dtype=np.int64)).random()
        b = spawn_key_rng(7, (1, 2)).random()
        assert a == b

    def test_negative_entropy_rejected(self):
        with pytest.raises(ValueError):
            spawn_key_rng(-1, (0,))

    def test_negative_key_rejected(self):
        with pytest.raises(ValueError):
            spawn_key_rng(0, (0, -1))

    def test_same_stream_across_processes(self):
        """The keyed stream is reproducible from a fresh interpreter: what
        a pool worker rebuilds equals what the parent would have drawn."""
        src_dir = str(Path(repro.__file__).resolve().parent.parent)
        code = (
            "from repro.dp import spawn_key_rng\n"
            "vals = spawn_key_rng(987654321, (3, 1, 4)).integers(0, 2**32, 8)\n"
            "print(','.join(str(v) for v in vals.tolist()))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, check=True,
        )
        child_values = [int(v) for v in out.stdout.strip().split(",")]
        expected = spawn_key_rng(987654321, (3, 1, 4)).integers(0, 2**32, 8)
        assert child_values == expected.tolist()


class TestDeriveEntropy:
    def test_deterministic_from_seed(self):
        assert derive_entropy(42) == derive_entropy(42)

    def test_consumes_one_draw(self):
        gen = ensure_rng(5)
        reference = ensure_rng(5)
        derive_entropy(gen)
        reference.integers(0, 2**63 - 1)
        assert gen.random() == reference.random()

    def test_non_negative(self):
        assert derive_entropy(0) >= 0
