"""Tests for repro.dp.rng."""

import numpy as np
import pytest

from repro.dp import ensure_rng, spawn


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = ensure_rng(42).random()
        b = ensure_rng(42).random()
        assert a == b

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            ensure_rng(True)

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_numpy_int_seed(self):
        assert isinstance(ensure_rng(np.int64(3)), np.random.Generator)


class TestSpawn:
    def test_count(self):
        children = spawn(ensure_rng(0), 5)
        assert len(children) == 5

    def test_children_independent_streams(self):
        children = spawn(ensure_rng(0), 2)
        a = children[0].random(10)
        b = children[1].random(10)
        assert not np.allclose(a, b)

    def test_deterministic_from_parent_seed(self):
        a = spawn(ensure_rng(7), 3)[1].random()
        b = spawn(ensure_rng(7), 3)[1].random()
        assert a == b

    def test_zero_children(self):
        assert spawn(ensure_rng(0), 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn(ensure_rng(0), -1)
