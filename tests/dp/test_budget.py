"""Tests for repro.dp.budget."""

import pytest

from repro.core import BudgetError
from repro.dp import BudgetLedger, split_budget


class TestLedgerBasics:
    def test_initial_state(self):
        ledger = BudgetLedger(1.0)
        assert ledger.total_spent() == 0.0
        assert ledger.remaining() == 1.0

    def test_rejects_nonpositive_total(self):
        with pytest.raises(BudgetError):
            BudgetLedger(0.0)
        with pytest.raises(BudgetError):
            BudgetLedger(-1.0)

    def test_sequential_charges_add(self):
        ledger = BudgetLedger(1.0)
        ledger.charge(0.3)
        ledger.charge(0.4)
        assert ledger.total_spent() == pytest.approx(0.7)
        assert ledger.remaining() == pytest.approx(0.3)

    def test_rejects_nonpositive_charge(self):
        ledger = BudgetLedger(1.0)
        with pytest.raises(BudgetError):
            ledger.charge(0.0)
        with pytest.raises(BudgetError):
            ledger.charge(-0.1)

    def test_strict_overspend_raises(self):
        ledger = BudgetLedger(1.0)
        ledger.charge(0.9)
        with pytest.raises(BudgetError):
            ledger.charge(0.2)
        # Failed charge is not recorded.
        assert ledger.total_spent() == pytest.approx(0.9)

    def test_non_strict_allows_overspend_but_assert_fails(self):
        ledger = BudgetLedger(1.0, strict=False)
        ledger.charge(0.9)
        ledger.charge(0.9)
        with pytest.raises(BudgetError):
            ledger.assert_within_budget()

    def test_exact_budget_ok(self):
        ledger = BudgetLedger(1.0)
        ledger.charge(1.0)
        ledger.assert_within_budget()
        assert ledger.remaining() == 0.0


class TestParallelComposition:
    def test_same_scope_costs_max(self):
        ledger = BudgetLedger(1.0)
        ledger.charge(0.5, scope="cells")
        ledger.charge(0.5, scope="cells")
        ledger.charge(0.5, scope="cells")
        assert ledger.total_spent() == pytest.approx(0.5)

    def test_mixed_scopes_compose_sequentially(self):
        ledger = BudgetLedger(1.0)
        ledger.charge(0.3, scope="a")
        ledger.charge(0.3, scope="b")
        ledger.charge(0.2)
        assert ledger.total_spent() == pytest.approx(0.8)

    def test_scope_spent(self):
        ledger = BudgetLedger(1.0)
        ledger.charge(0.2, scope="a")
        ledger.charge(0.4, scope="a")
        assert ledger.scope_spent("a") == pytest.approx(0.4)
        assert ledger.scope_spent("missing") == 0.0

    def test_overspend_within_scope_detected(self):
        ledger = BudgetLedger(1.0)
        ledger.charge(0.9, scope="a")
        with pytest.raises(BudgetError):
            ledger.charge(1.1, scope="a")

    def test_summary(self):
        ledger = BudgetLedger(1.0)
        ledger.charge(0.2, scope="grid")
        ledger.charge(0.1, note="total count")
        summary = ledger.summary()
        assert summary["grid"] == pytest.approx(0.2)
        assert summary["<sequential>"] == pytest.approx(0.1)
        assert summary["<total>"] == pytest.approx(0.3)

    def test_charges_recorded(self):
        ledger = BudgetLedger(1.0)
        ledger.charge(0.1, scope="s", note="hello")
        assert len(ledger.charges) == 1
        assert ledger.charges[0].note == "hello"


class TestSplitBudget:
    def test_proportional(self):
        parts = split_budget(1.0, [3.0, 7.0])
        assert parts[0] == pytest.approx(0.3)
        assert parts[1] == pytest.approx(0.7)

    def test_sums_exactly(self):
        parts = split_budget(0.1, [1.0] * 7)
        assert sum(parts) == 0.1

    def test_rejects_bad_inputs(self):
        with pytest.raises(BudgetError):
            split_budget(0.0, [1.0])
        with pytest.raises(BudgetError):
            split_budget(1.0, [])
        with pytest.raises(BudgetError):
            split_budget(1.0, [1.0, -1.0])
