"""Tests for repro.dp.allocation (paper Eq. 29-33)."""

import numpy as np
import pytest

from repro.core import BudgetError
from repro.dp import (
    allocation_noise_variance,
    geometric_level_budgets,
    level_budget,
    root_budget,
    uniform_level_budgets,
)


class TestRootBudget:
    def test_one_percent(self):
        assert root_budget(1.0) == pytest.approx(0.01)
        assert root_budget(0.1) == pytest.approx(0.001)

    def test_rejects_nonpositive(self):
        with pytest.raises(BudgetError):
            root_budget(0.0)


class TestGeometricLevelBudgets:
    def test_sums_to_total(self):
        budgets = geometric_level_budgets(0.99, m0=8.0, depth=4)
        assert sum(budgets) == pytest.approx(0.99)
        assert len(budgets) == 4

    def test_increasing_with_depth(self):
        # Deeper levels have more nodes, so they receive more budget.
        budgets = geometric_level_budgets(1.0, m0=8.0, depth=5)
        assert all(b2 > b1 for b1, b2 in zip(budgets, budgets[1:]))

    def test_matches_closed_form(self):
        # eps_i = eps' m0^{i/3} / sum_j m0^{j/3} (Eq. 32).
        m0, depth, eps = 27.0, 3, 0.9
        budgets = geometric_level_budgets(eps, m0, depth)
        weights = [m0 ** (i / 3) for i in range(1, depth + 1)]
        expected = [eps * w / sum(weights) for w in weights]
        assert np.allclose(budgets, expected)

    def test_m0_one_degenerates_to_uniform(self):
        budgets = geometric_level_budgets(0.6, m0=1.0, depth=3)
        assert np.allclose(budgets, [0.2, 0.2, 0.2])

    def test_depth_one(self):
        assert geometric_level_budgets(0.5, 4.0, 1) == [0.5]

    def test_validation(self):
        with pytest.raises(BudgetError):
            geometric_level_budgets(0.0, 2.0, 3)
        with pytest.raises(BudgetError):
            geometric_level_budgets(1.0, 0.5, 3)
        with pytest.raises(BudgetError):
            geometric_level_budgets(1.0, 2.0, 0)

    def test_level_budget_consistency(self):
        budgets = geometric_level_budgets(0.9, 9.0, 4)
        for i in range(1, 5):
            assert level_budget(0.9, 9.0, 4, i) == pytest.approx(budgets[i - 1])

    def test_level_budget_bounds(self):
        with pytest.raises(BudgetError):
            level_budget(0.9, 9.0, 4, 0)
        with pytest.raises(BudgetError):
            level_budget(0.9, 9.0, 4, 5)


class TestOptimality:
    def test_geometric_beats_uniform_on_objective(self):
        """Eq. 32 must minimize Eq. 29 among feasible allocations."""
        m0, depth, eps = 16.0, 4, 1.0
        geo = geometric_level_budgets(eps, m0, depth)
        uni = uniform_level_budgets(eps, depth)
        assert allocation_noise_variance(geo, m0) <= allocation_noise_variance(
            uni, m0
        )

    def test_geometric_beats_random_allocations(self, rng):
        m0, depth, eps = 8.0, 5, 1.0
        geo_score = allocation_noise_variance(
            geometric_level_budgets(eps, m0, depth), m0
        )
        for _ in range(50):
            raw = rng.random(depth) + 1e-3
            alloc = list(raw / raw.sum() * eps)
            assert geo_score <= allocation_noise_variance(alloc, m0) + 1e-9

    def test_objective_validates(self):
        with pytest.raises(BudgetError):
            allocation_noise_variance([0.5, 0.0], 2.0)


class TestUniformLevelBudgets:
    def test_sums_to_total(self):
        budgets = uniform_level_budgets(0.7, 7)
        assert sum(budgets) == pytest.approx(0.7)
        assert len(budgets) == 7

    def test_validation(self):
        with pytest.raises(BudgetError):
            uniform_level_budgets(-1.0, 2)
        with pytest.raises(BudgetError):
            uniform_level_budgets(1.0, 0)
