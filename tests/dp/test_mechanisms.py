"""Tests for repro.dp.mechanisms."""

import math

import numpy as np
import pytest

from repro.core import ValidationError
from repro.dp import (
    GeometricMechanism,
    LaplaceMechanism,
    geometric_noise,
    laplace_noise,
    laplace_scale,
    laplace_variance,
    report_noisy_min,
)


class TestLaplaceScale:
    def test_formula(self):
        assert laplace_scale(1.0, 0.5) == 2.0
        assert laplace_scale(2.0, 0.5) == 4.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValidationError):
            laplace_scale(0.0, 0.5)
        with pytest.raises(ValidationError):
            laplace_scale(1.0, 0.0)
        with pytest.raises(ValidationError):
            laplace_scale(1.0, -1.0)
        with pytest.raises(ValidationError):
            laplace_scale(float("nan"), 0.5)

    def test_variance(self):
        assert laplace_variance(1.0, 1.0) == pytest.approx(2.0)
        assert laplace_variance(1.0, 0.5) == pytest.approx(8.0)


class TestLaplaceNoise:
    def test_scalar_draw(self):
        x = laplace_noise(1.0, 0.5, rng=0)
        assert isinstance(x, float)

    def test_array_draw(self):
        arr = laplace_noise(1.0, 0.5, rng=0, size=(3, 4))
        assert arr.shape == (3, 4)

    def test_reproducible_by_seed(self):
        a = laplace_noise(1.0, 0.5, rng=7)
        b = laplace_noise(1.0, 0.5, rng=7)
        assert a == b

    def test_empirical_variance(self):
        arr = laplace_noise(1.0, 0.5, rng=1, size=200_000)
        assert float(np.var(arr)) == pytest.approx(8.0, rel=0.05)

    def test_empirical_mean_zero(self):
        arr = laplace_noise(1.0, 1.0, rng=2, size=200_000)
        assert abs(float(np.mean(arr))) < 0.02


class TestLaplaceMechanism:
    def test_randomize(self):
        mech = LaplaceMechanism(1.0)
        assert mech.randomize(10.0, 0.5, rng=0) != 10.0

    def test_randomize_array_shape(self):
        mech = LaplaceMechanism(1.0)
        out = mech.randomize_array(np.zeros((5, 5)), 0.5, rng=0)
        assert out.shape == (5, 5)

    def test_sensitivity_validated(self):
        with pytest.raises(ValidationError):
            LaplaceMechanism(0.0)

    def test_scale_and_variance(self):
        mech = LaplaceMechanism(2.0)
        assert mech.scale(0.5) == 4.0
        assert mech.variance(0.5) == pytest.approx(32.0)


class TestGeometricMechanism:
    def test_integer_valued(self):
        noise = geometric_noise(1.0, 0.5, rng=0, size=1000)
        assert np.allclose(noise, np.round(noise))

    def test_scalar(self):
        x = geometric_noise(1.0, 0.5, rng=0)
        assert x == int(x)

    def test_empirical_variance_matches_formula(self):
        eps = 0.4
        mech = GeometricMechanism(1.0)
        noise = geometric_noise(1.0, eps, rng=3, size=300_000)
        assert float(np.var(noise)) == pytest.approx(mech.variance(eps), rel=0.05)

    def test_randomize_keeps_integers(self):
        mech = GeometricMechanism(1.0)
        out = mech.randomize(7.0, 0.5, rng=1)
        assert out == int(out)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValidationError):
            geometric_noise(0.0, 0.5)
        with pytest.raises(ValidationError):
            geometric_noise(1.0, -0.5)
        with pytest.raises(ValidationError):
            GeometricMechanism(-1.0)


class TestReportNoisyMin:
    def test_returns_valid_index(self):
        idx = report_noisy_min([3.0, 1.0, 2.0], 1.0, 10.0, rng=0)
        assert 0 <= idx < 3

    def test_prefers_smallest_at_high_epsilon(self):
        hits = 0
        rng = np.random.default_rng(0)
        for _ in range(100):
            if report_noisy_min([100.0, 0.0, 100.0], 1.0, 50.0, rng) == 1:
                hits += 1
        assert hits >= 95

    def test_near_uniform_at_tiny_epsilon(self):
        rng = np.random.default_rng(0)
        counts = np.zeros(3)
        for _ in range(600):
            counts[report_noisy_min([5.0, 0.0, 5.0], 1.0, 1e-6, rng)] += 1
        # With negligible budget the choice is noise-dominated.
        assert counts.min() > 100

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            report_noisy_min([], 1.0, 1.0)

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            report_noisy_min(np.zeros((2, 2)), 1.0, 1.0)
