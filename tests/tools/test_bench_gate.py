"""Tests for tools/bench_gate.py — the CI benchmark-regression gate.

Run as a subprocess, exactly as CI invokes it: exit code 0 means the
fresh artifacts hold the line, 1 means a tracked speedup regressed (or a
tracked series silently disappeared).
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

GATE = Path(__file__).resolve().parents[2] / "tools" / "bench_gate.py"

QUERY_BASELINE = {
    "kernel_speedup": 50.0,
    "auto_speedup": 4000.0,
    "pruned_speedup": 10.0,
    "kernel_max_abs_diff": 2e-10,
    "auto_max_abs_diff": 3e-10,
    "pruned_max_abs_diff": 1e-14,
}

PARALLEL_BASELINE = {
    "speedup": 2.2,
    "skipped_low_cores": False,
    "usable_cores": 8,
}

SHARDED_BASELINE = {
    "speedup": 2.1,
    "skip_rate": 0.875,
    "sharded_max_abs_diff": 2e-10,
    "skipped_low_cores": False,
    "usable_cores": 8,
}

ASYNC_BASELINE = {
    "speedup": 3.0,
    "sync_speedup": 1.8,
    "async_max_abs_diff": 0.0,
    "batched_ticks": 1,
}

SERVING_BASELINE = {
    "responsiveness_ratio": 40.0,
    "serving_max_abs_diff": 0.0,
    "queries_per_second": 5000.0,
    "dropped_requests": 0,
}


def write_artifacts(directory, query=None, parallel=None, sharded=None,
                    async_batching=None, serving=None):
    directory.mkdir(parents=True, exist_ok=True)
    if query is not None:
        (directory / "BENCH_query_engine.json").write_text(json.dumps(query))
    if parallel is not None:
        (directory / "BENCH_parallel_trials.json").write_text(
            json.dumps(parallel)
        )
    if sharded is not None:
        (directory / "BENCH_sharded.json").write_text(json.dumps(sharded))
    if async_batching is not None:
        (directory / "BENCH_async_batching.json").write_text(
            json.dumps(async_batching)
        )
    if serving is not None:
        (directory / "BENCH_serving.json").write_text(json.dumps(serving))


def run_gate(baseline, fresh, *extra):
    return subprocess.run(
        [
            sys.executable, str(GATE),
            "--baseline", str(baseline),
            "--fresh", str(fresh),
            *extra,
        ],
        capture_output=True,
        text=True,
    )


@pytest.fixture()
def dirs(tmp_path):
    return tmp_path / "baseline", tmp_path / "fresh"


class TestSpeedupGate:
    def test_identical_artifacts_pass(self, dirs):
        baseline, fresh = dirs
        write_artifacts(baseline, QUERY_BASELINE, PARALLEL_BASELINE)
        write_artifacts(fresh, QUERY_BASELINE, PARALLEL_BASELINE)
        result = run_gate(baseline, fresh)
        assert result.returncode == 0, result.stdout

    def test_small_regression_within_threshold_passes(self, dirs):
        baseline, fresh = dirs
        fresh_query = dict(QUERY_BASELINE, kernel_speedup=40.0)  # -20%
        write_artifacts(baseline, QUERY_BASELINE, PARALLEL_BASELINE)
        write_artifacts(fresh, fresh_query, PARALLEL_BASELINE)
        result = run_gate(baseline, fresh)
        assert result.returncode == 0, result.stdout

    @pytest.mark.parametrize(
        "key", ["kernel_speedup", "auto_speedup", "pruned_speedup"]
    )
    def test_large_regression_fails(self, dirs, key):
        baseline, fresh = dirs
        fresh_query = dict(QUERY_BASELINE, **{key: QUERY_BASELINE[key] * 0.6})
        write_artifacts(baseline, QUERY_BASELINE, PARALLEL_BASELINE)
        write_artifacts(fresh, fresh_query, PARALLEL_BASELINE)
        result = run_gate(baseline, fresh)
        assert result.returncode == 1
        assert f"FAIL  BENCH_query_engine.json:{key}" in result.stdout

    def test_parallel_regression_fails(self, dirs):
        baseline, fresh = dirs
        write_artifacts(baseline, QUERY_BASELINE, PARALLEL_BASELINE)
        write_artifacts(
            fresh, QUERY_BASELINE, dict(PARALLEL_BASELINE, speedup=1.0)
        )
        result = run_gate(baseline, fresh)
        assert result.returncode == 1
        assert "BENCH_parallel_trials.json:speedup" in result.stdout

    def test_threshold_is_configurable(self, dirs):
        baseline, fresh = dirs
        fresh_query = dict(QUERY_BASELINE, kernel_speedup=40.0)  # -20%
        write_artifacts(baseline, QUERY_BASELINE, PARALLEL_BASELINE)
        write_artifacts(fresh, fresh_query, PARALLEL_BASELINE)
        result = run_gate(baseline, fresh, "--max-regression", "0.1")
        assert result.returncode == 1


class TestSkippedEntries:
    def test_skipped_low_cores_fresh_is_ignored(self, dirs):
        baseline, fresh = dirs
        skipped = {
            "skipped_low_cores": True,
            "usable_cores": 1,
            "serial_seconds": 3.7,
            "parallel_seconds": 5.0,
        }
        write_artifacts(baseline, QUERY_BASELINE, PARALLEL_BASELINE)
        write_artifacts(fresh, QUERY_BASELINE, skipped)
        result = run_gate(baseline, fresh)
        assert result.returncode == 0, result.stdout
        assert "skipped_low_cores" in result.stdout

    def test_skipped_low_cores_baseline_is_ignored(self, dirs):
        baseline, fresh = dirs
        skipped = {"skipped_low_cores": True, "usable_cores": 1}
        write_artifacts(baseline, QUERY_BASELINE, skipped)
        write_artifacts(fresh, QUERY_BASELINE, PARALLEL_BASELINE)
        result = run_gate(baseline, fresh)
        assert result.returncode == 0, result.stdout


class TestShardedArtifact:
    """BENCH_sharded.json is tracked like the other speedup artifacts."""

    def test_identical_sharded_artifacts_pass(self, dirs):
        baseline, fresh = dirs
        write_artifacts(
            baseline, QUERY_BASELINE, PARALLEL_BASELINE, SHARDED_BASELINE
        )
        write_artifacts(
            fresh, QUERY_BASELINE, PARALLEL_BASELINE, SHARDED_BASELINE
        )
        result = run_gate(baseline, fresh)
        assert result.returncode == 0, result.stdout
        assert "BENCH_sharded.json:speedup" in result.stdout

    def test_sharded_speedup_regression_fails(self, dirs):
        baseline, fresh = dirs
        write_artifacts(
            baseline, QUERY_BASELINE, PARALLEL_BASELINE, SHARDED_BASELINE
        )
        write_artifacts(
            fresh, QUERY_BASELINE, PARALLEL_BASELINE,
            dict(SHARDED_BASELINE, speedup=1.0),
        )
        result = run_gate(baseline, fresh)
        assert result.returncode == 1
        assert "FAIL  BENCH_sharded.json:speedup" in result.stdout

    def test_sharded_exactness_ceiling_enforced_despite_skip_marker(self, dirs):
        # A narrow machine may not measure a speedup, but merged answers
        # diverging from broadcast is a correctness bug on any machine.
        baseline, fresh = dirs
        skipped_but_wrong = dict(
            SHARDED_BASELINE,
            skipped_low_cores=True,
            usable_cores=1,
            sharded_max_abs_diff=1e-6,
        )
        skipped_but_wrong.pop("speedup")
        write_artifacts(
            baseline, QUERY_BASELINE, PARALLEL_BASELINE, SHARDED_BASELINE
        )
        write_artifacts(
            fresh, QUERY_BASELINE, PARALLEL_BASELINE, skipped_but_wrong
        )
        result = run_gate(baseline, fresh)
        assert result.returncode == 1
        assert "sharded_max_abs_diff" in result.stdout

    def test_sharded_skip_marker_ignores_speedup(self, dirs):
        baseline, fresh = dirs
        skipped = dict(SHARDED_BASELINE, skipped_low_cores=True, usable_cores=1)
        skipped.pop("speedup")
        write_artifacts(
            baseline, QUERY_BASELINE, PARALLEL_BASELINE, SHARDED_BASELINE
        )
        write_artifacts(fresh, QUERY_BASELINE, PARALLEL_BASELINE, skipped)
        result = run_gate(baseline, fresh)
        assert result.returncode == 0, result.stdout


class TestAsyncBatchingArtifact:
    """BENCH_async_batching.json: tracked speedup + exact-zero ceiling."""

    def test_identical_async_artifacts_pass(self, dirs):
        baseline, fresh = dirs
        write_artifacts(
            baseline, QUERY_BASELINE, PARALLEL_BASELINE,
            async_batching=ASYNC_BASELINE,
        )
        write_artifacts(
            fresh, QUERY_BASELINE, PARALLEL_BASELINE,
            async_batching=ASYNC_BASELINE,
        )
        result = run_gate(baseline, fresh)
        assert result.returncode == 0, result.stdout
        assert "BENCH_async_batching.json:speedup" in result.stdout

    def test_async_speedup_regression_fails(self, dirs):
        baseline, fresh = dirs
        write_artifacts(
            baseline, QUERY_BASELINE, PARALLEL_BASELINE,
            async_batching=ASYNC_BASELINE,
        )
        write_artifacts(
            fresh, QUERY_BASELINE, PARALLEL_BASELINE,
            async_batching=dict(ASYNC_BASELINE, speedup=1.2),
        )
        result = run_gate(baseline, fresh)
        assert result.returncode == 1
        assert "FAIL  BENCH_async_batching.json:speedup" in result.stdout

    def test_async_drift_fails_even_without_baseline(self, dirs):
        # The exactness ceiling is absolute; drift in the demultiplexed
        # answers is a correctness bug regardless of history.
        baseline, fresh = dirs
        write_artifacts(baseline, QUERY_BASELINE, PARALLEL_BASELINE)
        write_artifacts(
            fresh, QUERY_BASELINE, PARALLEL_BASELINE,
            async_batching=dict(ASYNC_BASELINE, async_max_abs_diff=1e-7),
        )
        result = run_gate(baseline, fresh)
        assert result.returncode == 1
        assert "async_max_abs_diff" in result.stdout

    def test_untracked_sync_speedup_ignored(self, dirs):
        # sync_speedup is context, not a gated series: it may collapse
        # without failing the gate.
        baseline, fresh = dirs
        write_artifacts(
            baseline, QUERY_BASELINE, PARALLEL_BASELINE,
            async_batching=ASYNC_BASELINE,
        )
        write_artifacts(
            fresh, QUERY_BASELINE, PARALLEL_BASELINE,
            async_batching=dict(ASYNC_BASELINE, sync_speedup=0.1),
        )
        result = run_gate(baseline, fresh)
        assert result.returncode == 0, result.stdout


class TestServingArtifact:
    """BENCH_serving.json: absolute responsiveness floor + exactness."""

    def test_identical_serving_artifacts_pass(self, dirs):
        baseline, fresh = dirs
        write_artifacts(
            baseline, QUERY_BASELINE, PARALLEL_BASELINE,
            serving=SERVING_BASELINE,
        )
        write_artifacts(
            fresh, QUERY_BASELINE, PARALLEL_BASELINE,
            serving=SERVING_BASELINE,
        )
        result = run_gate(baseline, fresh)
        assert result.returncode == 0, result.stdout
        assert "BENCH_serving.json:responsiveness_ratio" in result.stdout

    def test_ratio_below_absolute_floor_fails(self, dirs):
        # The floor is absolute, not baseline-relative: even if the
        # baseline ALSO sat below 5x, a fresh 3x must fail.
        baseline, fresh = dirs
        low = dict(SERVING_BASELINE, responsiveness_ratio=3.0)
        write_artifacts(
            baseline, QUERY_BASELINE, PARALLEL_BASELINE, serving=low
        )
        write_artifacts(
            fresh, QUERY_BASELINE, PARALLEL_BASELINE, serving=low
        )
        result = run_gate(baseline, fresh)
        assert result.returncode == 1
        assert "FAIL  BENCH_serving.json:responsiveness_ratio" \
            in result.stdout

    def test_floor_enforced_without_baseline(self, dirs):
        baseline, fresh = dirs
        write_artifacts(baseline, QUERY_BASELINE, PARALLEL_BASELINE)
        write_artifacts(
            fresh, QUERY_BASELINE, PARALLEL_BASELINE,
            serving=dict(SERVING_BASELINE, responsiveness_ratio=4.9),
        )
        result = run_gate(baseline, fresh)
        assert result.returncode == 1
        assert "responsiveness_ratio" in result.stdout

    def test_large_ratio_regression_passes_while_above_floor(self, dirs):
        # Unlike the relative speedup windows, the ratio may fall from
        # 40x to 6x without failing: the guarantee is >=5x, period.
        baseline, fresh = dirs
        write_artifacts(
            baseline, QUERY_BASELINE, PARALLEL_BASELINE,
            serving=SERVING_BASELINE,
        )
        write_artifacts(
            fresh, QUERY_BASELINE, PARALLEL_BASELINE,
            serving=dict(SERVING_BASELINE, responsiveness_ratio=6.0),
        )
        result = run_gate(baseline, fresh)
        assert result.returncode == 0, result.stdout

    def test_serving_drift_fails(self, dirs):
        baseline, fresh = dirs
        write_artifacts(
            baseline, QUERY_BASELINE, PARALLEL_BASELINE,
            serving=SERVING_BASELINE,
        )
        write_artifacts(
            fresh, QUERY_BASELINE, PARALLEL_BASELINE,
            serving=dict(SERVING_BASELINE, serving_max_abs_diff=1e-7),
        )
        result = run_gate(baseline, fresh)
        assert result.returncode == 1
        assert "serving_max_abs_diff" in result.stdout

    def test_ratio_disappearing_fails(self, dirs):
        baseline, fresh = dirs
        gone = {
            k: v for k, v in SERVING_BASELINE.items()
            if k != "responsiveness_ratio"
        }
        write_artifacts(
            baseline, QUERY_BASELINE, PARALLEL_BASELINE,
            serving=SERVING_BASELINE,
        )
        write_artifacts(
            fresh, QUERY_BASELINE, PARALLEL_BASELINE, serving=gone
        )
        result = run_gate(baseline, fresh)
        assert result.returncode == 1
        assert "responsiveness_ratio: tracked series disappeared" \
            in result.stdout

    def test_missing_fresh_serving_artifact_fails(self, dirs):
        baseline, fresh = dirs
        write_artifacts(
            baseline, QUERY_BASELINE, PARALLEL_BASELINE,
            serving=SERVING_BASELINE,
        )
        write_artifacts(fresh, QUERY_BASELINE, PARALLEL_BASELINE)
        result = run_gate(baseline, fresh)
        assert result.returncode == 1
        assert "BENCH_serving.json: fresh artifact missing" in result.stdout


class TestMissingData:
    def test_missing_fresh_artifact_fails(self, dirs):
        baseline, fresh = dirs
        write_artifacts(baseline, QUERY_BASELINE, PARALLEL_BASELINE)
        write_artifacts(fresh, QUERY_BASELINE, None)
        result = run_gate(baseline, fresh)
        assert result.returncode == 1
        assert "fresh artifact missing" in result.stdout

    def test_tracked_series_disappearing_fails(self, dirs):
        baseline, fresh = dirs
        fresh_query = {
            k: v for k, v in QUERY_BASELINE.items() if k != "pruned_speedup"
        }
        write_artifacts(baseline, QUERY_BASELINE, PARALLEL_BASELINE)
        write_artifacts(fresh, fresh_query, PARALLEL_BASELINE)
        result = run_gate(baseline, fresh)
        assert result.returncode == 1
        assert "disappeared" in result.stdout

    def test_new_series_without_baseline_passes(self, dirs):
        baseline, fresh = dirs
        base_query = {
            k: v for k, v in QUERY_BASELINE.items() if k != "pruned_speedup"
        }
        write_artifacts(baseline, base_query, PARALLEL_BASELINE)
        write_artifacts(fresh, QUERY_BASELINE, PARALLEL_BASELINE)
        result = run_gate(baseline, fresh)
        assert result.returncode == 0, result.stdout

    @pytest.mark.parametrize("side", ["baseline", "fresh"])
    def test_corrupt_artifact_fails(self, dirs, side):
        baseline, fresh = dirs
        write_artifacts(baseline, QUERY_BASELINE, PARALLEL_BASELINE)
        write_artifacts(fresh, QUERY_BASELINE, PARALLEL_BASELINE)
        broken = (baseline if side == "baseline" else fresh)
        (broken / "BENCH_query_engine.json").write_text("{not json")
        result = run_gate(baseline, fresh)
        assert result.returncode == 1
        assert "unreadable JSON" in result.stdout

    def test_nothing_compared_fails(self, dirs):
        baseline, fresh = dirs
        baseline.mkdir()
        fresh.mkdir()
        result = run_gate(baseline, fresh)
        assert result.returncode == 1
        assert "nothing compared" in result.stdout


class TestExactnessGate:
    def test_exactness_ceiling_enforced(self, dirs):
        baseline, fresh = dirs
        fresh_query = dict(QUERY_BASELINE, pruned_max_abs_diff=1e-6)
        write_artifacts(baseline, QUERY_BASELINE, PARALLEL_BASELINE)
        write_artifacts(fresh, fresh_query, PARALLEL_BASELINE)
        result = run_gate(baseline, fresh)
        assert result.returncode == 1
        assert "pruned_max_abs_diff" in result.stdout

    def test_exactness_series_disappearing_fails(self, dirs):
        # The disappearance rule covers exactness ceilings too: a fresh
        # artifact that stops emitting a tracked *_max_abs_diff must
        # fail, not silently drop the 1e-9 enforcement.
        baseline, fresh = dirs
        fresh_query = {
            k: v for k, v in QUERY_BASELINE.items()
            if k != "pruned_max_abs_diff"
        }
        write_artifacts(baseline, QUERY_BASELINE, PARALLEL_BASELINE)
        write_artifacts(fresh, fresh_query, PARALLEL_BASELINE)
        result = run_gate(baseline, fresh)
        assert result.returncode == 1
        assert "pruned_max_abs_diff: tracked series disappeared" \
            in result.stdout

    def test_exactness_enforced_without_baseline(self, dirs):
        # Ceilings are absolute: a brand-new artifact with no baseline
        # still has its exactness fields checked.
        baseline, fresh = dirs
        write_artifacts(baseline, QUERY_BASELINE, PARALLEL_BASELINE)
        write_artifacts(
            fresh, QUERY_BASELINE, PARALLEL_BASELINE,
            dict(SHARDED_BASELINE, sharded_max_abs_diff=1e-6),
        )
        result = run_gate(baseline, fresh)
        assert result.returncode == 1
        assert "sharded_max_abs_diff" in result.stdout
