"""Tests for tools/check_docs.py — the intra-repo doc link gate.

Run as a subprocess, exactly as the CI ``docs-check`` job invokes it:
exit 0 when every relative Markdown link resolves, 1 with a
``file:line`` listing otherwise.
"""

import subprocess
import sys
from pathlib import Path

CHECKER = Path(__file__).resolve().parents[2] / "tools" / "check_docs.py"
REPO_ROOT = CHECKER.parents[1]


def run_checker(*args):
    return subprocess.run(
        [sys.executable, str(CHECKER), *map(str, args)],
        capture_output=True,
        text=True,
    )


class TestRepoDocs:
    def test_the_actual_repo_docs_pass(self):
        result = run_checker("--root", REPO_ROOT)
        assert result.returncode == 0, result.stdout

    def test_architecture_and_serving_are_linked_from_readme(self):
        readme = (REPO_ROOT / "README.md").read_text()
        assert "docs/ARCHITECTURE.md" in readme
        assert "docs/SERVING.md" in readme


class TestLinkChecking:
    def test_broken_relative_link_fails_with_location(self, tmp_path):
        (tmp_path / "index.md").write_text(
            "# Title\n\nSee [the guide](guide/missing.md) for more.\n"
        )
        result = run_checker("--root", tmp_path)
        assert result.returncode == 1
        assert "index.md:3" in result.stdout
        assert "guide/missing.md" in result.stdout

    def test_resolving_relative_links_pass(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "other.md").write_text("# Other\n\nBack to [top](../a.md)\n")
        (tmp_path / "a.md").write_text("Go [deeper](docs/other.md).\n")
        result = run_checker("--root", tmp_path)
        assert result.returncode == 0, result.stdout

    def test_external_and_anchor_links_ignored(self, tmp_path):
        (tmp_path / "a.md").write_text(
            "[site](https://example.com) [mail](mailto:x@y.z) "
            "[anchor](#section)\n"
        )
        result = run_checker("--root", tmp_path)
        assert result.returncode == 0, result.stdout

    def test_section_anchor_on_existing_file_passes(self, tmp_path):
        (tmp_path / "b.md").write_text("# B\n## Deep\n")
        (tmp_path / "a.md").write_text("[jump](b.md#deep)\n")
        result = run_checker("--root", tmp_path)
        assert result.returncode == 0, result.stdout

    def test_links_inside_code_fences_ignored(self, tmp_path):
        (tmp_path / "a.md").write_text(
            "# A\n\n```markdown\n[example](not/a/real/file.md)\n```\n"
        )
        result = run_checker("--root", tmp_path)
        assert result.returncode == 0, result.stdout

    def test_reference_style_links_checked(self, tmp_path):
        (tmp_path / "a.md").write_text(
            "See [the spec][spec].\n\n[spec]: missing-spec.md\n"
        )
        result = run_checker("--root", tmp_path)
        assert result.returncode == 1
        assert "missing-spec.md" in result.stdout

    def test_explicit_file_list_mode(self, tmp_path):
        good = tmp_path / "good.md"
        good.write_text("no links here\n")
        bad = tmp_path / "bad.md"
        bad.write_text("[x](gone.md)\n")
        assert run_checker(good).returncode == 0
        assert run_checker(good, bad).returncode == 1

    def test_missing_input_file_fails(self, tmp_path):
        result = run_checker(tmp_path / "absent.md")
        assert result.returncode == 1
        assert "no such file" in result.stdout
