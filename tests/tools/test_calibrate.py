"""Tests for tools/calibrate.py — threshold suggestions, never applied."""

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

import pytest

TOOLS = Path(__file__).resolve().parents[2] / "tools"
CALIBRATE = TOOLS / "calibrate.py"

_spec = importlib.util.spec_from_file_location("calibrate", CALIBRATE)
calibrate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(calibrate)

#: A synthetic artifact with easy round numbers: q=1000, k=1000,
#: cells=10_000; broadcast pair cost 1e-6 s; dense total 0.1 s ->
#: break-even at q*k = 1e5 pairs = 10x the cell count.
FULL_ARTIFACT = {
    "shape": [100, 100],
    "n_partitions": 1000,
    "n_queries": 1000,
    "kernel_seconds": 1.0,
    "auto_seconds": 0.1,
    "auto_plan": "dense",
    "broadcast_seconds_small": 1.0,
    "pruned_seconds_small": 0.1,
    "small_query_candidate_fraction": 0.01,
}


class TestSuggest:
    def test_dense_factor_from_breakeven(self):
        out = calibrate.suggest(FULL_ARTIFACT)
        assert out["evidence"]["dense_breakeven_factor"] == pytest.approx(10.0)
        assert out["dense_switch_factor"] == pytest.approx(
            10.0 / calibrate.DENSE_HEADROOM
        )

    def test_prune_factor_from_pair_ratio(self):
        out = calibrate.suggest(FULL_ARTIFACT)
        # est pairs = 0.01 * 1e6 + 1000 * 64 = 74_000; gathered pair
        # cost = 0.1 / 74e3; contiguous = 1.0 / 1e6.
        expected_ratio = (0.1 / 74_000.0) / (1.0 / 1_000_000.0)
        assert out["evidence"][
            "gathered_vs_contiguous_pair_ratio"
        ] == pytest.approx(expected_ratio, abs=0.01)
        assert out["prune_safety_factor"] == pytest.approx(
            expected_ratio * calibrate.PRUNE_HEADROOM, abs=0.02
        )

    def test_suggestions_floor_at_one(self):
        artifact = dict(FULL_ARTIFACT, auto_seconds=1e-9,
                        pruned_seconds_small=1e-9)
        out = calibrate.suggest(artifact)
        assert out["dense_switch_factor"] >= 1.0
        assert out["prune_safety_factor"] >= 1.0

    def test_missing_series_skipped(self):
        partial = {
            k: v for k, v in FULL_ARTIFACT.items()
            if not k.startswith(("broadcast_", "pruned_", "small_"))
        }
        out = calibrate.suggest(partial)
        assert "dense_switch_factor" in out
        assert "prune_safety_factor" not in out
        assert "no suggestions" not in calibrate.render(out)

    def test_non_dense_auto_plan_skips_dense_series(self):
        out = calibrate.suggest(dict(FULL_ARTIFACT, auto_plan="broadcast"))
        assert "dense_switch_factor" not in out

    def test_empty_artifact_renders_no_suggestions(self):
        out = calibrate.suggest({})
        assert "no suggestions" in calibrate.render(out)

    def test_suggested_overrides_are_valid_engine_config(self):
        from repro.engine import EngineConfig

        out = calibrate.suggest(FULL_ARTIFACT)
        overrides = {k: v for k, v in out.items() if k != "evidence"}
        config = EngineConfig(**overrides)
        assert config.plan_cost().safety_factor == out["prune_safety_factor"]


class TestCommandLine:
    def run_tool(self, *args):
        return subprocess.run(
            [sys.executable, str(CALIBRATE), *args],
            capture_output=True, text=True,
        )

    def test_prints_suggestions_for_artifact(self, tmp_path):
        artifact = tmp_path / "BENCH_query_engine.json"
        artifact.write_text(json.dumps(FULL_ARTIFACT))
        proc = self.run_tool("--artifact", str(artifact))
        assert proc.returncode == 0
        assert "suggested EngineConfig(" in proc.stdout
        assert "--engine-config" in proc.stdout
        assert "REPRO_ENGINE_DENSE_SWITCH_FACTOR" in proc.stdout
        assert "nothing was applied" in proc.stdout

    def test_missing_artifact_fails_cleanly(self, tmp_path):
        proc = self.run_tool("--artifact", str(tmp_path / "nope.json"))
        assert proc.returncode == 1
        assert "no artifact" in proc.stderr

    def test_corrupt_artifact_fails_cleanly(self, tmp_path):
        bad = tmp_path / "BENCH_query_engine.json"
        bad.write_text("{not json")
        proc = self.run_tool("--artifact", str(bad))
        assert proc.returncode == 1
        assert "unreadable" in proc.stderr
