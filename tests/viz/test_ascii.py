"""Tests for the ASCII visualization (Figure 3 reproduction)."""

import numpy as np
import pytest

from repro.core import FrequencyMatrix, ValidationError
from repro.methods import DAFEntropy
from repro.viz import (
    DENSITY_CHARS,
    ascii_heatmap,
    ascii_partition_overlay,
    downsample_2d,
    render_grid_partitioning,
)


class TestDownsample:
    def test_exact_pooling(self):
        data = np.arange(16, dtype=float).reshape(4, 4)
        pooled = downsample_2d(data, 2, 2)
        assert pooled[0, 0] == pytest.approx(data[:2, :2].mean())
        assert pooled.shape == (2, 2)

    def test_no_upsampling(self):
        pooled = downsample_2d(np.ones((3, 3)), 10, 10)
        assert pooled.shape == (3, 3)

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            downsample_2d(np.ones(5), 2, 2)


class TestAsciiHeatmap:
    def test_dimensions(self, skewed_2d):
        text = ascii_heatmap(skewed_2d, rows=10, cols=20)
        lines = text.splitlines()
        assert len(lines) == 10
        assert all(len(line) == 20 for line in lines)

    def test_dense_region_darker(self, skewed_2d):
        text = ascii_heatmap(skewed_2d, rows=8, cols=8)
        lines = text.splitlines()
        center_char = lines[4][4]
        corner_char = lines[0][0]
        assert DENSITY_CHARS.index(center_char) > DENSITY_CHARS.index(corner_char)

    def test_empty_matrix_blank(self):
        text = ascii_heatmap(FrequencyMatrix.zeros((8, 8)), rows=4, cols=4)
        assert set(text.replace("\n", "")) == {" "}

    def test_accepts_raw_array(self):
        assert ascii_heatmap(np.ones((4, 4)), rows=2, cols=2)

    def test_rejects_3d(self, small_4d):
        with pytest.raises(ValidationError):
            ascii_heatmap(small_4d)


class TestPartitionOverlay:
    def test_overlay_contains_cut_lines(self, skewed_2d):
        method = DAFEntropy()
        private = method.sanitize(skewed_2d, 1.0, rng=0)
        text = ascii_partition_overlay(
            skewed_2d, private.metadata["split_tree"], rows=20, cols=40
        )
        assert "|" in text  # dimension-0 cuts
        assert "-" in text or "+" in text  # dimension-1 cuts

    def test_overlay_dimensions(self, skewed_2d):
        private = DAFEntropy().sanitize(skewed_2d, 1.0, rng=0)
        text = ascii_partition_overlay(
            skewed_2d, private.metadata["split_tree"], rows=12, cols=24
        )
        lines = text.splitlines()
        assert len(lines) == 12
        assert all(len(line) == 24 for line in lines)

    def test_rejects_non_2d(self, small_4d):
        private = DAFEntropy().sanitize(small_4d, 1.0, rng=0)
        with pytest.raises(ValidationError):
            ascii_partition_overlay(small_4d, private.metadata["split_tree"])


class TestGridRendering:
    def test_grid_lines_present(self):
        text = render_grid_partitioning((100, 100), 4, rows=12, cols=24)
        assert text.count("\n") == 11
        assert "|" in text and "-" in text

    def test_m_one_is_blank(self):
        text = render_grid_partitioning((10, 10), 1, rows=4, cols=8)
        assert set(text.replace("\n", "")) == {" "}

    def test_rejects_non_2d(self):
        with pytest.raises(ValidationError):
            render_grid_partitioning((10, 10, 10), 2)
