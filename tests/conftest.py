"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Domain, FrequencyMatrix


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_2d(rng) -> FrequencyMatrix:
    """A 16x16 matrix with mild Poisson counts."""
    return FrequencyMatrix(rng.poisson(3.0, size=(16, 16)).astype(float))


@pytest.fixture
def skewed_2d(rng) -> FrequencyMatrix:
    """A 32x32 matrix with a strong central cluster (city-like skew)."""
    pts = rng.normal(16, 3, size=(5000, 2))
    cells = np.clip(np.rint(pts), 0, 31).astype(np.int64)
    return FrequencyMatrix.from_cells(cells, Domain.regular((32, 32)))


@pytest.fixture
def small_4d(rng) -> FrequencyMatrix:
    """A sparse 8^4 matrix resembling a tiny OD matrix."""
    pts = rng.normal(4, 1.5, size=(3000, 4))
    cells = np.clip(np.rint(pts), 0, 7).astype(np.int64)
    return FrequencyMatrix.from_cells(cells, Domain.regular((8, 8, 8, 8)))


@pytest.fixture
def tiny_1d() -> FrequencyMatrix:
    return FrequencyMatrix(np.array([5.0, 0.0, 2.0, 7.0, 1.0, 0.0, 3.0, 9.0]))
