"""Edge-case battery: every method against degenerate inputs.

Failure injection for the method layer: empty matrices, single cells,
extreme budgets, extreme aspect ratios.  A sanitizer must never crash,
never overspend, and always return a complete partitioning.
"""

import numpy as np
import pytest

from repro.core import FrequencyMatrix, full_box
from repro.methods import available_methods, get_sanitizer

ALL = available_methods()


def assert_valid_output(private, matrix):
    assert private.shape == matrix.shape
    assert private.metadata["budget_summary"]["<total>"] <= private.epsilon + 1e-9
    if not private.is_dense_backed:
        covered = sum(p.n_cells for p in private.partitions)
        assert covered == matrix.n_cells


class TestZeroMatrix:
    @pytest.mark.parametrize("name", ALL)
    def test_all_methods(self, name):
        fm = FrequencyMatrix.zeros((9, 7))
        private = get_sanitizer(name).sanitize(fm, 0.5, rng=0)
        assert_valid_output(private, fm)
        # Answer should be pure noise: bounded well away from huge values.
        assert abs(private.answer(full_box(fm.shape))) < 1e5


class TestSingleCell:
    @pytest.mark.parametrize("name", ALL)
    def test_all_methods(self, name):
        fm = FrequencyMatrix(np.array([[42.0]]))
        private = get_sanitizer(name).sanitize(fm, 1.0, rng=0)
        assert_valid_output(private, fm)
        assert private.answer(((0, 0), (0, 0))) == pytest.approx(42.0, abs=30.0)


class TestSingleRow:
    @pytest.mark.parametrize("name", ALL)
    def test_1xN(self, name, rng):
        fm = FrequencyMatrix(rng.poisson(4.0, size=(1, 50)).astype(float))
        private = get_sanitizer(name).sanitize(fm, 1.0, rng=0)
        assert_valid_output(private, fm)

    @pytest.mark.parametrize("name", ["ebp", "daf_entropy", "daf_homogeneity"])
    def test_Nx1(self, name, rng):
        fm = FrequencyMatrix(rng.poisson(4.0, size=(50, 1)).astype(float))
        private = get_sanitizer(name).sanitize(fm, 1.0, rng=0)
        assert_valid_output(private, fm)


class TestExtremeBudgets:
    @pytest.mark.parametrize("name", ALL)
    def test_tiny_epsilon(self, name, small_2d):
        private = get_sanitizer(name).sanitize(small_2d, 1e-4, rng=0)
        assert_valid_output(private, small_2d)

    @pytest.mark.parametrize("name", ALL)
    def test_huge_epsilon(self, name, small_2d):
        private = get_sanitizer(name).sanitize(small_2d, 1e4, rng=0)
        assert_valid_output(private, small_2d)
        # Near-zero noise: the full count should be almost exact.
        assert private.answer(full_box(small_2d.shape)) == pytest.approx(
            small_2d.total, rel=0.05
        )


class TestExtremeAspect:
    @pytest.mark.parametrize("name", ["ebp", "eug", "daf_entropy",
                                      "daf_homogeneity", "ag"])
    def test_long_thin_matrix(self, name, rng):
        fm = FrequencyMatrix(rng.poisson(2.0, size=(200, 2)).astype(float))
        private = get_sanitizer(name).sanitize(fm, 0.5, rng=0)
        assert_valid_output(private, fm)


class TestHighDimensionTiny:
    @pytest.mark.parametrize("name", ["identity", "ebp", "daf_entropy",
                                      "daf_homogeneity"])
    def test_2_per_dim_6d(self, name, rng):
        fm = FrequencyMatrix(
            rng.poisson(1.0, size=(2, 2, 2, 2, 2, 2)).astype(float)
        )
        private = get_sanitizer(name).sanitize(fm, 0.5, rng=0)
        assert_valid_output(private, fm)


class TestDeterministicPayload:
    @pytest.mark.parametrize("name", ALL)
    def test_same_seed_same_payload(self, name, small_2d):
        a = get_sanitizer(name).sanitize(small_2d, 0.5, rng=77).to_publishable()
        b = get_sanitizer(name).sanitize(small_2d, 0.5, rng=77).to_publishable()
        assert a == b


class TestMassiveCountCell:
    @pytest.mark.parametrize("name", ["ebp", "daf_entropy", "mkm"])
    def test_one_giant_cell(self, name):
        """A single cell holding 10^9 counts must not break granularity
        formulas (m saturates at the dimension size)."""
        data = np.zeros((16, 16))
        data[3, 3] = 1e9
        fm = FrequencyMatrix(data)
        private = get_sanitizer(name).sanitize(fm, 0.5, rng=0)
        assert_valid_output(private, fm)
