"""Tests for EUG, EBP, MKM and the shared uniform-grid machinery."""

import numpy as np
import pytest

from repro.core import FrequencyMatrix, MethodError, full_box
from repro.methods import EBP, EUG, MKM
from repro.methods._grid import (
    DENSE_OUTPUT_THRESHOLD,
    aggregate_uniform_grid,
    axis_cut_starts,
    sanitize_uniform_grid,
)
from repro.dp import BudgetLedger


class TestAxisCutStarts:
    def test_exact_division(self):
        assert list(axis_cut_starts(8, 4)) == [0, 2, 4, 6]

    def test_uneven(self):
        starts = list(axis_cut_starts(5, 2))
        assert starts == [0, 2]

    def test_m_over_size_clamps(self):
        assert list(axis_cut_starts(3, 99)) == [0, 1, 2]

    def test_m_one(self):
        assert list(axis_cut_starts(7, 1)) == [0]


class TestAggregateUniformGrid:
    def test_preserves_total(self, small_2d):
        agg = aggregate_uniform_grid(small_2d.data, (3, 5))
        assert agg.sum() == pytest.approx(small_2d.total)
        assert agg.shape == (3, 5)

    def test_matches_manual_blocks(self):
        data = np.arange(16, dtype=float).reshape(4, 4)
        agg = aggregate_uniform_grid(data, (2, 2))
        assert agg[0, 0] == data[:2, :2].sum()
        assert agg[1, 1] == data[2:, 2:].sum()

    def test_identity_when_m_equals_size(self, small_2d):
        agg = aggregate_uniform_grid(small_2d.data, small_2d.shape)
        assert np.array_equal(agg, small_2d.data)


class TestSanitizeUniformGrid:
    def test_partition_backed_below_threshold(self, small_2d):
        ledger = BudgetLedger(1.0)
        private = sanitize_uniform_grid(
            small_2d, 4, 1.0, ledger, np.random.default_rng(0), method="x"
        )
        assert not private.is_dense_backed
        assert private.n_partitions == 16

    def test_dense_backed_above_threshold(self, rng):
        fm = FrequencyMatrix(rng.poisson(1.0, size=(400, 400)).astype(float))
        ledger = BudgetLedger(1.0)
        private = sanitize_uniform_grid(
            fm, 400, 1.0, ledger, np.random.default_rng(0), method="x"
        )
        assert 400 * 400 > DENSE_OUTPUT_THRESHOLD
        assert private.is_dense_backed

    def test_dense_expansion_matches_partitions(self, rng):
        """The dense expansion and the partition list must answer alike."""
        fm = FrequencyMatrix(rng.poisson(2.0, size=(10, 12)).astype(float))
        ledger1 = BudgetLedger(1.0)
        gen1 = np.random.default_rng(5)
        part_backed = sanitize_uniform_grid(fm, 3, 1.0, ledger1, gen1, method="x")
        from repro.methods._grid import _expand_grid_to_cells, aggregate_uniform_grid
        # Re-derive the dense expansion from the partition answers.
        dense = part_backed.dense_array()
        box = ((2, 7), (1, 10))
        direct = float(dense[2:8, 1:11].sum())
        assert part_backed.answer(box) == pytest.approx(direct)


class TestEUG:
    def test_m_recorded_in_metadata(self, small_2d):
        private = EUG().sanitize(small_2d, 1.0, rng=0)
        assert private.metadata["m"] >= 1
        assert "n_hat" in private.metadata

    def test_eps0_fraction_validated(self):
        with pytest.raises(MethodError):
            EUG(eps0_fraction=0.0)
        with pytest.raises(MethodError):
            EUG(eps0_fraction=1.0)

    def test_query_ratio_validated(self):
        with pytest.raises(MethodError):
            EUG(query_ratio=1.5)

    def test_c0_validated(self):
        with pytest.raises(MethodError):
            EUG(c0=-1.0)

    def test_granularity_grows_with_epsilon(self, skewed_2d):
        m_low = EUG().sanitize(skewed_2d, 0.1, rng=0).metadata["m"]
        m_high = EUG().sanitize(skewed_2d, 10.0, rng=0).metadata["m"]
        assert m_high >= m_low

    def test_partitions_tile_matrix(self, small_2d):
        private = EUG().sanitize(small_2d, 1.0, rng=0)
        covered = sum(p.n_cells for p in private.partitions)
        assert covered == small_2d.n_cells


class TestEBP:
    def test_m_matches_formula_on_clean_estimate(self, skewed_2d):
        private = EBP().sanitize(skewed_2d, 1.0, rng=0)
        from repro.methods import clamp_granularity, ebp_granularity
        n_hat = private.metadata["n_hat"]
        eps_data = private.metadata["eps_data"]
        expected = clamp_granularity(
            ebp_granularity(n_hat, eps_data, 2), max(skewed_2d.shape)
        )
        assert private.metadata["m"] == expected

    def test_no_arbitrary_constant(self):
        # EBP's selling point: no c0 parameter exists.
        assert not hasattr(EBP(), "c0")

    def test_eps0_fraction_validated(self):
        with pytest.raises(MethodError):
            EBP(eps0_fraction=2.0)


class TestMKM:
    def test_epsilon_does_not_change_m(self, skewed_2d):
        m1 = MKM().sanitize(skewed_2d, 0.1, rng=0).metadata["m"]
        m2 = MKM().sanitize(skewed_2d, 0.5, rng=0).metadata["m"]
        # m depends only on the noisy N; with N = 5000 the noise at
        # eps0 = 1% of eps barely moves N^(1/2).
        assert abs(m1 - m2) <= 1

    def test_saturates_at_max_granularity(self, rng):
        """The paper's observation: on dense data MKM reaches per-cell
        granularity and behaves like IDENTITY."""
        fm = FrequencyMatrix(rng.poisson(40.0, size=(20, 20)).astype(float))
        private = MKM().sanitize(fm, 0.1, rng=0)
        # N = 16000 -> m = sqrt(16000) = 126 > 20 -> clamped to 20.
        assert private.metadata["m_per_dim"] == [20, 20]
        assert private.n_partitions == 400

    def test_eps0_fraction_validated(self):
        with pytest.raises(MethodError):
            MKM(eps0_fraction=-0.1)


class TestGridAccuracyOrdering:
    def test_adaptive_granularity_beats_identity_on_random_queries(
        self, skewed_2d, rng
    ):
        """On skewed data at tight budgets, EBP should beat IDENTITY
        (Figure 6's headline, shrunk)."""
        from repro.methods import Identity
        from repro.queries import WorkloadEvaluator, random_workload

        evaluator = WorkloadEvaluator(skewed_2d)
        workload = random_workload(skewed_2d.shape, 200, rng)
        ebp_mre = np.mean([
            evaluator.evaluate(
                EBP().sanitize(skewed_2d, 0.1, np.random.default_rng(s)), workload
            ).mre
            for s in range(5)
        ])
        id_mre = np.mean([
            evaluator.evaluate(
                Identity().sanitize(skewed_2d, 0.1, np.random.default_rng(s)),
                workload,
            ).mre
            for s in range(5)
        ])
        assert ebp_mre < id_mre
