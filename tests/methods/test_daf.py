"""Tests for the DAF framework, DAF-Entropy and DAF-Homogeneity."""

import numpy as np
import pytest

from repro.core import FrequencyMatrix, MethodError, full_box
from repro.methods import (
    CountThreshold,
    DAFEntropy,
    DAFHomogeneity,
    NeverStop,
    NoiseAdaptiveThreshold,
    daf_granularity,
    homogeneity_objective,
)
from repro.methods.daf.framework import _interval_counts, _intervals_from_cuts
from repro.methods.daf.node import DAFNode


class TestDafGranularity:
    def test_matches_eq19_for_full_dims(self):
        import math
        m = daf_granularity(1e6, 0.1, 2)
        assert m == pytest.approx((1e6 * 0.1 / math.sqrt(2)) ** (1 / 3))

    def test_remaining_dims_exponent(self):
        import math
        m = daf_granularity(1e4, 0.2, 1)
        assert m == pytest.approx((1e4 * 0.2 / math.sqrt(2)) ** (2 / 3))

    def test_negative_count_gives_one(self):
        assert daf_granularity(-50.0, 0.5, 2) == pytest.approx(
            daf_granularity(1.0, 0.5, 2)
        )

    def test_no_budget_gives_one(self):
        assert daf_granularity(1e6, 0.0, 2) == 1.0
        assert daf_granularity(1e6, -0.1, 2) == 1.0

    def test_validates_dims(self):
        with pytest.raises(MethodError):
            daf_granularity(1e6, 0.1, 0)


class TestIntervalHelpers:
    def test_intervals_from_cuts(self):
        assert _intervals_from_cuts((0, 9), [3, 7]) == [(0, 2), (3, 6), (7, 9)]

    def test_intervals_no_cuts(self):
        assert _intervals_from_cuts((2, 5), []) == [(2, 5)]

    def test_interval_counts_match_direct_sum(self, small_2d):
        box = ((2, 13), (1, 14))
        intervals = [(2, 5), (6, 9), (10, 13)]
        counts = _interval_counts(small_2d, box, 0, intervals)
        for (lo, hi), c in zip(intervals, counts):
            assert c == pytest.approx(small_2d.data[lo:hi + 1, 1:15].sum())


class TestDAFTreeStructure:
    def test_leaves_tile_matrix(self, skewed_2d):
        method = DAFEntropy()
        private = method.sanitize(skewed_2d, 0.5, rng=0)
        covered = sum(p.n_cells for p in private.partitions)
        assert covered == skewed_2d.n_cells

    def test_tree_exposed_and_consistent(self, skewed_2d):
        method = DAFEntropy()
        private = method.sanitize(skewed_2d, 0.5, rng=0)
        tree = method.tree_
        assert tree.depth == 0
        assert tree.count == skewed_2d.total
        assert tree.n_leaves() == private.n_partitions

    def test_max_height_is_ndim(self, small_4d):
        method = DAFEntropy()
        method.sanitize(small_4d, 1.0, rng=0)
        assert method.tree_.height() <= small_4d.ndim

    def test_split_axis_equals_depth(self, skewed_2d):
        method = DAFEntropy(stop_condition=NeverStop())
        method.sanitize(skewed_2d, 0.5, rng=0)
        for node in method.tree_.iter_nodes():
            if not node.is_leaf:
                assert node.split_axis == node.depth

    def test_child_counts_sum_to_parent(self, skewed_2d):
        method = DAFEntropy(stop_condition=NeverStop())
        method.sanitize(skewed_2d, 0.5, rng=0)
        for node in method.tree_.iter_nodes():
            if node.children:
                total = sum(c.count for c in node.children)
                assert total == pytest.approx(node.count)

    def test_metadata_fields(self, skewed_2d):
        private = DAFEntropy().sanitize(skewed_2d, 0.5, rng=0)
        meta = private.metadata
        assert meta["m0"] >= 1
        assert meta["n_partitions"] >= 1
        assert "split_tree" in meta
        assert meta["split_tree"]["depth"] == 0

    def test_split_tree_has_no_true_counts(self, skewed_2d):
        private = DAFEntropy().sanitize(skewed_2d, 0.5, rng=0)

        def walk(node):
            assert "count" not in node  # only ncount is public
            assert "ncount" in node
            for child in node.get("children", []):
                walk(child)

        walk(private.metadata["split_tree"])


class TestBudgetComposition:
    @pytest.mark.parametrize("epsilon", [0.1, 0.5, 2.0])
    def test_max_path_epsilon_equals_budget(self, skewed_2d, epsilon):
        """Every root-to-leaf path must spend exactly eps_tot."""
        method = DAFEntropy()
        method.sanitize(skewed_2d, epsilon, rng=0)

        def path_sums(node, acc):
            acc = acc + node.eps_spent
            if node.is_leaf:
                yield acc
            for child in node.children:
                yield from path_sums(child, acc)

        for total in path_sums(method.tree_, 0.0):
            assert total == pytest.approx(epsilon, rel=1e-6)

    def test_max_path_epsilon_method(self, skewed_2d):
        method = DAFEntropy()
        method.sanitize(skewed_2d, 0.4, rng=1)
        assert method.tree_.max_path_epsilon() == pytest.approx(0.4, rel=1e-6)

    def test_homogeneity_budget_also_exact(self, skewed_2d):
        method = DAFHomogeneity(p=3)
        method.sanitize(skewed_2d, 0.4, rng=1)
        assert method.tree_.max_path_epsilon() == pytest.approx(0.4, rel=1e-6)


class TestStopConditions:
    def test_never_stop_reaches_full_depth(self, skewed_2d):
        method = DAFEntropy(stop_condition=NeverStop())
        method.sanitize(skewed_2d, 0.5, rng=0)
        assert all(
            leaf.depth == 2 for leaf in method.tree_.iter_leaves()
        )

    def test_huge_threshold_stops_at_root(self, skewed_2d):
        method = DAFEntropy(stop_condition=CountThreshold(1e12))
        private = method.sanitize(skewed_2d, 0.5, rng=0)
        assert private.n_partitions == 1
        assert method.tree_.stopped_early

    def test_stop_uses_remaining_budget(self, skewed_2d):
        method = DAFEntropy(stop_condition=CountThreshold(1e12))
        method.sanitize(skewed_2d, 0.5, rng=0)
        assert method.tree_.eps_spent == pytest.approx(0.5, rel=1e-6)

    def test_adaptive_stop_prunes_sparse_regions(self, rng):
        """A matrix with one dense corner: sparse subtrees should stop."""
        data = np.zeros((64, 64))
        data[:8, :8] = rng.poisson(50.0, size=(8, 8))
        fm = FrequencyMatrix(data)
        method = DAFEntropy(stop_condition=NoiseAdaptiveThreshold(2.0))
        private = method.sanitize(fm, 0.2, rng=3)
        assert private.metadata["n_stopped_early"] > 0

    def test_refine_average_changes_result(self, skewed_2d):
        kwargs = dict(stop_condition=CountThreshold(1e12))
        a = DAFEntropy(refine="replace", **kwargs).sanitize(
            skewed_2d, 0.5, rng=7
        )
        b = DAFEntropy(refine="average", **kwargs).sanitize(
            skewed_2d, 0.5, rng=7
        )
        fb = full_box(skewed_2d.shape)
        assert a.answer(fb) != b.answer(fb)

    def test_invalid_refine_rejected(self):
        with pytest.raises(MethodError):
            DAFEntropy(refine="discard")

    def test_invalid_allocation_rejected(self):
        with pytest.raises(MethodError):
            DAFEntropy(allocation="exponential")


class TestHomogeneityObjective:
    def test_uniform_data_scores_zero(self):
        fm = FrequencyMatrix(np.full((8, 8), 3.0))
        box = full_box((8, 8))
        assert homogeneity_objective(fm, box, 0, [4]) == pytest.approx(0.0)

    def test_separating_cut_beats_bad_cut(self):
        # Two homogeneous halves: cutting at the boundary scores 0,
        # cutting elsewhere mixes densities and scores > 0.
        data = np.zeros((8, 4))
        data[:4, :] = 10.0
        fm = FrequencyMatrix(data)
        box = full_box((8, 4))
        good = homogeneity_objective(fm, box, 0, [4])
        bad = homogeneity_objective(fm, box, 0, [2])
        assert good == pytest.approx(0.0)
        assert bad > good

    def test_lemma41_sensitivity_bound(self, rng):
        """Adding one record changes the objective by at most 2."""
        for _ in range(50):
            data = rng.poisson(3.0, size=(9, 5)).astype(float)
            fm = FrequencyMatrix(data)
            box = full_box((9, 5))
            cuts = [3, 6]
            base = homogeneity_objective(fm, box, 0, cuts)
            i, j = rng.integers(0, 9), rng.integers(0, 5)
            data2 = data.copy()
            data2[i, j] += 1
            perturbed = homogeneity_objective(
                FrequencyMatrix(data2), box, 0, cuts
            )
            assert abs(perturbed - base) <= 2.0 + 1e-9


class TestDAFHomogeneityConfig:
    def test_parameter_validation(self):
        with pytest.raises(MethodError):
            DAFHomogeneity(q=0.0)
        with pytest.raises(MethodError):
            DAFHomogeneity(q=1.0)
        with pytest.raises(MethodError):
            DAFHomogeneity(p=0)
        with pytest.raises(MethodError):
            DAFHomogeneity(split_noise="magic")

    @pytest.mark.parametrize("mode", ["noisy_min", "composed", "paper"])
    def test_all_split_noise_modes_run(self, mode, skewed_2d):
        private = DAFHomogeneity(split_noise=mode, p=3).sanitize(
            skewed_2d, 0.5, rng=0
        )
        assert private.n_partitions >= 1

    def test_candidate_cuts_strictly_increasing(self, skewed_2d):
        method = DAFHomogeneity(p=5)
        method.sanitize(skewed_2d, 0.5, rng=0)
        for node in method.tree_.iter_nodes():
            if node.children:
                axis = node.split_axis
                starts = [c.box[axis][0] for c in node.children]
                assert starts == sorted(starts)
                assert len(set(starts)) == len(starts)

    def test_children_nonempty_intervals(self, skewed_2d):
        method = DAFHomogeneity(p=5)
        method.sanitize(skewed_2d, 0.5, rng=0)
        for node in method.tree_.iter_nodes():
            lo, hi = node.box[0]
            assert hi >= lo

    def test_homogeneity_finds_block_boundary(self, rng):
        """On block-structured data, homogeneity splits should align with
        the true boundary more often than uniform splits would."""
        data = np.zeros((30, 30))
        data[:10, :] = rng.poisson(30.0, size=(10, 30))
        fm = FrequencyMatrix(data)
        hits = 0
        for seed in range(10):
            method = DAFHomogeneity(p=12, stop_condition=NeverStop())
            method.sanitize(fm, 2.0, rng=seed)
            root = method.tree_
            cuts = [c.box[0][0] for c in root.children[1:]]
            if any(abs(c - 10) <= 1 for c in cuts):
                hits += 1
        assert hits >= 5

    def test_describe_includes_params(self):
        desc = DAFHomogeneity(q=0.25, p=4).describe()
        assert desc["q"] == 0.25
        assert desc["p"] == 4


class TestDAFAccuracy:
    def test_daf_beats_identity_on_sparse_highdim(self, small_4d, rng):
        from repro.methods import Identity
        from repro.queries import WorkloadEvaluator, random_workload

        evaluator = WorkloadEvaluator(small_4d)
        workload = random_workload(small_4d.shape, 150, rng)
        daf_mre = np.mean([
            evaluator.evaluate(
                DAFEntropy().sanitize(small_4d, 0.2, np.random.default_rng(s)),
                workload,
            ).mre
            for s in range(5)
        ])
        id_mre = np.mean([
            evaluator.evaluate(
                Identity().sanitize(small_4d, 0.2, np.random.default_rng(s)),
                workload,
            ).mre
            for s in range(5)
        ])
        assert daf_mre < id_mre

    def test_uniform_allocation_ablation_runs(self, skewed_2d):
        private = DAFEntropy(allocation="uniform").sanitize(
            skewed_2d, 0.5, rng=0
        )
        assert private.n_partitions >= 1

    def test_max_fanout_respected(self, skewed_2d):
        method = DAFEntropy(max_fanout=3, stop_condition=NeverStop())
        method.sanitize(skewed_2d, 2.0, rng=0)
        for node in method.tree_.iter_nodes():
            if node.children:
                assert len(node.children) <= 3
