"""Tests for repro.methods.granularity (paper Eq. 8, 9, 13, 19)."""

import math

import pytest

from repro.core import MethodError
from repro.methods import (
    DEFAULT_C0,
    clamp_granularity,
    ebp_granularity,
    eug_granularity,
    mkm_granularity,
)


class TestEUGGranularity:
    def test_2d_base_case_matches_eq9(self):
        # Eq. 9: m = sqrt(N eps / (sqrt 2 c0)); with c0 = 10/sqrt 2 this is
        # sqrt(N eps / 10), the original UG formula.
        n, eps = 1_000_000, 0.1
        m = eug_granularity(n, eps, 2)
        assert m == pytest.approx(math.sqrt(n * eps / 10.0))

    def test_1d_uses_base_case(self):
        assert eug_granularity(1e6, 0.1, 1) == eug_granularity(1e6, 0.1, 2)

    def test_eq13_reduces_to_eq9_at_d2_via_generic_formula(self):
        # Evaluating the generic Eq. 13 machinery at d=2 analytically:
        # prefactor 2(d-1)/d = 1, exponent 1/2, integration factor 1.
        n, eps = 5e5, 0.3
        d = 2.0
        base = (2 * (d - 1) / d) * n * eps / (math.sqrt(2) * DEFAULT_C0)
        alpha = base ** (2 / (3 * d - 2))
        factor = d * (3 * d - 2) / (3 * d * d - 3 * d + 2)
        assert eug_granularity(n, eps, 2) == pytest.approx(alpha * factor)

    def test_known_query_ratio_uses_eq8(self):
        n, eps, d, r = 1e6, 0.1, 4, 0.5
        base = (2 * (d - 1) / d) * n * eps / (math.sqrt(2) * DEFAULT_C0)
        expected = (base * r ** (1 / d - 0.5)) ** (2 / (3 * d - 2))
        assert eug_granularity(n, eps, d, query_ratio=r) == pytest.approx(expected)

    def test_integrated_form_at_d4(self):
        n, eps, d = 1e6, 0.1, 4
        base = (2 * (d - 1) / d) * n * eps / (math.sqrt(2) * DEFAULT_C0)
        alpha = base ** (2 / (3 * d - 2))
        factor = d * (3 * d - 2) / (3 * d * d - 3 * d + 2)
        assert eug_granularity(n, eps, d) == pytest.approx(alpha * factor)

    def test_monotone_in_n(self):
        assert eug_granularity(1e6, 0.1, 3) > eug_granularity(1e4, 0.1, 3)

    def test_monotone_in_epsilon(self):
        assert eug_granularity(1e6, 0.5, 3) > eug_granularity(1e6, 0.1, 3)

    def test_decreases_with_dimensionality(self):
        # Higher d means coarser per-dimension granularity.
        assert eug_granularity(1e6, 0.1, 2) > eug_granularity(1e6, 0.1, 6)

    def test_negative_noisy_total_clamped(self):
        assert eug_granularity(-500.0, 0.1, 2) == eug_granularity(1.0, 0.1, 2)

    def test_validation(self):
        with pytest.raises(MethodError):
            eug_granularity(1e6, 0.0, 2)
        with pytest.raises(MethodError):
            eug_granularity(1e6, 0.1, 0)
        with pytest.raises(MethodError):
            eug_granularity(1e6, 0.1, 4, query_ratio=0.0)
        with pytest.raises(MethodError):
            eug_granularity(1e6, 0.1, 2, c0=0.0)
        with pytest.raises(MethodError):
            eug_granularity(float("nan"), 0.1, 2)


class TestEBPGranularity:
    def test_matches_eq19(self):
        n, eps, d = 1_000_000, 0.1, 2
        expected = (n * eps / math.sqrt(2)) ** (2 / (3 * d))
        assert ebp_granularity(n, eps, d) == pytest.approx(expected)

    def test_high_dimensional(self):
        n, eps, d = 1_000_000, 0.1, 6
        expected = (n * eps / math.sqrt(2)) ** (1 / 9)
        assert ebp_granularity(n, eps, d) == pytest.approx(expected)

    def test_floors_at_one(self):
        assert ebp_granularity(1.0, 0.01, 2) == 1.0

    def test_monotone_in_n_and_eps(self):
        assert ebp_granularity(1e6, 0.1, 2) > ebp_granularity(1e5, 0.1, 2)
        assert ebp_granularity(1e6, 0.5, 2) > ebp_granularity(1e6, 0.1, 2)

    def test_validation(self):
        with pytest.raises(MethodError):
            ebp_granularity(1e6, -0.1, 2)
        with pytest.raises(MethodError):
            ebp_granularity(1e6, 0.1, 0)


class TestMKMGranularity:
    def test_formula(self):
        assert mkm_granularity(1e6, 2) == pytest.approx(1e6 ** 0.5)

    def test_epsilon_independent_saturation(self):
        # On the paper's city data (N = 10^6, 1000x1000) MKM hits the
        # matrix's maximum granularity: m = 1000 = the full resolution.
        assert mkm_granularity(1_000_000, 2) == pytest.approx(1000.0)

    def test_dimensionality_dependence(self):
        assert mkm_granularity(1e6, 4) == pytest.approx(1e6 ** (1 / 3))

    def test_clamps_negative(self):
        assert mkm_granularity(-100.0, 2) == 1.0

    def test_validation(self):
        with pytest.raises(MethodError):
            mkm_granularity(float("inf"), 2)
        with pytest.raises(MethodError):
            mkm_granularity(1e6, 0)


class TestClampGranularity:
    def test_rounds(self):
        assert clamp_granularity(3.6, 10) == 4
        assert clamp_granularity(3.4, 10) == 3

    def test_clamps_low(self):
        assert clamp_granularity(0.2, 10) == 1

    def test_clamps_high(self):
        assert clamp_granularity(99.0, 10) == 10

    def test_custom_minimum(self):
        assert clamp_granularity(0.2, 10, minimum=2) == 2

    def test_infinite_saturates(self):
        assert clamp_granularity(float("inf"), 7) == 7

    def test_validates_dim_size(self):
        with pytest.raises(MethodError):
            clamp_granularity(2.0, 0)
