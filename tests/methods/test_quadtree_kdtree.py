"""Tests for the quadtree and kd-tree extension baselines."""

import numpy as np
import pytest

from repro.core import FrequencyMatrix, MethodError, full_box
from repro.methods import KDTree, Quadtree, binary_intervals, exponential_median_split


class TestBinaryIntervals:
    def test_power_of_two(self):
        assert binary_intervals(8, 2) == [(0, 1), (2, 3), (4, 5), (6, 7)]

    def test_odd_size(self):
        assert binary_intervals(5, 1) == [(0, 2), (3, 4)]

    def test_height_beyond_unit_cells_stops(self):
        assert binary_intervals(2, 10) == [(0, 0), (1, 1)]

    def test_size_one(self):
        assert binary_intervals(1, 3) == [(0, 0)]

    def test_intervals_tile_axis(self):
        for size in (3, 7, 16, 33):
            intervals = binary_intervals(size, 3)
            cells = [i for lo, hi in intervals for i in range(lo, hi + 1)]
            assert cells == list(range(size))


class TestQuadtree:
    def test_partitions_tile(self, small_2d):
        private = Quadtree(height=2).sanitize(small_2d, 1.0, rng=0)
        assert sum(p.n_cells for p in private.partitions) == small_2d.n_cells
        assert private.n_partitions == 16

    def test_default_height_from_shape(self, small_2d):
        private = Quadtree().sanitize(small_2d, 1.0, rng=0)
        assert private.metadata["height"] == 4  # log2(16)

    def test_max_height_caps(self):
        fm = FrequencyMatrix(np.ones((1024, 1024)))
        q = Quadtree(max_height=3)
        assert q._resolve_height((1024, 1024)) == 3

    def test_total_preserved_roughly(self, small_2d):
        private = Quadtree(height=2).sanitize(small_2d, 10.0, rng=0)
        assert private.answer(full_box(small_2d.shape)) == pytest.approx(
            small_2d.total, rel=0.1
        )

    def test_validation(self):
        with pytest.raises(MethodError):
            Quadtree(height=0)
        with pytest.raises(MethodError):
            Quadtree(max_height=0)


class TestExponentialMedianSplit:
    def test_balanced_split_preferred(self):
        profile = np.ones(100)
        rng = np.random.default_rng(0)
        cuts = [exponential_median_split(profile, 20.0, rng) for _ in range(50)]
        # With strong budget, cuts concentrate near the median (50).
        assert abs(np.median(cuts) - 50) < 10

    def test_skewed_profile_median(self):
        profile = np.zeros(100)
        profile[:10] = 100.0
        rng = np.random.default_rng(0)
        cuts = [exponential_median_split(profile, 20.0, rng) for _ in range(50)]
        assert abs(np.median(cuts) - 5) < 5

    def test_tiny_epsilon_near_uniform(self):
        profile = np.zeros(50)
        profile[0] = 1000.0
        rng = np.random.default_rng(0)
        cuts = np.array(
            [exponential_median_split(profile, 1e-9, rng) for _ in range(500)]
        )
        assert cuts.std() > 5.0  # not collapsed to one point

    def test_requires_two_cells(self):
        with pytest.raises(MethodError):
            exponential_median_split(np.ones(1), 1.0, np.random.default_rng(0))

    def test_cut_in_valid_range(self):
        profile = np.ones(10)
        rng = np.random.default_rng(0)
        for _ in range(100):
            c = exponential_median_split(profile, 0.5, rng)
            assert 1 <= c <= 9


class TestKDTree:
    def test_partitions_tile(self, skewed_2d):
        private = KDTree(height=4).sanitize(skewed_2d, 1.0, rng=0)
        assert sum(p.n_cells for p in private.partitions) == skewed_2d.n_cells

    def test_leaf_count_bounded(self, skewed_2d):
        private = KDTree(height=4).sanitize(skewed_2d, 1.0, rng=0)
        assert private.n_partitions <= 2**4

    def test_derived_height(self, skewed_2d):
        private = KDTree().sanitize(skewed_2d, 1.0, rng=0)
        assert 1 <= private.metadata["height"] <= 16

    def test_single_cell_matrix(self):
        fm = FrequencyMatrix(np.array([[5.0]]))
        private = KDTree(height=2).sanitize(fm, 1.0, rng=0)
        assert private.n_partitions == 1

    def test_validation(self):
        with pytest.raises(MethodError):
            KDTree(height=0)
        with pytest.raises(MethodError):
            KDTree(split_fraction=0.0)
        with pytest.raises(MethodError):
            KDTree(split_fraction=1.0)
        with pytest.raises(MethodError):
            KDTree(max_height=0)

    def test_splits_adapt_to_density(self, rng):
        """Dense corner should attract finer partitions than empty space."""
        data = np.zeros((32, 32))
        data[:8, :8] = rng.poisson(100.0, size=(8, 8))
        fm = FrequencyMatrix(data)
        private = KDTree(height=6).sanitize(fm, 5.0, rng=1)
        dense_region_parts = sum(
            1 for p in private.partitions
            if p.box[0][0] < 8 and p.box[1][0] < 8
        )
        # More than half of the leaves should crowd the populated corner.
        assert dense_region_parts > private.n_partitions / 4
