"""Tests for the Adaptive Grid (AG) extension method."""

import numpy as np
import pytest

from repro.core import FrequencyMatrix, MethodError, full_box
from repro.methods import AdaptiveGrid


class TestAdaptiveGrid:
    def test_partitions_tile(self, skewed_2d):
        private = AdaptiveGrid().sanitize(skewed_2d, 1.0, rng=0)
        covered = sum(p.n_cells for p in private.partitions)
        assert covered == skewed_2d.n_cells

    def test_metadata(self, skewed_2d):
        private = AdaptiveGrid().sanitize(skewed_2d, 1.0, rng=0)
        meta = private.metadata
        assert meta["m1"] >= 1
        assert meta["n_level1_cells"] >= 1
        assert meta["n_partitions"] >= meta["n_level1_cells"] - meta["n_refined"]

    def test_budget_respected(self, skewed_2d):
        private = AdaptiveGrid().sanitize(skewed_2d, 0.4, rng=0)
        assert private.metadata["budget_summary"]["<total>"] <= 0.4 + 1e-9

    def test_refinement_follows_density(self, rng):
        """Dense regions should get finer level-2 partitions."""
        data = np.zeros((64, 64))
        data[:16, :16] = rng.poisson(80.0, size=(16, 16))
        fm = FrequencyMatrix(data)
        private = AdaptiveGrid().sanitize(fm, 2.0, rng=1)
        dense_parts = [
            p for p in private.partitions
            if p.box[0][1] < 16 and p.box[1][1] < 16
        ]
        sparse_parts = [
            p for p in private.partitions
            if p.box[0][0] >= 32 and p.box[1][0] >= 32
        ]
        mean_dense = np.mean([p.n_cells for p in dense_parts])
        mean_sparse = np.mean([p.n_cells for p in sparse_parts])
        assert mean_dense < mean_sparse

    def test_min_refine_count_blocks_refinement(self, skewed_2d):
        private = AdaptiveGrid(min_refine_count=1e12).sanitize(
            skewed_2d, 1.0, rng=0
        )
        assert private.metadata["n_refined"] == 0

    def test_total_roughly_preserved(self, skewed_2d):
        private = AdaptiveGrid().sanitize(skewed_2d, 10.0, rng=0)
        assert private.answer(full_box(skewed_2d.shape)) == pytest.approx(
            skewed_2d.total, rel=0.15
        )

    def test_works_on_4d(self, small_4d):
        private = AdaptiveGrid().sanitize(small_4d, 1.0, rng=0)
        assert private.shape == small_4d.shape

    def test_parameter_validation(self):
        with pytest.raises(MethodError):
            AdaptiveGrid(alpha=0.0)
        with pytest.raises(MethodError):
            AdaptiveGrid(alpha=1.0)
        with pytest.raises(MethodError):
            AdaptiveGrid(eps0_fraction=1.5)
        with pytest.raises(MethodError):
            AdaptiveGrid(c0=-1.0)

    def test_describe(self):
        desc = AdaptiveGrid(alpha=0.4).describe()
        assert desc["alpha"] == 0.4
        assert desc["name"] == "ag"

    def test_registered(self, skewed_2d):
        from repro.methods import get_sanitizer
        assert get_sanitizer("ag").name == "ag"
