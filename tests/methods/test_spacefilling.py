"""Tests for the Morton-curve 1-D reduction baseline."""

import numpy as np
import pytest

from repro.core import FrequencyMatrix, MethodError, full_box
from repro.methods import SpaceFillingCurve, adaptive_1d_runs, morton_order


class TestMortonOrder:
    def test_is_permutation(self):
        order = morton_order((8, 8))
        assert sorted(order.tolist()) == list(range(64))

    def test_2x2_z_pattern(self):
        # Z-order on a 2x2 grid: (0,0), (1,0), (0,1), (1,1) with x-bit
        # taking the low interleave position (axis 0 first).
        order = morton_order((2, 2))
        flat_coords = [np.unravel_index(i, (2, 2)) for i in order]
        assert flat_coords[0] == (0, 0)
        assert set(map(tuple, flat_coords)) == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_locality_beats_row_major(self):
        """Mean curve-distance between grid neighbours must be far below
        row-major's (which jumps a whole row for vertical neighbours)."""
        shape = (32, 32)
        order = morton_order(shape)
        position = np.empty(order.size, dtype=np.int64)
        position[order] = np.arange(order.size)
        pos_grid = position.reshape(shape)
        vertical_jumps = np.abs(np.diff(pos_grid, axis=1)).mean()
        assert vertical_jumps < 32  # row-major vertical neighbour distance

    def test_non_power_of_two(self):
        order = morton_order((5, 7))
        assert sorted(order.tolist()) == list(range(35))

    def test_any_dimensionality(self):
        order = morton_order((3, 4, 5))
        assert sorted(order.tolist()) == list(range(60))

    def test_rejects_bad_shape(self):
        with pytest.raises(MethodError):
            morton_order((0, 4))


class TestAdaptive1DRuns:
    def test_tiles_sequence(self):
        runs = adaptive_1d_runs(np.ones(20), 4)
        cells = [i for lo, hi in runs for i in range(lo, hi + 1)]
        assert cells == list(range(20))

    def test_equal_mass_on_uniform(self):
        runs = adaptive_1d_runs(np.ones(100), 4)
        lengths = [hi - lo + 1 for lo, hi in runs]
        assert max(lengths) - min(lengths) <= 1

    def test_dense_regions_get_short_runs(self):
        values = np.ones(100)
        values[:10] = 100.0
        runs = adaptive_1d_runs(values, 5)
        first_len = runs[0][1] - runs[0][0] + 1
        last_len = runs[-1][1] - runs[-1][0] + 1
        assert first_len < last_len

    def test_empty_sequence_falls_back_to_equal_length(self):
        runs = adaptive_1d_runs(np.zeros(12), 3)
        assert [hi - lo + 1 for lo, hi in runs] == [4, 4, 4]

    def test_run_count_capped_by_length(self):
        runs = adaptive_1d_runs(np.ones(3), 10)
        assert len(runs) == 3


class TestSpaceFillingSanitizer:
    def test_dense_backed_output(self, skewed_2d):
        private = SpaceFillingCurve().sanitize(skewed_2d, 0.5, rng=0)
        assert private.is_dense_backed
        assert private.shape == skewed_2d.shape

    def test_budget_respected(self, skewed_2d):
        private = SpaceFillingCurve().sanitize(skewed_2d, 0.4, rng=0)
        assert private.metadata["budget_summary"]["<total>"] <= 0.4 + 1e-9

    def test_total_roughly_preserved(self, skewed_2d):
        private = SpaceFillingCurve().sanitize(skewed_2d, 10.0, rng=0)
        assert private.answer(full_box(skewed_2d.shape)) == pytest.approx(
            skewed_2d.total, rel=0.2
        )

    def test_beats_uniform_on_skew(self, skewed_2d, rng):
        from repro.methods import Uniform
        from repro.queries import WorkloadEvaluator, random_workload
        evaluator = WorkloadEvaluator(skewed_2d)
        workload = random_workload(skewed_2d.shape, 150, rng)
        sfc = np.mean([
            evaluator.evaluate(
                SpaceFillingCurve().sanitize(skewed_2d, 0.3,
                                             np.random.default_rng(s)),
                workload,
            ).mre for s in range(5)
        ])
        uni = np.mean([
            evaluator.evaluate(
                Uniform().sanitize(skewed_2d, 0.3, np.random.default_rng(s)),
                workload,
            ).mre for s in range(5)
        ])
        assert sfc < uni

    def test_loses_to_native_2d_partitioning(self, skewed_2d, rng):
        """The paper's Section 5 claim: dimensionality reduction hurts
        range-query accuracy versus proximity-preserving structures."""
        from repro.methods import EBP
        from repro.queries import WorkloadEvaluator, fixed_coverage_workload
        evaluator = WorkloadEvaluator(skewed_2d)
        workload = fixed_coverage_workload(skewed_2d.shape, 0.25, 150, rng)
        sfc = np.mean([
            evaluator.evaluate(
                SpaceFillingCurve().sanitize(skewed_2d, 0.3,
                                             np.random.default_rng(s)),
                workload,
            ).mre for s in range(6)
        ])
        native = np.mean([
            evaluator.evaluate(
                EBP().sanitize(skewed_2d, 0.3, np.random.default_rng(s)),
                workload,
            ).mre for s in range(6)
        ])
        assert native < sfc

    def test_parameter_validation(self):
        with pytest.raises(MethodError):
            SpaceFillingCurve(eps0_fraction=0.0)
        with pytest.raises(MethodError):
            SpaceFillingCurve(partition_fraction=1.0)

    def test_works_on_4d(self, small_4d):
        private = SpaceFillingCurve().sanitize(small_4d, 0.5, rng=0)
        assert private.shape == small_4d.shape
