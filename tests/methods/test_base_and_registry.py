"""Tests for the Sanitizer interface and the method registry."""

import numpy as np
import pytest

from repro.core import FrequencyMatrix, MethodError, ValidationError
from repro.methods import (
    EXTENSION_METHODS,
    PAPER_METHODS,
    Sanitizer,
    available_methods,
    get_sanitizer,
    register,
)
from repro.methods.registry import _REGISTRY


class TestRegistry:
    def test_paper_methods_registered(self):
        for name in PAPER_METHODS:
            assert get_sanitizer(name).name == name

    def test_extension_methods_registered(self):
        for name in EXTENSION_METHODS:
            assert get_sanitizer(name).name == name

    def test_available_methods_order(self):
        methods = available_methods()
        assert methods[: len(PAPER_METHODS)] == PAPER_METHODS

    def test_unknown_method(self):
        with pytest.raises(MethodError):
            get_sanitizer("nope")

    def test_case_insensitive(self):
        assert get_sanitizer("EBP").name == "ebp"

    def test_kwargs_forwarded(self):
        s = get_sanitizer("eug", eps0_fraction=0.05)
        assert s.eps0_fraction == 0.05

    def test_register_custom(self):
        class Custom(Sanitizer):
            name = "custom_test_method"

            def _sanitize(self, matrix, ledger, rng):
                raise NotImplementedError

        register("custom_test_method", Custom)
        try:
            assert isinstance(get_sanitizer("custom_test_method"), Custom)
            with pytest.raises(MethodError):
                register("custom_test_method", Custom)
        finally:
            _REGISTRY.pop("custom_test_method", None)


class TestSanitizeContract:
    @pytest.mark.parametrize("name", PAPER_METHODS + EXTENSION_METHODS)
    def test_returns_correct_shape(self, name, small_2d):
        private = get_sanitizer(name).sanitize(small_2d, 1.0, rng=0)
        assert private.shape == small_2d.shape

    @pytest.mark.parametrize("name", PAPER_METHODS + EXTENSION_METHODS)
    def test_input_not_mutated(self, name, small_2d):
        before = small_2d.data.copy()
        get_sanitizer(name).sanitize(small_2d, 1.0, rng=0)
        assert np.array_equal(small_2d.data, before)

    @pytest.mark.parametrize("name", PAPER_METHODS + EXTENSION_METHODS)
    def test_reproducible_by_seed(self, name, small_2d):
        box = ((1, 9), (2, 12))
        a = get_sanitizer(name).sanitize(small_2d, 0.5, rng=99).answer(box)
        b = get_sanitizer(name).sanitize(small_2d, 0.5, rng=99).answer(box)
        assert a == b

    @pytest.mark.parametrize("name", PAPER_METHODS + EXTENSION_METHODS)
    def test_budget_summary_in_metadata(self, name, small_2d):
        private = get_sanitizer(name).sanitize(small_2d, 0.7, rng=0)
        summary = private.metadata["budget_summary"]
        assert summary["<total>"] <= 0.7 + 1e-9

    @pytest.mark.parametrize("name", PAPER_METHODS)
    def test_works_on_1d(self, name, tiny_1d):
        private = get_sanitizer(name).sanitize(tiny_1d, 1.0, rng=0)
        assert private.shape == tiny_1d.shape

    @pytest.mark.parametrize("name", PAPER_METHODS)
    def test_works_on_4d(self, name, small_4d):
        private = get_sanitizer(name).sanitize(small_4d, 1.0, rng=0)
        assert private.shape == small_4d.shape

    def test_rejects_nonpositive_epsilon(self, small_2d):
        with pytest.raises(ValidationError):
            get_sanitizer("identity").sanitize(small_2d, 0.0)
        with pytest.raises(ValidationError):
            get_sanitizer("identity").sanitize(small_2d, -0.5)

    def test_rejects_non_matrix(self):
        with pytest.raises(ValidationError):
            get_sanitizer("identity").sanitize(np.zeros((3, 3)), 1.0)

    @pytest.mark.parametrize("name", PAPER_METHODS)
    def test_total_estimate_reasonable(self, name, skewed_2d):
        """With a generous budget the full-matrix answer should be close
        to the true total (all noise, no uniformity error)."""
        private = get_sanitizer(name).sanitize(skewed_2d, 5.0, rng=1)
        full = tuple((0, s - 1) for s in skewed_2d.shape)
        assert private.answer(full) == pytest.approx(
            skewed_2d.total, rel=0.2
        )

    def test_describe_contains_name(self):
        for name in available_methods():
            assert get_sanitizer(name).describe()["name"] == name

    def test_repr_does_not_crash(self):
        for name in available_methods():
            text = repr(get_sanitizer(name))
            assert isinstance(text, str) and text
