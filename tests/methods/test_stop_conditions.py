"""Tests for repro.methods.daf.stop."""

import math

import pytest

from repro.core import MethodError
from repro.methods import (
    AllStop,
    AnyStop,
    CountThreshold,
    NeverStop,
    NoiseAdaptiveThreshold,
    SparsityStop,
)


class TestNeverStop:
    def test_always_false(self):
        s = NeverStop()
        assert not s.should_stop(0.0, 0.001, 1)
        assert not s.should_stop(-1e9, 1e-9, 10**9)


class TestCountThreshold:
    def test_below_threshold_stops(self):
        s = CountThreshold(100.0)
        assert s.should_stop(99.0, 1.0, 10)
        assert not s.should_stop(100.0, 1.0, 10)

    def test_negative_counts_stop(self):
        assert CountThreshold(0.0).should_stop(-5.0, 1.0, 10)

    def test_rejects_nan(self):
        with pytest.raises(MethodError):
            CountThreshold(float("nan"))

    def test_repr(self):
        assert "CountThreshold" in repr(CountThreshold(5.0))


class TestNoiseAdaptiveThreshold:
    def test_stops_when_count_below_noise_floor(self):
        s = NoiseAdaptiveThreshold(2.0)
        eps = 0.1
        floor = 2.0 * math.sqrt(2) / eps  # ~28.3
        assert s.should_stop(floor - 1, eps, 10)
        assert not s.should_stop(floor + 1, eps, 10)

    def test_no_budget_always_stops(self):
        s = NoiseAdaptiveThreshold(2.0)
        assert s.should_stop(1e9, 0.0, 10)

    def test_factor_zero_never_stops_positive_counts(self):
        s = NoiseAdaptiveThreshold(0.0)
        assert not s.should_stop(0.5, 0.1, 10)
        assert s.should_stop(-0.5, 0.1, 10)

    def test_rejects_negative_factor(self):
        with pytest.raises(MethodError):
            NoiseAdaptiveThreshold(-1.0)


class TestSparsityStop:
    def test_stops_on_low_density(self):
        s = SparsityStop(min_density=0.5)
        assert s.should_stop(10.0, 1.0, 100)   # density 0.1
        assert not s.should_stop(100.0, 1.0, 100)

    def test_zero_cells_stops(self):
        assert SparsityStop(0.5).should_stop(10.0, 1.0, 0)

    def test_rejects_negative(self):
        with pytest.raises(MethodError):
            SparsityStop(-0.1)


class TestCombinators:
    def test_any_stop(self):
        s = AnyStop([CountThreshold(10.0), SparsityStop(0.5)])
        assert s.should_stop(5.0, 1.0, 1)       # count fires
        assert s.should_stop(50.0, 1.0, 1000)   # sparsity fires
        assert not s.should_stop(50.0, 1.0, 10)

    def test_all_stop(self):
        s = AllStop([CountThreshold(10.0), SparsityStop(0.5)])
        assert not s.should_stop(5.0, 1.0, 1)    # only count fires
        assert s.should_stop(5.0, 1.0, 1000)     # both fire

    def test_empty_combinators_rejected(self):
        with pytest.raises(MethodError):
            AnyStop([])
        with pytest.raises(MethodError):
            AllStop([])
