"""Tests for DAF hierarchical consistency boosting."""

import numpy as np
import pytest

from repro.core import FrequencyMatrix, MethodError, full_box
from repro.methods import DAFEntropy, DAFHomogeneity, NeverStop
from repro.methods.daf.boosting import apply_boosting, boost_tree_consistency
from repro.methods.daf.node import DAFNode


def make_manual_tree():
    """Root with two children; all estimates carry explicit variances."""
    root = DAFNode(box=((0, 3),), depth=0, count=10.0,
                   ncount=9.0, eps_spent=0.5, ncount_variance=8.0)
    left = DAFNode(box=((0, 1),), depth=1, count=6.0,
                   ncount=7.5, eps_spent=0.5, ncount_variance=8.0)
    right = DAFNode(box=((2, 3),), depth=1, count=4.0,
                    ncount=3.0, eps_spent=0.5, ncount_variance=8.0)
    root.children = [left, right]
    root.split_axis = 0
    root.fanout = 2
    return root, left, right


class TestBoostTreeConsistency:
    def test_children_sum_to_parent(self):
        root, left, right = make_manual_tree()
        final = boost_tree_consistency(root)
        assert final[id(left)] + final[id(right)] == pytest.approx(
            final[id(root)]
        )

    def test_equal_variances_split_residual_equally(self):
        root, left, right = make_manual_tree()
        final = boost_tree_consistency(root)
        # Upward: combined root = mean of own (9) and child sum (10.5),
        # with child-sum variance 16 vs own 8 -> weights 2:1.
        expected_root = (9.0 / 8.0 + 10.5 / 16.0) / (1.0 / 8.0 + 1.0 / 16.0)
        assert final[id(root)] == pytest.approx(expected_root)
        residual = expected_root - 10.5
        assert final[id(left)] == pytest.approx(7.5 + residual / 2)
        assert final[id(right)] == pytest.approx(3.0 + residual / 2)

    def test_leaf_only_tree(self):
        leaf = DAFNode(box=((0, 3),), depth=0, count=5.0, ncount=4.2,
                       eps_spent=0.5, ncount_variance=8.0)
        final = boost_tree_consistency(leaf)
        assert final[id(leaf)] == 4.2

    def test_rejects_zero_budget_node(self):
        root, left, _ = make_manual_tree()
        left.eps_spent = 0.0
        with pytest.raises(MethodError):
            boost_tree_consistency(root)

    def test_apply_boosting_overwrites_ncounts(self):
        root, left, right = make_manual_tree()
        n = apply_boosting(root)
        assert n == 3
        assert left.ncount + right.ncount == pytest.approx(root.ncount)


class TestBoostedDAF:
    def test_flag_in_describe(self):
        assert DAFEntropy(tree_consistency=True).describe()["tree_consistency"]

    def test_variances_tracked_on_all_nodes(self, skewed_2d):
        method = DAFEntropy()
        method.sanitize(skewed_2d, 0.5, rng=0)
        for node in method.tree_.iter_nodes():
            assert node.ncount_variance > 0

    def test_homogeneity_variance_excludes_split_budget(self, skewed_2d):
        """With q = 0.3 the data estimate uses (1-q) of the node budget,
        so its variance must exceed the naive 2/eps_node^2."""
        method = DAFHomogeneity(q=0.3, stop_condition=NeverStop())
        method.sanitize(skewed_2d, 0.5, rng=0)
        internal = [
            n for n in method.tree_.iter_nodes()
            if 0 < n.depth < 2 and not n.stopped_early
        ]
        assert internal
        for node in internal:
            naive = 2.0 / node.eps_spent**2
            assert node.ncount_variance > naive * 1.5

    def test_boosted_tree_is_consistent(self, skewed_2d):
        method = DAFEntropy(tree_consistency=True)
        method.sanitize(skewed_2d, 0.5, rng=0)
        for node in method.tree_.iter_nodes():
            if node.children:
                child_sum = sum(c.ncount for c in node.children)
                assert child_sum == pytest.approx(node.ncount, rel=1e-9, abs=1e-9)

    def test_boosting_improves_total_estimate(self, skewed_2d):
        """The root total combines every level's information: its error
        must shrink on average versus leaves-only publication."""
        fb = full_box(skewed_2d.shape)
        plain_err, boosted_err = [], []
        for seed in range(25):
            plain = DAFEntropy(tree_consistency=False).sanitize(
                skewed_2d, 0.2, np.random.default_rng(seed)
            )
            boosted = DAFEntropy(tree_consistency=True).sanitize(
                skewed_2d, 0.2, np.random.default_rng(seed)
            )
            plain_err.append(abs(plain.answer(fb) - skewed_2d.total))
            boosted_err.append(abs(boosted.answer(fb) - skewed_2d.total))
        assert np.mean(boosted_err) < np.mean(plain_err)

    def test_boosting_does_not_hurt_random_workload(self, skewed_2d, rng):
        from repro.queries import WorkloadEvaluator, random_workload
        evaluator = WorkloadEvaluator(skewed_2d)
        workload = random_workload(skewed_2d.shape, 150, rng)
        plain = np.mean([
            evaluator.evaluate(
                DAFEntropy().sanitize(skewed_2d, 0.2, np.random.default_rng(s)),
                workload,
            ).mre
            for s in range(8)
        ])
        boosted = np.mean([
            evaluator.evaluate(
                DAFEntropy(tree_consistency=True).sanitize(
                    skewed_2d, 0.2, np.random.default_rng(s)
                ),
                workload,
            ).mre
            for s in range(8)
        ])
        assert boosted <= plain * 1.25

    def test_budget_unchanged_by_boosting(self, skewed_2d):
        private = DAFEntropy(tree_consistency=True).sanitize(
            skewed_2d, 0.4, rng=3
        )
        assert private.metadata["budget_summary"]["<total>"] <= 0.4 + 1e-9
