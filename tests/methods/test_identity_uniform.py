"""Tests for the IDENTITY and UNIFORM baselines."""

import numpy as np
import pytest

from repro.core import FrequencyMatrix, MethodError, full_box
from repro.methods import Identity, Uniform


class TestIdentity:
    def test_dense_backed_output(self, small_2d):
        private = Identity().sanitize(small_2d, 1.0, rng=0)
        assert private.is_dense_backed
        assert private.n_partitions == small_2d.n_cells

    def test_unbiased_per_cell(self, small_2d):
        # Averaging many runs should recover the data (noise is zero-mean).
        acc = np.zeros(small_2d.shape)
        runs = 200
        rng = np.random.default_rng(0)
        for _ in range(runs):
            acc += Identity().sanitize(small_2d, 2.0, rng).dense_array()
        assert np.allclose(acc / runs, small_2d.data, atol=0.5)

    def test_noise_magnitude_scales_with_epsilon(self, small_2d):
        rng = np.random.default_rng(0)
        err_small = np.abs(
            Identity().sanitize(small_2d, 0.1, rng).dense_array() - small_2d.data
        ).mean()
        err_large = np.abs(
            Identity().sanitize(small_2d, 10.0, rng).dense_array() - small_2d.data
        ).mean()
        assert err_small > err_large * 5

    def test_geometric_mechanism_integer_outputs(self, small_2d):
        private = Identity(mechanism="geometric").sanitize(small_2d, 1.0, rng=0)
        dense = private.dense_array()
        assert np.allclose(dense, np.round(dense))

    def test_rejects_unknown_mechanism(self):
        with pytest.raises(MethodError):
            Identity(mechanism="gauss")

    def test_single_cell_query_uses_cell_value(self, small_2d):
        private = Identity().sanitize(small_2d, 1.0, rng=0)
        assert private.answer(((3, 3), (4, 4))) == pytest.approx(
            private.dense_array()[3, 4]
        )


class TestUniform:
    def test_single_partition(self, small_2d):
        private = Uniform().sanitize(small_2d, 1.0, rng=0)
        assert private.n_partitions == 1

    def test_query_proportional_to_volume(self, small_2d):
        private = Uniform().sanitize(small_2d, 1.0, rng=0)
        total = private.answer(full_box(small_2d.shape))
        half = private.answer(((0, 7), (0, 15)))
        assert half == pytest.approx(total / 2)

    def test_total_close_to_truth(self, small_2d):
        private = Uniform().sanitize(small_2d, 10.0, rng=0)
        assert private.answer(full_box(small_2d.shape)) == pytest.approx(
            small_2d.total, rel=0.05
        )

    def test_zero_matrix(self):
        fm = FrequencyMatrix.zeros((8, 8))
        private = Uniform().sanitize(fm, 1.0, rng=0)
        # Only noise remains; magnitude ~ 1/eps.
        assert abs(private.answer(full_box((8, 8)))) < 50.0

    def test_large_uniformity_error_on_skew(self, skewed_2d):
        """UNIFORM's weakness: a hotspot query is answered by volume share."""
        private = Uniform().sanitize(skewed_2d, 10.0, rng=0)
        hotspot = ((12, 19), (12, 19))
        true = skewed_2d.range_count(hotspot)
        est = private.answer(hotspot)
        # The hotspot holds most of the data but only 6% of the volume.
        assert est < true / 2
