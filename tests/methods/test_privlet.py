"""Tests for the Privlet wavelet extension."""

import numpy as np
import pytest

from repro.core import FrequencyMatrix, full_box
from repro.methods import (
    Privlet,
    haar_axis_weights,
    haar_forward_axis,
    haar_inverse_axis,
    haar_level_count,
)


class TestHaarTransform:
    def test_forward_inverse_roundtrip_1d(self, rng):
        x = rng.random(16)
        back = haar_inverse_axis(haar_forward_axis(x, 0), 0)
        assert np.allclose(back, x)

    def test_forward_inverse_roundtrip_2d(self, rng):
        x = rng.random((8, 16))
        y = haar_forward_axis(haar_forward_axis(x, 0), 1)
        back = haar_inverse_axis(haar_inverse_axis(y, 1), 0)
        assert np.allclose(back, x)

    def test_scaling_coefficient_is_mean(self):
        x = np.arange(8, dtype=float)
        y = haar_forward_axis(x, 0)
        assert y[0] == pytest.approx(x.mean())

    def test_constant_signal_concentrates(self):
        x = np.full(8, 5.0)
        y = haar_forward_axis(x, 0)
        assert y[0] == pytest.approx(5.0)
        assert np.allclose(y[1:], 0.0)

    def test_two_point_transform(self):
        y = haar_forward_axis(np.array([3.0, 1.0]), 0)
        assert y[0] == pytest.approx(2.0)   # mean
        assert y[1] == pytest.approx(1.0)   # half difference

    def test_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            haar_forward_axis(np.zeros(6), 0)
        with pytest.raises(ValueError):
            haar_inverse_axis(np.zeros(6), 0)


class TestHaarWeights:
    def test_level_count(self):
        assert haar_level_count(1) == 1
        assert haar_level_count(8) == 4

    def test_weights_match_impulse_sensitivity(self):
        """w(p) must upper-bound (tightly) the coefficient movement caused
        by a unit impulse anywhere on the axis."""
        for n in (2, 4, 8, 16):
            w = haar_axis_weights(n)
            worst = np.zeros(n)
            for i in range(n):
                e = np.zeros(n)
                e[i] = 1.0
                worst = np.maximum(worst, np.abs(haar_forward_axis(e, 0)))
            assert np.allclose(w, worst)

    def test_weight_layout(self):
        w = haar_axis_weights(8)
        assert w[0] == pytest.approx(1 / 8)      # scaling
        assert w[1] == pytest.approx(1 / 8)      # level-3 (coarsest) detail
        assert np.allclose(w[2:4], 1 / 4)        # level 2
        assert np.allclose(w[4:8], 1 / 2)        # level 1 (finest)

    def test_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            haar_axis_weights(6)
        with pytest.raises(ValueError):
            haar_level_count(0)


class TestPrivletSanitizer:
    def test_output_dense_backed(self, small_2d):
        private = Privlet().sanitize(small_2d, 1.0, rng=0)
        assert private.is_dense_backed
        assert private.shape == small_2d.shape

    def test_non_pow2_shapes_padded(self):
        fm = FrequencyMatrix(np.ones((5, 9)))
        private = Privlet().sanitize(fm, 1.0, rng=0)
        assert private.shape == (5, 9)
        assert private.metadata["padded_shape"] == [8, 16]

    def test_unbiased_total(self, small_2d):
        rng = np.random.default_rng(0)
        totals = [
            Privlet().sanitize(small_2d, 1.0, rng).answer(full_box(small_2d.shape))
            for _ in range(100)
        ]
        assert np.mean(totals) == pytest.approx(small_2d.total, rel=0.1)

    def test_large_range_beats_identity(self, rng):
        """Privlet's raison d'etre: big queries accumulate less noise."""
        from repro.methods import Identity
        fm = FrequencyMatrix(rng.poisson(5.0, size=(64, 64)).astype(float))
        box = ((0, 59), (0, 59))
        true = fm.range_count(box)
        priv_err, id_err = [], []
        for s in range(20):
            priv_err.append(abs(
                Privlet().sanitize(fm, 0.2, np.random.default_rng(s)).answer(box)
                - true
            ))
            id_err.append(abs(
                Identity().sanitize(fm, 0.2, np.random.default_rng(s)).answer(box)
                - true
            ))
        assert np.median(priv_err) < np.median(id_err)

    def test_privacy_degradation_sums_to_epsilon(self):
        """The per-group calibration must compose to exactly eps: an
        impulse's total |delta|/scale across all coefficients equals eps."""
        n = 16
        eps = 0.7
        groups = haar_level_count(n) ** 2
        w0 = haar_axis_weights(n)
        scale = (groups / eps) * np.outer(w0, w0)
        worst = 0.0
        rng = np.random.default_rng(0)
        for _ in range(10):
            e = np.zeros((n, n))
            e[rng.integers(0, n), rng.integers(0, n)] = 1.0
            coeffs = haar_forward_axis(haar_forward_axis(e, 0), 1)
            worst = max(worst, float(np.sum(np.abs(coeffs) / scale)))
        assert worst <= eps + 1e-9
        assert worst == pytest.approx(eps, rel=1e-6)
