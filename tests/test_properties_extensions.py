"""Property-based tests for the extension layers: consistency
post-processing, DAF boosting, semantic maps, and OD construction."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import (
    Partition,
    Partitioning,
    PrivateFrequencyMatrix,
    clip_nonnegative,
    project_nonnegative_total,
    rescale_to_total,
)
from repro.methods.daf.boosting import boost_tree_consistency
from repro.methods.daf.node import DAFNode


# ----------------------------------------------------------------------
# Consistency post-processing
# ----------------------------------------------------------------------
@st.composite
def private_1d(draw):
    counts = draw(st.lists(
        st.floats(-1e4, 1e4, allow_nan=False), min_size=1, max_size=20
    ))
    parts = [Partition(((i, i),), float(c)) for i, c in enumerate(counts)]
    return PrivateFrequencyMatrix(
        Partitioning(parts, (len(counts),)), epsilon=1.0, method="t"
    )


class TestConsistencyProperties:
    @given(private_1d())
    def test_clip_produces_nonnegative(self, private):
        out = clip_nonnegative(private)
        assert all(p.noisy_count >= 0 for p in out.partitions)

    @given(private_1d())
    def test_clip_idempotent(self, private):
        once = clip_nonnegative(private)
        twice = clip_nonnegative(once)
        a = [p.noisy_count for p in once.partitions]
        b = [p.noisy_count for p in twice.partitions]
        assert a == b

    @given(private_1d(), st.floats(0.1, 1e5))
    def test_rescale_hits_target(self, private, target):
        from repro.core import ValidationError
        current = sum(p.noisy_count for p in private.partitions)
        if current <= 0:
            return
        try:
            out = rescale_to_total(private, target)
        except ValidationError:
            # Degenerate current sums (denormal dust) are rejected.
            assert target / current == float("inf") or current < 1e-300
            return
        assert sum(p.noisy_count for p in out.partitions) == pytest.approx(
            target, rel=1e-6
        )

    @given(private_1d(), st.floats(0.0, 1e5))
    def test_projection_invariants(self, private, target):
        out = project_nonnegative_total(private, target_total=target)
        values = np.array([p.noisy_count for p in out.partitions])
        assert (values >= -1e-12).all()
        assert values.sum() == pytest.approx(target, rel=1e-6, abs=1e-6)

    @given(private_1d())
    def test_postprocessing_preserves_epsilon(self, private):
        assert clip_nonnegative(private).epsilon == private.epsilon


# ----------------------------------------------------------------------
# Boosting
# ----------------------------------------------------------------------
@st.composite
def random_trees(draw):
    """A depth-2 tree with random fanouts, counts, budgets."""
    fanout = draw(st.integers(2, 5))
    leaf_counts = draw(st.lists(
        st.floats(0, 1e4, allow_nan=False),
        min_size=fanout, max_size=fanout,
    ))
    eps = draw(st.floats(0.05, 2.0))
    noise = draw(st.floats(-50, 50))
    total = sum(leaf_counts)
    size_per_leaf = 4
    root = DAFNode(
        box=((0, fanout * size_per_leaf - 1),), depth=0, count=total,
        ncount=total + noise, eps_spent=eps, ncount_variance=2.0 / eps**2,
    )
    for i, c in enumerate(leaf_counts):
        child_eps = draw(st.floats(0.05, 2.0))
        child_noise = draw(st.floats(-50, 50))
        root.children.append(DAFNode(
            box=((i * size_per_leaf, (i + 1) * size_per_leaf - 1),),
            depth=1, count=c, ncount=c + child_noise,
            eps_spent=child_eps, ncount_variance=2.0 / child_eps**2,
        ))
    root.split_axis = 0
    root.fanout = fanout
    return root


class TestBoostingProperties:
    @given(random_trees())
    def test_consistency_holds(self, root):
        final = boost_tree_consistency(root)
        child_sum = sum(final[id(c)] for c in root.children)
        assert child_sum == pytest.approx(final[id(root)], rel=1e-9, abs=1e-6)

    @given(random_trees())
    def test_root_between_estimates(self, root):
        """The combined root estimate is a convex combination of the two
        unbiased estimates: it lies between them."""
        final = boost_tree_consistency(root)
        own = root.ncount
        child_sum = sum(c.ncount for c in root.children)
        lo, hi = min(own, child_sum), max(own, child_sum)
        assert lo - 1e-9 <= final[id(root)] <= hi + 1e-9

    @given(random_trees())
    def test_noiseless_tree_unchanged(self, root):
        """If every estimate is exact, boosting must return exact values."""
        root.ncount = root.count
        for c in root.children:
            c.ncount = c.count
        final = boost_tree_consistency(root)
        tol = max(1.0, root.count) * 1e-9
        assert final[id(root)] == pytest.approx(root.count, abs=tol)
        for c in root.children:
            assert final[id(c)] == pytest.approx(c.count, abs=tol)


# ----------------------------------------------------------------------
# Semantic maps
# ----------------------------------------------------------------------
class TestSemanticProperties:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(4, 24), st.integers(4, 24),
        st.integers(1, 30), st.integers(0, 2**31),
    )
    def test_random_map_total_partition(self, nx, ny, patches, seed):
        """Category masks partition the grid: fractions sum to one."""
        from repro.trajectories import SemanticMap, SpatialGrid
        sem = SemanticMap.random(SpatialGrid(nx, ny), patch_count=patches,
                                 rng=seed)
        total = sum(sem.category_fraction(c) for c in sem.categories)
        assert total == pytest.approx(1.0)

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 2**31))
    def test_sequence_counts_partition_the_total(self, seed):
        """Summing sequence counts over all (origin_cat, dest_cat) pairs
        recovers the matrix total exactly."""
        from repro.core import Domain, FrequencyMatrix
        from repro.trajectories import (
            SemanticMap, SpatialGrid, semantic_sequence_count,
        )
        rng = np.random.default_rng(seed)
        data = rng.poisson(1.0, size=(6, 6, 6, 6)).astype(float)
        fm = FrequencyMatrix(data, Domain.regular(data.shape))
        sem = SemanticMap.random(SpatialGrid(6, 6), patch_count=5, rng=seed)
        total = 0.0
        for ca in sem.categories:
            for cb in sem.categories:
                total += semantic_sequence_count(fm, sem, [ca, cb])
        assert total == pytest.approx(fm.total)


# ----------------------------------------------------------------------
# OD construction
# ----------------------------------------------------------------------
class TestODProperties:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(10, 200),   # trips
        st.integers(0, 2),      # stops
        st.integers(2, 6),      # resolution
        st.integers(0, 2**31),
    )
    def test_total_always_preserved(self, n, stops, g, seed):
        from repro.trajectories import (
            ODMatrixBuilder, SpatialGrid, TrajectoryDataset,
        )
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0.0, 9.99, size=(n, stops + 2, 2))
        ds = TrajectoryDataset(pts)
        grid = SpatialGrid(100, 100, 0.0, 10.0, 0.0, 10.0)
        fm = ODMatrixBuilder(grid, resolution=g, cell_budget=10**7).build(ds)
        assert fm.total == n
        assert fm.ndim == 2 * (stops + 2)
