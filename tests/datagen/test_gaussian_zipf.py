"""Tests for the synthetic generators (paper Section 6.1)."""

import numpy as np
import pytest

from repro.core import ValidationError
from repro.datagen import (
    gaussian_cluster_points,
    gaussian_matrix,
    paper_shape,
    variance_for_skew,
    zipf_matrix,
    zipf_points,
)


class TestPaperShape:
    def test_2d(self):
        assert paper_shape(2, 1_000_000) == (1000, 1000)

    def test_4d(self):
        assert paper_shape(4, 1_000_000) == (31, 31, 31, 31)

    def test_6d(self):
        assert paper_shape(6, 1_000_000) == (10, 10, 10, 10, 10, 10)

    def test_minimum_width(self):
        assert paper_shape(10, 100) == tuple([2] * 10)

    def test_validation(self):
        with pytest.raises(ValidationError):
            paper_shape(0)
        with pytest.raises(ValidationError):
            paper_shape(2, 0)


class TestGaussian:
    def test_point_count_exact(self):
        fm = gaussian_matrix(2, variance=4.0, n_points=5000, rng=0)
        assert fm.total == 5000.0

    def test_shape_default(self):
        fm = gaussian_matrix(3, variance=4.0, n_points=8000, rng=0)
        assert fm.shape == paper_shape(3, 8000)

    def test_explicit_shape(self):
        fm = gaussian_matrix(2, 4.0, 1000, rng=0, shape=(20, 30))
        assert fm.shape == (20, 30)

    def test_shape_arity_checked(self):
        with pytest.raises(ValidationError):
            gaussian_matrix(2, 4.0, 1000, rng=0, shape=(20, 30, 40))

    def test_lower_variance_more_skew(self):
        from repro.core import matrix_entropy
        tight = gaussian_matrix(2, 1.0, 20_000, rng=0, shape=(50, 50))
        wide = gaussian_matrix(2, 400.0, 20_000, rng=0, shape=(50, 50))
        # Lower variance concentrates mass: lower entropy, higher peak.
        assert matrix_entropy(tight) < matrix_entropy(wide)
        assert tight.data.max() > wide.data.max()

    def test_center_respected(self):
        cells = gaussian_cluster_points(
            (100, 100), variance=1.0, n_points=5000, rng=0, center=(20, 80)
        )
        assert abs(cells[:, 0].mean() - 20) < 1.0
        assert abs(cells[:, 1].mean() - 80) < 1.0

    def test_center_arity_checked(self):
        with pytest.raises(ValidationError):
            gaussian_cluster_points((10, 10), 1.0, 100, rng=0, center=(5,))

    def test_points_clipped_to_domain(self):
        cells = gaussian_cluster_points(
            (10, 10), variance=400.0, n_points=2000, rng=0
        )
        assert cells.min() >= 0
        assert cells.max() <= 9

    def test_reproducible(self):
        a = gaussian_matrix(2, 4.0, 1000, rng=7, shape=(20, 20))
        b = gaussian_matrix(2, 4.0, 1000, rng=7, shape=(20, 20))
        assert a == b

    def test_validation(self):
        with pytest.raises(ValidationError):
            gaussian_cluster_points((10,), 0.0, 100)
        with pytest.raises(ValidationError):
            gaussian_cluster_points((10,), 1.0, 0)

    def test_variance_for_skew(self):
        assert variance_for_skew((100, 200), 0.1) == pytest.approx(100.0)
        with pytest.raises(ValidationError):
            variance_for_skew((100,), 0.0)


class TestZipf:
    def test_point_count_exact(self):
        fm = zipf_matrix(2, a=2.0, n_points=5000, rng=0)
        assert fm.total == 5000.0

    def test_mass_concentrates_at_origin(self):
        fm = zipf_matrix(2, a=2.5, n_points=10_000, rng=0, shape=(50, 50))
        assert fm.data[0, 0] > fm.total * 0.3

    def test_higher_a_more_skew(self):
        low = zipf_matrix(2, 1.5, 20_000, rng=0, shape=(50, 50))
        high = zipf_matrix(2, 3.5, 20_000, rng=0, shape=(50, 50))
        assert high.data[0, 0] > low.data[0, 0]

    def test_tail_clipped(self):
        pts = zipf_points((5, 5), a=1.2, n_points=1000, rng=0)
        assert pts.max() <= 4
        assert pts.min() >= 0

    def test_rejects_a_leq_one(self):
        with pytest.raises(ValidationError):
            zipf_points((5, 5), a=1.0, n_points=10)

    def test_shape_arity_checked(self):
        with pytest.raises(ValidationError):
            zipf_matrix(2, 2.0, 100, rng=0, shape=(5,))

    def test_reproducible(self):
        a = zipf_matrix(2, 2.0, 1000, rng=3, shape=(10, 10))
        b = zipf_matrix(2, 2.0, 1000, rng=3, shape=(10, 10))
        assert a == b
