"""Tests for the Veraset-substitute city and mobility models."""

import numpy as np
import pytest

from repro.core import ValidationError
from repro.datagen import (
    CITY_NAMES,
    ActivityCenter,
    CityModel,
    MovementSimulator,
    get_city,
    los_angeles_like,
    simulate_od_dataset,
)


class TestCityProfiles:
    def test_builtin_cities(self):
        for name in CITY_NAMES:
            city = get_city(name)
            assert city.name == name
            assert len(city.centers) >= 3

    def test_unknown_city(self):
        with pytest.raises(ValidationError):
            get_city("gotham")

    def test_la_profile(self):
        assert los_angeles_like().name == "los_angeles"

    def test_density_ordering(self):
        """NY must be more concentrated than Denver, Denver than Detroit —
        the 'high / moderate / low density' calibration of Section 6.1."""
        from repro.core import matrix_entropy
        entropies = {}
        for name in CITY_NAMES:
            fm = get_city(name).population_matrix(
                n_points=60_000, resolution=128, rng=0
            )
            entropies[name] = matrix_entropy(fm)
        # Higher entropy = more spread out = less density concentration.
        assert entropies["new_york"] < entropies["denver"] < entropies["detroit"]

    def test_population_matrix_count(self):
        fm = get_city("denver").population_matrix(
            n_points=10_000, resolution=64, rng=0
        )
        assert fm.total == 10_000.0
        assert fm.shape == (64, 64)

    def test_sample_points_within_city(self):
        city = get_city("new_york")
        pts = city.sample_points(5000, rng=0)
        assert pts.min() >= 0.0
        assert pts.max() < city.side_km

    def test_background_fraction_validated(self):
        with pytest.raises(ValidationError):
            CityModel("x", (ActivityCenter(1, 1, 1, 1),), background_fraction=1.0)

    def test_needs_centers(self):
        with pytest.raises(ValidationError):
            CityModel("x", ())

    def test_activity_center_validation(self):
        with pytest.raises(ValidationError):
            ActivityCenter(0, 0, 0.0, 1.0)
        with pytest.raises(ValidationError):
            ActivityCenter(0, 0, 1.0, 0.0)

    def test_reproducible(self):
        city = get_city("detroit")
        a = city.sample_points(100, rng=5)
        b = city.sample_points(100, rng=5)
        assert np.array_equal(a, b)


class TestMovementSimulator:
    def test_dataset_shape(self):
        ds = simulate_od_dataset(get_city("denver"), 500, n_stops=2, rng=0)
        assert ds.n_trajectories == 500
        assert ds.n_points_each == 4

    def test_no_stops(self):
        ds = simulate_od_dataset(get_city("denver"), 200, n_stops=0, rng=0)
        assert ds.n_points_each == 2

    def test_points_within_city(self):
        city = get_city("new_york")
        ds = simulate_od_dataset(city, 1000, n_stops=1, rng=0)
        assert ds.points.min() >= 0.0
        assert ds.points.max() < city.side_km

    def test_distance_decay_shortens_trips(self):
        city = get_city("denver")
        short = MovementSimulator(city, trip_scale_km=2.0).sample(2000, 0, rng=0)
        longr = MovementSimulator(city, trip_scale_km=50.0).sample(2000, 0, rng=0)
        d_short = np.linalg.norm(short.destinations - short.origins, axis=1)
        d_long = np.linalg.norm(longr.destinations - longr.origins, axis=1)
        assert d_short.mean() < d_long.mean()

    def test_stops_near_corridor(self):
        city = get_city("denver")
        sim = MovementSimulator(city, stop_jitter_km=0.5)
        ds = sim.sample(1000, n_stops=1, rng=0)
        o, s, d = ds.points[:, 0], ds.points[:, 1], ds.points[:, 2]
        # Distance from stop to the O-D segment must be small on average.
        seg = d - o
        seg_len = np.linalg.norm(seg, axis=1).clip(1e-9)
        t = ((s - o) * seg).sum(axis=1) / seg_len**2
        t = np.clip(t, 0.0, 1.0)
        proj = o + t[:, None] * seg
        lateral = np.linalg.norm(s - proj, axis=1)
        assert np.median(lateral) < 2.0

    def test_parameter_validation(self):
        city = get_city("denver")
        with pytest.raises(ValidationError):
            MovementSimulator(city, trip_scale_km=0.0)
        with pytest.raises(ValidationError):
            MovementSimulator(city, stop_jitter_km=-1.0)
        with pytest.raises(ValidationError):
            MovementSimulator(city, candidate_factor=0)
        with pytest.raises(ValidationError):
            MovementSimulator(city).sample(0)
        with pytest.raises(ValidationError):
            MovementSimulator(city).sample(10, n_stops=-1)

    def test_reproducible(self):
        city = get_city("denver")
        a = simulate_od_dataset(city, 100, 1, rng=9)
        b = simulate_od_dataset(city, 100, 1, rng=9)
        assert np.array_equal(a.points, b.points)
