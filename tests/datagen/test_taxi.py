"""Tests for the taxi-fleet trip generator."""

import numpy as np
import pytest

from repro.core import ValidationError
from repro.datagen import TaxiFleetModel, TaxiStand


class TestTaxiStand:
    def test_validation(self):
        with pytest.raises(ValidationError):
            TaxiStand(0, 0, 0.0, 1.0)
        with pytest.raises(ValidationError):
            TaxiStand(0, 0, 1.0, -1.0)


class TestTaxiFleetModel:
    def test_default_stands(self):
        model = TaxiFleetModel()
        names = {s.name for s in model.stands}
        assert {"downtown", "airport"} <= names

    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            TaxiFleetModel(side_km=0.0)
        with pytest.raises(ValidationError):
            TaxiFleetModel(street_hail_fraction=1.5)
        with pytest.raises(ValidationError):
            TaxiFleetModel(pair_affinity=-0.1)
        with pytest.raises(ValidationError):
            TaxiFleetModel(stands=())
        with pytest.raises(ValidationError):
            TaxiFleetModel().sample_trips(0)

    def test_trip_shapes(self):
        model = TaxiFleetModel()
        trips = model.sample_trips(500, rng=0)
        assert trips.n_trajectories == 500
        assert trips.n_points_each == 2

    def test_waypoint_trips(self):
        trips = TaxiFleetModel().sample_trips(200, with_waypoint=True, rng=0)
        assert trips.n_points_each == 3

    def test_trips_within_city(self):
        model = TaxiFleetModel(side_km=70.0)
        trips = model.sample_trips(2000, rng=1)
        assert trips.points.min() >= 0.0
        assert trips.points.max() < 70.0

    def test_reproducible(self):
        model = TaxiFleetModel()
        a = model.sample_trips(100, rng=5).points
        b = model.sample_trips(100, rng=5).points
        assert np.array_equal(a, b)

    def test_pickups_concentrate_at_stands(self):
        """Stand pickups must dominate over uniform street hails."""
        model = TaxiFleetModel(street_hail_fraction=0.1)
        trips = model.sample_trips(5000, rng=2)
        stands = np.array([[s.x, s.y] for s in model.stands])
        d = np.linalg.norm(
            trips.origins[:, None, :] - stands[None, :, :], axis=2
        ).min(axis=1)
        near = (d < 5.0).mean()
        assert near > 0.7

    def test_pair_affinity_shapes_flows(self):
        """High affinity must concentrate dropoffs at the paired stand."""
        strong = TaxiFleetModel(pair_affinity=0.95, street_hail_fraction=0.0)
        weak = TaxiFleetModel(pair_affinity=0.0, street_hail_fraction=0.0)

        def paired_fraction(model):
            trips = model.sample_trips(4000, rng=3)
            stands = np.array([[s.x, s.y] for s in model.stands])
            o_stand = np.linalg.norm(
                trips.origins[:, None, :] - stands[None], axis=2
            ).argmin(axis=1)
            d_stand = np.linalg.norm(
                trips.destinations[:, None, :] - stands[None], axis=2
            ).argmin(axis=1)
            return float(
                (d_stand == (o_stand + 1) % len(model.stands)).mean()
            )

        assert paired_fraction(strong) > paired_fraction(weak) + 0.2

    def test_stand_regions(self):
        regions = TaxiFleetModel().stand_regions(radius_km=2.0)
        assert len(regions) == 4
        name, ((x_lo, x_hi), (y_lo, y_hi)) = regions[0]
        assert name == "downtown"
        assert x_hi - x_lo == pytest.approx(4.0)

    def test_stand_regions_validation(self):
        with pytest.raises(ValidationError):
            TaxiFleetModel().stand_regions(radius_km=0.0)

    def test_od_pipeline_integration(self):
        """Taxi trips feed the OD + sanitization pipeline end to end."""
        from repro.methods import DAFEntropy
        from repro.trajectories import classical_od_matrix, flow_between
        model = TaxiFleetModel(pair_affinity=0.9, street_hail_fraction=0.05)
        trips = model.sample_trips(20_000, rng=4)
        matrix = classical_od_matrix(trips, model.grid, cell_budget=500_000)
        assert matrix.total == 20_000
        private = DAFEntropy().sanitize(matrix, 1.0, rng=5)
        regions = dict(model.stand_regions(radius_km=4.0))
        true = flow_between(matrix, regions["downtown"], regions["rail_station"])
        noisy = flow_between(private, regions["downtown"], regions["rail_station"])
        assert noisy == pytest.approx(true, abs=max(1000.0, true))
