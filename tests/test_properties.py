"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import (
    Domain,
    FrequencyMatrix,
    PrefixSumTable,
    distribution_entropy,
    full_box,
    grid_boxes,
    split_interval,
)
from repro.dp import BudgetLedger, geometric_level_budgets, split_budget
from repro.methods import clamp_granularity, ebp_granularity
from repro.methods.privlet import (
    haar_axis_weights,
    haar_forward_axis,
    haar_inverse_axis,
)
from repro.queries import relative_errors

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
count_arrays = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=8),
    elements=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)

shapes = st.lists(st.integers(1, 12), min_size=1, max_size=3).map(tuple)


@st.composite
def matrix_and_box(draw):
    data = draw(count_arrays)
    box = []
    for s in data.shape:
        a = draw(st.integers(0, s - 1))
        b = draw(st.integers(0, s - 1))
        box.append((min(a, b), max(a, b)))
    return FrequencyMatrix(data), tuple(box)


# ----------------------------------------------------------------------
# FrequencyMatrix / prefix sums
# ----------------------------------------------------------------------
class TestMatrixProperties:
    @given(matrix_and_box())
    def test_range_count_matches_prefix_sum(self, mb):
        fm, box = mb
        table = PrefixSumTable(fm.data)
        assert table.query(box) == pytest.approx(fm.range_count(box), rel=1e-9, abs=1e-6)

    @given(count_arrays)
    def test_total_equals_full_box(self, data):
        fm = FrequencyMatrix(data)
        assert fm.range_count(full_box(fm.shape)) == pytest.approx(fm.total)

    @given(matrix_and_box())
    def test_range_count_nonnegative_and_bounded(self, mb):
        fm, box = mb
        c = fm.range_count(box)
        assert -1e-9 <= c <= fm.total + 1e-6

    @given(count_arrays)
    def test_probabilities_normalized(self, data):
        fm = FrequencyMatrix(data)
        p = fm.probabilities()
        total = p.sum()
        assert total == pytest.approx(1.0) or total == 0.0


# ----------------------------------------------------------------------
# Partitioning helpers
# ----------------------------------------------------------------------
class TestPartitioningProperties:
    @given(shapes, st.lists(st.integers(1, 15), min_size=1, max_size=3))
    def test_grid_boxes_tile_exactly(self, shape, ms):
        if len(ms) < len(shape):
            ms = ms + [1] * (len(shape) - len(ms))
        boxes = grid_boxes(shape, ms[: len(shape)])
        covered = np.zeros(shape, dtype=int)
        for box in boxes:
            covered[tuple(slice(lo, hi + 1) for lo, hi in box)] += 1
        assert (covered == 1).all()

    @given(
        st.integers(0, 50),
        st.integers(0, 50),
        st.sets(st.integers(1, 100), max_size=5),
    )
    def test_split_interval_tiles(self, lo, width, cut_offsets):
        hi = lo + width
        cuts = sorted(c + lo for c in cut_offsets if lo < c + lo <= hi)
        intervals = split_interval(lo, hi, cuts)
        cells = [i for a, b in intervals for i in range(a, b + 1)]
        assert cells == list(range(lo, hi + 1))


# ----------------------------------------------------------------------
# Entropy
# ----------------------------------------------------------------------
class TestEntropyProperties:
    @given(st.lists(st.floats(0.0, 1e9, allow_nan=False), min_size=1, max_size=64))
    def test_entropy_bounds(self, weights):
        h = distribution_entropy(weights)
        assert -1e-9 <= h <= np.log2(len(weights)) + 1e-9

    @given(st.lists(st.floats(0.01, 1e6), min_size=2, max_size=32))
    def test_aggregation_cannot_increase_entropy(self, weights):
        h_full = distribution_entropy(weights)
        half = len(weights) // 2
        merged = [sum(weights[:half]) or 0.0, sum(weights[half:])]
        assert distribution_entropy(merged) <= h_full + 1e-9


# ----------------------------------------------------------------------
# DP budget machinery
# ----------------------------------------------------------------------
class TestBudgetProperties:
    @given(
        st.floats(0.01, 10.0),
        st.lists(st.floats(0.01, 10.0), min_size=1, max_size=8),
    )
    def test_split_budget_sums_exactly(self, eps, fractions):
        parts = split_budget(eps, fractions)
        # a + (b - a) can round: exact to the last ulp, not bit-identical.
        assert sum(parts) == pytest.approx(eps, rel=1e-12)
        assert all(p > 0 for p in parts)

    @given(
        st.floats(0.01, 5.0),
        st.floats(1.0, 100.0),
        st.integers(1, 8),
    )
    def test_geometric_budgets_sum_and_positive(self, eps, m0, depth):
        budgets = geometric_level_budgets(eps, m0, depth)
        assert sum(budgets) == pytest.approx(eps)
        assert all(b > 0 for b in budgets)

    @given(st.lists(st.floats(0.001, 0.2), min_size=1, max_size=10))
    def test_ledger_sequential_total(self, charges):
        ledger = BudgetLedger(10.0)
        for c in charges:
            ledger.charge(c)
        assert ledger.total_spent() == pytest.approx(sum(charges))
        ledger.assert_within_budget()


# ----------------------------------------------------------------------
# Granularity formulas
# ----------------------------------------------------------------------
class TestGranularityProperties:
    @given(
        st.floats(1.0, 1e9),
        st.floats(0.001, 10.0),
        st.integers(1, 8),
    )
    def test_ebp_granularity_positive_finite(self, n, eps, d):
        m = ebp_granularity(n, eps, d)
        assert m >= 1.0
        assert np.isfinite(m)

    @given(st.floats(-1e3, 1e6), st.integers(1, 100))
    def test_clamp_granularity_in_range(self, m, size):
        c = clamp_granularity(m, size)
        assert 1 <= c <= size


# ----------------------------------------------------------------------
# Haar transform
# ----------------------------------------------------------------------
class TestHaarProperties:
    @given(
        st.integers(0, 5).flatmap(
            lambda k: hnp.arrays(
                np.float64, 2**k,
                elements=st.floats(-1e6, 1e6, allow_nan=False),
            )
        )
    )
    def test_roundtrip(self, x):
        back = haar_inverse_axis(haar_forward_axis(x, 0), 0)
        assert np.allclose(back, x, atol=1e-6)

    @given(st.integers(0, 8))
    def test_weights_are_powers_of_two(self, k):
        w = haar_axis_weights(2**k)
        assert np.all(w > 0)
        logs = np.log2(w)
        assert np.allclose(logs, np.round(logs))


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetricProperties:
    @given(
        hnp.arrays(np.float64, 10, elements=st.floats(0, 1e6)),
        hnp.arrays(np.float64, 10, elements=st.floats(-1e6, 1e6)),
    )
    def test_relative_errors_nonnegative(self, truth, est):
        errs = relative_errors(truth, est)
        assert (errs >= 0).all()

    @given(hnp.arrays(np.float64, 10, elements=st.floats(0, 1e6)))
    def test_perfect_estimate_zero_error(self, truth):
        assert relative_errors(truth, truth.copy()).sum() == 0.0


# ----------------------------------------------------------------------
# End-to-end sanitizer invariants (sampled, slower: fewer examples)
# ----------------------------------------------------------------------
@st.composite
def small_matrices(draw):
    shape = draw(st.lists(st.integers(2, 10), min_size=1, max_size=3).map(tuple))
    total = draw(st.integers(0, 2000))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    if total:
        cells = np.stack(
            [rng.integers(0, s, size=total) for s in shape], axis=1
        )
        return FrequencyMatrix.from_cells(cells, Domain.regular(shape))
    return FrequencyMatrix.zeros(shape)


class TestSanitizerProperties:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(small_matrices(), st.sampled_from(
        ["identity", "uniform", "eug", "ebp", "mkm",
         "daf_entropy", "daf_homogeneity"]
    ))
    def test_partitions_always_tile(self, fm, name):
        from repro.methods import get_sanitizer
        private = get_sanitizer(name).sanitize(fm, 0.5, rng=0)
        if private.is_dense_backed:
            assert private.n_partitions == fm.n_cells
        else:
            covered = np.zeros(fm.shape, dtype=int)
            for p in private.partitions:
                covered[tuple(slice(lo, hi + 1) for lo, hi in p.box)] += 1
            assert (covered == 1).all()

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(small_matrices(), st.sampled_from(
        ["identity", "uniform", "eug", "ebp", "daf_entropy"]
    ))
    def test_answer_additivity(self, fm, name):
        """Disjoint halves must sum to the whole (query consistency)."""
        from repro.methods import get_sanitizer
        private = get_sanitizer(name).sanitize(fm, 0.5, rng=0)
        fb = full_box(fm.shape)
        s = fm.shape[0]
        if s < 2:
            return
        mid = s // 2
        left = (((0, mid - 1),) + fb[1:])
        right = (((mid, s - 1),) + fb[1:])
        total = private.answer(fb)
        assert private.answer(left) + private.answer(right) == pytest.approx(
            total, rel=1e-6, abs=1e-6
        )
