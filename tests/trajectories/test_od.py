"""Tests for repro.trajectories.od — OD matrices with intermediate stops."""

import numpy as np
import pytest

from repro.core import ValidationError
from repro.trajectories import (
    ODMatrixBuilder,
    SpatialGrid,
    TrajectoryDataset,
    auto_resolution,
    classical_od_matrix,
    frame_names,
    od_matrix_with_stops,
)


@pytest.fixture
def grid():
    return SpatialGrid(100, 100, 0.0, 10.0, 0.0, 10.0)


@pytest.fixture
def dataset(rng):
    # 500 trajectories with 1 intermediate stop in [0, 10)^2.
    return TrajectoryDataset(rng.uniform(0.0, 10.0, size=(500, 3, 2)))


class TestFrameNames:
    def test_no_stops(self):
        assert frame_names(2) == ["origin", "dest"]

    def test_with_stops(self):
        assert frame_names(4) == ["origin", "stop1", "stop2", "dest"]

    def test_rejects_single_frame(self):
        with pytest.raises(ValidationError):
            frame_names(1)


class TestAutoResolution:
    def test_od_only(self):
        g = auto_resolution(2, cell_budget=2_000_000)
        assert g**4 <= 2_000_000
        assert (g + 1) ** 4 > 2_000_000

    def test_more_frames_coarser(self):
        assert auto_resolution(3, 2_000_000) < auto_resolution(2, 2_000_000)

    def test_budget_too_small(self):
        with pytest.raises(ValidationError):
            auto_resolution(4, cell_budget=100)


class TestODMatrixBuilder:
    def test_classical_od_4d(self, grid, dataset):
        fm = classical_od_matrix(dataset, grid, resolution=8)
        assert fm.ndim == 4
        assert fm.shape == (8, 8, 8, 8)
        assert fm.total == 500.0

    def test_with_stops_6d(self, grid, dataset):
        fm = od_matrix_with_stops(dataset, grid, resolution=5)
        assert fm.ndim == 6
        assert fm.total == 500.0

    def test_domain_names(self, grid, dataset):
        builder = ODMatrixBuilder(grid, resolution=5)
        dom = builder.domain(dataset)
        assert dom.names == (
            "origin_x", "origin_y", "stop1_x", "stop1_y", "dest_x", "dest_y"
        )

    def test_entry_location_correct(self, grid):
        # A single known trajectory must increment exactly one known cell.
        pts = np.array([[[1.0, 2.0], [9.0, 9.0]]])  # origin (1,2) dest (9,9)
        ds = TrajectoryDataset(pts)
        fm = classical_od_matrix(ds, grid, resolution=10)
        # Cell width = 1.0 at resolution 10 over [0, 10).
        assert fm.data[1, 2, 9, 9] == 1.0
        assert fm.total == 1.0

    def test_sparse_matches_dense(self, grid, dataset):
        builder = ODMatrixBuilder(grid, resolution=6)
        sparse = builder.build_sparse(dataset)
        dense = builder.build(dataset)
        assert sparse.total == dense.total
        for idx, count in sparse.items():
            assert dense.data[idx] == count

    def test_frames_subset(self, grid, dataset):
        builder = ODMatrixBuilder(grid, resolution=8, frames=[0, -1])
        fm = builder.build(dataset)
        assert fm.ndim == 4

    def test_resolution_budget_enforced(self, grid, dataset):
        builder = ODMatrixBuilder(grid, resolution=100, cell_budget=10_000)
        with pytest.raises(ValidationError):
            builder.build(dataset)

    def test_auto_resolution_respects_budget(self, grid, dataset):
        builder = ODMatrixBuilder(grid, cell_budget=50_000)
        fm = builder.build(dataset)
        assert fm.n_cells <= 50_000

    def test_rejects_single_frame(self, grid, dataset):
        builder = ODMatrixBuilder(grid, resolution=8, frames=[0])
        with pytest.raises(ValidationError):
            builder.build(dataset)

    def test_rejects_bad_resolution(self, grid):
        with pytest.raises(ValidationError):
            ODMatrixBuilder(grid, resolution=0)

    def test_marginal_recovers_population(self, grid, dataset):
        """Summing the OD matrix over destination axes gives the origin
        histogram — the consistency the paper's Section 2.3 relies on."""
        fm = classical_od_matrix(dataset, grid, resolution=8)
        origin_hist = fm.marginal([0, 1])
        coarse = grid.coarsen(8, 8)
        direct = np.zeros((8, 8))
        cells = coarse.to_cells(dataset.origins)
        for cx, cy in cells:
            direct[cx, cy] += 1
        assert np.allclose(origin_hist.data, direct)
