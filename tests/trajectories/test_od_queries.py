"""Tests for repro.trajectories.queries — analyst-facing OD queries."""

import numpy as np
import pytest

from repro.core import QueryError
from repro.methods import Identity
from repro.trajectories import (
    SpatialGrid,
    TrajectoryDataset,
    circle_region,
    classical_od_matrix,
    exposure_count,
    flow_between,
    flow_via,
    od_matrix_with_stops,
    visits_through,
)


@pytest.fixture
def grid():
    return SpatialGrid(100, 100, 0.0, 10.0, 0.0, 10.0)


@pytest.fixture
def od4(grid):
    # Two clusters: A around (2, 2), B around (8, 8); all trips A -> B.
    rng = np.random.default_rng(0)
    origins = rng.normal(2.0, 0.3, size=(400, 2)).clip(0, 9.99)
    dests = rng.normal(8.0, 0.3, size=(400, 2)).clip(0, 9.99)
    pts = np.stack([origins, dests], axis=1)
    return classical_od_matrix(TrajectoryDataset(pts), grid, resolution=10)


class TestCircleRegion:
    def test_bounding_box(self):
        region = circle_region((5.0, 5.0), 1.0)
        assert region == ((4.0, 6.0), (4.0, 6.0))

    def test_rejects_nonpositive_radius(self):
        with pytest.raises(QueryError):
            circle_region((0.0, 0.0), 0.0)


class TestFlowQueries:
    def test_flow_between_captures_all(self, od4):
        a = circle_region((2.0, 2.0), 1.5)
        b = circle_region((8.0, 8.0), 1.5)
        assert flow_between(od4, a, b) == pytest.approx(400.0)

    def test_flow_reverse_direction_empty(self, od4):
        a = circle_region((2.0, 2.0), 1.5)
        b = circle_region((8.0, 8.0), 1.5)
        assert flow_between(od4, b, a) == pytest.approx(0.0)

    def test_visits_through_origin_frame(self, od4):
        a = circle_region((2.0, 2.0), 1.5)
        assert visits_through(od4, a, frame=0) == pytest.approx(400.0)

    def test_visits_through_dest_frame(self, od4):
        b = circle_region((8.0, 8.0), 1.5)
        assert visits_through(od4, b, frame=-1) == pytest.approx(400.0)

    def test_disjoint_regions_raise_when_impossible(self, od4):
        a = circle_region((2.0, 2.0), 0.5)
        far = circle_region((2.0, 2.0), 0.4)
        # Same frame, intersect fine; flow_between uses different frames,
        # so no QueryError expected here — this checks the happy path.
        assert flow_between(od4, a, far) >= 0.0

    def test_works_on_private_matrix(self, od4):
        private = Identity().sanitize(od4, 5.0, rng=0)
        a = circle_region((2.0, 2.0), 1.5)
        b = circle_region((8.0, 8.0), 1.5)
        noisy = flow_between(private, a, b)
        assert noisy == pytest.approx(400.0, abs=100.0)

    def test_odd_dimension_count_rejected(self, grid):
        from repro.core import FrequencyMatrix
        fm = FrequencyMatrix(np.ones((4, 4, 4)))
        with pytest.raises(QueryError):
            visits_through(fm, ((0.0, 1.0), (0.0, 1.0)), 0)


class TestStopQueries:
    @pytest.fixture
    def od6(self, grid):
        # A -> S -> B with the stop near (5, 5).
        rng = np.random.default_rng(1)
        origins = rng.normal(2.0, 0.3, size=(300, 2)).clip(0, 9.99)
        stops = rng.normal(5.0, 0.3, size=(300, 2)).clip(0, 9.99)
        dests = rng.normal(8.0, 0.3, size=(300, 2)).clip(0, 9.99)
        pts = np.stack([origins, stops, dests], axis=1)
        return od_matrix_with_stops(TrajectoryDataset(pts), grid, resolution=8)

    def test_flow_via_stop(self, od6):
        a = circle_region((2.0, 2.0), 1.5)
        s = circle_region((5.0, 5.0), 1.5)
        b = circle_region((8.0, 8.0), 1.5)
        assert flow_via(od6, a, b, s) == pytest.approx(300.0)

    def test_flow_via_wrong_stop_region_empty(self, od6):
        a = circle_region((2.0, 2.0), 1.5)
        wrong = circle_region((9.0, 1.0), 1.0)
        b = circle_region((8.0, 8.0), 1.5)
        assert flow_via(od6, a, b, wrong) == pytest.approx(0.0)

    def test_exposure_count_multi_constraint(self, od6):
        s = circle_region((5.0, 5.0), 1.5)
        b = circle_region((8.0, 8.0), 1.5)
        count = exposure_count(od6, [s, b], [1, 2])
        assert count == pytest.approx(300.0)

    def test_exposure_count_validates(self, od6):
        with pytest.raises(QueryError):
            exposure_count(od6, [], [])
        with pytest.raises(QueryError):
            exposure_count(od6, [circle_region((1, 1), 1)], [0, 1])
