"""Tests for the semantic-query extension (paper Section 7 future work)."""

import numpy as np
import pytest

from repro.core import QueryError, ValidationError
from repro.methods import Identity
from repro.trajectories import (
    DEFAULT_CATEGORIES,
    SemanticMap,
    SpatialGrid,
    TrajectoryDataset,
    od_matrix_with_stops,
    semantic_sequence_count,
    semantic_transition_matrix,
)


@pytest.fixture
def grid():
    return SpatialGrid(8, 8, 0.0, 8.0, 0.0, 8.0)


@pytest.fixture
def halves_map():
    """Left half 'residential', right half 'workplace' on an 8x8 grid."""
    labels = np.zeros((8, 8), dtype=np.int32)
    labels[4:, :] = 1
    return SemanticMap(labels, ("residential", "workplace"))


@pytest.fixture
def od4(grid):
    # 100 trips: left half -> right half (in x).
    rng = np.random.default_rng(0)
    origins = np.stack(
        [rng.uniform(0, 3.9, 100), rng.uniform(0, 7.9, 100)], axis=1
    )
    dests = np.stack(
        [rng.uniform(4.1, 7.9, 100), rng.uniform(0, 7.9, 100)], axis=1
    )
    ds = TrajectoryDataset(np.stack([origins, dests], axis=1))
    from repro.trajectories import classical_od_matrix
    return classical_od_matrix(ds, grid, resolution=8)


class TestSemanticMap:
    def test_construction(self, halves_map):
        assert halves_map.shape == (8, 8)
        assert halves_map.categories == ("residential", "workplace")

    def test_mask(self, halves_map):
        assert halves_map.mask("residential").sum() == 32
        assert halves_map.mask("workplace").sum() == 32

    def test_category_fraction(self, halves_map):
        assert halves_map.category_fraction("residential") == 0.5

    def test_unknown_category(self, halves_map):
        with pytest.raises(QueryError):
            halves_map.mask("casino")

    def test_label_range_validated(self):
        with pytest.raises(ValidationError):
            SemanticMap(np.array([[0, 5]]), ("a", "b"))

    def test_duplicate_categories_rejected(self):
        with pytest.raises(ValidationError):
            SemanticMap(np.zeros((2, 2), dtype=int), ("a", "a"))

    def test_coarsen_majority_vote(self, halves_map):
        coarse = halves_map.coarsen(2, 2)
        assert coarse.labels[0, 0] == 0  # left = residential
        assert coarse.labels[1, 1] == 1  # right = workplace

    def test_coarsen_rejects_refine(self, halves_map):
        with pytest.raises(ValidationError):
            halves_map.coarsen(16, 16)

    def test_random_map_properties(self, rng):
        grid = SpatialGrid(32, 32)
        sem = SemanticMap.random(grid, rng=rng)
        assert sem.shape == (32, 32)
        assert sem.categories == DEFAULT_CATEGORIES
        # Voronoi patches are contiguous: at least 2 categories appear.
        assert len(np.unique(sem.labels)) >= 2

    def test_random_map_reproducible(self):
        grid = SpatialGrid(16, 16)
        a = SemanticMap.random(grid, rng=4)
        b = SemanticMap.random(grid, rng=4)
        assert np.array_equal(a.labels, b.labels)

    def test_patch_count_validated(self):
        with pytest.raises(ValidationError):
            SemanticMap.random(SpatialGrid(8, 8), patch_count=0)


class TestSequenceCount:
    def test_counts_matching_trips(self, od4, halves_map):
        count = semantic_sequence_count(
            od4, halves_map, ["residential", "workplace"]
        )
        assert count == pytest.approx(100.0)

    def test_reverse_sequence_empty(self, od4, halves_map):
        count = semantic_sequence_count(
            od4, halves_map, ["workplace", "residential"]
        )
        assert count == pytest.approx(0.0)

    def test_sequence_length_validated(self, od4, halves_map):
        with pytest.raises(QueryError):
            semantic_sequence_count(od4, halves_map, ["residential"])

    def test_private_matrix_supported(self, od4, halves_map):
        private = Identity().sanitize(od4, 5.0, rng=0)
        noisy = semantic_sequence_count(
            private, halves_map, ["residential", "workplace"]
        )
        assert noisy == pytest.approx(100.0, abs=60.0)

    def test_map_coarsened_automatically(self, od4):
        fine = SemanticMap(
            np.repeat(np.repeat(np.array([[0] * 8 + [1] * 8] * 16).T, 1, 0), 1, 1),
            ("residential", "workplace"),
        )
        # A 16x16 map against an 8x8-per-frame matrix coarsens internally.
        count = semantic_sequence_count(
            od4, fine, ["residential", "workplace"]
        )
        assert count == pytest.approx(100.0)


class TestTransitionMatrix:
    def test_flows_by_category(self, od4, halves_map):
        flows = semantic_transition_matrix(od4, halves_map)
        assert flows[("residential", "workplace")] == pytest.approx(100.0)
        assert flows[("workplace", "residential")] == pytest.approx(0.0)

    def test_total_preserved(self, od4, halves_map):
        flows = semantic_transition_matrix(od4, halves_map)
        assert sum(flows.values()) == pytest.approx(od4.total)

    def test_same_frame_rejected(self, od4, halves_map):
        with pytest.raises(QueryError):
            semantic_transition_matrix(od4, halves_map, frames=(0, 0))

    def test_works_with_stops(self, grid, halves_map, rng):
        pts = rng.uniform(0, 7.9, size=(50, 3, 2))
        ds = TrajectoryDataset(pts)
        od6 = od_matrix_with_stops(ds, grid, resolution=4)
        flows = semantic_transition_matrix(od6, halves_map, frames=(0, -1))
        assert sum(flows.values()) == pytest.approx(50.0)
