"""Tests for repro.trajectories.trajectory."""

import numpy as np
import pytest

from repro.core import ValidationError
from repro.trajectories import Trajectory, TrajectoryDataset


class TestTrajectory:
    def test_basic(self):
        t = Trajectory(np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 0.0]]))
        assert t.origin == (0.0, 0.0)
        assert t.destination == (2.0, 0.0)
        assert t.n_points == 3
        assert t.n_stops == 1
        assert t.stops.shape == (1, 2)

    def test_no_stops(self):
        t = Trajectory(np.array([[0.0, 0.0], [3.0, 4.0]]))
        assert t.n_stops == 0
        assert t.length() == pytest.approx(5.0)

    def test_length_sums_segments(self):
        t = Trajectory(np.array([[0.0, 0.0], [3.0, 4.0], [3.0, 10.0]]))
        assert t.length() == pytest.approx(11.0)

    def test_rejects_single_point(self):
        with pytest.raises(ValidationError):
            Trajectory(np.array([[0.0, 0.0]]))

    def test_rejects_3d_points(self):
        with pytest.raises(ValidationError):
            Trajectory(np.zeros((3, 3)))

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            Trajectory(np.array([[0.0, np.nan], [1.0, 1.0]]))


class TestTrajectoryDataset:
    def make(self, n=10, k=4, seed=0):
        rng = np.random.default_rng(seed)
        return TrajectoryDataset(rng.random((n, k, 2)) * 10)

    def test_shape_properties(self):
        ds = self.make(n=7, k=5)
        assert ds.n_trajectories == 7
        assert ds.n_points_each == 5
        assert ds.n_stops_each == 3
        assert len(ds) == 7

    def test_indexing_returns_trajectory(self):
        ds = self.make()
        t = ds[0]
        assert isinstance(t, Trajectory)
        assert t.n_points == 4

    def test_iteration(self):
        ds = self.make(n=3)
        assert sum(1 for _ in ds) == 3

    def test_origins_destinations(self):
        ds = self.make()
        assert np.array_equal(ds.origins, ds.points[:, 0, :])
        assert np.array_equal(ds.destinations, ds.points[:, -1, :])

    def test_recorded_points_all(self):
        ds = self.make()
        assert np.array_equal(ds.recorded_points(), ds.points)

    def test_recorded_points_selection(self):
        ds = self.make(k=4)
        sel = ds.recorded_points([0, 3])
        assert sel.shape == (10, 2, 2)
        assert np.array_equal(sel[:, 0], ds.origins)
        assert np.array_equal(sel[:, 1], ds.destinations)

    def test_recorded_points_range_check(self):
        ds = self.make(k=4)
        with pytest.raises(ValidationError):
            ds.recorded_points([4])

    def test_subset(self):
        ds = self.make(n=10)
        sub = ds.subset(np.array([0, 2, 4]))
        assert sub.n_trajectories == 3
        assert np.array_equal(sub.points[1], ds.points[2])

    def test_lengths_vectorized(self):
        ds = self.make(n=5)
        lengths = ds.lengths()
        assert lengths.shape == (5,)
        assert lengths[0] == pytest.approx(ds[0].length())

    def test_from_trajectories(self):
        ts = [
            Trajectory(np.array([[0.0, 0.0], [1.0, 1.0]])),
            Trajectory(np.array([[2.0, 2.0], [3.0, 3.0]])),
        ]
        ds = TrajectoryDataset.from_trajectories(ts)
        assert ds.n_trajectories == 2

    def test_from_trajectories_mixed_lengths_rejected(self):
        ts = [
            Trajectory(np.array([[0.0, 0.0], [1.0, 1.0]])),
            Trajectory(np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])),
        ]
        with pytest.raises(ValidationError):
            TrajectoryDataset.from_trajectories(ts)

    def test_from_trajectories_empty_rejected(self):
        with pytest.raises(ValidationError):
            TrajectoryDataset.from_trajectories([])

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValidationError):
            TrajectoryDataset(np.zeros((5, 1, 2)))
        with pytest.raises(ValidationError):
            TrajectoryDataset(np.zeros((5, 3)))
        with pytest.raises(ValidationError):
            TrajectoryDataset(np.full((5, 3, 2), np.nan))
