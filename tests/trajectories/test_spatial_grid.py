"""Tests for repro.trajectories.grid."""

import numpy as np
import pytest

from repro.core import ValidationError
from repro.trajectories import SpatialGrid


class TestSpatialGrid:
    def test_city_factory(self):
        g = SpatialGrid.city(1000, 70.0)
        assert g.shape == (1000, 1000)
        assert g.cell_width == pytest.approx(0.07)
        assert g.cell_height == pytest.approx(0.07)

    def test_rejects_empty_extent(self):
        with pytest.raises(ValidationError):
            SpatialGrid(10, 10, 0.0, 0.0, 0.0, 1.0)

    def test_rejects_zero_cells(self):
        with pytest.raises(ValidationError):
            SpatialGrid(0, 10)

    def test_to_cells_basic(self):
        g = SpatialGrid(10, 10, 0.0, 10.0, 0.0, 10.0)
        cells = g.to_cells(np.array([[0.5, 9.5], [3.2, 0.1]]))
        assert cells.tolist() == [[0, 9], [3, 0]]

    def test_to_cells_clips(self):
        g = SpatialGrid(10, 10, 0.0, 10.0, 0.0, 10.0)
        cells = g.to_cells(np.array([[-5.0, 15.0]]))
        assert cells.tolist() == [[0, 9]]

    def test_to_cells_shape_check(self):
        g = SpatialGrid(10, 10)
        with pytest.raises(ValidationError):
            g.to_cells(np.zeros((3, 3)))

    def test_cell_center(self):
        g = SpatialGrid(10, 10, 0.0, 10.0, 0.0, 20.0)
        assert g.cell_center(0, 0) == (pytest.approx(0.5), pytest.approx(1.0))

    def test_cell_center_range_check(self):
        with pytest.raises(ValidationError):
            SpatialGrid(10, 10).cell_center(10, 0)

    def test_domain_roundtrip(self):
        g = SpatialGrid(100, 100, 0.0, 70.0, 0.0, 70.0)
        dom = g.domain()
        assert dom.shape == (100, 100)
        assert dom.point_to_cell((35.0, 0.5)) == (50, 0)

    def test_coarsen(self):
        g = SpatialGrid.city(1000)
        c = g.coarsen(10, 10)
        assert c.shape == (10, 10)
        assert c.x_max == g.x_max

    def test_coarsen_rejects_refine(self):
        with pytest.raises(ValidationError):
            SpatialGrid(10, 10).coarsen(20, 10)

    def test_sample_cell_points_land_in_cells(self, rng):
        g = SpatialGrid(10, 10, 0.0, 10.0, 0.0, 10.0)
        cells = rng.integers(0, 10, size=(100, 2))
        pts = g.sample_cell_points(cells, rng)
        back = g.to_cells(pts)
        assert np.array_equal(back, cells)
