"""Tests for repro.core.frequency_matrix."""

import numpy as np
import pytest

from repro.core import (
    Domain,
    FrequencyMatrix,
    QueryError,
    ValidationError,
    box_n_cells,
    box_slices,
    full_box,
    validate_box,
)


class TestBoxHelpers:
    def test_validate_box_ok(self):
        assert validate_box(((0, 2), (1, 3)), (4, 4)) == ((0, 2), (1, 3))

    def test_validate_box_wrong_arity(self):
        with pytest.raises(QueryError):
            validate_box(((0, 2),), (4, 4))

    def test_validate_box_inverted(self):
        with pytest.raises(QueryError):
            validate_box(((2, 0),), (4,))

    def test_validate_box_out_of_range(self):
        with pytest.raises(QueryError):
            validate_box(((0, 4),), (4,))
        with pytest.raises(QueryError):
            validate_box(((-1, 2),), (4,))

    def test_validate_box_malformed(self):
        with pytest.raises(QueryError):
            validate_box("nonsense", (4,))

    def test_box_slices(self):
        assert box_slices(((0, 2), (1, 1))) == (slice(0, 3), slice(1, 2))

    def test_box_n_cells(self):
        assert box_n_cells(((0, 2), (1, 3))) == 9
        assert box_n_cells(((5, 5),)) == 1

    def test_full_box(self):
        assert full_box((3, 4)) == ((0, 2), (0, 3))


class TestConstruction:
    def test_from_list(self):
        fm = FrequencyMatrix([[1, 2], [3, 4]])
        assert fm.shape == (2, 2)
        assert fm.total == 10.0

    def test_zeros(self):
        fm = FrequencyMatrix.zeros((3, 5))
        assert fm.total == 0.0
        assert fm.shape == (3, 5)

    def test_rejects_negative_counts(self):
        with pytest.raises(ValidationError):
            FrequencyMatrix([[1, -2]])

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            FrequencyMatrix([[float("nan")]])

    def test_rejects_scalar(self):
        with pytest.raises(ValidationError):
            FrequencyMatrix(5.0)

    def test_rejects_domain_shape_mismatch(self):
        with pytest.raises(ValidationError):
            FrequencyMatrix([[1, 2]], Domain.regular((3, 3)))

    def test_from_cells(self):
        cells = np.array([[0, 0], [0, 0], [1, 2]])
        fm = FrequencyMatrix.from_cells(cells, Domain.regular((2, 3)))
        assert fm.data[0, 0] == 2.0
        assert fm.data[1, 2] == 1.0
        assert fm.total == 3.0

    def test_from_cells_out_of_range(self):
        with pytest.raises(ValidationError):
            FrequencyMatrix.from_cells(
                np.array([[0, 3]]), Domain.regular((2, 3))
            )

    def test_from_cells_with_weights(self):
        cells = np.array([[0, 0], [1, 1]])
        fm = FrequencyMatrix.from_cells(
            cells, Domain.regular((2, 2)), weights=np.array([2.5, 0.5])
        )
        assert fm.data[0, 0] == 2.5
        assert fm.total == 3.0

    def test_from_cells_rejects_negative_weights(self):
        with pytest.raises(ValidationError):
            FrequencyMatrix.from_cells(
                np.array([[0, 0]]), Domain.regular((2, 2)),
                weights=np.array([-1.0]),
            )

    def test_from_points_clips_to_domain(self):
        dom = Domain.regular((4, 4))
        pts = np.array([[-10.0, 1.5], [2.2, 99.0]])
        fm = FrequencyMatrix.from_points(pts, dom)
        assert fm.data[0, 1] == 1.0
        assert fm.data[2, 3] == 1.0
        assert fm.total == 2.0

    def test_from_points_preserves_count(self, rng):
        dom = Domain.regular((10, 10))
        pts = rng.normal(5, 5, size=(500, 2))
        fm = FrequencyMatrix.from_points(pts, dom)
        assert fm.total == 500.0


class TestQueries:
    def test_range_count_full(self, small_2d):
        assert small_2d.range_count(full_box(small_2d.shape)) == small_2d.total

    def test_range_count_single_cell(self, small_2d):
        assert small_2d.range_count(((3, 3), (4, 4))) == small_2d.data[3, 4]

    def test_range_count_matches_numpy(self, small_2d):
        box = ((2, 9), (1, 13))
        assert small_2d.range_count(box) == small_2d.data[2:10, 1:14].sum()

    def test_range_count_validates(self, small_2d):
        with pytest.raises(QueryError):
            small_2d.range_count(((0, 16), (0, 0)))

    def test_box_view_is_view(self, small_2d):
        view = small_2d.box_view(((0, 1), (0, 1)))
        assert view.shape == (2, 2)
        assert np.shares_memory(view, small_2d.data)

    def test_additivity_of_disjoint_boxes(self, small_2d):
        left = small_2d.range_count(((0, 7), (0, 15)))
        right = small_2d.range_count(((8, 15), (0, 15)))
        assert left + right == pytest.approx(small_2d.total)


class TestTransforms:
    def test_copy_is_independent(self, small_2d):
        cp = small_2d.copy()
        cp.data[0, 0] += 1
        assert cp.data[0, 0] != small_2d.data[0, 0]

    def test_equality(self):
        a = FrequencyMatrix([[1, 2]])
        b = FrequencyMatrix([[1, 2]])
        c = FrequencyMatrix([[1, 3]])
        assert a == b
        assert a != c
        assert a != "nonsense"

    def test_marginal_sums_out_axes(self, small_4d):
        marg = small_4d.marginal([0, 1])
        assert marg.shape == (8, 8)
        assert marg.total == pytest.approx(small_4d.total)
        expected = small_4d.data.sum(axis=(2, 3))
        assert np.allclose(marg.data, expected)

    def test_marginal_axis_order_respected(self, small_4d):
        ab = small_4d.marginal([0, 2])
        ba = small_4d.marginal([2, 0])
        assert np.allclose(ab.data.T, ba.data)

    def test_marginal_rejects_duplicates(self, small_4d):
        with pytest.raises(ValidationError):
            small_4d.marginal([0, 0])

    def test_marginal_rejects_bad_axis(self, small_4d):
        with pytest.raises(ValidationError):
            small_4d.marginal([0, 7])

    def test_marginal_requires_axes(self, small_4d):
        with pytest.raises(ValidationError):
            small_4d.marginal([])

    def test_nonzero_fraction(self):
        fm = FrequencyMatrix([[1, 0], [0, 3]])
        assert fm.nonzero_fraction() == 0.5

    def test_probabilities_sum_to_one(self, small_2d):
        assert small_2d.probabilities().sum() == pytest.approx(1.0)

    def test_probabilities_of_empty_matrix(self):
        fm = FrequencyMatrix.zeros((2, 2))
        assert fm.probabilities().sum() == 0.0

    def test_iter_cells_skips_zeros(self):
        fm = FrequencyMatrix([[0, 5], [0, 0]])
        cells = list(fm.iter_cells())
        assert cells == [((0, 1), 5.0)]
