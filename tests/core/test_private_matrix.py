"""Tests for repro.core.private_matrix."""

import numpy as np
import pytest

from repro.core import (
    Domain,
    Partition,
    Partitioning,
    PrivateFrequencyMatrix,
    QueryError,
    ValidationError,
    full_box,
)


def two_partition_private(shape=(4, 4)):
    parts = [
        Partition(((0, 1), (0, 3)), noisy_count=8.0, true_count=7.0),
        Partition(((2, 3), (0, 3)), noisy_count=4.0, true_count=5.0),
    ]
    return PrivateFrequencyMatrix(
        Partitioning(parts, shape), epsilon=0.5, method="test"
    )


class TestConstruction:
    def test_partition_backed(self):
        priv = two_partition_private()
        assert priv.n_partitions == 2
        assert not priv.is_dense_backed
        assert priv.method == "test"
        assert priv.epsilon == 0.5

    def test_dense_backed(self):
        noisy = np.array([[1.0, -2.0], [0.5, 3.0]])
        priv = PrivateFrequencyMatrix.from_dense_noisy(noisy, epsilon=1.0)
        assert priv.is_dense_backed
        assert priv.n_partitions == 4
        assert priv.shape == (2, 2)

    def test_dense_backed_rejects_nan(self):
        with pytest.raises(ValidationError):
            PrivateFrequencyMatrix.from_dense_noisy(np.array([[np.nan]]))

    def test_dense_backed_copy_semantics(self):
        noisy = np.ones((2, 2))
        priv = PrivateFrequencyMatrix.from_dense_noisy(noisy)
        noisy[0, 0] = 99.0
        assert priv.dense_array()[0, 0] == 1.0

    def test_partitioning_property_raises_for_dense(self):
        priv = PrivateFrequencyMatrix.from_dense_noisy(np.ones((2, 2)))
        with pytest.raises(QueryError):
            _ = priv.partitioning

    def test_rejects_negative_epsilon(self):
        with pytest.raises(ValidationError):
            PrivateFrequencyMatrix(
                Partitioning.single((2, 2), 1.0), epsilon=-0.1
            )

    def test_rejects_domain_mismatch(self):
        with pytest.raises(ValidationError):
            PrivateFrequencyMatrix(
                Partitioning.single((2, 2), 1.0), Domain.regular((3, 3))
            )


class TestAnswering:
    def test_full_box_answer(self):
        priv = two_partition_private()
        assert priv.answer(full_box((4, 4))) == pytest.approx(12.0)

    def test_uniformity_within_partition(self):
        priv = two_partition_private()
        # First partition: 8 cells with count 8 -> 1 per cell.
        assert priv.answer(((0, 0), (0, 0))) == pytest.approx(1.0)
        # Second partition: 8 cells with count 4 -> 0.5 per cell.
        assert priv.answer(((3, 3), (0, 1))) == pytest.approx(1.0)

    def test_answer_spanning_partitions(self):
        priv = two_partition_private()
        # Rows 1-2: half of each partition -> 4 + 2.
        assert priv.answer(((1, 2), (0, 3))) == pytest.approx(6.0)

    def test_answer_validates_box(self):
        priv = two_partition_private()
        with pytest.raises(QueryError):
            priv.answer(((0, 4), (0, 3)))

    def test_answer_many_matches_answer(self, rng):
        priv = two_partition_private()
        boxes = []
        for _ in range(20):
            a, b = sorted(rng.integers(0, 4, size=2))
            c, d = sorted(rng.integers(0, 4, size=2))
            boxes.append(((int(a), int(b)), (int(c), int(d))))
        many = priv.answer_many(boxes)
        single = [priv.answer(bx) for bx in boxes]
        assert np.allclose(many, single)

    def test_answer_many_empty(self):
        assert two_partition_private().answer_many([]).size == 0

    def test_dense_and_partition_engines_agree(self, rng):
        priv = two_partition_private()
        boxes = []
        for _ in range(10):
            a, b = sorted(rng.integers(0, 4, size=2))
            c, d = sorted(rng.integers(0, 4, size=2))
            boxes.append(((int(a), int(b)), (int(c), int(d))))
        via_partitions = [priv.answer(bx) for bx in boxes]
        via_prefix = priv._prefix_table().query_many(boxes)
        assert np.allclose(via_partitions, via_prefix)

    def test_answer_continuous(self):
        priv = two_partition_private()
        # Domain is regular: cell k covers [k, k+1).
        assert priv.answer_continuous((0.0, 0.0), (1.9, 3.9)) == pytest.approx(
            priv.answer(((0, 1), (0, 3)))
        )

    def test_dense_backed_answers(self):
        noisy = np.array([[1.0, 2.0], [3.0, 4.0]])
        priv = PrivateFrequencyMatrix.from_dense_noisy(noisy)
        assert priv.answer(((0, 1), (0, 0))) == pytest.approx(4.0)
        assert priv.answer(((0, 0), (0, 1))) == pytest.approx(3.0)


class TestDenseReconstruction:
    def test_dense_array_spreads_uniformly(self):
        priv = two_partition_private()
        dense = priv.dense_array()
        assert dense.shape == (4, 4)
        assert np.allclose(dense[:2, :], 1.0)
        assert np.allclose(dense[2:, :], 0.5)

    def test_to_dense_clips_negative(self):
        parts = [Partition(((0, 1),), -4.0), Partition(((2, 3),), 4.0)]
        priv = PrivateFrequencyMatrix(Partitioning(parts, (4,)))
        fm = priv.to_dense()
        assert (fm.data >= 0).all()
        assert fm.data[3] == pytest.approx(2.0)


class TestSerialization:
    def test_partition_roundtrip(self):
        priv = two_partition_private()
        payload = priv.to_publishable()
        assert "partitions" in payload
        # True counts must never be published.
        assert all("true" not in str(k) for p in payload["partitions"] for k in p)
        back = PrivateFrequencyMatrix.from_publishable(payload)
        assert back.n_partitions == 2
        assert back.answer(full_box((4, 4))) == pytest.approx(12.0)

    def test_dense_roundtrip(self):
        noisy = np.array([[1.5, -0.5], [2.0, 0.0]])
        priv = PrivateFrequencyMatrix.from_dense_noisy(
            noisy, epsilon=0.7, method="identity"
        )
        back = PrivateFrequencyMatrix.from_publishable(priv.to_publishable())
        assert back.is_dense_backed
        assert np.allclose(back.dense_array(), noisy)
        assert back.epsilon == 0.7

    def test_malformed_payload(self):
        with pytest.raises(QueryError):
            PrivateFrequencyMatrix.from_publishable({"shape": "bad"})
        with pytest.raises(QueryError):
            PrivateFrequencyMatrix.from_publishable({})

    def test_cell_payload_size_checked(self):
        with pytest.raises(QueryError):
            PrivateFrequencyMatrix.from_publishable(
                {"shape": [2, 2], "cells": [1.0, 2.0]}
            )
