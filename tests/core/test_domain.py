"""Tests for repro.core.domain."""

import numpy as np
import pytest

from repro.core import DimensionSpec, Domain, ValidationError


class TestDimensionSpec:
    def test_defaults_extent_equals_size(self):
        d = DimensionSpec(10)
        assert d.low == 0.0
        assert d.high == 10.0
        assert d.width == 1.0

    def test_custom_extent(self):
        d = DimensionSpec(100, low=-5.0, high=5.0, name="lat")
        assert d.width == pytest.approx(0.1)
        assert d.name == "lat"

    def test_rejects_zero_size(self):
        with pytest.raises(ValidationError):
            DimensionSpec(0)

    def test_rejects_negative_size(self):
        with pytest.raises(ValidationError):
            DimensionSpec(-3)

    def test_rejects_empty_extent(self):
        with pytest.raises(ValidationError):
            DimensionSpec(10, low=1.0, high=1.0)

    def test_rejects_inverted_extent(self):
        with pytest.raises(ValidationError):
            DimensionSpec(10, low=2.0, high=1.0)

    def test_rejects_nonfinite_extent(self):
        with pytest.raises(ValidationError):
            DimensionSpec(10, low=0.0, high=float("inf"))

    def test_to_cell_interior(self):
        d = DimensionSpec(10, 0.0, 10.0)
        assert d.to_cell(3.5) == 3
        assert d.to_cell(0.0) == 0
        assert d.to_cell(9.999) == 9

    def test_to_cell_clips_out_of_range(self):
        d = DimensionSpec(10, 0.0, 10.0)
        assert d.to_cell(-1.0) == 0
        assert d.to_cell(15.0) == 9

    def test_to_cell_upper_boundary_belongs_to_last_cell(self):
        d = DimensionSpec(4, 0.0, 8.0)
        assert d.to_cell(8.0) == 3

    def test_to_cell_rejects_nan(self):
        with pytest.raises(ValidationError):
            DimensionSpec(10).to_cell(float("nan"))

    def test_to_cells_vectorized_matches_scalar(self):
        d = DimensionSpec(7, -1.0, 6.0)
        xs = np.linspace(-2.0, 7.0, 23)
        vec = d.to_cells(xs)
        assert list(vec) == [d.to_cell(x) for x in xs]

    def test_cell_interval_roundtrip(self):
        d = DimensionSpec(5, 0.0, 10.0)
        lo, hi = d.cell_interval(2)
        assert (lo, hi) == (4.0, 6.0)
        assert d.to_cell(lo) == 2

    def test_cell_interval_out_of_range(self):
        with pytest.raises(ValidationError):
            DimensionSpec(5).cell_interval(5)

    def test_interval_to_cells(self):
        d = DimensionSpec(10, 0.0, 10.0)
        assert d.interval_to_cells(2.5, 4.5) == (2, 4)

    def test_interval_to_cells_full_extent(self):
        d = DimensionSpec(10, 0.0, 10.0)
        assert d.interval_to_cells(0.0, 10.0) == (0, 9)

    def test_interval_to_cells_rejects_inverted(self):
        with pytest.raises(ValidationError):
            DimensionSpec(10).interval_to_cells(5.0, 4.0)


class TestDomain:
    def test_regular_construction(self):
        dom = Domain.regular((3, 4, 5))
        assert dom.ndim == 3
        assert dom.shape == (3, 4, 5)
        assert dom.n_cells == 60
        assert dom.names == ("dim0", "dim1", "dim2")

    def test_regular_with_names(self):
        dom = Domain.regular((3, 4), names=["x", "y"])
        assert dom.names == ("x", "y")

    def test_regular_rejects_mismatched_names(self):
        with pytest.raises(ValidationError):
            Domain.regular((3, 4), names=["x"])

    def test_empty_domain_rejected(self):
        with pytest.raises(ValidationError):
            Domain(())

    def test_non_spec_member_rejected(self):
        with pytest.raises(ValidationError):
            Domain((DimensionSpec(3), "not-a-spec"))

    def test_iteration_and_indexing(self):
        dom = Domain.regular((2, 3))
        assert len(dom) == 2
        assert [d.size for d in dom] == [2, 3]
        assert dom[1].size == 3

    def test_point_to_cell(self):
        dom = Domain.regular((10, 10))
        assert dom.point_to_cell((2.7, 9.1)) == (2, 9)

    def test_point_to_cell_wrong_arity(self):
        with pytest.raises(ValidationError):
            Domain.regular((10, 10)).point_to_cell((1.0,))

    def test_points_to_cells_matches_scalar(self, rng):
        dom = Domain.regular((8, 12))
        pts = rng.uniform(0, 8, size=(50, 2))
        pts[:, 1] *= 12 / 8
        vec = dom.points_to_cells(pts)
        for row, pt in zip(vec, pts):
            assert tuple(row) == dom.point_to_cell(pt)

    def test_points_to_cells_shape_check(self):
        with pytest.raises(ValidationError):
            Domain.regular((8, 12)).points_to_cells(np.zeros((5, 3)))

    def test_box_to_cells(self):
        dom = Domain.regular((10, 20))
        # hi coordinates are inclusive: 18.0 lies in cell 18 (= [18, 19)).
        box = dom.box_to_cells((1.5, 3.0), (4.5, 18.0))
        assert box == ((1, 4), (3, 18))

    def test_box_to_cells_arity_check(self):
        with pytest.raises(ValidationError):
            Domain.regular((10, 20)).box_to_cells((1.0,), (2.0,))
