"""Property test for the ``DENSE_SWITCH_FACTOR`` engine boundary.

The default-config :class:`repro.engine.Engine` routes a batch either to the
tiled geometric kernel or to a dense prefix-sum reconstruction once
``n_queries * n_partitions`` exceeds ``DENSE_SWITCH_FACTOR * n_cells``.
The engines must be interchangeable: whichever side of the boundary a
workload lands on — including exactly at it — both paths must agree to
1e-9, so the cost model is a pure performance decision that can never
change an answer.  This pins the invariant PR 1's engine switch relies
on, for every workload size straddling the switch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PrivateFrequencyMatrix, packed_from_intervals
from repro.core.private_matrix import DENSE_SWITCH_FACTOR
from repro.engine import Engine
from repro.methods._grid import axis_intervals
from repro.queries import random_workload

SHAPE = (16, 16)
N_CELLS = 16 * 16


def grid_private(m: int, seed: int = 0) -> PrivateFrequencyMatrix:
    rng = np.random.default_rng(seed)
    intervals = [axis_intervals(s, m) for s in SHAPE]
    noisy = rng.poisson(25.0, size=m * m).astype(float)
    noisy += rng.laplace(0.0, 1.5, size=m * m)
    packed = packed_from_intervals(intervals, noisy, SHAPE)
    return PrivateFrequencyMatrix.from_packed(packed, method="test", epsilon=1.0)


def boundary_queries(n_partitions: int, delta: int) -> int:
    """Smallest n_queries past the switch, shifted by ``delta``."""
    boundary = (DENSE_SWITCH_FACTOR * N_CELLS) // n_partitions
    return max(1, boundary + delta)


@pytest.mark.parametrize("m", [2, 4, 8])
@pytest.mark.parametrize("delta", [-8, -1, 0, 1, 8])
def test_engines_agree_across_the_switch(m, delta):
    """Dense and tiled paths agree to 1e-9 on both sides of the boundary."""
    private = grid_private(m, seed=m)
    n_queries = boundary_queries(private.n_partitions, delta)
    lows, highs = random_workload(SHAPE, n_queries, rng=delta + 100).as_arrays()

    kernel = private.packed.answer_many_arrays(lows, highs)
    dense = private._prefix_table().query_arrays(lows, highs)
    auto = Engine(private).answer_arrays(lows, highs)

    np.testing.assert_allclose(dense, kernel, rtol=0, atol=1e-9)
    # The auto route picked one of the two, so it inherits the agreement.
    np.testing.assert_allclose(auto, kernel, rtol=0, atol=1e-9)


def test_parametrization_straddles_the_boundary():
    """The deltas above actually land on both sides of the cost model."""
    sides = set()
    for m in (2, 4, 8):
        k = m * m
        for delta in (-8, -1, 0, 1, 8):
            n_queries = boundary_queries(k, delta)
            sides.add(n_queries * k > DENSE_SWITCH_FACTOR * N_CELLS)
    assert sides == {False, True}


@pytest.mark.parametrize("delta", [-1, 0, 1])
def test_switch_agrees_with_scalar_reference(delta):
    """Either engine matches the scalar reference loop at the boundary."""
    private = grid_private(4, seed=7)
    n_queries = boundary_queries(private.n_partitions, delta)
    workload = random_workload(SHAPE, n_queries, rng=delta + 50)
    lows, highs = workload.as_arrays()
    auto = Engine(private).answer_arrays(lows, highs)
    scalar = np.array([private.answer(q) for q in workload])
    np.testing.assert_allclose(auto, scalar, rtol=0, atol=1e-9)
