"""Interval index and query planner tests.

The central property, as a hypothesis test: the index-pruned gather must
equal the unpruned tiled broadcast kernel within 1e-9 on the packed
partitionings real sanitizers emit — uniform grid, AG, quadtree,
kd-tree, and DAF — including degenerate queries (empty batch,
full-domain, single-cell).  Everything the planner does is a choice of
*route*; the answers must never depend on it.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    PLAN_BROADCAST,
    PLAN_DENSE,
    PLAN_PRUNED,
    FrequencyMatrix,
    PrivateFrequencyMatrix,
    QueryError,
    boxes_to_arrays,
    full_box,
    packed_from_intervals,
)
from repro.core.interval_index import (
    PRUNE_MIN_PARTITIONS,
    choose_packed_plan,
)
from repro.engine import Engine, EngineConfig, QueryRequest
from repro.methods import get_sanitizer
from repro.methods._grid import axis_intervals

#: Partition-emitting sanitizer families the equivalence must hold for.
METHODS = ["uniform", "ag", "quadtree", "kdtree", "daf_entropy"]


def sanitized_packed(method, shape, data_seed, noise_seed, epsilon):
    """A real sanitizer's packed partitioning over a random matrix."""
    rng = np.random.default_rng(data_seed)
    matrix = FrequencyMatrix(rng.poisson(3.0, shape).astype(float))
    private = get_sanitizer(method).sanitize(matrix, epsilon, noise_seed)
    return private.packed


def degenerate_and_random_queries(shape, rng, n_random=30):
    """Random boxes plus the degenerate cases the issue calls out."""
    boxes = [full_box(shape)]  # full domain
    boxes.append(tuple((0, 0) for _ in shape))  # single cell at the origin
    boxes.append(tuple((s - 1, s - 1) for s in shape))  # single cell at the end
    for _ in range(n_random):
        box = []
        for s in shape:
            a = int(rng.integers(0, s))
            b = int(rng.integers(0, s))
            box.append((min(a, b), max(a, b)))
        boxes.append(tuple(box))
    return boxes


class TestPrunedMatchesBroadcast:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        method=st.sampled_from(METHODS),
        shape=st.tuples(
            st.integers(8, 40), st.integers(8, 40)
        ),
        data_seed=st.integers(0, 2**16),
        noise_seed=st.integers(0, 2**16),
        epsilon=st.sampled_from([0.1, 0.5, 2.0]),
    )
    def test_pruned_equals_broadcast_on_sanitizer_output(
        self, method, shape, data_seed, noise_seed, epsilon
    ):
        packed = sanitized_packed(method, shape, data_seed, noise_seed, epsilon)
        rng = np.random.default_rng(data_seed ^ noise_seed)
        boxes = degenerate_and_random_queries(shape, rng)
        lows, highs = boxes_to_arrays(boxes)
        broadcast = packed.answer_many_arrays(lows, highs, plan=PLAN_BROADCAST)
        pruned = packed.answer_many_arrays(lows, highs, plan=PLAN_PRUNED)
        np.testing.assert_allclose(pruned, broadcast, rtol=0, atol=1e-9)

    def test_empty_batch(self):
        packed = sanitized_packed("uniform", (16, 16), 0, 0, 1.0)
        empty = np.empty((0, 2), dtype=np.int64)
        assert packed.answer_many_arrays(empty, empty, plan=PLAN_PRUNED).size == 0
        assert packed.interval_index().candidate_counts(empty, empty).size == 0

    @pytest.mark.parametrize("method", METHODS)
    def test_candidates_match_brute_force(self, method):
        packed = sanitized_packed(method, (24, 18), 5, 7, 0.5)
        index = packed.interval_index()
        rng = np.random.default_rng(9)
        lo, hi = packed.lo, packed.hi
        for box in degenerate_and_random_queries((24, 18), rng, n_random=15):
            qlo = np.array([b[0] for b in box])
            qhi = np.array([b[1] for b in box])
            expected = np.flatnonzero(
                np.logical_and(lo <= qhi, hi >= qlo).all(axis=1)
            )
            np.testing.assert_array_equal(index.candidates(qlo, qhi), expected)

    def test_candidate_counts_upper_bound_true_counts(self):
        packed = sanitized_packed("kdtree", (32, 32), 3, 4, 0.5)
        index = packed.interval_index()
        rng = np.random.default_rng(2)
        boxes = degenerate_and_random_queries((32, 32), rng)
        lows, highs = boxes_to_arrays(boxes)
        bounds = index.candidate_counts(lows, highs)
        lo, hi = packed.lo, packed.hi
        for i, (b, qlo, qhi) in enumerate(zip(bounds, lows, highs)):
            true = int(
                np.logical_and(lo <= qhi, hi >= qlo).all(axis=1).sum()
            )
            assert true <= b <= packed.n_partitions


def bench_like_packed(shape=(256, 256), m=64):
    """The microbenchmark substrate: an m x m grid partitioning."""
    rng = np.random.default_rng(0)
    intervals = [axis_intervals(s, m) for s in shape]
    noisy = rng.poisson(40.0, size=m * m).astype(float)
    return packed_from_intervals(intervals, noisy, shape)


def small_queries(shape, n, rng, max_extent=3):
    lows = np.stack(
        [rng.integers(0, s - max_extent, size=n) for s in shape], axis=1
    )
    highs = lows + rng.integers(0, max_extent + 1, size=lows.shape)
    return lows, highs


class TestPlanner:
    def test_small_queries_on_many_partitions_prune(self):
        packed = bench_like_packed()
        lows, highs = small_queries((256, 256), 500, np.random.default_rng(1))
        assert choose_packed_plan(packed, lows, highs) == PLAN_PRUNED

    def test_wide_queries_broadcast(self):
        packed = bench_like_packed()
        q = 500
        lows = np.zeros((q, 2), dtype=np.int64)
        highs = np.full((q, 2), 255, dtype=np.int64)
        assert choose_packed_plan(packed, lows, highs) == PLAN_BROADCAST

    def test_few_partitions_never_prune(self):
        packed = bench_like_packed((16, 16), 4)  # 16 partitions
        assert packed.n_partitions < PRUNE_MIN_PARTITIONS
        lows, highs = small_queries((16, 16), 200, np.random.default_rng(1), 1)
        assert choose_packed_plan(packed, lows, highs) == PLAN_BROADCAST

    def test_private_matrix_plan_routes(self):
        packed = bench_like_packed()
        priv = PrivateFrequencyMatrix.from_packed(packed)
        rng = np.random.default_rng(3)
        lows, highs = small_queries((256, 256), 50, rng)
        # Small batch of small queries: q*k below the dense switch.
        assert priv.plan_queries(lows, highs) == PLAN_PRUNED
        # Huge batch: the dense prefix-sum switch takes precedence.
        big_l = np.repeat(lows, 50, axis=0)
        big_h = np.repeat(highs, 50, axis=0)
        assert priv.plan_queries(big_l, big_h) == PLAN_DENSE
        dense = PrivateFrequencyMatrix.from_dense_noisy(np.ones((8, 8)))
        one = np.zeros((1, 2), dtype=np.int64)
        assert dense.plan_queries(one, one) == PLAN_DENSE

    def test_all_plans_agree_and_are_reported(self):
        packed = bench_like_packed()
        priv = PrivateFrequencyMatrix.from_packed(packed)
        lows, highs = small_queries((256, 256), 50, np.random.default_rng(4))
        outs = {}
        for plan in (PLAN_DENSE, PLAN_BROADCAST, PLAN_PRUNED):
            result = Engine(priv, EngineConfig(plan=plan)).answer(
                QueryRequest(lows, highs)
            )
            assert result.plan == plan
            outs[plan] = result.answers
        np.testing.assert_allclose(
            outs[PLAN_PRUNED], outs[PLAN_BROADCAST], rtol=0, atol=1e-9
        )
        np.testing.assert_allclose(
            outs[PLAN_DENSE], outs[PLAN_BROADCAST], rtol=1e-9, atol=1e-6
        )

    def test_unknown_plan_rejected(self):
        # The name check happens at config construction, before any
        # matrix is involved.
        with pytest.raises(QueryError, match="unknown packed query plan"):
            EngineConfig(plan="sideways")

    def test_partition_plans_rejected_on_dense_backed(self):
        dense = PrivateFrequencyMatrix.from_dense_noisy(np.ones((8, 8)))
        one = np.zeros((1, 2), dtype=np.int64)
        with pytest.raises(QueryError, match="dense-backed"):
            Engine(dense, EngineConfig(plan=PLAN_PRUNED)).answer(
                QueryRequest(one, one)
            )
